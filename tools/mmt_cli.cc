/**
 * @file
 * mmt_cli — command-line driver for the simulator.
 *
 * Usage:
 *   mmt_cli [run] [options] <workload>
 *   mmt_cli compile <file.c> [--threads N] [--emit-iasm] [--no-spmd]
 *   mmt_cli analyze <workload>|--all|--compiled [--json] [--dynamic]
 *   mmt_cli --list
 *   mmt_cli sweep --figure <id> [sweep options]
 *   mmt_cli sweep --list-figures
 *
 * Options:
 *   --config <Base|MMT-F|MMT-FX|MMT-FXR|Limit>   (default MMT-FXR)
 *   --threads <1..4>                             (default 2)
 *   --fhb <entries>        FHB size override
 *   --ls-ports <n>         load/store ports override
 *   --fetch-width <n>      fetch width override
 *   --no-trace-cache       disable the trace cache
 *   --cores <1..4>         number of SMT cores in the CMP (default 1)
 *   --placement <p>        packed|spread: how thread contexts map onto
 *                          cores (default packed; see docs/WORKLOADS.md)
 *   --shared-icache        add the shared second-level I-cache between
 *                          the private L1Is and the shared L2
 *   --static-hints <m>     off|fhb-seed|split-steer|both: feed mmt-analyze
 *                          divergence/re-convergence hints to the fetch
 *                          frontend (default off)
 *   --no-golden            skip the golden-model comparison
 *   --stats                dump every counter (gem5-style)
 *   --stats-json           print the counter dump as JSON (only output)
 *   --asm <file>           run an assembly file instead of a named
 *                          workload (single address space, MT semantics)
 *   --strict               refuse to simulate a program with
 *                          error-severity mmt-analyze diagnostics
 *   --race-check           capture the memory trace, replay it through
 *                          the happens-before oracle, and cross-check
 *                          every observed race against the static
 *                          may-race set (MT workloads; exit 1 on a
 *                          dynamic race or a gate violation). Off by
 *                          default — a plain run is bit-identical to
 *                          one without the flag.
 *
 * Compile options (mmtc C-subset frontend, docs/COMPILER.md):
 *   --threads <1..4>       functional run thread count (default 2)
 *   --emit-iasm            print the generated assembly and exit
 *   --no-spmd              disable auto-SPMDization (purely redundant
 *                          output)
 *   The slicing report (sliced loops, rejections, hazard warnings)
 *   goes to stderr; without --emit-iasm the program is assembled and
 *   executed functionally and the OUT log printed.
 *
 * Analyze options (static CFG/dataflow/sharing analysis, no simulation
 * unless --dynamic):
 *   --all                  analyze every registered workload
 *   --compiled             analyze every mmtc-compiled C workload
 *   --json                 machine-readable report
 *   --dynamic              also run the simulation and cross-check the
 *                          static upper bound against the merge profile
 *                          (honors --config/--threads)
 *   --races                list the raw may-race pairs of the race
 *                          analysis, including allow-listed ones (the
 *                          set the dynamic oracle gates against)
 *   exit status: 1 when any error-severity diagnostic (or upper-bound
 *   violation with --dynamic) is found
 *
 * Sweep options (parallel figure reproduction with result caching):
 *   --figure <id>          5a 5b 5c 5d 7a 7b 7c 7d ablation_hints csrc
 *                          cmp
 *   --static-hints <m>     for ablation_hints: restrict the mode axis to
 *                          {off, <m>}; for other figures: apply <m> to
 *                          every job
 *   --jobs <n>             worker threads (default: hardware cores)
 *   --cache-dir <dir>      persistent result cache; re-runs only
 *                          simulate jobs whose inputs changed
 *   --apps <a,b,...>       restrict the sweep to these workloads
 *   --csv <file>           write per-job results as CSV
 *   --json <file>          write per-job results as JSON
 *   --force                ignore cached entries (still refresh them;
 *                          incompatible with sharding)
 *   --no-progress          silence the stderr progress/ETA reporter
 *   --shards <n>           fork N lease-coordinated worker processes
 *                          sharing --cache-dir (crash isolation: a dead
 *                          worker loses one job, survivors reclaim it)
 *   --shard-id <k>         run as worker K of a manually-launched fleet
 *   --shard-count <n>      fleet size for --shard-id (default 1)
 *   --lease-stale-sec <s>  heartbeat age after which a lease is
 *                          considered abandoned (default 30)
 *
 * Examples:
 *   mmt_cli --config Base --threads 4 equake
 *   mmt_cli --stats --fhb 128 water-ns
 *   mmt_cli mp-ring
 *   mmt_cli sweep --figure 5a --jobs 8 --cache-dir .mmt-cache
 *   mmt_cli sweep --figure 7a --apps equake,mcf --csv fig7a.csv
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/dynamic_bound.hh"
#include "analysis/race_oracle.hh"
#include "cc/compiler.hh"
#include "common/logging.hh"
#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"
#include "runner/artifacts.hh"
#include "runner/figures.hh"
#include "runner/shard.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: mmt_cli [run] [--config KIND] [--threads N]\n"
                 "               [--cores N] [--placement packed|spread]\n"
                 "               [--shared-icache]\n"
                 "               [--fhb N] [--ls-ports N] [--fetch-width N]\n"
                 "               [--no-trace-cache] [--static-hints M]\n"
                 "               [--no-golden]\n"
                 "               [--stats] [--stats-json] [--asm FILE]\n"
                 "               [--strict] [--race-check] <workload>\n"
                 "       mmt_cli compile FILE.c [--threads N]\n"
                 "               [--emit-iasm] [--no-spmd]\n"
                 "       mmt_cli analyze [--json] [--dynamic] [--races]\n"
                 "               [--config KIND] [--threads N] [--asm FILE]\n"
                 "               <workload>|--all|--compiled\n"
                 "       mmt_cli --list\n"
                 "       mmt_cli sweep --figure ID [--jobs N]\n"
                 "               [--cache-dir DIR] [--apps A,B,...]\n"
                 "               [--static-hints M] [--csv FILE]\n"
                 "               [--json FILE] [--force]\n"
                 "               [--no-progress] [--shards N]\n"
                 "               [--shard-id K --shard-count N]\n"
                 "               [--lease-stale-sec S]\n"
                 "       mmt_cli sweep --list-figures\n");
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> items;
    std::string item;
    std::istringstream is(list);
    while (std::getline(is, item, ',')) {
        if (!item.empty())
            items.push_back(item);
    }
    return items;
}

/** `mmt_cli sweep ...`: run one figure's sweep through the runner. */
int
sweepMain(int argc, char **argv)
{
    std::string figure_id;
    std::string apps;
    std::string csv_path, json_path;
    std::string static_hints;
    SweepOptions options = sweepOptionsFromEnv();

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        auto nextInt = [&](const char *flag, long min_value) -> int {
            std::string text = next();
            long parsed = 0;
            if (!parseStrictInt(text, parsed) || parsed < min_value)
                fatal("%s wants an integer >= %ld (got '%s')", flag,
                      min_value, text.c_str());
            return static_cast<int>(parsed);
        };
        if (arg == "--figure") {
            figure_id = next();
        } else if (arg == "--jobs") {
            options.jobs = nextInt("--jobs", 1);
        } else if (arg == "--shards") {
            options.shards = nextInt("--shards", 2);
        } else if (arg == "--shard-id") {
            options.shardId = nextInt("--shard-id", 0);
        } else if (arg == "--shard-count") {
            options.shardCount = nextInt("--shard-count", 1);
        } else if (arg == "--lease-stale-sec") {
            std::string text = next();
            double parsed = 0.0;
            if (!parseStrictDouble(text, parsed) || parsed <= 0.0)
                fatal("--lease-stale-sec wants a positive number "
                      "(got '%s')", text.c_str());
            options.leaseStaleSec = parsed;
        } else if (arg == "--cache-dir") {
            options.cacheDir = next();
        } else if (arg == "--apps") {
            apps = next();
        } else if (arg == "--static-hints") {
            static_hints = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--force") {
            options.forceRerun = true;
        } else if (arg == "--no-progress") {
            options.progress = false;
        } else if (arg == "--list-figures") {
            for (const std::string &id : figureIds())
                std::printf("%s\n", id.c_str());
            return 0;
        } else {
            std::fprintf(stderr, "unknown sweep option '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (figure_id.empty())
        usage();

    setInformEnabled(false);
    Figure fig = makeFigure(figure_id);
    bool filtered = !apps.empty();
    if (filtered) {
        fig.sweep.filterWorkloads(splitCommas(apps));
        if (fig.sweep.jobs.empty())
            fatal("--apps '%s' matches no job of figure %s", apps.c_str(),
                  figure_id.c_str());
    }
    if (!static_hints.empty()) {
        StaticHintsMode m = parseStaticHintsMode(static_hints);
        if (figure_id == "ablation_hints") {
            // The figure already sweeps the mode axis; restrict it to
            // {off, m}. The render function expects all four modes, so
            // a restricted sweep prints raw CSV rows like --apps does.
            std::vector<JobSpec> kept;
            for (JobSpec &job : fig.sweep.jobs) {
                if (job.overrides.staticHints == StaticHintsMode::Off ||
                    job.overrides.staticHints == m)
                    kept.push_back(std::move(job));
            }
            if (kept.size() != fig.sweep.jobs.size())
                filtered = true;
            fig.sweep.jobs = std::move(kept);
        } else {
            for (JobSpec &job : fig.sweep.jobs)
                job.overrides.staticHints = m;
        }
    }

    if (options.shards > 0 && options.shardId >= 0)
        fatal("--shards (forked fleet) and --shard-id (manual fleet "
              "member) are mutually exclusive");

    SweepOutcome outcome;
    if (options.shardId >= 0)
        outcome = runShardWorker(fig.sweep, options);
    else if (options.shards > 0)
        outcome = runShardedSweep(fig.sweep, options);
    else
        outcome = runSweep(fig.sweep, options);

    if (outcome.missingJobs > 0) {
        // Another fleet member crashed (or still holds a lease):
        // partial artifacts would silently misrepresent the figure.
        std::fprintf(stderr,
                     "%s: %s\n%s: artifacts skipped (%zu job(s) "
                     "missing); re-run to complete from the warm "
                     "cache\n",
                     fig.sweep.name.c_str(), outcome.summary().c_str(),
                     fig.sweep.name.c_str(), outcome.missingJobs);
        return 3;
    }

    if (!csv_path.empty())
        writeArtifact(csv_path, sweepToCsv(fig.sweep, outcome));
    if (!json_path.empty())
        writeArtifact(json_path, sweepToJson(fig.sweep, outcome));

    if (filtered) {
        // The figure tables expect every app; print the raw CSV rows
        // instead when the sweep was restricted.
        std::printf("%s", sweepToCsv(fig.sweep, outcome).c_str());
    } else {
        std::printf("%s", fig.title.c_str());
        std::printf("%s", fig.render(fig.sweep, outcome.results).c_str());
        std::printf("%s", fig.paperNote.c_str());
    }
    std::fprintf(stderr, "%s: %s\n", fig.sweep.name.c_str(),
                 outcome.summary().c_str());

    // Host-throughput summary over the jobs actually simulated this
    // invocation (cache hits report the recording run's speed, so they
    // are excluded from the aggregate).
    double host_seconds = 0.0;
    double sim_cycles = 0.0, thread_insts = 0.0;
    int measured = 0;
    for (std::size_t i = 0; i < outcome.results.size(); ++i) {
        const RunResult &r = outcome.results[i];
        if (outcome.fromCache[i] || r.simSpeed.hostSeconds <= 0.0)
            continue;
        host_seconds += r.simSpeed.hostSeconds;
        sim_cycles += static_cast<double>(r.cycles);
        thread_insts += static_cast<double>(r.committedThreadInsts);
        ++measured;
    }
    if (measured > 0 && host_seconds > 0.0) {
        std::fprintf(stderr,
                     "%s: sim speed %.2f Mcycles/s, %.2f Minsts/s "
                     "(%d jobs, %.2fs host)\n",
                     fig.sweep.name.c_str(), sim_cycles / host_seconds / 1e6,
                     thread_insts / host_seconds / 1e6, measured,
                     host_seconds);
    }
    return outcome.goldenFailures ? 1 : 0;
}

void
listWorkloads()
{
    std::printf("%-14s %-9s %s\n", "name", "suite", "type");
    for (const Workload &w : allWorkloads()) {
        std::printf("%-14s %-9s %s\n", w.name.c_str(), w.suite.c_str(),
                    w.multiExecution ? "multi-execution"
                                     : "multi-threaded");
    }
    const Workload &mp = messagePassingWorkload();
    std::printf("%-14s %-9s %s\n", mp.name.c_str(), mp.suite.c_str(),
                "message-passing");
    for (const Workload &w : compiledWorkloads()) {
        std::printf("%-14s %-9s %s\n", w.name.c_str(), w.suite.c_str(),
                    w.multiExecution ? "multi-execution"
                                     : "multi-threaded");
    }
}

/** `mmt_cli compile ...`: mmtc frontend driver + functional run. */
int
compileMain(int argc, char **argv)
{
    int threads = 2;
    bool emit_iasm = false;
    cc::CompileOptions copt;
    std::string path;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--threads") {
            threads = std::atoi(next().c_str());
        } else if (arg == "--emit-iasm") {
            emit_iasm = true;
        } else if (arg == "--no-spmd") {
            copt.spmd = false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown compile option '%s'\n",
                         arg.c_str());
            usage();
        } else {
            path = arg;
        }
    }
    if (path.empty())
        usage();
    if (threads < 1 || threads > maxThreads)
        fatal("threads must be 1..%d", maxThreads);

    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();

    cc::CompileResult res = cc::compile(ss.str(), path, copt);
    for (const cc::SlicedLoop &s : res.spmd.sliced)
        std::fprintf(stderr, "%s: sliced loop at line %d (%d reduction%s)\n",
                     path.c_str(), s.line, s.reductions,
                     s.reductions == 1 ? "" : "s");
    for (const std::string &r : res.spmd.rejected)
        std::fprintf(stderr, "%s: %s\n", path.c_str(), r.c_str());
    for (const std::string &w : res.spmd.warnings)
        std::fprintf(stderr, "%s: warning: %s\n", path.c_str(), w.c_str());

    if (emit_iasm) {
        std::printf("%s", res.iasm.c_str());
        return 0;
    }

    // Assemble and execute functionally at the requested thread count,
    // shared address space, like the registered MT variants.
    Program prog = assemble(res.iasm, defaultCodeBase, defaultDataBase,
                            path);
    MemoryImage img;
    img.loadData(prog);
    if (prog.symbols.count(cc::kNumThreadsSym)) {
        img.write64(prog.symbol(cc::kNumThreadsSym),
                    static_cast<std::uint64_t>(threads));
    }
    std::vector<MemoryImage *> ptrs(static_cast<std::size_t>(threads),
                                    &img);
    FunctionalCpu cpu(&prog, ptrs, /*multi_execution=*/false);
    cpu.run();
    for (int t = 0; t < threads; ++t) {
        std::printf("thread %d out:", t);
        for (std::int64_t v : cpu.thread(t).output)
            std::printf(" %lld", static_cast<long long>(v));
        std::printf("  (%llu insts)\n",
                    static_cast<unsigned long long>(
                        cpu.thread(t).executed));
    }
    return 0;
}

/** Run a raw assembly file as a single MT workload. */
Workload
workloadFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    Workload w;
    w.name = path;
    w.suite = "file";
    w.multiExecution = false;
    w.source = ss.str();
    w.initData = [](MemoryImage &img, const Program &prog, int,
                    int num_contexts, bool) {
        if (prog.symbols.count("nthreads")) {
            img.write64(prog.symbol("nthreads"),
                        static_cast<std::uint64_t>(num_contexts));
        }
    };
    return w;
}

/** `mmt_cli analyze ...`: static analysis report / lint gate. */
int
analyzeMain(int argc, char **argv)
{
    bool json = false;
    bool all = false;
    bool compiled = false;
    bool dynamic = false;
    bool races = false;
    ConfigKind kind = ConfigKind::MMT_FXR;
    int threads = 2;
    std::string asm_file;
    std::string workload_name;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--compiled") {
            compiled = true;
        } else if (arg == "--dynamic") {
            dynamic = true;
        } else if (arg == "--races") {
            races = true;
        } else if (arg == "--config") {
            kind = parseConfigKind(next());
        } else if (arg == "--threads") {
            threads = std::atoi(next().c_str());
        } else if (arg == "--asm") {
            asm_file = next();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown analyze option '%s'\n",
                         arg.c_str());
            usage();
        } else {
            workload_name = arg;
        }
    }
    if (threads < 1 || threads > maxThreads)
        fatal("threads must be 1..%d", maxThreads);
    if (!all && !compiled && asm_file.empty() && workload_name.empty())
        usage();

    std::vector<Workload> targets;
    if (all) {
        targets = allWorkloads();
        targets.push_back(messagePassingWorkload());
    }
    if (compiled) {
        for (const Workload &w : compiledWorkloads())
            targets.push_back(w);
    }
    if (all || compiled) {
        // fall through with the collected targets
    } else if (!asm_file.empty()) {
        targets.push_back(workloadFromFile(asm_file));
    } else if (workload_name == "mp-ring") {
        targets.push_back(messagePassingWorkload());
    } else {
        targets.push_back(findWorkload(workload_name));
    }

    int errors = 0;
    for (const Workload &w : targets) {
        analysis::AnalysisResult res = analysis::analyzeWorkload(w);
        std::printf("%s", analysis::renderReport(res, w.name,
                                                 json).c_str());
        errors += res.errors();
        if (races && res.race.checked && res.program) {
            // The raw (pre-suppression) pair set — exactly what the
            // dynamic happens-before oracle gates against.
            for (const analysis::RacePair &p : res.race.pairs) {
                std::printf("  race pair: lines %d/%d %s%s\n",
                            res.program->line(p.instA),
                            res.program->line(p.instB), p.rule.c_str(),
                            p.suppressed ? " (allow-listed)" : "");
            }
        }
        if (dynamic) {
            analysis::MergeBoundReport rep =
                analysis::runMergeBoundCheck(w, kind, threads);
            if (json) {
                std::printf("{\"schema_version\": %d, "
                            "\"workload\": \"%s\", "
                            "\"dynamic_merged_frac\": %.6f, "
                            "\"static_mergeable_frac\": %.6f, "
                            "\"violations\": %zu}\n",
                            analysis::kAnalyzeSchemaVersion,
                            w.name.c_str(), rep.dynamicMergedFrac(),
                            rep.staticMergeableFrac(),
                            rep.violations.size());
            } else {
                std::printf("  dynamic: %.1f%% merged vs %.1f%% static "
                            "upper bound (%s, %dT)%s\n",
                            100.0 * rep.dynamicMergedFrac(),
                            100.0 * rep.staticMergeableFrac(),
                            configName(kind), threads,
                            rep.ok() ? "" : "  BOUND VIOLATED");
            }
            for (const analysis::BoundViolation &v : rep.violations) {
                std::fprintf(stderr,
                             "%s: pc 0x%llx (line %d) merged %llu "
                             "thread-insts but is statically divergent\n",
                             w.name.c_str(),
                             static_cast<unsigned long long>(v.pc),
                             v.line,
                             static_cast<unsigned long long>(v.merged));
            }
            errors += static_cast<int>(rep.violations.size());
        }
    }
    return errors > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "sweep") == 0)
        return sweepMain(argc - 2, argv + 2);
    if (argc >= 2 && std::strcmp(argv[1], "analyze") == 0)
        return analyzeMain(argc - 2, argv + 2);
    if (argc >= 2 && std::strcmp(argv[1], "compile") == 0)
        return compileMain(argc - 2, argv + 2);

    ConfigKind kind = ConfigKind::MMT_FXR;
    int threads = 2;
    SimOverrides ov;
    bool golden = true;
    bool dump_stats = false;
    bool stats_json = false;
    bool strict = false;
    bool race_check = false;
    std::string asm_file;
    std::string workload_name;

    // Optional "run" subcommand alias, symmetric with "sweep".
    int first_arg = 1;
    if (argc >= 2 && std::strcmp(argv[1], "run") == 0)
        first_arg = 2;

    for (int i = first_arg; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--config") {
            kind = parseConfigKind(next());
        } else if (arg == "--threads") {
            threads = std::atoi(next().c_str());
        } else if (arg == "--fhb") {
            ov.fhbEntries = std::atoi(next().c_str());
        } else if (arg == "--ls-ports") {
            ov.lsPorts = std::atoi(next().c_str());
        } else if (arg == "--fetch-width") {
            ov.fetchWidth = std::atoi(next().c_str());
        } else if (arg == "--no-trace-cache") {
            ov.disableTraceCache = true;
        } else if (arg == "--cores") {
            ov.numCores = std::atoi(next().c_str());
        } else if (arg == "--placement") {
            ov.placement = parsePlacement(next());
        } else if (arg == "--shared-icache") {
            ov.sharedICache = true;
        } else if (arg == "--static-hints") {
            ov.staticHints = parseStaticHintsMode(next());
        } else if (arg == "--no-golden") {
            golden = false;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-json") {
            stats_json = true;
        } else if (arg == "--asm") {
            asm_file = next();
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--race-check") {
            race_check = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
        } else {
            workload_name = arg;
        }
    }
    if (threads < 1 || threads > maxThreads)
        fatal("threads must be 1..%d", maxThreads);
    if (ov.numCores < 1 || ov.numCores > maxCores)
        fatal("cores must be 1..%d", maxCores);
    if (asm_file.empty() && workload_name.empty())
        usage();

    Workload w;
    if (!asm_file.empty()) {
        w = workloadFromFile(asm_file);
    } else if (workload_name == "mp-ring") {
        w = messagePassingWorkload();
    } else {
        w = findWorkload(workload_name);
    }

    if (strict) {
        // Opt-in gate: refuse to burn simulation cycles on a program
        // the static analyzer can prove broken.
        analysis::AnalysisResult res = analysis::analyzeWorkload(w);
        if (res.errors() > 0) {
            std::fprintf(stderr, "%s",
                         analysis::renderReport(res, w.name,
                                                false).c_str());
            fatal("--strict: %d error-severity diagnostic(s); refusing "
                  "to simulate", res.errors());
        }
    }

    if (stats_json) {
        // Machine-readable mode: the counter dump is the whole output.
        std::printf("%s",
                    runStatsDump(w, kind, threads, ov, true).c_str());
        return 0;
    }

    RaceTrace race_trace;
    RunResult r = runWorkload(w, kind, threads, ov, golden, nullptr,
                              race_check && !w.multiExecution
                                  ? &race_trace
                                  : nullptr);

    std::printf("workload        %s (%s)\n", w.name.c_str(),
                w.suite.c_str());
    std::printf("config          %s, %d threads\n", configName(kind),
                threads);
    if (r.numCores > 1) {
        std::printf("topology        %d cores, %s placement%s\n",
                    r.numCores, placementName(r.placement),
                    r.sharedICache ? ", shared I-cache" : "");
    }
    std::printf("cycles          %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("thread insts    %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(r.committedThreadInsts),
                r.ipc());
    std::printf("fetch records   %llu (%.2f thread-insts each)\n",
                static_cast<unsigned long long>(r.fetchRecords),
                r.fetchRecords
                    ? static_cast<double>(r.fetchedThreadInsts) /
                          static_cast<double>(r.fetchRecords)
                    : 0.0);
    std::printf("fetch modes     MERGE %.1f%%  DETECT %.1f%%  "
                "CATCHUP %.1f%%\n",
                100.0 * r.fetchModeFrac[0], 100.0 * r.fetchModeFrac[1],
                100.0 * r.fetchModeFrac[2]);
    std::printf("identity        exec %.1f%% (+regmerge %.1f%%)  "
                "fetch %.1f%%  none %.1f%%\n",
                100.0 * r.identFrac[2], 100.0 * r.identFrac[3],
                100.0 * r.identFrac[1], 100.0 * r.identFrac[0]);
    std::printf("divergences     %llu (remerges %llu)\n",
                static_cast<unsigned long long>(r.divergences),
                static_cast<unsigned long long>(r.remerges));
    std::printf("sync latency    mean %.1f cycles (%llu samples, "
                "%llu catchup aborts)\n",
                r.meanSyncLatency(),
                static_cast<unsigned long long>(r.syncLatencySamples),
                static_cast<unsigned long long>(r.catchupAborted));
    std::printf("static analysis %.1f%% mergeable upper bound "
                "(hints: %s)\n",
                100.0 * r.staticMergeableFrac,
                staticHintsModeName(ov.staticHints));
    std::printf("lvip rollbacks  %llu\n",
                static_cast<unsigned long long>(r.lvipRollbacks));
    if (r.splitSteerCharges > 0) {
        std::printf("split-steer     %llu extra fetch slots charged\n",
                    static_cast<unsigned long long>(r.splitSteerCharges));
    }
    if (r.numCores > 1) {
        for (const CoreBreakdown &cb : r.perCore) {
            std::string ctxs;
            for (std::size_t i = 0; i < cb.contexts.size(); ++i)
                ctxs += (i ? "," : "") + std::to_string(cb.contexts[i]);
            std::printf("  core[%s]      %llu cycles, %llu insts, "
                        "merged %.1f%%\n",
                        ctxs.c_str(),
                        static_cast<unsigned long long>(cb.cycles),
                        static_cast<unsigned long long>(
                            cb.committedThreadInsts),
                        100.0 * cb.mergedFrac);
        }
        std::printf("shared L2       %llu accesses, %llu misses\n",
                    static_cast<unsigned long long>(r.sharedL2Accesses),
                    static_cast<unsigned long long>(r.sharedL2Misses));
        if (r.sharedICache) {
            std::printf("shared I-cache  %llu accesses, %llu hits\n",
                        static_cast<unsigned long long>(
                            r.sharedICacheAccesses),
                        static_cast<unsigned long long>(
                            r.sharedICacheHits));
        }
    }
    std::printf("energy          %.2f uJ (%s)\n", r.energy.total() / 1e6,
                r.energy.toString().c_str());
    if (golden)
        std::printf("golden model    %s\n", r.goldenOk ? "ok" : "FAIL");

    bool race_fail = false;
    if (race_check && w.multiExecution) {
        std::printf("race check      n/a (multi-execution: private "
                    "address spaces)\n");
    } else if (race_check) {
        analysis::AnalysisResult res = analysis::analyzeWorkload(w);
        std::vector<analysis::DynamicRace> races =
            analysis::replayRaceTrace(race_trace);
        analysis::RaceGateReport rep =
            analysis::checkRaceGate(res, *res.program, races);
        std::printf("race check      %zu dynamic race(s), %zu not "
                    "statically reported%s\n",
                    rep.races.size(), rep.unreported.size(),
                    rep.races.empty() ? "" : "  RACY");
        for (const analysis::DynamicRace &d : rep.races) {
            int la = res.program->line(static_cast<int>(
                (d.pcA - res.program->codeBase) / instBytes));
            int lb = res.program->line(static_cast<int>(
                (d.pcB - res.program->codeBase) / instBytes));
            std::printf("  %s: lines %d/%d addr 0x%llx (%llu "
                        "occurrence(s))\n",
                        d.storeStore ? "store-store" : "store-load", la,
                        lb, static_cast<unsigned long long>(d.addr),
                        static_cast<unsigned long long>(d.count));
        }
        for (const analysis::DynamicRace &d : rep.unreported) {
            std::fprintf(stderr,
                         "%s: dynamic race at pcs 0x%llx/0x%llx has no "
                         "static may-race pair (analysis unsound)\n",
                         w.name.c_str(),
                         static_cast<unsigned long long>(d.pcA),
                         static_cast<unsigned long long>(d.pcB));
        }
        race_fail = !rep.races.empty() || !rep.ok();
    }

    if (dump_stats) {
        // Deterministic re-run for the full counter dump (shared with
        // the golden-equivalence test via runStatsDump).
        std::printf("\n--- statistics ---\n%s",
                    runStatsDump(w, kind, threads, ov, false).c_str());
    }
    return (golden && !r.goldenOk) || race_fail ? 1 : 0;
}
