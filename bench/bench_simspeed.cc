/**
 * @file
 * bench_simspeed — host-throughput benchmark and regression gate.
 *
 * Runs the Figure 5(a) job set (every workload x Table 5 config at two
 * threads) serially, without golden checking or result caching, and
 * measures simulator speed: simulated cycles and committed
 * thread-instructions per host second, aggregated over the whole set.
 * The best of several repetitions is reported, so one descheduled rep
 * does not fail the gate.
 *
 * Artifacts and gating:
 *  - writes BENCH_simspeed.json (current numbers, recorded baseline,
 *    and their ratio) to the working directory;
 *  - compares against bench/simspeed_baseline.json, recorded on the
 *    pre-arena/event-wheel core (see docs/INTERNALS.md);
 *  - exits non-zero if MMT_SIMSPEED_MIN_RATIO is set and the measured
 *    cycles/sec ratio against the baseline falls below it. Unset means
 *    report-only: host speed is machine-dependent, so the hard gate is
 *    opt-in for environments where the baseline was recorded.
 *
 * Environment knobs:
 *   MMT_SIMSPEED_REPS            repetitions (default 3)
 *   MMT_SIMSPEED_APPS            comma list restricting the workloads
 *   MMT_SIMSPEED_BASELINE        baseline JSON path (default: in-tree)
 *   MMT_SIMSPEED_WRITE_BASELINE  "1": record current as the baseline
 *   MMT_SIMSPEED_MIN_RATIO       gate threshold, e.g. "1.3"
 *   MMT_SIMSPEED_OUT             output path (default BENCH_simspeed.json)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "runner/figures.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

struct Throughput
{
    double hostSeconds = 0.0;
    double simCyclesPerSec = 0.0;
    double threadInstsPerSec = 0.0;
};

std::string
defaultBaselinePath()
{
#ifdef MMT_SOURCE_DIR
    return std::string(MMT_SOURCE_DIR) + "/bench/simspeed_baseline.json";
#else
    return "bench/simspeed_baseline.json";
#endif
}

const char *
envOr(const char *name, const char *dflt)
{
    const char *v = std::getenv(name);
    return v && *v ? v : dflt;
}

/** Pull `"key": <number>` out of our own JSON (no general parser). */
bool
extractNumber(const std::string &text, const std::string &key, double &out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    return true;
}

std::string
throughputJson(const Throughput &t, const char *indent)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\n%s  \"hostSeconds\": %.6f,\n"
                  "%s  \"simCyclesPerSec\": %.1f,\n"
                  "%s  \"threadInstsPerSec\": %.1f\n%s}",
                  indent, t.hostSeconds, indent, t.simCyclesPerSec, indent,
                  t.threadInstsPerSec, indent);
    return buf;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> items;
    std::string item;
    std::istringstream is(list);
    while (std::getline(is, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

} // namespace

int
main()
{
    setInformEnabled(false);

    SweepSpec spec = makeFigure("5a").sweep;
    const char *apps = std::getenv("MMT_SIMSPEED_APPS");
    if (apps && *apps) {
        spec.filterWorkloads(splitCommas(apps));
        if (spec.jobs.empty())
            fatal("MMT_SIMSPEED_APPS matches no fig5a job");
    }

    int reps = std::atoi(envOr("MMT_SIMSPEED_REPS", "3"));
    if (reps < 1)
        reps = 1;

    Throughput best;
    for (int rep = 0; rep < reps; ++rep) {
        double host = 0.0, cycles = 0.0, insts = 0.0;
        for (const JobSpec &job : spec.jobs) {
            RunResult r =
                runWorkload(resolveWorkload(job.workload), job.kind,
                            job.numThreads, job.overrides,
                            /*check_golden=*/false);
            host += r.simSpeed.hostSeconds;
            cycles += static_cast<double>(r.cycles);
            insts += static_cast<double>(r.committedThreadInsts);
        }
        if (host <= 0.0)
            fatal("no host time measured");
        Throughput t;
        t.hostSeconds = host;
        t.simCyclesPerSec = cycles / host;
        t.threadInstsPerSec = insts / host;
        std::fprintf(stderr,
                     "rep %d/%d: %zu jobs in %.2fs host "
                     "(%.2f Mcycles/s, %.2f Minsts/s)\n",
                     rep + 1, reps, spec.jobs.size(), t.hostSeconds,
                     t.simCyclesPerSec / 1e6, t.threadInstsPerSec / 1e6);
        if (t.simCyclesPerSec > best.simCyclesPerSec)
            best = t;
    }

    std::string baseline_path =
        envOr("MMT_SIMSPEED_BASELINE", defaultBaselinePath().c_str());

    if (std::strcmp(envOr("MMT_SIMSPEED_WRITE_BASELINE", "0"), "1") == 0) {
        std::ofstream out(baseline_path, std::ios::trunc);
        out << "{\n  \"baseline\": " << throughputJson(best, "  ")
            << "\n}\n";
        if (!out)
            fatal("cannot write baseline '%s'", baseline_path.c_str());
        std::printf("baseline recorded: %s (%.2f Mcycles/s)\n",
                    baseline_path.c_str(), best.simCyclesPerSec / 1e6);
        return 0;
    }

    Throughput base;
    bool have_baseline = false;
    {
        std::ifstream in(baseline_path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            std::string text = ss.str();
            have_baseline =
                extractNumber(text, "simCyclesPerSec",
                              base.simCyclesPerSec) &&
                extractNumber(text, "threadInstsPerSec",
                              base.threadInstsPerSec);
            extractNumber(text, "hostSeconds", base.hostSeconds);
        }
    }

    double ratio = have_baseline && base.simCyclesPerSec > 0.0
                       ? best.simCyclesPerSec / base.simCyclesPerSec
                       : 0.0;

    std::ostringstream js;
    js << "{\n  \"bench\": \"simspeed\",\n";
    js << "  \"jobs\": " << spec.jobs.size() << ",\n";
    js << "  \"reps\": " << reps << ",\n";
    js << "  \"current\": " << throughputJson(best, "  ") << ",\n";
    if (have_baseline) {
        js << "  \"baseline\": " << throughputJson(base, "  ") << ",\n";
        char rb[32];
        std::snprintf(rb, sizeof(rb), "%.3f", ratio);
        js << "  \"ratio\": " << rb << "\n";
    } else {
        js << "  \"baseline\": null,\n  \"ratio\": null\n";
    }
    js << "}\n";

    std::string out_path = envOr("MMT_SIMSPEED_OUT", "BENCH_simspeed.json");
    std::ofstream out(out_path, std::ios::trunc);
    out << js.str();
    if (!out)
        fatal("cannot write '%s'", out_path.c_str());

    std::printf("%s", js.str().c_str());
    if (have_baseline) {
        std::printf("sim speed: %.2f Mcycles/s (baseline %.2f, "
                    "ratio %.3f)\n",
                    best.simCyclesPerSec / 1e6,
                    base.simCyclesPerSec / 1e6, ratio);
    } else {
        std::printf("sim speed: %.2f Mcycles/s (no baseline at %s)\n",
                    best.simCyclesPerSec / 1e6, baseline_path.c_str());
    }

    const char *min_ratio = std::getenv("MMT_SIMSPEED_MIN_RATIO");
    if (min_ratio && *min_ratio && have_baseline) {
        double need = std::strtod(min_ratio, nullptr);
        if (ratio < need) {
            std::fprintf(stderr,
                         "FAIL: throughput ratio %.3f below required "
                         "%.3f\n",
                         ratio, need);
            return 1;
        }
    }
    return 0;
}
