/**
 * @file
 * Figure 5(d) — "Instruction Breakdown in Fetch Modes": the fraction of
 * instructions fetched in MERGE, DETECT and CATCHUP mode under MMT-FXR,
 * plus the §6.3 remerge-distance claim (90% of remerge points found
 * within 512 fetched branches).
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 5(d): fetch mode breakdown (MMT-FXR, 2 threads)\n\n");

    std::vector<std::vector<std::string>> rows;
    for (const std::string &app : workloadNames()) {
        RunResult r = runWorkload(findWorkload(app), ConfigKind::MMT_FXR,
                                  2, SimOverrides(), false);
        rows.push_back({app, fmt(100.0 * r.fetchModeFrac[0], 1),
                        fmt(100.0 * r.fetchModeFrac[1], 1),
                        fmt(100.0 * r.fetchModeFrac[2], 1),
                        std::to_string(r.divergences),
                        std::to_string(r.remerges),
                        fmt(100.0 * r.remergeWithin512, 1)});
        std::fflush(stdout);
    }
    std::printf("%s",
                formatTable({"app", "MERGE%", "DETECT%", "CATCHUP%",
                             "divergences", "remerges",
                             "remerge<=512br%"},
                            rows)
                    .c_str());
    std::printf("\nPaper reference (§6.3): CATCHUP is rare; twolf, vpr "
                "and vortex spend the\nleast time in MERGE mode; 90%% of "
                "remerge points are found within 512\nfetched "
                "branches.\n");
    return 0;
}
