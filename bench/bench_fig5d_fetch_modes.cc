/**
 * @file
 * Figure 5(d) — "Instruction Breakdown in Fetch Modes": the fraction of
 * instructions fetched in MERGE, DETECT and CATCHUP mode under MMT-FXR,
 * plus the §6.3 remerge-distance claim (90% of remerge points found
 * within 512 fetched branches).
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("5d");
}
