/**
 * @file
 * Figure 5(c) — speedup over a 4-thread traditional SMT for all MMT
 * configurations. The paper reports a geometric-mean MMT-FXR speedup of
 * 1.25 with four threads, with per-element contributions of roughly
 * 10% (fetch), 9% (execute) and 6% (register merging).
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("5c");
}
