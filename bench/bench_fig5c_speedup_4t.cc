/**
 * @file
 * Figure 5(c) — speedup over a 4-thread traditional SMT for all MMT
 * configurations. The paper reports a geometric-mean MMT-FXR speedup of
 * 1.25 with four threads, with per-element contributions of roughly
 * 10% (fetch), 9% (execute) and 6% (register merging).
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 5(c): speedup over Base SMT, 4 threads\n\n");

    std::vector<std::vector<std::string>> rows;
    std::vector<double> gf, gfx, gfxr, glim;
    for (const std::string &app : workloadNames()) {
        SpeedupRow r = speedupRow(app, 4);
        rows.push_back({r.app, std::to_string(r.baseCycles),
                        fmt(r.mmtF), fmt(r.mmtFX), fmt(r.mmtFXR),
                        fmt(r.limit)});
        gf.push_back(r.mmtF);
        gfx.push_back(r.mmtFX);
        gfxr.push_back(r.mmtFXR);
        glim.push_back(r.limit);
        std::fflush(stdout);
    }
    rows.push_back({"geomean", "", fmt(geomean(gf)), fmt(geomean(gfx)),
                    fmt(geomean(gfxr)), fmt(geomean(glim))});
    std::printf("%s", formatTable({"app", "base-cycles", "MMT-F",
                                   "MMT-FX", "MMT-FXR", "Limit"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: MMT-FXR geomean ~1.25 at 4 threads; "
                "gains grow with\nthread count (more identical work per "
                "fetch).\n");
    return 0;
}
