/**
 * @file
 * Figure 7(c) — fetch-mode residency as the FHB size grows (paper §6.4):
 * a larger history captures merge points a small FHB missed (more MERGE
 * time), but can also lengthen CATCHUP phases.
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("7c");
}
