/**
 * @file
 * Figure 7(c) — fetch-mode residency as the FHB size grows (paper §6.4):
 * a larger history captures merge points a small FHB missed (more MERGE
 * time), but can also lengthen CATCHUP phases.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    const int sizes[] = {8, 32, 128};
    std::printf("Figure 7(c): fetch modes vs FHB size "
                "(MMT-FXR, 2 threads; MERGE/DETECT/CATCHUP %%)\n\n");

    std::vector<std::vector<std::string>> rows;
    for (const std::string &app : workloadNames()) {
        const Workload &w = findWorkload(app);
        std::vector<std::string> row{app};
        for (int size : sizes) {
            SimOverrides ov;
            ov.fhbEntries = size;
            RunResult r = runWorkload(w, ConfigKind::MMT_FXR, 2, ov,
                                      false);
            row.push_back(fmt(100.0 * r.fetchModeFrac[0], 0) + "/" +
                          fmt(100.0 * r.fetchModeFrac[1], 0) + "/" +
                          fmt(100.0 * r.fetchModeFrac[2], 0));
        }
        rows.push_back(row);
        std::fflush(stdout);
    }
    std::printf("%s", formatTable({"app", "fhb=8", "fhb=32", "fhb=128"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: equake/ocean/lu/fft/water-ns gain "
                "MERGE time with a larger\nFHB; twolf/vortex/vpr/water-sp "
                "accumulate CATCHUP time instead.\n");
    return 0;
}
