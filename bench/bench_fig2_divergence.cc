/**
 * @file
 * Figure 2 — "Distribution of the difference in length of divergent
 * execution paths", measured in taken branches (paper §3.3). The paper:
 * for all programs except equake and vortex, >85% of diverged paths
 * differ by at most 16 taken branches.
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "iasm/assembler.hh"
#include "profile/align.hh"
#include "sim/experiment.hh"
#include "workloads/workload.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 2: divergent path length difference "
                "(taken branches, 2 contexts)\n");
    std::printf("%s\n", std::string(72, '=').c_str());

    const std::uint64_t limits[] = {16, 32, 64, 128, 256};
    std::vector<std::vector<std::string>> rows;

    for (const Workload &w : allWorkloads()) {
        Program prog = assemble(w.source);
        std::vector<std::unique_ptr<MemoryImage>> images;
        std::vector<MemoryImage *> ptrs;
        int spaces = w.multiExecution ? 2 : 1;
        for (int i = 0; i < spaces; ++i) {
            images.push_back(std::make_unique<MemoryImage>());
            images.back()->loadData(prog);
            w.initData(*images.back(), prog, i, 2, false);
        }
        for (int t = 0; t < 2; ++t)
            ptrs.push_back(images[spaces == 1 ? 0 : t].get());

        FunctionalCpu cpu(&prog, ptrs, w.multiExecution);
        std::vector<TraceRecord> traces[2];
        cpu.setTrace([&](ThreadId t, const TraceRecord &r) {
            traces[t].push_back(r);
        });
        cpu.run();

        DivergenceStats div;
        alignTraces(traces[0], traces[1], &div);

        std::vector<std::string> row{w.name,
                                     std::to_string(div.lengthDiffs.size())};
        for (std::uint64_t lim : limits)
            row.push_back(fmt(100.0 * div.fractionWithin(lim), 1));
        rows.push_back(row);
    }

    std::printf("%s",
                formatTable({"app", "divergences", "<=16%", "<=32%",
                             "<=64%", "<=128%", "<=256%"},
                            rows)
                    .c_str());
    std::printf("\nPaper reference: all programs except equake and vortex "
                "have >85%% of\ndivergences within 16 taken branches.\n");
    return 0;
}
