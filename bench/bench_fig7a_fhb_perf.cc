/**
 * @file
 * Figure 7(a) — MMT-FXR speedup over Base as the Fetch History Buffer
 * grows from 8 to 128 entries (paper §6.4). The paper: performance
 * increases through 32 entries for all applications; twolf and water-sp
 * dip slightly at large sizes (longer CATCHUP phases); 32 chosen as the
 * design point.
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("7a");
}
