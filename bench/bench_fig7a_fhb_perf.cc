/**
 * @file
 * Figure 7(a) — MMT-FXR speedup over Base as the Fetch History Buffer
 * grows from 8 to 128 entries (paper §6.4). The paper: performance
 * increases through 32 entries for all applications; twolf and water-sp
 * dip slightly at large sizes (longer CATCHUP phases); 32 chosen as the
 * design point.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    const int sizes[] = {8, 16, 32, 64, 128};
    std::printf("Figure 7(a): MMT-FXR speedup vs FHB size (2 threads)\n\n");

    std::vector<std::vector<std::string>> rows;
    std::vector<std::vector<double>> per_size(5);
    for (const std::string &app : workloadNames()) {
        const Workload &w = findWorkload(app);
        RunResult base = runWorkload(w, ConfigKind::Base, 2,
                                     SimOverrides(), false);
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < 5; ++i) {
            SimOverrides ov;
            ov.fhbEntries = sizes[i];
            RunResult r = runWorkload(w, ConfigKind::MMT_FXR, 2, ov,
                                      false);
            double s = static_cast<double>(base.cycles) /
                       static_cast<double>(r.cycles);
            row.push_back(fmt(s));
            per_size[i].push_back(s);
        }
        rows.push_back(row);
        std::fflush(stdout);
    }
    std::vector<std::string> gm{"geomean"};
    for (std::size_t i = 0; i < 5; ++i)
        gm.push_back(fmt(geomean(per_size[i])));
    rows.push_back(gm);
    std::printf("%s", formatTable({"app", "fhb=8", "fhb=16", "fhb=32",
                                   "fhb=64", "fhb=128"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: gains rise through 32 entries; "
                "averages keep inching up\ntoward 128, but 32 is the "
                "single-cycle-CAM design point.\n");
    return 0;
}
