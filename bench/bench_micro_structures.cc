/**
 * @file
 * Google-benchmark microbenchmarks of the MMT hardware structures'
 * software models: RST lookups/updates, the Filter/Chooser splitter, the
 * FHB CAM, LVIP probes, and the branch predictor. These quantify the
 * *simulator's* per-event costs (useful when sizing experiments), and
 * double as stress tests of the hot paths.
 */

#include <benchmark/benchmark.h>

#include "branch/branch_predictor.hh"
#include "core/mmt/fhb.hh"
#include "core/mmt/lvip.hh"
#include "core/mmt/rst.hh"
#include "core/mmt/splitter.hh"

using namespace mmt;

namespace
{

Instruction
addInst()
{
    Instruction i;
    i.op = Opcode::ADD;
    i.rd = 1;
    i.rs1 = 2;
    i.rs2 = 3;
    return i;
}

} // namespace

static void
BM_RstSharedGroup(benchmark::State &state)
{
    RegisterSharingTable rst;
    rst.clearThread(2, 3);
    ThreadMask all = ThreadMask::firstN(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(rst.sharedGroup(2, all));
}
BENCHMARK(BM_RstSharedGroup);

static void
BM_RstUpdateDest(benchmark::State &state)
{
    RegisterSharingTable rst;
    ThreadMask itid = ThreadMask::firstN(4);
    for (auto _ : state) {
        rst.updateDest(5, itid,
                       [](ThreadId a, ThreadId b) { return a == b; });
    }
}
BENCHMARK(BM_RstUpdateDest);

static void
BM_SplitterMerged(benchmark::State &state)
{
    RegisterSharingTable rst;
    InstructionSplitter sp(&rst);
    Instruction inst = addInst();
    ThreadMask itid = ThreadMask::firstN(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(sp.split(inst, itid));
}
BENCHMARK(BM_SplitterMerged);

static void
BM_SplitterFullSplit(benchmark::State &state)
{
    RegisterSharingTable rst;
    for (ThreadId t = 0; t < maxThreads; ++t)
        rst.clearThread(2, t);
    InstructionSplitter sp(&rst);
    Instruction inst = addInst();
    ThreadMask itid = ThreadMask::firstN(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(sp.split(inst, itid));
}
BENCHMARK(BM_SplitterFullSplit);

static void
BM_FhbSearch(benchmark::State &state)
{
    FetchHistoryBuffer fhb(static_cast<int>(state.range(0)));
    for (int i = 0; i < state.range(0); ++i)
        fhb.record(0x1000 + static_cast<Addr>(i) * 4);
    Addr probe = 0x1000; // worst case: oldest entry
    for (auto _ : state)
        benchmark::DoNotOptimize(fhb.contains(probe));
}
BENCHMARK(BM_FhbSearch)->Arg(8)->Arg(32)->Arg(128);

static void
BM_LvipProbe(benchmark::State &state)
{
    LoadValuesIdenticalPredictor lvip(4096);
    lvip.recordMispredict(0x2000);
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lvip.predictIdentical(pc));
        pc += 4;
    }
}
BENCHMARK(BM_LvipProbe);

static void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictorParams params;
    BranchPredictor bp(params, 2);
    Instruction br;
    br.op = Opcode::BNE;
    br.rs1 = 1;
    br.rs2 = 2;
    br.imm = 0x2000;
    Addr pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predict(0, pc, br));
        bp.update(0, pc, br, taken, 0x2000);
        bp.noteOutcome(0, taken);
        taken = !taken;
        pc = 0x1000 + (pc + 4) % 0x100;
    }
}
BENCHMARK(BM_BranchPredict);

BENCHMARK_MAIN();
