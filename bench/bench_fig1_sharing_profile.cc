/**
 * @file
 * Figure 1 — "Breakdown of Instruction Sharing Characteristics".
 *
 * Profiles every application with the functional tracer and the common-
 * subtrace aligner (paper §3.2): for two contexts, what fraction of all
 * executed instructions is execute-identical (same instruction, same
 * operand values), fetch-identical (same instruction only), or not
 * identical. The paper reports ~88% fetch-identical (incl. execute-
 * identical) and ~35% execute-identical on average.
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "iasm/assembler.hh"
#include "profile/align.hh"
#include "sim/experiment.hh"
#include "workloads/workload.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 1: instruction sharing profile (2 contexts)\n");
    std::printf("%s\n", std::string(66, '=').c_str());

    std::vector<std::vector<std::string>> rows;
    double sum_exec = 0.0;
    double sum_fetch = 0.0;
    double sum_not = 0.0;
    int napps = 0;

    for (const Workload &w : allWorkloads()) {
        Program prog = assemble(w.source);

        // Build two contexts and capture their traces.
        std::vector<std::unique_ptr<MemoryImage>> images;
        std::vector<MemoryImage *> ptrs;
        int spaces = w.multiExecution ? 2 : 1;
        for (int i = 0; i < spaces; ++i) {
            images.push_back(std::make_unique<MemoryImage>());
            images.back()->loadData(prog);
            w.initData(*images.back(), prog, i, 2, false);
        }
        for (int t = 0; t < 2; ++t)
            ptrs.push_back(images[spaces == 1 ? 0 : t].get());

        FunctionalCpu cpu(&prog, ptrs, w.multiExecution);
        std::vector<TraceRecord> traces[2];
        cpu.setTrace([&](ThreadId t, const TraceRecord &r) {
            traces[t].push_back(r);
        });
        cpu.run();

        SharingProfile p = alignTraces(traces[0], traces[1]);
        rows.push_back({w.name, fmt(100.0 * p.fracExec(), 1),
                        fmt(100.0 * p.fracFetch(), 1),
                        fmt(100.0 * p.fracNot(), 1),
                        fmt(100.0 * (p.fracExec() + p.fracFetch()), 1)});
        sum_exec += p.fracExec();
        sum_fetch += p.fracFetch();
        sum_not += p.fracNot();
        ++napps;
    }

    // The paper's "average" bar is the arithmetic mean of all apps.
    rows.push_back({"average", fmt(100.0 * sum_exec / napps, 1),
                    fmt(100.0 * sum_fetch / napps, 1),
                    fmt(100.0 * sum_not / napps, 1),
                    fmt(100.0 * (sum_exec + sum_fetch) / napps, 1)});

    std::printf("%s", formatTable({"app", "exec-id%", "fetch-id%",
                                   "not-id%", "total-fetchable%"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: ~88%% of instructions fetch-identical "
                "or better on average;\n~35%% execute-identical; "
                "ammp/equake high, vpr/lu/fft/ocean low exec-id.\n");
    return 0;
}
