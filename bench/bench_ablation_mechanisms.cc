/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. CATCHUP fetch priority (paper §4.1: boost the behind thread,
 *     starve the ahead thread) vs. plain ICOUNT ordering.
 *  2. Register-merging read-port budget (paper §4.2.7: compares happen
 *     only "if there are read ports available this cycle") — 0 ports
 *     disables merging entirely, more ports merge more aggressively.
 *
 * Reported on the applications where each mechanism is most active.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);

    // ---- CATCHUP priority ----
    std::printf("Ablation 1: CATCHUP fetch-priority boost "
                "(MMT-FXR, 2 threads)\n\n");
    const char *catchup_apps[] = {"twolf", "vpr", "water-sp", "water-ns",
                                  "fluidanimate", "canneal"};
    std::vector<std::vector<std::string>> rows;
    for (const char *app : catchup_apps) {
        const Workload &w = findWorkload(app);
        RunResult base = runWorkload(w, ConfigKind::Base, 2,
                                     SimOverrides(), false);
        SimOverrides on;
        on.catchupPriority = 1;
        SimOverrides off;
        off.catchupPriority = 0;
        RunResult r_on = runWorkload(w, ConfigKind::MMT_FXR, 2, on,
                                     false);
        RunResult r_off = runWorkload(w, ConfigKind::MMT_FXR, 2, off,
                                      false);
        rows.push_back(
            {app,
             fmt(static_cast<double>(base.cycles) / r_on.cycles),
             fmt(static_cast<double>(base.cycles) / r_off.cycles),
             fmt(100.0 * r_on.fetchModeFrac[0], 1),
             fmt(100.0 * r_off.fetchModeFrac[0], 1)});
        std::fflush(stdout);
    }
    std::printf("%s", formatTable({"app", "speedup(boost)",
                                   "speedup(icount)", "MERGE%(boost)",
                                   "MERGE%(icount)"},
                                  rows)
                          .c_str());

    // ---- Register-merge read ports ----
    std::printf("\nAblation 2: register-merging read-port budget "
                "(MMT-FXR, 2 threads)\n\n");
    const char *merge_apps[] = {"lu", "equake", "water-ns", "mcf"};
    rows.clear();
    for (const char *app : merge_apps) {
        const Workload &w = findWorkload(app);
        RunResult base = runWorkload(w, ConfigKind::Base, 2,
                                     SimOverrides(), false);
        std::vector<std::string> row{app};
        for (int ports : {0, 1, 2, 4}) {
            SimOverrides ov;
            ov.mergeReadPorts = ports;
            RunResult r = runWorkload(w, ConfigKind::MMT_FXR, 2, ov,
                                      false);
            row.push_back(fmt(static_cast<double>(base.cycles) /
                              r.cycles));
        }
        rows.push_back(row);
        std::fflush(stdout);
    }
    std::printf("%s", formatTable({"app", "ports=0", "ports=1", "ports=2",
                                   "ports=4"},
                                  rows)
                          .c_str());
    std::printf("\nports=0 disables commit-time register merging "
                "(equivalent to MMT-FX);\nthe paper's design point is 2 "
                "spare ports.\n");
    return 0;
}
