/**
 * @file
 * Ablation — hardware-only re-merging vs. Thread Fusion-style software
 * hints (paper §2: "Our hardware could be used in conjunction with their
 * software hints system to provide even better performance").
 *
 * A synthetic kernel diverges every iteration into paths of configurable
 * length asymmetry; we compare MMT-FXR without hints, with hints, and
 * the hardware-disabled (hints-only) point, across asymmetries.
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "sim/experiment.hh"

using namespace mmt;

namespace
{

std::string
kernel(int extra_len, bool with_hint)
{
    std::string pad;
    for (int i = 0; i < extra_len; ++i)
        pad += "    addi r5, r5, 1\n";
    return R"(
.data
nthreads: .word 1
.text
main:
    li   r1, 0
    li   r2, 400
loop:
    bnez tid, odd
    addi r4, r4, 1
    j    join
odd:
    addi r4, r4, 2
)" + pad + R"(
    j    join
join:
)" + std::string(with_hint ? "    mergehint\n" : "") + R"(
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r4
    barrier
    halt
)";
}

Cycles
run(const std::string &src, bool hints, Cycles hint_wait)
{
    Program prog = assemble(src);
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;
    p.mergeHintWait = hints ? hint_wait : 0;
    SmtCore core(p, &prog, {&img, &img});
    core.run();
    return core.now();
}

Cycles
runBase(const std::string &src)
{
    Program prog = assemble(src);
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);
    CoreParams p;
    p.numThreads = 2;
    SmtCore core(p, &prog, {&img, &img});
    core.run();
    return core.now();
}

} // namespace

int
main()
{
    setInformEnabled(false);
    std::printf("Ablation: hardware re-merge vs software hints "
                "(divergent hammock, 2 threads)\n\n");

    std::vector<std::vector<std::string>> rows;
    for (int asym : {0, 4, 12, 24}) {
        Cycles base = runBase(kernel(asym, false));
        Cycles hw = run(kernel(asym, false), false, 0);
        Cycles hint = run(kernel(asym, true), true, 24);
        rows.push_back({"asymmetry=" + std::to_string(asym),
                        std::to_string(base),
                        fmt(static_cast<double>(base) / hw),
                        fmt(static_cast<double>(base) / hint)});
    }
    std::printf("%s",
                formatTable({"divergent path delta", "base cycles",
                             "MMT (hw only)", "MMT + hints"},
                            rows)
                    .c_str());
    std::printf("\nHints pay when the divergent paths are asymmetric: the "
                "short side idles\nbriefly at the hint instead of running "
                "ahead and forcing a CATCHUP chase.\n");
    return 0;
}
