/**
 * @file
 * Ablation — static fetch hints from mmt-analyze feeding the MMT fetch
 * frontend (paper §2: "Our hardware could be used in conjunction with
 * their software hints system to provide even better performance").
 *
 * A synthetic kernel diverges every iteration into paths of
 * configurable length asymmetry. For each asymmetry we run MMT-FXR in
 * every static-hints mode (off / fhb-seed / split-steer / both) and
 * report cycles, the measured merged fraction against the analyzer's
 * static prediction, and the mean divergence-to-re-merge latency.
 *
 * A second leg runs registered MT workloads under off vs split-steer:
 * their merged groups fetch statically-Divergent PCs mid-stream
 * (per-thread address math), which is where the predicted-split fetch
 * charge binds against the fetch width — the hammock alone never
 * exercises that, which is exactly how the retired merge-skip hint's
 * dead veto went unnoticed.
 *
 * Acceptance gate (exit 1 on failure): with hints `both`, the sync
 * latency must be no worse than `off` on every asymmetry point and
 * strictly better on at least half of them; split-steer must charge a
 * nonzero number of fetch slots and move cycles (vs off) on at least
 * three workloads of the second leg (one in --smoke).
 *
 * Flags:
 *   --smoke       fewer iterations and asymmetry points (CI)
 *   --out <file>  JSON result path (default BENCH_ablation_hints.json)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace mmt;

namespace
{

std::string
kernelSource(int extra_len, int iters)
{
    std::string pad;
    for (int i = 0; i < extra_len; ++i)
        pad += "    addi r5, r5, 1\n";
    return R"(
.data
nthreads: .word 1
.text
main:
    li   r1, 0
    li   r2, )" +
           std::to_string(iters) + R"(
loop:
    bnez tid, odd
    addi r4, r4, 1
    j    join
odd:
    addi r4, r4, 2
)" + pad + R"(
    j    join
join:
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r4
    barrier
    halt
)";
}

Workload
makeHammock(int asym, int iters)
{
    Workload w;
    w.name = "hints-hammock-" + std::to_string(asym);
    w.suite = "bench";
    w.multiExecution = false;
    w.source = kernelSource(asym, iters);
    w.initData = [](MemoryImage &img, const Program &prog, int,
                    int num_contexts, bool) {
        img.write64(prog.symbol("nthreads"),
                    static_cast<std::uint64_t>(num_contexts));
    };
    return w;
}

constexpr StaticHintsMode kModes[] = {
    StaticHintsMode::Off, StaticHintsMode::FhbSeed,
    StaticHintsMode::SplitSteer, StaticHintsMode::Both};

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_ablation_hints.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_ablation_hints [--smoke] "
                         "[--out FILE]\n");
            return 2;
        }
    }

    setInformEnabled(false);
    const int iters = smoke ? 100 : 400;
    const std::vector<int> asyms =
        smoke ? std::vector<int>{0, 12} : std::vector<int>{0, 4, 12, 24};

    std::printf("Ablation: static fetch hints (MMT-FXR, divergent "
                "hammock, 2 threads, %d iterations)\n\n",
                iters);

    std::vector<std::vector<std::string>> rows;
    std::ostringstream json;
    json << "{\n  \"bench\": \"ablation_hints\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"iterations\": " << iters << ",\n  \"points\": [\n";

    int improved = 0, regressed = 0;
    for (std::size_t pi = 0; pi < asyms.size(); ++pi) {
        int asym = asyms[pi];
        Workload w = makeHammock(asym, iters);
        double off_lat = 0.0, predicted = 0.0;
        std::uint64_t off_cycles = 0;
        std::vector<std::string> row{"asymmetry=" + std::to_string(asym)};
        json << "    {\"asymmetry\": " << asym << ", \"modes\": {";
        for (std::size_t mi = 0; mi < 4; ++mi) {
            StaticHintsMode m = kModes[mi];
            SimOverrides ov;
            ov.staticHints = m;
            RunResult r = runWorkload(w, ConfigKind::MMT_FXR, 2, ov,
                                      /*check_golden=*/false);
            predicted = r.staticMergeableFrac;
            if (m == StaticHintsMode::Off) {
                off_lat = r.meanSyncLatency();
                off_cycles = r.cycles;
                row.push_back(fmt(100.0 * predicted, 1));
            }
            if (m == StaticHintsMode::Both) {
                double lat = r.meanSyncLatency();
                if (lat < off_lat)
                    ++improved;
                else if (lat > off_lat)
                    ++regressed;
            }
            row.push_back(std::to_string(r.cycles));
            row.push_back(fmt(100.0 * r.mergedFrac(), 1) + "/" +
                          fmt(r.meanSyncLatency(), 0));
            json << (mi ? ", " : "") << "\""
                 << staticHintsModeName(m) << "\": {\"cycles\": "
                 << r.cycles
                 << ", \"mergedFrac\": " << jsonNum(r.mergedFrac())
                 << ", \"meanSyncLatency\": "
                 << jsonNum(r.meanSyncLatency())
                 << ", \"syncLatencyCycles\": " << r.syncLatencyCycles
                 << ", \"syncLatencySamples\": " << r.syncLatencySamples
                 << ", \"catchupAborted\": " << r.catchupAborted
                 << ", \"splitSteerCharges\": " << r.splitSteerCharges
                 << "}";
        }
        (void)off_cycles;
        json << "},\n     \"predictedMergeableFrac\": "
             << jsonNum(predicted) << "}"
             << (pi + 1 < asyms.size() ? "," : "") << "\n";
        rows.push_back(row);
    }

    std::printf("%s",
                formatTable({"path delta", "pred-merge%", "off cyc",
                             "off m%/lat", "seed cyc", "seed m%/lat",
                             "steer cyc", "steer m%/lat", "both cyc",
                             "both m%/lat"},
                            rows)
                    .c_str());

    // Second leg: registered MT workloads, off vs split-steer. The
    // compiled kernels and the strided asm apps keep fully merged
    // groups fetching Divergent-class PCs, so the predicted-split
    // charge must both fire (nonzero counter) and move cycles.
    const std::vector<std::string> steer_apps =
        smoke ? std::vector<std::string>{"c-saxpy", "c-psum", "lu"}
              : std::vector<std::string>{"c-saxpy", "c-dot", "c-psum",
                                         "c-chain", "lu", "fft"};
    json << "  ],\n  \"workloads\": [\n";
    int cycles_moved = 0;
    std::uint64_t total_charges = 0;
    std::vector<std::vector<std::string>> wrows;
    for (std::size_t wi = 0; wi < steer_apps.size(); ++wi) {
        const Workload &w = findWorkload(steer_apps[wi]);
        SimOverrides ov;
        ov.staticHints = StaticHintsMode::Off;
        RunResult off = runWorkload(w, ConfigKind::MMT_FXR, 4, ov,
                                    /*check_golden=*/false);
        ov.staticHints = StaticHintsMode::SplitSteer;
        RunResult steer = runWorkload(w, ConfigKind::MMT_FXR, 4, ov,
                                      /*check_golden=*/false);
        if (steer.cycles != off.cycles)
            ++cycles_moved;
        total_charges += steer.splitSteerCharges;
        wrows.push_back({w.name, std::to_string(off.cycles),
                         std::to_string(steer.cycles),
                         std::to_string(steer.splitSteerCharges)});
        json << "    {\"workload\": \"" << w.name
             << "\", \"offCycles\": " << off.cycles
             << ", \"steerCycles\": " << steer.cycles
             << ", \"splitSteerCharges\": " << steer.splitSteerCharges
             << "}" << (wi + 1 < steer_apps.size() ? "," : "") << "\n";
    }
    std::printf("\nsplit-steer on registered workloads (MMT-FXR, 4 "
                "threads)\n%s",
                formatTable({"workload", "off cyc", "steer cyc",
                             "slots charged"},
                            wrows)
                    .c_str());

    const int need_moved = smoke ? 1 : 3;
    bool steer_pass = total_charges > 0 && cycles_moved >= need_moved;
    bool pass = regressed == 0 &&
                2 * improved >= static_cast<int>(asyms.size()) &&
                steer_pass;
    json << "  ],\n  \"acceptance\": {\"regressedPoints\": " << regressed
         << ", \"improvedPoints\": " << improved
         << ", \"totalPoints\": " << asyms.size()
         << ", \"steerCharges\": " << total_charges
         << ", \"steerCyclesMoved\": " << cycles_moved
         << ", \"steerCyclesMovedNeeded\": " << need_moved
         << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";

    std::ofstream out(out_path, std::ios::trunc);
    out << json.str();
    if (!out)
        fatal("cannot write '%s'", out_path.c_str());

    std::printf("\nm%%/lat = merged fraction of thread-insts / mean "
                "divergence->re-merge cycles.\nfhb-seed turns the first "
                "arrival at an analyzer re-convergence point into\na "
                "catch-up chase instead of waiting for taken-branch "
                "history to accumulate.\nsplit-steer charges fetch "
                "slots by the statically predicted sub-instruction\n"
                "count, so merged groups stop over-fetching past the "
                "split stage's bandwidth.\n");
    std::printf("\nacceptance: %d/%zu points improved, %d regressed; "
                "steer moved cycles on %d/%zu\nworkloads (need %d) with "
                "%llu slots charged -> %s (%s)\n",
                improved, asyms.size(), regressed, cycles_moved,
                steer_apps.size(), need_moved,
                static_cast<unsigned long long>(total_charges),
                pass ? "PASS" : "FAIL", out_path.c_str());
    return pass ? 0 : 1;
}
