/**
 * @file
 * Ablation — the paper's trace-cache claim (§5): "We found that the
 * trace cache actually had a negligible effect on the results, so the
 * results with a traditional cache are virtually identical to our
 * presented results." This bench re-runs the Figure 5(a) comparison with
 * the trace cache disabled (fetch stops at the first taken branch) and
 * reports both the absolute slowdowns and the MMT speedups under each
 * front end.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Ablation: MMT-FXR speedup with and without the trace "
                "cache (2 threads)\n\n");

    std::vector<std::vector<std::string>> rows;
    std::vector<double> with_tc, without_tc;
    for (const std::string &app : workloadNames()) {
        const Workload &w = findWorkload(app);

        RunResult b1 = runWorkload(w, ConfigKind::Base, 2, SimOverrides(),
                                   false);
        RunResult m1 = runWorkload(w, ConfigKind::MMT_FXR, 2,
                                   SimOverrides(), false);

        SimOverrides no_tc;
        no_tc.disableTraceCache = true;
        RunResult b0 = runWorkload(w, ConfigKind::Base, 2, no_tc, false);
        RunResult m0 = runWorkload(w, ConfigKind::MMT_FXR, 2, no_tc,
                                   false);

        double s1 = static_cast<double>(b1.cycles) / m1.cycles;
        double s0 = static_cast<double>(b0.cycles) / m0.cycles;
        rows.push_back({app, fmt(s1), fmt(s0),
                        fmt(static_cast<double>(b0.cycles) / b1.cycles, 2),
                        fmt(static_cast<double>(m0.cycles) / m1.cycles,
                            2)});
        with_tc.push_back(s1);
        without_tc.push_back(s0);
        std::fflush(stdout);
    }
    rows.push_back({"geomean", fmt(geomean(with_tc)),
                    fmt(geomean(without_tc)), "", ""});
    std::printf("%s",
                formatTable({"app", "speedup(tc)", "speedup(no-tc)",
                             "base slowdown", "mmt slowdown"},
                            rows)
                    .c_str());
    std::printf("\nPaper reference (§5): results with a traditional cache "
                "are virtually\nidentical; the worse the fetch "
                "performance, the more MMT benefits — so\nspeedups "
                "without the trace cache should be equal or higher.\n");
    return 0;
}
