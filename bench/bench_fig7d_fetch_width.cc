/**
 * @file
 * Figure 7(d) — geometric-mean MMT-FXR speedup as the instruction fetch
 * width varies from 4 to 32 (paper §6.5). The paper: gains shrink as
 * fetch stops being the bottleneck, but even at 32-wide with a perfect
 * trace cache the average speedup is still ~11%.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    const int widths[] = {4, 8, 16, 32};
    std::printf("Figure 7(d): geomean speedup vs fetch width "
                "(MMT-FXR vs Base, 2 threads)\n\n");

    std::vector<std::vector<std::string>> rows;
    for (int width : widths) {
        SimOverrides ov;
        ov.fetchWidth = width;
        std::vector<double> speedups;
        for (const std::string &app : workloadNames()) {
            const Workload &w = findWorkload(app);
            RunResult base = runWorkload(w, ConfigKind::Base, 2, ov,
                                         false);
            RunResult r = runWorkload(w, ConfigKind::MMT_FXR, 2, ov,
                                      false);
            speedups.push_back(static_cast<double>(base.cycles) /
                               static_cast<double>(r.cycles));
        }
        rows.push_back({"width=" + std::to_string(width),
                        fmt(geomean(speedups))});
        std::printf("  fetch width %2d done\n", width);
        std::fflush(stdout);
    }
    std::printf("\n%s", formatTable({"fetch width", "geomean speedup"},
                                    rows)
                            .c_str());
    std::printf("\nPaper reference: gains shrink with wider fetch; "
                "~11%% remains at 32-wide.\n");
    return 0;
}
