/**
 * @file
 * Figure 7(d) — geometric-mean MMT-FXR speedup as the instruction fetch
 * width varies from 4 to 32 (paper §6.5). The paper: gains shrink as
 * fetch stops being the bottleneck, but even at 32-wide with a perfect
 * trace cache the average speedup is still ~11%.
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("7d");
}
