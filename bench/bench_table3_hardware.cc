/**
 * @file
 * Table 3 — "Conservative Estimate of Hardware Requirements": the
 * storage and per-access energy of every structure MMT adds to the SMT
 * core, as configured in this reproduction (Table 4 sizes), plus the
 * measured access counts of one representative run to show relative
 * activity.
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/smt_core.hh"
#include "energy/energy_model.hh"
#include "iasm/assembler.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    CoreParams p;
    EnergyParams e;

    std::printf("Table 3: MMT hardware additions (as configured)\n\n");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Inst Win ITID", "4 b/entry x " +
                                         std::to_string(p.robSize) +
                                         " entries",
                    fmt(p.robSize * 4 / 8.0 / 1024, 2) + " KB", "-"});
    rows.push_back({"FHB (per thread)", std::to_string(p.fhbEntries) +
                                            " x 64 b CAM",
                    fmt(p.fhbEntries * 8 / 1024.0, 2) + " KB",
                    fmt(e.fhbSearch, 1) + " pJ/search"});
    rows.push_back({"RST", std::to_string(numArchRegs) + " x " +
                               std::to_string(maxThreadPairs) +
                               " b (+provenance)",
                    fmt(numArchRegs * maxThreadPairs * 2 / 8.0 / 1024, 2) +
                        " KB",
                    fmt(e.rstLookup, 1) + " pJ/lookup"});
    rows.push_back({"Inst Split", "filter+chooser logic", "-",
                    fmt(e.splitterOp, 1) + " pJ/inst"});
    rows.push_back({"LVIP", std::to_string(p.lvipEntries) +
                                " entries x 8 B",
                    fmt(p.lvipEntries * 8.0 / 1024, 1) + " KB",
                    fmt(e.lvipAccess, 1) + " pJ/access"});
    rows.push_back({"Reg state", "writer counts " +
                                     std::to_string(maxThreads) + " x " +
                                     std::to_string(numArchRegs),
                    fmt(maxThreads * numArchRegs / 1024.0, 2) + " KB",
                    "-"});
    rows.push_back({"Track Reg (merge)", "shadow map reads, " +
                                             std::to_string(
                                                 p.mergeReadPorts) +
                                             " ports/cycle",
                    "-", fmt(e.mergeCompare, 1) + " pJ/compare"});
    std::printf("%s", formatTable({"component", "organization", "storage",
                                   "energy"},
                                  rows)
                          .c_str());

    // Representative activity: ammp under MMT-FXR.
    std::printf("\nMeasured activity (ammp, MMT-FXR, 2 threads):\n");
    RunResult r = runWorkload(findWorkload("ammp"), ConfigKind::MMT_FXR,
                              2, SimOverrides(), false);
    std::printf("  total energy        %.1f uJ\n",
                r.energy.total() / 1e6);
    std::printf("  MMT overhead share  %.2f %%  (paper: <2%%)\n",
                100.0 * r.energy.overheadFraction());
    return 0;
}
