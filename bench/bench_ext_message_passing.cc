/**
 * @file
 * Extension experiment — message-passing applications, the class the
 * paper's conclusion (§7) names as un-evaluated future work: "we have
 * not evaluated another application class that would benefit greatly
 * from our MMT hardware: message-passing applications."
 *
 * Runs the mp-ring all-reduce (SEND/RECV over per-pair channels,
 * separate address spaces, ranks from memory like MPI processes) across
 * the Table 5 configurations and 2/4 contexts.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Extension: message-passing ring all-reduce (mp-ring)\n");
    std::printf("%s\n", std::string(60, '=').c_str());

    std::vector<std::vector<std::string>> rows;
    for (int threads : {2, 4}) {
        RunResult base = runWorkload(messagePassingWorkload(),
                                     ConfigKind::Base, threads);
        for (ConfigKind k : {ConfigKind::Base, ConfigKind::MMT_F,
                             ConfigKind::MMT_FX, ConfigKind::MMT_FXR,
                             ConfigKind::Limit}) {
            RunResult r = runWorkload(messagePassingWorkload(), k,
                                      threads);
            rows.push_back(
                {std::to_string(threads) + "T " + configName(k),
                 std::to_string(r.cycles),
                 fmt(static_cast<double>(base.cycles) /
                     static_cast<double>(r.cycles)),
                 fmt(100.0 * r.fetchModeFrac[0], 1),
                 fmt(100.0 * (r.identFrac[2] + r.identFrac[3]), 1),
                 r.goldenOk ? "ok" : "FAIL"});
        }
    }
    std::printf("%s",
                formatTable({"config", "cycles", "speedup", "MERGE%",
                             "exec-id%", "golden"},
                            rows)
                    .c_str());
    std::printf("\nPaper reference: none — §7 explicitly defers this "
                "class. The expectation\n(\"would benefit greatly\") "
                "holds when local compute dominates and ranks'\ndata is "
                "similar; receives always split (their values are "
                "per-rank).\n");
    return 0;
}
