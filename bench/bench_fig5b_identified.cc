/**
 * @file
 * Figure 5(b) — "Percentage Identical Instructions Identified": of the
 * committed instructions under MMT-FXR, how many executed as
 * execute-identical, execute-identical thanks to register merging, or
 * fetch-identical. The paper: ~60% of fetch-identical instructions
 * tracked on average, almost half of them execute-identical; the
 * Exe-Identical+RegMerge slice is visible for equake/mcf/fft/water-ns.
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("5b");
}
