/**
 * @file
 * Figure 5(b) — "Percentage Identical Instructions Identified": of the
 * committed instructions under MMT-FXR, how many executed as
 * execute-identical, execute-identical thanks to register merging, or
 * fetch-identical. The paper: ~60% of fetch-identical instructions
 * tracked on average, almost half of them execute-identical; the
 * Exe-Identical+RegMerge slice is visible for equake/mcf/fft/water-ns.
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/smt_core.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 5(b): identified identical instructions "
                "(MMT-FXR, 2 threads, %% of committed)\n\n");

    std::vector<std::vector<std::string>> rows;
    double se = 0, sr = 0, sf = 0;
    int n = 0;
    for (const std::string &app : workloadNames()) {
        RunResult r = runWorkload(findWorkload(app), ConfigKind::MMT_FXR,
                                  2, SimOverrides(), false);
        double exec = 100.0 * r.identFrac[static_cast<int>(
                                  IdentClass::ExecIdentical)];
        double merge = 100.0 * r.identFrac[static_cast<int>(
                                   IdentClass::ExecIdenticalRegMerge)];
        double fetch = 100.0 * r.identFrac[static_cast<int>(
                                   IdentClass::FetchIdentical)];
        rows.push_back({app, fmt(exec, 1), fmt(merge, 1), fmt(fetch, 1),
                        fmt(exec + merge + fetch, 1)});
        se += exec;
        sr += merge;
        sf += fetch;
        ++n;
        std::fflush(stdout);
    }
    rows.push_back({"average", fmt(se / n, 1), fmt(sr / n, 1),
                    fmt(sf / n, 1), fmt((se + sr + sf) / n, 1)});
    std::printf("%s",
                formatTable({"app", "exec-id%", "exec-id+regmerge%",
                             "fetch-id%", "identified%"},
                            rows)
                    .c_str());
    std::printf("\nPaper reference: ~60%% of fetch-identical work "
                "identified on average, almost\nhalf execute-identical; "
                "register merging matters for equake, mcf, fft,\n"
                "water-ns; libsvm/twolf/vortex/vpr leave a large gap.\n");
    return 0;
}
