/**
 * @file
 * Shared main() body for the figure benches: build the figure's sweep
 * from the runner registry, execute it in parallel (MMT_JOBS worker
 * threads, hardware concurrency by default; MMT_CACHE_DIR enables the
 * persistent result cache), and print the same table the serial benches
 * produced. Progress and an ETA go to stderr, tables to stdout.
 */

#ifndef MMT_BENCH_FIGURE_BENCH_HH
#define MMT_BENCH_FIGURE_BENCH_HH

#include <cstdio>

#include "common/logging.hh"
#include "runner/figures.hh"

namespace mmt
{

inline int
figureBenchMain(const char *figure_id)
{
    setInformEnabled(false);
    Figure fig = makeFigure(figure_id);
    SweepOutcome outcome = runSweep(fig.sweep, sweepOptionsFromEnv());
    std::printf("%s", fig.title.c_str());
    std::printf("%s", fig.render(fig.sweep, outcome.results).c_str());
    std::printf("%s", fig.paperNote.c_str());
    std::fprintf(stderr, "%s: %s\n", fig.sweep.name.c_str(),
                 outcome.summary().c_str());
    return 0;
}

} // namespace mmt

#endif // MMT_BENCH_FIGURE_BENCH_HH
