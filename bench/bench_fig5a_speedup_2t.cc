/**
 * @file
 * Figure 5(a) — speedup over a 2-thread traditional SMT (with trace
 * cache) for MMT-F, MMT-FX, MMT-FXR and the Limit configuration, per
 * application (Table 5 configurations). The paper reports a geometric-
 * mean MMT-FXR speedup of 1.15 with two threads.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 5(a): speedup over Base SMT, 2 threads\n");
    std::printf("%s\n", describeTable4().c_str());

    std::vector<std::vector<std::string>> rows;
    std::vector<double> gf, gfx, gfxr, glim;
    for (const std::string &app : workloadNames()) {
        SpeedupRow r = speedupRow(app, 2);
        rows.push_back({r.app, std::to_string(r.baseCycles),
                        fmt(r.mmtF), fmt(r.mmtFX), fmt(r.mmtFXR),
                        fmt(r.limit)});
        gf.push_back(r.mmtF);
        gfx.push_back(r.mmtFX);
        gfxr.push_back(r.mmtFXR);
        glim.push_back(r.limit);
        std::fflush(stdout);
    }
    rows.push_back({"geomean", "", fmt(geomean(gf)), fmt(geomean(gfx)),
                    fmt(geomean(gfxr)), fmt(geomean(glim))});
    std::printf("%s", formatTable({"app", "base-cycles", "MMT-F",
                                   "MMT-FX", "MMT-FXR", "Limit"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: MMT-FXR geomean ~1.15 at 2 threads; "
                "high-gain group\n(ammp equake mcf water-ns water-sp "
                "swaptions fluidanimate) 1.20-1.42;\nlow-gain group "
                "0-10%%; libsvm/twolf/vortex/vpr show a large gap to "
                "Limit.\n");
    return 0;
}
