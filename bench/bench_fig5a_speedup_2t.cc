/**
 * @file
 * Figure 5(a) — speedup over a 2-thread traditional SMT (with trace
 * cache) for MMT-F, MMT-FX, MMT-FXR and the Limit configuration, per
 * application (Table 5 configurations). The paper reports a geometric-
 * mean MMT-FXR speedup of 1.15 with two threads.
 *
 * The sweep itself (16 apps x 5 configs) runs through the parallel
 * sweep runner; see bench/figure_bench.hh for the MMT_JOBS /
 * MMT_CACHE_DIR knobs.
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("5a");
}
