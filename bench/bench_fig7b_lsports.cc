/**
 * @file
 * Figure 7(b) — geometric-mean MMT-FXR speedup as the load/store ports
 * vary from 2 to 12 (MSHRs scaled with the ports, as in the paper). The
 * paper: more memory bandwidth leaves fetch as the bottleneck, so the
 * advantage of instruction merging grows.
 */

#include "figure_bench.hh"

int
main()
{
    return mmt::figureBenchMain("7b");
}
