/**
 * @file
 * Figure 7(b) — geometric-mean MMT-FXR speedup as the load/store ports
 * vary from 2 to 12 (MSHRs scaled with the ports, as in the paper). The
 * paper: more memory bandwidth leaves fetch as the bottleneck, so the
 * advantage of instruction merging grows.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

int
main()
{
    setInformEnabled(false);
    const int ports[] = {2, 4, 8, 12};
    std::printf("Figure 7(b): speedup vs load/store ports "
                "(MMT-FXR vs Base, 2 threads, MSHRs scaled)\n\n");

    std::vector<std::vector<std::string>> rows;
    std::vector<std::vector<double>> per_port(4);
    for (const std::string &app : workloadNames()) {
        const Workload &w = findWorkload(app);
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < 4; ++i) {
            SimOverrides ov;
            ov.lsPorts = ports[i];
            RunResult base = runWorkload(w, ConfigKind::Base, 2, ov,
                                         false);
            RunResult r = runWorkload(w, ConfigKind::MMT_FXR, 2, ov,
                                      false);
            double s = static_cast<double>(base.cycles) /
                       static_cast<double>(r.cycles);
            row.push_back(fmt(s));
            per_port[i].push_back(s);
        }
        rows.push_back(row);
        std::fflush(stdout);
    }
    std::vector<std::string> gm{"geomean"};
    for (std::size_t i = 0; i < 4; ++i)
        gm.push_back(fmt(geomean(per_port[i])));
    rows.push_back(gm);
    std::printf("%s", formatTable({"app", "ports=2", "ports=4", "ports=8",
                                   "ports=12"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: more load/store ports (and MSHRs) -> "
                "larger MMT gains,\nbecause the memory system stops "
                "masking the fetch bottleneck.\n");
    return 0;
}
