/**
 * @file
 * Figure 6 — "Energy Consumption Comparison": energy per job for
 * {SMT, MMT} x {2, 4} threads, normalized to the 2-thread SMT, with the
 * cache / MMT-overhead / other breakdown. Jobs: one per instance for ME
 * workloads (more threads = more work), one per program for MT.
 *
 * Paper: overhead <2% of total power without power gating; MMT-4T
 * consumes 50-90% of SMT-4T energy (geomean ~66%).
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace mmt;

namespace
{

double
energyPerJob(const RunResult &r, bool multi_execution)
{
    double jobs = multi_execution ? r.numThreads : 1;
    return r.energy.total() / jobs;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    std::printf("Figure 6: energy per job, normalized to SMT-2T\n");
    std::printf("(columns: total | cache/overhead/other %%)\n\n");

    std::vector<std::vector<std::string>> rows;
    std::vector<double> ratio4;
    for (const std::string &app : workloadNames()) {
        const Workload &w = findWorkload(app);
        RunResult smt2 = runWorkload(w, ConfigKind::Base, 2,
                                     SimOverrides(), false);
        RunResult mmt2 = runWorkload(w, ConfigKind::MMT_FXR, 2,
                                     SimOverrides(), false);
        RunResult smt4 = runWorkload(w, ConfigKind::Base, 4,
                                     SimOverrides(), false);
        RunResult mmt4 = runWorkload(w, ConfigKind::MMT_FXR, 4,
                                     SimOverrides(), false);

        double ref = energyPerJob(smt2, w.multiExecution);
        auto cell = [&](const RunResult &r) {
            double total = energyPerJob(r, w.multiExecution) / ref;
            return fmt(total, 2) + " (" +
                   fmt(100.0 * r.energy.cache / r.energy.total(), 0) +
                   "/" +
                   fmt(100.0 * r.energy.overheadFraction(), 1) + "/" +
                   fmt(100.0 * r.energy.other / r.energy.total(), 0) +
                   ")";
        };
        rows.push_back({app, cell(smt2), cell(mmt2), cell(smt4),
                        cell(mmt4)});
        ratio4.push_back(energyPerJob(mmt4, w.multiExecution) /
                         energyPerJob(smt4, w.multiExecution));
        std::fflush(stdout);
    }
    rows.push_back({"geomean MMT4/SMT4", "", "", "",
                    fmt(geomean(ratio4), 3)});
    std::printf("%s", formatTable({"app", "SMT-2T", "MMT-2T", "SMT-4T",
                                   "MMT-4T"},
                                  rows)
                          .c_str());
    std::printf("\nPaper reference: MMT overhead <2%% of total energy; "
                "MMT-4T at 50-90%% of\nSMT-4T energy (geomean ~0.66); "
                "savings grow with thread count.\n");
    return 0;
}
