/**
 * @file
 * Fetch-synchronization visualizer: runs a small two-thread program with
 * a data-dependent divergence and prints a per-cycle timeline of the
 * fetch groups — their PCs, members and MERGE/DETECT/CATCHUP modes — so
 * you can watch the paper's Figure 3(a) state machine operate: diverge,
 * record taken branches in the FHBs, hit, catch up, re-merge.
 */

#include <cstdio>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "isa/exec.hh"

using namespace mmt;

namespace
{

// Thread 1 takes a longer detour every 8th iteration; both paths rejoin
// at the loop head, which the FHB mechanism (or PC coincidence) finds.
const char *demo = R"(
.data
nthreads: .word 1
work:     .space 256
.text
main:
    li   r1, 0
    li   r2, 24
loop:
    andi r3, r1, 7
    bnez r3, common
    beqz tid, common       # only thread 1 takes the detour
    li   r4, 6
detour:
    addi r5, r5, 3
    addi r4, r4, -1
    bnez r4, detour
common:
    slli r6, r1, 3
    andi r6, r6, 255
    la   r7, work
    add  r7, r7, r6
    st   r5, 0(r7)
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r5
    barrier
    halt
)";

const char *
modeChar(FetchMode m)
{
    switch (m) {
      case FetchMode::Merge: return "MERGE  ";
      case FetchMode::Detect: return "DETECT ";
      case FetchMode::Catchup: return "CATCHUP";
    }
    return "?";
}

} // namespace

int
main()
{
    Program prog = assemble(demo);
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);

    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;

    SmtCore core(p, &prog, {&img, &img});

    std::printf("cycle | groups (members@pc mode)\n");
    std::printf("------+----------------------------------------------\n");
    std::string last;
    while (!core.done() && core.now() < 2000) {
        core.tick();
        std::string line;
        FetchSync &fs = core.fetchSync();
        for (int g = 0; g < fs.numGroups(); ++g) {
            if (!fs.group(g).alive)
                continue;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "[%s@%llx %s] ",
                          fs.group(g).members.toString(2).c_str(),
                          static_cast<unsigned long long>(fs.group(g).pc),
                          modeChar(fs.classify(g)));
            line += buf;
        }
        if (line != last) {
            std::printf("%5llu | %s\n",
                        static_cast<unsigned long long>(core.now()),
                        line.c_str());
            last = line;
        }
    }

    std::printf("\nSummary:\n");
    std::printf("  divergences: %llu\n",
                static_cast<unsigned long long>(
                    core.fetchSync().divergences.value()));
    std::printf("  remerges:    %llu\n",
                static_cast<unsigned long long>(
                    core.fetchSync().remerges.value()));
    std::printf("  catchups:    %llu (aborted %llu)\n",
                static_cast<unsigned long long>(
                    core.fetchSync().catchupEntered.value()),
                static_cast<unsigned long long>(
                    core.fetchSync().catchupAborted.value()));
    std::printf("  fetched in MERGE/DETECT/CATCHUP: %llu/%llu/%llu\n",
                static_cast<unsigned long long>(
                    core.stats.fetchedInMode[0].value()),
                static_cast<unsigned long long>(
                    core.stats.fetchedInMode[1].value()),
                static_cast<unsigned long long>(
                    core.stats.fetchedInMode[2].value()));
    return 0;
}
