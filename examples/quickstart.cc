/**
 * @file
 * Quickstart: assemble a small SPMD program, run it on a traditional SMT
 * core and on the full MMT core (MMT-FXR), and print the speedup plus
 * the instruction-identity breakdown.
 *
 * This is the 60-second tour of the library's public API:
 *   assemble() -> Workload -> runWorkload() -> RunResult.
 */

#include <cstdio>

#include "isa/exec.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

// A tiny multi-threaded kernel: each thread scales its slice of a vector
// and the threads share the bounds and constants (plenty of
// fetch-identical and some execute-identical work).
const char *demoSrc = R"(
.data
n:        .word 2048
nthreads: .word 1
vec:      .space 16384
scale:    .double 1.5
.text
main:
    la   r1, n
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, vec
    la   r4, scale
    fld  f1, 0(r4)
    mv   r5, tid
demo_loop:
    bge  r5, r1, demo_done
    slli r6, r5, 3
    add  r7, r3, r6
    fld  f2, 0(r7)
    fmul f2, f2, f1
    fst  f2, 0(r7)
    add  r5, r5, r2
    j    demo_loop
demo_done:
    barrier
    bnez tid, demo_end
    fli  f10, 0.0
    li   r5, 0
demo_sum:
    slli r6, r5, 3
    add  r7, r3, r6
    fld  f2, 0(r7)
    fadd f10, f10, f2
    addi r5, r5, 1
    blt  r5, r1, demo_sum
    fcvti r20, f10
    out  r20
demo_end:
    halt
)";

void
demoInit(MemoryImage &img, const Program &prog, int, int num_contexts,
         bool)
{
    img.write64(prog.symbol("nthreads"),
                static_cast<std::uint64_t>(num_contexts));
    for (int i = 0; i < 2048; ++i)
        img.write64(prog.symbol("vec") + static_cast<Addr>(i) * 8,
                    exec::fromF(static_cast<double>(i % 7)));
}

} // namespace

int
main()
{
    Workload demo;
    demo.name = "demo";
    demo.suite = "examples";
    demo.multiExecution = false;
    demo.source = demoSrc;
    demo.initData = demoInit;

    std::printf("MMT quickstart: 2 threads, vector-scale kernel\n\n");

    RunResult base = runWorkload(demo, ConfigKind::Base, 2);
    RunResult mmt_run = runWorkload(demo, ConfigKind::MMT_FXR, 2);

    std::printf("  %-18s %10s %8s %8s\n", "config", "cycles", "IPC",
                "golden");
    std::printf("  %-18s %10llu %8.2f %8s\n", "Base (SMT)",
                static_cast<unsigned long long>(base.cycles), base.ipc(),
                base.goldenOk ? "ok" : "FAIL");
    std::printf("  %-18s %10llu %8.2f %8s\n", "MMT-FXR",
                static_cast<unsigned long long>(mmt_run.cycles),
                mmt_run.ipc(), mmt_run.goldenOk ? "ok" : "FAIL");
    std::printf("\n  speedup: %.3fx\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(mmt_run.cycles));

    std::printf("\n  MMT instruction identity (committed):\n");
    const char *names[] = {"not identical", "fetch-identical",
                           "execute-identical", "exec-ident. (reg-merge)"};
    for (int c = 0; c < 4; ++c) {
        std::printf("    %-24s %5.1f%%\n", names[c],
                    100.0 * mmt_run.identFrac[static_cast<std::size_t>(c)]);
    }
    std::printf("\n  fetch modes: MERGE %.1f%%  DETECT %.1f%%  "
                "CATCHUP %.1f%%\n",
                100.0 * mmt_run.fetchModeFrac[0],
                100.0 * mmt_run.fetchModeFrac[1],
                100.0 * mmt_run.fetchModeFrac[2]);
    std::printf("  energy vs Base: %.2fx\n",
                mmt_run.energy.total() / base.energy.total());
    return base.goldenOk && mmt_run.goldenOk ? 0 : 1;
}
