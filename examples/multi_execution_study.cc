/**
 * @file
 * Multi-execution study: the paper's headline use case. Runs the same
 * "simulation" binary (the equake kernel) as 2 and 4 instances with
 * slightly different inputs — the way circuit routing or earthquake
 * studies sweep parameters — and shows how MMT turns the inter-instance
 * redundancy into time and energy savings, including the LVIP's role.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

void
report(const char *label, const RunResult &base, const RunResult &mmt_r)
{
    std::printf("%s\n", label);
    std::printf("  %-28s %10s %10s\n", "", "SMT(Base)", "MMT-FXR");
    std::printf("  %-28s %10llu %10llu\n", "cycles",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(mmt_r.cycles));
    std::printf("  %-28s %10s %10.3f\n", "speedup", "1.000",
                static_cast<double>(base.cycles) /
                    static_cast<double>(mmt_r.cycles));
    std::printf("  %-28s %10.2f %10.2f\n", "energy/job (uJ)",
                base.energy.total() / 1e6 / base.numThreads,
                mmt_r.energy.total() / 1e6 / mmt_r.numThreads);
    std::printf("  %-28s %10s %10.1f%%\n", "exec-identical committed",
                "-",
                100.0 * (mmt_r.identFrac[2] + mmt_r.identFrac[3]));
    std::printf("  %-28s %10s %10.1f%%\n", "fetched in MERGE mode", "-",
                100.0 * mmt_r.fetchModeFrac[0]);
    std::printf("  %-28s %10s %10llu\n", "LVIP rollbacks", "-",
                static_cast<unsigned long long>(mmt_r.lvipRollbacks));
    std::printf("  golden model: %s / %s\n\n",
                base.goldenOk ? "ok" : "FAIL",
                mmt_r.goldenOk ? "ok" : "FAIL");
}

} // namespace

int
main()
{
    std::printf("Multi-execution study: equake kernel, N instances with "
                "perturbed inputs\n");
    std::printf("%s\n\n", std::string(70, '=').c_str());

    const Workload &w = findWorkload("equake");

    RunResult b2 = runWorkload(w, ConfigKind::Base, 2);
    RunResult m2 = runWorkload(w, ConfigKind::MMT_FXR, 2);
    report("--- 2 instances ---", b2, m2);

    RunResult b4 = runWorkload(w, ConfigKind::Base, 4);
    RunResult m4 = runWorkload(w, ConfigKind::MMT_FXR, 4);
    report("--- 4 instances ---", b4, m4);

    std::printf("--- upper bound: identical inputs (Limit) ---\n");
    RunResult lim = runWorkload(w, ConfigKind::Limit, 4);
    std::printf("  Limit speedup over 4T Base: %.3f\n",
                static_cast<double>(b4.cycles) /
                    static_cast<double>(lim.cycles));

    bool ok = b2.goldenOk && m2.goldenOk && b4.goldenOk && m4.goldenOk;
    return ok ? 0 : 1;
}
