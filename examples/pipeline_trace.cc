/**
 * @file
 * Pipetrace: per-instruction pipeline timelines in the sim-outorder
 * tradition. Runs a tiny two-thread MMT program with a commit hook and
 * prints, for each retired instance, its ITID and the cycles it spent
 * in each stage — including merged instances occupying one slot for
 * both threads.
 *
 *   F fetch   D waiting to dispatch   Q in issue queue
 *   E executing                       C waiting to commit
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"

using namespace mmt;

namespace
{

const char *demo = R"(
.data
nthreads: .word 1
vals:     .word 3, 4
.text
main:
    la   r1, vals
    slli r2, tid, 3
    add  r1, r1, r2
    ld   r3, 0(r1)        # per-thread value: splits
    li   r4, 100          # shared constant: merges
    mul  r5, r3, r4
    fcvt f1, r5
    fsqrt f2, f1
    fcvti r6, f2
    out  r6
    barrier
    halt
)";

struct Row
{
    std::uint64_t seq;
    std::string itid;
    std::string text;
    Cycles fetched, dispatched, issued, completed, committed;
};

} // namespace

int
main()
{
    Program prog = assemble(demo);
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);

    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;

    SmtCore core(p, &prog, {&img, &img});
    std::vector<Row> rows;
    core.setCommitHook([&](const DynInst &di, Cycles commit) {
        rows.push_back({di.seq, di.itid.toString(2),
                        di.inst.toString(), di.fetchedAt, di.dispatchedAt,
                        di.issuedAt, di.completeAt, commit});
    });
    core.run();

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.seq < b.seq; });

    Cycles t0 = rows.empty() ? 0 : rows.front().fetched;
    std::printf("%-4s %-5s %-22s %6s %6s %6s %6s %6s  timeline "
                "(cycle-%llu relative)\n",
                "seq", "itid", "instruction", "F", "D", "Q", "E", "C",
                static_cast<unsigned long long>(t0));
    for (const Row &r : rows) {
        std::printf("%-4llu %-5s %-22s %6llu %6llu %6llu %6llu %6llu  ",
                    static_cast<unsigned long long>(r.seq),
                    r.itid.c_str(), r.text.c_str(),
                    static_cast<unsigned long long>(r.fetched - t0),
                    static_cast<unsigned long long>(r.dispatched - t0),
                    static_cast<unsigned long long>(r.issued - t0),
                    static_cast<unsigned long long>(r.completed - t0),
                    static_cast<unsigned long long>(r.committed - t0));
        // Compact ASCII timeline (capped width).
        Cycles span = r.committed - t0;
        if (span <= 72) {
            std::string line(static_cast<std::size_t>(span) + 1, ' ');
            for (Cycles c = r.fetched; c <= r.committed; ++c) {
                char ch = 'C';
                if (c < r.dispatched)
                    ch = 'F';
                else if (c < r.issued)
                    ch = 'Q';
                else if (c < r.completed)
                    ch = 'E';
                line[static_cast<std::size_t>(c - t0)] = ch;
            }
            std::printf("%s", line.c_str());
        }
        std::printf("\n");
    }

    std::printf("\nMerged instances (itid 11) occupy one slot for both "
                "threads; the per-thread\nload and everything downstream "
                "of it split (itid 10/01).\n");
    return 0;
}
