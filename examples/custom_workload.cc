/**
 * @file
 * Custom workload walkthrough: how to add your own benchmark to the MMT
 * harness — write MMT-RISC assembly, provide an initData hook, and run
 * it through every Table 5 configuration with runWorkload(). This one
 * implements a small histogram kernel (MT, tid-partitioned) and prints a
 * one-app version of Figure 5(a).
 */

#include <cstdio>

#include "common/random.hh"
#include "isa/exec.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

const char *histogramSrc = R"(
.data
n:        .word 1024
nthreads: .word 1
keys:     .space 8192      # n input keys
hist:     .space 1024      # 4 threads x 32 private bins
.text
main:
    la   r1, n
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, keys
    la   r4, hist
    # Private bin block: hist + tid*32*8.
    li   r5, 256
    mul  r5, r5, tid
    add  r4, r4, r5
    mv   r6, tid           # i = tid, stride T
hist_loop:
    bge  r6, r1, hist_done
    slli r7, r6, 3
    add  r8, r3, r7
    ld   r9, 0(r8)         # key
    andi r9, r9, 31        # bin
    slli r9, r9, 3
    add  r10, r4, r9
    ld   r11, 0(r10)
    addi r11, r11, 1
    st   r11, 0(r10)
    add  r6, r6, r2
    j    hist_loop
hist_done:
    barrier
    bnez tid, hist_end
    # Thread 0 reduces all private blocks.
    la   r4, hist
    li   r12, 0            # weighted checksum
    li   r13, 0            # slot index over 4*32 bins
hist_sum:
    slli r7, r13, 3
    add  r8, r4, r7
    ld   r9, 0(r8)
    andi r14, r13, 31
    mul  r9, r9, r14
    add  r12, r12, r9
    addi r13, r13, 1
    slti r15, r13, 128
    bnez r15, hist_sum
    out  r12
hist_end:
    halt
)";

void
histogramInit(MemoryImage &img, const Program &prog, int, int num_contexts,
              bool)
{
    img.write64(prog.symbol("nthreads"),
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(4242);
    for (int i = 0; i < 1024; ++i) {
        img.write64(prog.symbol("keys") + static_cast<Addr>(i) * 8,
                    rng.below(1u << 20));
    }
    for (int i = 0; i < 128; ++i)
        img.write64(prog.symbol("hist") + static_cast<Addr>(i) * 8, 0);
}

} // namespace

int
main()
{
    // 1. Describe the workload.
    Workload histogram;
    histogram.name = "histogram";
    histogram.suite = "examples";
    histogram.multiExecution = false; // shared-memory MT kernel
    histogram.source = histogramSrc;
    histogram.initData = histogramInit;

    std::printf("Custom workload: tid-partitioned histogram "
                "(2 threads)\n\n");

    // 2. Run it under every configuration.
    RunResult base = runWorkload(histogram, ConfigKind::Base, 2);
    std::printf("  %-8s %8llu cycles  ipc=%.2f  golden=%s\n", "Base",
                static_cast<unsigned long long>(base.cycles), base.ipc(),
                base.goldenOk ? "ok" : "FAIL");
    bool all_ok = base.goldenOk;
    for (ConfigKind k : {ConfigKind::MMT_F, ConfigKind::MMT_FX,
                         ConfigKind::MMT_FXR, ConfigKind::Limit}) {
        RunResult r = runWorkload(histogram, k, 2);
        std::printf("  %-8s %8llu cycles  speedup=%.3f  merge=%4.1f%%  "
                    "golden=%s\n",
                    configName(k),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(base.cycles) /
                        static_cast<double>(r.cycles),
                    100.0 * r.fetchModeFrac[0],
                    r.goldenOk ? "ok" : "FAIL");
        all_ok &= r.goldenOk;
    }

    std::printf("\nTo add a workload to the benchmark suite proper, give "
                "it a name and\ninitData hook like above and register it "
                "in src/workloads/registry.cc.\n");
    return all_ok ? 0 : 1;
}
