/**
 * @file
 * Workload profiler: the paper's §3 methodology as a standalone tool.
 * Pick any workload (argv[1], default "equake"), trace two contexts with
 * the functional interpreter, align the traces, and print the sharing
 * breakdown (Figure 1), the divergence-length histogram (Figure 2), and
 * the hottest divergent PCs — the view an MMT adopter would use to judge
 * whether their own SPMD code will benefit.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "iasm/assembler.hh"
#include "profile/align.hh"
#include "workloads/workload.hh"

using namespace mmt;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "equake";
    const Workload &w = findWorkload(name);
    Program prog = assemble(w.source);

    std::printf("Profiling '%s' (%s, %s), 2 contexts\n", w.name.c_str(),
                w.suite.c_str(),
                w.multiExecution ? "multi-execution" : "multi-threaded");
    std::printf("%s\n\n", std::string(64, '=').c_str());

    // Build contexts and trace them.
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::vector<MemoryImage *> ptrs;
    int spaces = w.multiExecution ? 2 : 1;
    for (int i = 0; i < spaces; ++i) {
        images.push_back(std::make_unique<MemoryImage>());
        images.back()->loadData(prog);
        w.initData(*images.back(), prog, i, 2, false);
    }
    for (int t = 0; t < 2; ++t)
        ptrs.push_back(images[spaces == 1 ? 0 : t].get());

    FunctionalCpu cpu(&prog, ptrs, w.multiExecution);
    std::vector<TraceRecord> traces[2];
    cpu.setTrace(
        [&](ThreadId t, const TraceRecord &r) { traces[t].push_back(r); });
    cpu.run();

    std::printf("dynamic instructions: %zu + %zu\n\n", traces[0].size(),
                traces[1].size());

    // Figure 1 style breakdown.
    DivergenceStats div;
    SharingProfile p = alignTraces(traces[0], traces[1], &div);
    std::printf("sharing breakdown (paper Fig. 1):\n");
    std::printf("  execute-identical  %6.1f%%\n", 100.0 * p.fracExec());
    std::printf("  fetch-identical    %6.1f%%\n", 100.0 * p.fracFetch());
    std::printf("  not identical      %6.1f%%\n\n", 100.0 * p.fracNot());

    // Figure 2 style histogram.
    std::printf("divergences: %zu (paper Fig. 2 buckets, taken-branch "
                "length difference)\n",
                div.lengthDiffs.size());
    for (std::uint64_t lim : {16ull, 32ull, 64ull, 128ull, 256ull}) {
        std::printf("  <= %3llu branches   %6.1f%%\n",
                    static_cast<unsigned long long>(lim),
                    100.0 * div.fractionWithin(lim));
    }

    // Hottest divergence sites: PCs where the traces stop matching.
    std::map<Addr, int> sites;
    {
        std::size_t i = 0, j = 0;
        while (i < traces[0].size() && j < traces[1].size()) {
            if (traces[0][i].pc == traces[1][j].pc) {
                ++i;
                ++j;
                continue;
            }
            // Attribute the divergence to the preceding shared PC.
            if (i > 0)
                ++sites[traces[0][i - 1].pc];
            // Resynchronize crudely: skip to the next common PC pair.
            std::size_t i2 = i, j2 = j;
            bool found = false;
            for (int d = 1; d < 512 && !found; ++d) {
                for (int k = 0; k <= d; ++k) {
                    std::size_t ii = i + static_cast<std::size_t>(k);
                    std::size_t jj = j + static_cast<std::size_t>(d - k);
                    if (ii < traces[0].size() && jj < traces[1].size() &&
                        traces[0][ii].pc == traces[1][jj].pc) {
                        i2 = ii;
                        j2 = jj;
                        found = true;
                        break;
                    }
                }
            }
            if (!found)
                break;
            i = i2;
            j = j2;
        }
    }
    std::vector<std::pair<int, Addr>> ranked;
    for (const auto &[pc, count] : sites)
        ranked.emplace_back(count, pc);
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("\nhottest divergence sites:\n");
    for (std::size_t k = 0; k < ranked.size() && k < 5; ++k) {
        Addr pc = ranked[k].second;
        std::printf("  %4d x at %#llx  %s\n", ranked[k].first,
                    static_cast<unsigned long long>(pc),
                    prog.validPc(pc) ? prog.fetch(pc).toString().c_str()
                                     : "?");
    }
    if (ranked.empty())
        std::printf("  (none — the contexts never diverge)\n");
    return 0;
}
