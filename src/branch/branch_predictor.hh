/**
 * @file
 * Branch prediction per Table 4: a two-level adaptive predictor (1024-entry
 * second-level PHT of 2-bit counters, 10-bit global history), a 2048-entry
 * BTB and a 16-entry return address stack. Each hardware thread gets its
 * own history register and RAS; PHT and BTB are shared (standard SMT
 * practice).
 */

#ifndef MMT_BRANCH_BRANCH_PREDICTOR_HH
#define MMT_BRANCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Predictor configuration. */
struct BranchPredictorParams
{
    int phtEntries = 1024; // second-level table (2-bit counters)
    int historyBits = 10;
    int btbEntries = 2048;
    int rasEntries = 16;
};

/** Prediction for one control-transfer instruction. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;    // valid when taken and BTB/RAS hit
    bool targetValid = false;
};

/** Two-level predictor + BTB + RAS. */
class BranchPredictor
{
  public:
    BranchPredictor(const BranchPredictorParams &params, int num_threads);

    /**
     * Predict a control instruction at fetch.
     * Unconditional jumps predict taken; JR consults the RAS when the
     * instruction is a return idiom, else the BTB.
     */
    BranchPrediction predict(ThreadId tid, Addr pc, const Instruction &inst);

    /** Push a return address when a call is fetched. */
    void pushReturn(ThreadId tid, Addr return_pc);

    /** Pop a return address (merged-group members mirroring the leader). */
    void popReturn(ThreadId tid);

    /** Shift @p taken into @p tid's history without a PHT lookup (keeps
     *  merged-group members' histories aligned with the leader's). */
    void noteOutcome(ThreadId tid, bool taken);

    /**
     * Train with the resolved outcome and correct any speculative history.
     */
    void update(ThreadId tid, Addr pc, const Instruction &inst,
                bool taken, Addr target);

    Counter lookups;
    Counter condMispredicts;
    Counter targetMispredicts;

  private:
    int phtIndex(ThreadId tid, Addr pc) const;
    int btbIndex(Addr pc) const;

    BranchPredictorParams params_;
    std::vector<std::uint32_t> history_;     // per thread
    std::vector<std::uint8_t> pht_;          // 2-bit counters
    struct BtbEntry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
    };
    std::vector<BtbEntry> btb_;
    std::vector<std::vector<Addr>> ras_;     // per thread stacks
};

} // namespace mmt

#endif // MMT_BRANCH_BRANCH_PREDICTOR_HH
