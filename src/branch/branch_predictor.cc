#include "branch/branch_predictor.hh"

#include "common/logging.hh"

namespace mmt
{

BranchPredictor::BranchPredictor(const BranchPredictorParams &params,
                                 int num_threads)
    : params_(params),
      history_(static_cast<std::size_t>(num_threads), 0),
      pht_(static_cast<std::size_t>(params.phtEntries), 1),
      btb_(static_cast<std::size_t>(params.btbEntries)),
      ras_(static_cast<std::size_t>(num_threads))
{
}

int
BranchPredictor::phtIndex(ThreadId tid, Addr pc) const
{
    std::uint32_t hist =
        history_[tid] & ((1u << params_.historyBits) - 1u);
    std::uint64_t idx = (pc / instBytes) ^ hist;
    return static_cast<int>(idx %
                            static_cast<std::uint64_t>(params_.phtEntries));
}

int
BranchPredictor::btbIndex(Addr pc) const
{
    return static_cast<int>((pc / instBytes) %
                            static_cast<Addr>(params_.btbEntries));
}

BranchPrediction
BranchPredictor::predict(ThreadId tid, Addr pc, const Instruction &inst)
{
    ++lookups;
    BranchPrediction pred;

    if (inst.isUncondJump()) {
        pred.taken = true;
        if (!inst.isIndirectJump()) {
            pred.target = static_cast<Addr>(inst.imm);
            pred.targetValid = true;
        } else if (inst.op == Opcode::JR && inst.rs1 == regRa &&
                   !ras_[tid].empty()) {
            pred.target = ras_[tid].back();
            ras_[tid].pop_back();
            pred.targetValid = true;
        } else {
            const BtbEntry &e = btb_[btbIndex(pc)];
            if (e.valid && e.pc == pc) {
                pred.target = e.target;
                pred.targetValid = true;
            }
        }
        return pred;
    }

    mmt_assert(inst.isCondBranch(), "predict on non-control inst");
    pred.taken = pht_[phtIndex(tid, pc)] >= 2;
    if (pred.taken) {
        pred.target = static_cast<Addr>(inst.imm);
        pred.targetValid = true;
    } else {
        pred.target = pc + instBytes;
        pred.targetValid = true;
    }
    // History is updated by the caller via noteOutcome() once the actual
    // direction is known, so predict() and update() see the same index.
    return pred;
}

void
BranchPredictor::pushReturn(ThreadId tid, Addr return_pc)
{
    auto &stack = ras_[tid];
    if (static_cast<int>(stack.size()) >=
        params_.rasEntries) {
        stack.erase(stack.begin());
    }
    stack.push_back(return_pc);
}

void
BranchPredictor::popReturn(ThreadId tid)
{
    if (!ras_[tid].empty())
        ras_[tid].pop_back();
}

void
BranchPredictor::noteOutcome(ThreadId tid, bool taken)
{
    history_[tid] = (history_[tid] << 1) | (taken ? 1u : 0u);
}

void
BranchPredictor::update(ThreadId tid, Addr pc, const Instruction &inst,
                        bool taken, Addr target)
{
    if (inst.isIndirectJump()) {
        // Train the BTB with the resolved indirect target.
        BtbEntry &e = btb_[btbIndex(pc)];
        e.valid = true;
        e.pc = pc;
        e.target = target;
        return;
    }
    if (!inst.isCondBranch())
        return;
    std::uint8_t &ctr = pht_[phtIndex(tid, pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace mmt
