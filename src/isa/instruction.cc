#include "isa/isa.hh"

#include <sstream>

#include "common/logging.hh"

namespace mmt
{

namespace
{

// Shorthand flags for the table below.
constexpr bool Y = true;
constexpr bool N = false;

// mnemonic, class, wrDest, rdS1, rdS2, load, store, condBr, uncond, syscall
const InstInfo infoTable[] = {
    {"nop",     OpClass::IntAlu,  N, N, N, N, N, N, N, N},
    {"add",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"sub",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"mul",     OpClass::IntMult, Y, Y, Y, N, N, N, N, N},
    {"div",     OpClass::IntDiv,  Y, Y, Y, N, N, N, N, N},
    {"rem",     OpClass::IntDiv,  Y, Y, Y, N, N, N, N, N},
    {"and",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"or",      OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"xor",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"sll",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"srl",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"sra",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"slt",     OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"sltu",    OpClass::IntAlu,  Y, Y, Y, N, N, N, N, N},
    {"addi",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"andi",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"ori",     OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"xori",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"slli",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"srli",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"srai",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"slti",    OpClass::IntAlu,  Y, Y, N, N, N, N, N, N},
    {"lui",     OpClass::IntAlu,  Y, N, N, N, N, N, N, N},
    {"fadd",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"fsub",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"fmul",    OpClass::FpMult,  Y, Y, Y, N, N, N, N, N},
    {"fdiv",    OpClass::FpDiv,   Y, Y, Y, N, N, N, N, N},
    {"fsqrt",   OpClass::FpLong,  Y, Y, N, N, N, N, N, N},
    {"fneg",    OpClass::FpAlu,   Y, Y, N, N, N, N, N, N},
    {"fabs",    OpClass::FpAlu,   Y, Y, N, N, N, N, N, N},
    {"fmin",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"fmax",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"fexp",    OpClass::FpLong,  Y, Y, N, N, N, N, N, N},
    {"flog",    OpClass::FpLong,  Y, Y, N, N, N, N, N, N},
    {"fli",     OpClass::FpAlu,   Y, N, N, N, N, N, N, N},
    {"fmv",     OpClass::FpAlu,   Y, Y, N, N, N, N, N, N},
    {"fcvt",    OpClass::FpAlu,   Y, Y, N, N, N, N, N, N},
    {"fcvti",   OpClass::FpAlu,   Y, Y, N, N, N, N, N, N},
    {"fclt",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"fcle",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"fceq",    OpClass::FpAlu,   Y, Y, Y, N, N, N, N, N},
    {"ld",      OpClass::MemRead, Y, Y, N, Y, N, N, N, N},
    {"st",      OpClass::MemWrite,N, Y, Y, N, Y, N, N, N},
    {"fld",     OpClass::MemRead, Y, Y, N, Y, N, N, N, N},
    {"fst",     OpClass::MemWrite,N, Y, Y, N, Y, N, N, N},
    {"beq",     OpClass::Branch,  N, Y, Y, N, N, Y, N, N},
    {"bne",     OpClass::Branch,  N, Y, Y, N, N, Y, N, N},
    {"blt",     OpClass::Branch,  N, Y, Y, N, N, Y, N, N},
    {"bge",     OpClass::Branch,  N, Y, Y, N, N, Y, N, N},
    {"bltu",    OpClass::Branch,  N, Y, Y, N, N, Y, N, N},
    {"bgeu",    OpClass::Branch,  N, Y, Y, N, N, Y, N, N},
    {"j",       OpClass::Jump,    N, N, N, N, N, N, Y, N},
    {"jal",     OpClass::Jump,    Y, N, N, N, N, N, Y, N},
    {"jr",      OpClass::Jump,    N, Y, N, N, N, N, Y, N},
    {"jalr",    OpClass::Jump,    Y, Y, N, N, N, N, Y, N},
    {"halt",    OpClass::Syscall, N, N, N, N, N, N, N, Y},
    {"barrier", OpClass::Syscall, N, N, N, N, N, N, N, Y},
    {"out",     OpClass::Syscall, N, Y, N, N, N, N, N, Y},
    {"send",    OpClass::Syscall, N, Y, Y, N, N, N, N, Y},
    {"recv",    OpClass::Syscall, Y, Y, N, N, N, N, N, Y},
    {"mergehint", OpClass::Syscall, N, N, N, N, N, N, N, Y},
};

static_assert(sizeof(infoTable) / sizeof(infoTable[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "infoTable out of sync with Opcode enum");

} // namespace

const InstInfo &
instInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    mmt_assert(idx < static_cast<std::size_t>(Opcode::NumOpcodes),
               "bad opcode %zu", idx);
    return infoTable[idx];
}

std::string
regName(RegIndex unified)
{
    if (unified < 0)
        return "-";
    if (unified < numIntRegs)
        return "r" + std::to_string(unified);
    return "f" + std::to_string(unified - numIntRegs);
}

std::string
Instruction::toString() const
{
    const InstInfo &inf = info();
    std::ostringstream os;
    os << inf.mnemonic;
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };
    // JAL/JALR link through ra implicitly in assembly syntax.
    bool implicit_link = op == Opcode::JAL || op == Opcode::JALR;
    if (inf.writesDest && !implicit_link)
        sep() << regName(rd);
    if (isMem()) {
        if (isStore())
            sep() << regName(rs2);
        sep() << imm << "(" << regName(rs1) << ")";
        return os.str();
    }
    if (inf.readsSrc1)
        sep() << regName(rs1);
    if (inf.readsSrc2)
        sep() << regName(rs2);
    if (op == Opcode::LUI || op == Opcode::FLI || isCondBranch() ||
        op == Opcode::J || op == Opcode::JAL ||
        (inf.readsSrc1 && !inf.readsSrc2 && !isUncondJump() &&
         inf.opClass == OpClass::IntAlu && op != Opcode::NOP)) {
        sep() << imm;
    }
    return os.str();
}

} // namespace mmt
