/**
 * @file
 * MMT-RISC: the 64-bit load/store ISA executed by the simulator.
 *
 * The paper's mechanisms are ISA-neutral — they need only architected
 * register ids and PCs — so we define a compact RISC with 32 integer and
 * 32 floating-point registers. Register indices are *unified*: integer
 * registers occupy [0, 32) and FP registers [32, 64), so the RAT, RST and
 * renaming logic treat all architected registers uniformly.
 *
 * Software conventions (set up by the simulator at thread start):
 *   r0  — hardwired zero
 *   r28 — thread id (tid)
 *   r29 — stack pointer (sp); differs per thread in MT workloads (§3.1)
 *   r31 — return address (ra)
 *
 * Instructions are conceptually 4 bytes; instruction i of a program lives
 * at codeBase + 4*i. Branch/jump targets in Instruction::imm are absolute
 * byte addresses (the assembler resolves labels).
 */

#ifndef MMT_ISA_ISA_HH
#define MMT_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mmt
{

/** Number of architected integer registers. */
constexpr int numIntRegs = 32;
/** Number of architected floating-point registers. */
constexpr int numFpRegs = 32;
/** Total architected registers in the unified index space. */
constexpr int numArchRegs = numIntRegs + numFpRegs;

/** Unified index of FP register f<i>. */
constexpr RegIndex
fpReg(int i)
{
    return numIntRegs + i;
}

/** Well-known registers. */
constexpr RegIndex regZero = 0;
constexpr RegIndex regTid = 28;
constexpr RegIndex regSp = 29;
constexpr RegIndex regRa = 31;

/** Bytes per instruction slot. */
constexpr Addr instBytes = 4;

/** Operation repertoire. */
enum class Opcode : std::uint8_t
{
    NOP,
    // Integer ALU, register-register.
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, SLL, SRL, SRA,
    SLT, SLTU,
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    LUI,        // rd = imm (full 64-bit immediate materialization)
    // Floating point (operands are f-registers; values bit-cast doubles).
    FADD, FSUB, FMUL, FDIV, FSQRT, FNEG, FABS, FMIN, FMAX,
    FEXP, FLOG,     // long-latency transcendental units
    FLI,            // fd = bit-cast double immediate
    FMV,            // fd = fs
    FCVT,           // fd = (double) signed rs1 (int -> fp)
    FCVTI,          // rd = (int64) trunc fs1  (fp -> int)
    FCLT, FCLE, FCEQ, // rd (int) = fs1 <op> fs2
    // Memory (64-bit only). Address = rs1 + imm.
    LD,  // rd (int) = mem[rs1 + imm]
    ST,  // mem[rs1 + imm] = rs2 (int)
    FLD, // fd = mem[rs1 + imm]
    FST, // mem[rs1 + imm] = fs2
    // Control transfer. Conditional targets and J/JAL targets are in imm.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    J,    // unconditional jump to imm
    JAL,  // rd = return address; jump to imm
    JR,   // jump to rs1
    JALR, // rd = return address; jump to rs1
    // System.
    HALT,    // terminate this thread
    BARRIER, // block until all live threads reach a barrier
    OUT,     // append rs1's value to the thread's output log (for tests)
    // Message passing (extension; paper §7 names this class as future
    // work). Contexts communicate through per-pair FIFO channels of a
    // MessageNetwork instead of shared memory.
    SEND,    // send rs2's value to context rs1
    RECV,    // rd = next message from context rs1 (blocks until one)
    /**
     * Software re-merge hint (Thread Fusion-style, cf. paper §2): a
     * timing-only no-op marking a point where the compiler/programmer
     * expects divergent threads to re-join. A diverged group reaching a
     * hint waits a bounded number of cycles for the others to arrive so
     * the PC-coincidence merge can fire. No architectural effect.
     */
    MERGEHINT,
    NumOpcodes,
};

/** Functional-unit class; selects latency and FU pool in the timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    FpLong,   // sqrt/exp/log
    MemRead,
    MemWrite,
    Branch,   // conditional branches
    Jump,     // unconditional jumps/calls/returns
    Syscall,
    NumOpClasses,
};

/** Static per-opcode properties, looked up via instInfo(). */
struct InstInfo
{
    const char *mnemonic;
    OpClass opClass;
    bool writesDest;   // has a destination register
    bool readsSrc1;
    bool readsSrc2;
    bool isLoad;
    bool isStore;
    bool isCondBranch;
    bool isUncondJump; // J/JAL/JR/JALR
    bool isSyscall;
};

/** Static properties of @p op. */
const InstInfo &instInfo(Opcode op);

/** A decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = -1;  // unified destination index or -1
    RegIndex rs1 = -1; // unified source 1 index or -1
    RegIndex rs2 = -1; // unified source 2 index or -1
    std::int64_t imm = 0;

    const InstInfo &info() const { return instInfo(op); }

    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isCondBranch() const { return info().isCondBranch; }
    bool isUncondJump() const { return info().isUncondJump; }
    bool isControl() const { return isCondBranch() || isUncondJump(); }
    /** True for JR/JALR whose target comes from a register. */
    bool isIndirectJump() const
    {
        return op == Opcode::JR || op == Opcode::JALR;
    }
    bool isSyscall() const { return info().isSyscall; }

    /** Human-readable disassembly. */
    std::string toString() const;
};

/** Register name in assembly syntax ("r7", "f3"). */
std::string regName(RegIndex unified);

} // namespace mmt

#endif // MMT_ISA_ISA_HH
