/**
 * @file
 * Functional semantics of MMT-RISC instructions.
 *
 * These helpers are shared by the golden-model interpreter, the profiling
 * tracer, and the timing pipeline (which executes functionally at dispatch
 * per the SimpleScalar sim-outorder methodology; see DESIGN.md §3).
 */

#ifndef MMT_ISA_EXEC_HH
#define MMT_ISA_EXEC_HH

#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Outcome of a control-transfer instruction. */
struct BranchOut
{
    bool taken = false;
    Addr target = 0;
};

namespace exec
{

/**
 * Evaluate a destination-writing, non-load instruction.
 *
 * @param inst the instruction (any ALU/FPU/jump-with-link op)
 * @param a value of rs1 (ignored if unused)
 * @param b value of rs2 (ignored if unused)
 * @param pc the instruction's own PC (for link values)
 * @return the destination register value
 */
RegVal evalAlu(const Instruction &inst, RegVal a, RegVal b, Addr pc);

/**
 * Evaluate a control-transfer instruction's direction and target.
 *
 * @param a value of rs1 (for compares and indirect jumps)
 * @param b value of rs2 (for compares)
 * @param pc the branch's own PC
 */
BranchOut evalBranch(const Instruction &inst, RegVal a, RegVal b, Addr pc);

/** Effective address of a load or store. @p base is the rs1 value. */
inline Addr
effectiveAddr(const Instruction &inst, RegVal base)
{
    return static_cast<Addr>(base + static_cast<RegVal>(inst.imm));
}

/** Bit-cast helpers between RegVal and double. */
double toF(RegVal v);
RegVal fromF(double d);

} // namespace exec

} // namespace mmt

#endif // MMT_ISA_EXEC_HH
