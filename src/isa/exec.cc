#include "isa/exec.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace mmt
{
namespace exec
{

double
toF(RegVal v)
{
    return std::bit_cast<double>(v);
}

RegVal
fromF(double d)
{
    return std::bit_cast<RegVal>(d);
}

namespace
{
std::int64_t
sx(RegVal v)
{
    return static_cast<std::int64_t>(v);
}
} // namespace

RegVal
evalAlu(const Instruction &inst, RegVal a, RegVal b, Addr pc)
{
    switch (inst.op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        return b == 0 ? ~RegVal(0)
                      : static_cast<RegVal>(sx(a) / sx(b));
      case Opcode::REM:
        return b == 0 ? a : static_cast<RegVal>(sx(a) % sx(b));
      case Opcode::AND: return a & b;
      case Opcode::OR:  return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SLL: return a << (b & 63);
      case Opcode::SRL: return a >> (b & 63);
      case Opcode::SRA: return static_cast<RegVal>(sx(a) >> (b & 63));
      case Opcode::SLT: return sx(a) < sx(b) ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::ADDI: return a + static_cast<RegVal>(inst.imm);
      case Opcode::ANDI: return a & static_cast<RegVal>(inst.imm);
      case Opcode::ORI:  return a | static_cast<RegVal>(inst.imm);
      case Opcode::XORI: return a ^ static_cast<RegVal>(inst.imm);
      case Opcode::SLLI: return a << (inst.imm & 63);
      case Opcode::SRLI: return a >> (inst.imm & 63);
      case Opcode::SRAI: return static_cast<RegVal>(sx(a) >> (inst.imm & 63));
      case Opcode::SLTI: return sx(a) < inst.imm ? 1 : 0;
      case Opcode::LUI:  return static_cast<RegVal>(inst.imm);
      case Opcode::FADD: return fromF(toF(a) + toF(b));
      case Opcode::FSUB: return fromF(toF(a) - toF(b));
      case Opcode::FMUL: return fromF(toF(a) * toF(b));
      case Opcode::FDIV: return fromF(toF(a) / toF(b));
      case Opcode::FSQRT: return fromF(std::sqrt(toF(a)));
      case Opcode::FNEG: return fromF(-toF(a));
      case Opcode::FABS: return fromF(std::fabs(toF(a)));
      case Opcode::FMIN: return fromF(std::fmin(toF(a), toF(b)));
      case Opcode::FMAX: return fromF(std::fmax(toF(a), toF(b)));
      case Opcode::FEXP: return fromF(std::exp(toF(a)));
      case Opcode::FLOG:
        return fromF(toF(a) > 0.0 ? std::log(toF(a)) : 0.0);
      case Opcode::FLI:  return static_cast<RegVal>(inst.imm);
      case Opcode::FMV:  return a;
      case Opcode::FCVT: return fromF(static_cast<double>(sx(a)));
      case Opcode::FCVTI:
        return static_cast<RegVal>(static_cast<std::int64_t>(toF(a)));
      case Opcode::FCLT: return toF(a) < toF(b) ? 1 : 0;
      case Opcode::FCLE: return toF(a) <= toF(b) ? 1 : 0;
      case Opcode::FCEQ: return toF(a) == toF(b) ? 1 : 0;
      case Opcode::JAL:
      case Opcode::JALR:
        return pc + instBytes;
      default:
        panic("evalAlu on non-ALU opcode %s", inst.info().mnemonic);
    }
}

BranchOut
evalBranch(const Instruction &inst, RegVal a, RegVal b, Addr pc)
{
    BranchOut out;
    switch (inst.op) {
      case Opcode::BEQ:  out.taken = a == b; break;
      case Opcode::BNE:  out.taken = a != b; break;
      case Opcode::BLT:  out.taken = sx(a) < sx(b); break;
      case Opcode::BGE:  out.taken = sx(a) >= sx(b); break;
      case Opcode::BLTU: out.taken = a < b; break;
      case Opcode::BGEU: out.taken = a >= b; break;
      case Opcode::J:
      case Opcode::JAL:
        out.taken = true;
        break;
      case Opcode::JR:
      case Opcode::JALR:
        out.taken = true;
        out.target = static_cast<Addr>(a);
        return out;
      default:
        panic("evalBranch on non-control opcode %s", inst.info().mnemonic);
    }
    out.target = out.taken ? static_cast<Addr>(inst.imm)
                           : pc + instBytes;
    return out;
}

} // namespace exec
} // namespace mmt
