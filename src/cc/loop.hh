/**
 * @file
 * Natural-loop analysis over the mmtc IR: dominators, loop nests, and
 * canonical induction-variable recognition. The SPMD pass consumes the
 * resulting LoopInfo records to decide which loops can be sliced across
 * thread ids.
 *
 * A loop is "canonical" (sliceable shape) when it has
 *  - a unique latch whose step sequence is `iv = iv + C` with C a
 *    positive integer constant,
 *  - a header that is the only exiting block, terminated by
 *    `CondBr (iv < bound | iv <= bound), body, exit`, and
 *  - a unique preheader predecessor outside the loop.
 * Everything else is still reported (for nesting bookkeeping) with
 * indvar == -1.
 */

#ifndef MMT_CC_LOOP_HH
#define MMT_CC_LOOP_HH

#include <cstdint>
#include <vector>

#include "cc/ir.hh"

namespace mmt
{
namespace cc
{

struct LoopInfo
{
    int header = -1;
    int latch = -1;     // unique back-edge source; -1 when not unique
    int preheader = -1; // unique out-of-loop predecessor of the header
    /** All blocks of the natural loop (header included, nested loops
     *  included), sorted ascending. */
    std::vector<int> blocks;

    // Canonical induction variable, valid when indvar >= 0.
    int indvar = -1;
    std::int64_t step = 0;
    int boundVreg = -1;
    bool cmpIsLe = false; // `iv <= bound` instead of `iv < bound`
    int exiting = -1;     // == header for canonical loops
    int exitTarget = -1;  // successor outside the loop
    int bodyTarget = -1;  // successor inside the loop
    /** Location of the `iv + C` add inside the latch (block-local
     *  instruction index), for the SPMD stride rewrite. */
    int stepAddIdx = -1;

    int parent = -1; // index of the innermost enclosing loop, or -1
    int depth = 1;   // 1 = outermost

    bool
    contains(int b) const
    {
        for (int x : blocks)
            if (x == b)
                return true;
        return false;
    }
};

/**
 * Find all natural loops of @p f, outermost-first within each nest
 * (parents precede children). Back edges sharing a header are merged
 * into one loop with latch == -1.
 */
std::vector<LoopInfo> findLoops(const IrFunction &f);

/** Immediate-dominator-free dominator sets: dom[b] is the bitset of
 *  blocks dominating b (including b). Exposed for tests. */
std::vector<std::vector<bool>> computeDominators(const IrFunction &f);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_LOOP_HH
