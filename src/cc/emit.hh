/**
 * @file
 * iasm emission: allocated IR -> assembler source text.
 *
 * The generated program starts with a `main` shim that carves a
 * per-thread stack out of the region the analyzer already models
 * ([defaultStackTop - maxThreads*defaultStackBytes, defaultStackTop]),
 * calls `fn.main`, and halts. C functions are labeled `fn.<name>` and
 * internal blocks `.L<name>.<n>` — both outside the C identifier space,
 * so user globals can keep their source names (workload initializers
 * address them symbolically, e.g. wl::setWord(img, prog, "nthreads")).
 */

#ifndef MMT_CC_EMIT_HH
#define MMT_CC_EMIT_HH

#include <string>

#include "cc/ir.hh"
#include "cc/regalloc.hh"

namespace mmt
{
namespace cc
{

/** Emit the whole module as assemblable iasm text. @p allocs must hold
 *  one Allocation per module function, same order. */
std::string emitIasm(const IrModule &m,
                     const std::vector<Allocation> &allocs);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_EMIT_HH
