/**
 * @file
 * AST -> IR lowering. Local scalars become mutable vregs (slot i of the
 * function is vreg i), expression temporaries are fresh single-def
 * vregs, control flow becomes explicit basic blocks. No optimization is
 * attempted beyond short-circuit lowering; the SPMD and regalloc passes
 * run on the result.
 */

#ifndef MMT_CC_IRGEN_HH
#define MMT_CC_IRGEN_HH

#include "cc/ast.hh"
#include "cc/ir.hh"

namespace mmt
{
namespace cc
{

/** Lower a parsed module to IR. */
IrModule lowerToIr(const Module &m);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_IRGEN_HH
