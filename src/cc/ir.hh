/**
 * @file
 * Three-address IR for mmtc: functions of basic blocks over virtual
 * registers, plus the module container the passes transform.
 *
 * Virtual registers are typed (Int or Fp) and mutable: user locals keep
 * one vreg for their whole lifetime (no SSA), expression temporaries are
 * defined exactly once. Every block ends in exactly one terminator
 * (Br / CondBr / Ret). Globals are addressed symbolically (LoadG/StoreG
 * with an optional element-index vreg); the emitter turns them into
 * `la` + `ld/st/fld/fst` against the assembler's data labels.
 */

#ifndef MMT_CC_IR_HH
#define MMT_CC_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cc/ast.hh"

namespace mmt
{
namespace cc
{

enum class IrOp
{
    ConstI,  // dst = imm
    ConstF,  // dst = fimm
    Mov,     // dst = a (same class; Int or Fp)
    CvtIF,   // dst(fp) = (double) a(int)
    CvtFI,   // dst(int) = trunc a(fp)
    // Integer arithmetic, dst = a <op> b.
    Add, Sub, Mul, Div, Rem,
    // FP arithmetic.
    FAdd, FSub, FMul, FDiv,
    FNeg,    // dst = -a
    // Integer comparisons, dst(int) = a <op> b (0/1). GT/GE are
    // normalized to LT/LE by operand swap during IR generation.
    CmpEQ, CmpNE, CmpLT, CmpLE,
    // FP comparisons, dst(int) = a <op> b.
    FCmpEQ, FCmpLT, FCmpLE,
    Bool,    // dst = (a != 0)
    Not,     // dst = (a == 0)
    LoadG,   // dst = mem[sym + (a >= 0 ? vreg a : 0) * 8]
    StoreG,  // mem[sym + (a >= 0 ? vreg a : 0) * 8] = b
    Call,    // dst (or -1 for void) = sym(args...)
    ReadTid, // dst = hardware thread id (SPMD pass only)
    Barrier, // re-convergence join (SPMD pass only)
    Out,     // append a to the thread output log
    // Terminators.
    Br,      // goto target
    CondBr,  // a != 0 ? goto target : goto targetF
    Ret,     // return a (or nothing when a == -1)
};

struct IrInst
{
    IrOp op;
    int dst = -1;
    int a = -1;
    int b = -1;
    std::int64_t imm = 0;
    double fimm = 0.0;
    std::string sym;       // LoadG/StoreG global, Call target
    std::vector<int> args; // Call arguments
    int target = -1;       // Br/CondBr taken successor (block id)
    int targetF = -1;      // CondBr fall-through successor
    int line = 0;          // source line (diagnostics)
    /** LoadG/StoreG only: inside an accepted (sliced) SPMD loop, so the
     *  per-thread index partition makes the access disjoint across
     *  threads by construction. Set by the SPMD pass; emission tags the
     *  generated memory line so the driver's race annotation can tell
     *  compiler-asserted slices from genuinely redundant accesses. */
    bool sliced = false;

    bool
    isTerminator() const
    {
        return op == IrOp::Br || op == IrOp::CondBr || op == IrOp::Ret;
    }
};

struct IrBlock
{
    std::vector<IrInst> insts;
};

struct IrFunction
{
    std::string name;
    Type retType = Type::Void;
    int numParams = 0;
    /** Type of every vreg; locals/params occupy the low ids. */
    std::vector<Type> vregTypes;
    std::vector<IrBlock> blocks; // block 0 is the entry

    int
    newTemp(Type type)
    {
        vregTypes.push_back(type);
        return static_cast<int>(vregTypes.size()) - 1;
    }

    /** Successor block ids of @p b (empty for Ret-terminated blocks). */
    std::vector<int> successors(int b) const;
};

/** The unit the backend passes share: globals plus lowered functions. */
struct IrModule
{
    std::string name;
    std::vector<GlobalVar> globals;
    std::vector<IrFunction> functions;

    IrFunction *
    findFunction(const std::string &fname)
    {
        for (IrFunction &f : functions)
            if (f.name == fname)
                return &f;
        return nullptr;
    }
};

/** Vregs read by @p inst (dedup not guaranteed). */
std::vector<int> instUses(const IrInst &inst);

/** Vreg written by @p inst, or -1. */
int instDef(const IrInst &inst);

/** True when @p inst has no side effect beyond writing its dst. */
bool instIsPure(const IrInst &inst);

/**
 * Per-block liveness (backward may-analysis over vregs).
 * liveIn[b] / liveOut[b] are bitsets indexed by vreg id.
 */
struct Liveness
{
    std::vector<std::vector<bool>> liveIn;
    std::vector<std::vector<bool>> liveOut;
};

Liveness computeLiveness(const IrFunction &f);

/** Debug dump of a function's IR (tests and -v tooling). */
std::string dumpIr(const IrFunction &f);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_IR_HH
