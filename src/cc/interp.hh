/**
 * @file
 * Scalar reference interpreter for the mmtc C subset.
 *
 * Walks the typed AST directly (no IR, no registers, no threads) and
 * returns the sequence of out() values — the same observable the
 * simulator's per-thread output log records. Golden-equivalence tests
 * compare this against a 1-thread functional run of the compiled
 * binary, so arithmetic mirrors the ISA semantics in isa/exec.cc
 * exactly (divide-by-zero yields -1, remainder-by-zero the dividend,
 * fp->int conversion truncates).
 *
 * Initial global values are injected as raw 64-bit words (doubles
 * bit-cast), so a test can read them straight out of the MemoryImage a
 * workload initializer filled.
 */

#ifndef MMT_CC_INTERP_HH
#define MMT_CC_INTERP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cc/ast.hh"

namespace mmt
{
namespace cc
{

/** Raw initial words per global (missing entries keep the source
 *  initializer; missing trailing words stay zero). */
using GlobalWords = std::map<std::string, std::vector<std::uint64_t>>;

/**
 * Run `main` single-threaded and return the out() log.
 * fatal()s on out-of-bounds array access, missing main, or runaway
 * execution (step/recursion limits) — the interpreter doubles as a
 * sanity checker for shipped workloads.
 */
std::vector<std::int64_t> interpret(const Module &m,
                                    const GlobalWords &init = {});

} // namespace cc
} // namespace mmt

#endif // MMT_CC_INTERP_HH
