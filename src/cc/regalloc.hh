/**
 * @file
 * Linear-scan register allocation over the mmtc IR.
 *
 * Register conventions (unified MMT-RISC indices, see isa/isa.hh):
 *  - r0 zero, r1 int return, r2-r7 int args, r8-r24 allocatable,
 *    r25-r27 emitter scratch, r28 tid, r29 sp, r30 address scratch,
 *    r31 ra;
 *  - f1 fp return, f2-f7 fp args, f8-f24 allocatable, f25-f27 scratch.
 *
 * Every allocatable register is caller-saved: live intervals that cross
 * a Call are simply assigned stack slots instead (spill-everywhere via
 * the emitter's scratch registers), which keeps calls cheap to emit and
 * is plenty for the kernel-sized programs mmtc targets.
 */

#ifndef MMT_CC_REGALLOC_HH
#define MMT_CC_REGALLOC_HH

#include <vector>

#include "cc/ir.hh"

namespace mmt
{
namespace cc
{

constexpr int kFirstAllocReg = 8;
constexpr int kLastAllocReg = 24;
constexpr int kMaxArgsPerClass = 6; // r2-r7 / f2-f7

/** Where a vreg lives for its whole lifetime. */
struct Location
{
    /** Class-local register number (r<reg> or f<reg>), or -1. */
    int reg = -1;
    /** Stack slot index when reg < 0; slot i sits at 8*(i+1)(sp). */
    int slot = -1;
};

struct Allocation
{
    std::vector<Location> loc; // indexed by vreg
    int numSlots = 0;
    bool hasCalls = false;

    /** Frame bytes: ra home plus the spill slots, or 0 for leaf
     *  functions that spill nothing. */
    int
    frameBytes() const
    {
        if (!hasCalls && numSlots == 0)
            return 0;
        return 8 * (1 + numSlots);
    }
};

/** Allocate registers/slots for every vreg of @p f. */
Allocation allocateRegisters(const IrFunction &f);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_REGALLOC_HH
