#include "cc/parser.hh"

#include <map>
#include <utility>

#include "cc/lexer.hh"
#include "common/logging.hh"

namespace mmt
{
namespace cc
{

namespace
{

class Parser
{
  public:
    Parser(const std::string &source, std::string name)
        : name_(std::move(name)), toks_(lex(source, name_))
    {
    }

    Module
    run()
    {
        Module m;
        m.name = name_;
        module_ = &m;
        while (!at(Tok::End))
            topLevel();
        return m;
    }

  private:
    // ---------------------------------------------------------- helpers --
    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fatal("%s: line %d: %s", name_.c_str(), line, msg.c_str());
    }

    const Token &cur() const { return toks_[pos_]; }
    bool at(Tok k) const { return cur().kind == k; }

    Token
    advance()
    {
        Token t = cur();
        if (t.kind != Tok::End)
            ++pos_;
        return t;
    }

    Token
    expect(Tok k, const char *ctx)
    {
        if (!at(k)) {
            err(cur().line, "expected " + tokName(k) + " " + ctx +
                                ", got " + tokName(cur().kind));
        }
        return advance();
    }

    bool
    accept(Tok k)
    {
        if (!at(k))
            return false;
        advance();
        return true;
    }

    static bool
    isTypeTok(Tok k)
    {
        return k == Tok::KwInt || k == Tok::KwDouble;
    }

    Type
    parseType()
    {
        if (accept(Tok::KwInt))
            return Type::Int;
        if (accept(Tok::KwDouble))
            return Type::Fp;
        err(cur().line, "expected a type, got " + tokName(cur().kind));
    }

    /** Wrap @p e in a Cast to @p want if needed (Int<->Fp only). */
    ExprPtr
    convert(ExprPtr e, Type want, const char *ctx)
    {
        if (e->type == want)
            return e;
        if (e->type == Type::Void || want == Type::Void)
            err(e->line, std::string("void value used ") + ctx);
        auto cast = std::make_unique<Expr>();
        cast->kind = ExprKind::Cast;
        cast->type = want;
        cast->line = e->line;
        cast->a = std::move(e);
        return cast;
    }

    // -------------------------------------------------------- top level --
    void
    topLevel()
    {
        int line = cur().line;
        if (at(Tok::KwVoid)) {
            advance();
            function(Type::Void, line);
            return;
        }
        Type type = parseType();
        Token ident = expect(Tok::Ident, "after type");
        if (at(Tok::LParen)) {
            functionNamed(type, ident, line);
        } else {
            globalVar(type, ident, line);
        }
    }

    void
    function(Type ret, int line)
    {
        Token ident = expect(Tok::Ident, "in function definition");
        functionNamed(ret, ident, line);
    }

    void
    functionNamed(Type ret, const Token &ident, int line)
    {
        if (module_->findFunction(ident.text) ||
            module_->findGlobal(ident.text) || ident.text == "out")
            err(line, "redefinition of '" + ident.text + "'");

        auto fn = std::make_unique<Function>();
        fn->name = ident.text;
        fn->retType = ret;
        fn->line = line;
        fn_ = fn.get();
        scopes_.clear();
        scopes_.emplace_back();

        expect(Tok::LParen, "after function name");
        if (!at(Tok::RParen)) {
            do {
                Type pt = parseType();
                Token pn = expect(Tok::Ident, "in parameter list");
                declareLocal(pn.text, pt, pn.line);
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "after parameters");
        fn->numParams = static_cast<int>(fn->localTypes.size());
        // Register before the body so direct recursion resolves.
        Function *raw = fn.get();
        module_->functions.push_back(std::move(fn));
        raw->body = block();
        scopes_.clear();
        fn_ = nullptr;
    }

    void
    globalVar(Type type, const Token &ident, int line)
    {
        if (module_->findGlobal(ident.text) ||
            module_->findFunction(ident.text) || ident.text == "out")
            err(line, "redefinition of '" + ident.text + "'");
        GlobalVar g;
        g.name = ident.text;
        g.type = type;
        g.line = line;
        if (accept(Tok::LBracket)) {
            Token sz = expect(Tok::IntLit, "as array size");
            if (sz.intVal <= 0)
                err(line, "array size must be positive");
            g.arraySize = static_cast<int>(sz.intVal);
            expect(Tok::RBracket, "after array size");
        }
        if (accept(Tok::Assign)) {
            if (g.arraySize > 0) {
                expect(Tok::LBrace, "to open array initializer");
                if (!at(Tok::RBrace)) {
                    do {
                        constInit(g);
                    } while (accept(Tok::Comma));
                }
                expect(Tok::RBrace, "to close array initializer");
                int given = static_cast<int>(
                    g.type == Type::Int ? g.intInit.size()
                                        : g.fpInit.size());
                if (given > g.arraySize)
                    err(line, "too many initializers for '" + g.name +
                                  "'");
            } else {
                constInit(g);
            }
        }
        expect(Tok::Semi, "after global declaration");
        module_->globals.push_back(std::move(g));
    }

    /** One constant initializer element (sign and literal only). */
    void
    constInit(GlobalVar &g)
    {
        bool neg = accept(Tok::Minus);
        Token t = advance();
        double fv;
        std::int64_t iv;
        if (t.kind == Tok::IntLit) {
            iv = neg ? -t.intVal : t.intVal;
            fv = static_cast<double>(iv);
        } else if (t.kind == Tok::FpLit) {
            fv = neg ? -t.fpVal : t.fpVal;
            iv = static_cast<std::int64_t>(fv);
        } else {
            err(t.line, "expected a constant initializer");
        }
        if (g.type == Type::Int)
            g.intInit.push_back(iv);
        else
            g.fpInit.push_back(fv);
    }

    // ------------------------------------------------------- statements --
    int
    declareLocal(const std::string &lname, Type type, int line)
    {
        auto &scope = scopes_.back();
        if (scope.count(lname))
            err(line, "redeclaration of '" + lname + "' in this scope");
        int id = static_cast<int>(fn_->localTypes.size());
        fn_->localTypes.push_back(type);
        fn_->localNames.push_back(lname);
        scope[lname] = id;
        return id;
    }

    /** Find a local slot; -1 when the name is not a local. */
    int
    lookupLocal(const std::string &lname) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto hit = it->find(lname);
            if (hit != it->end())
                return hit->second;
        }
        return -1;
    }

    StmtPtr
    block()
    {
        int line = expect(Tok::LBrace, "to open block").line;
        scopes_.emplace_back();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Block;
        s->line = line;
        while (!at(Tok::RBrace) && !at(Tok::End))
            s->body.push_back(statement());
        expect(Tok::RBrace, "to close block");
        scopes_.pop_back();
        return s;
    }

    StmtPtr
    statement()
    {
        int line = cur().line;
        if (at(Tok::LBrace))
            return block();
        if (accept(Tok::KwIf)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::If;
            s->line = line;
            expect(Tok::LParen, "after 'if'");
            s->cond = intCond(expression());
            expect(Tok::RParen, "after condition");
            s->body.push_back(statement());
            if (accept(Tok::KwElse))
                s->body.push_back(statement());
            return s;
        }
        if (accept(Tok::KwWhile)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::While;
            s->line = line;
            expect(Tok::LParen, "after 'while'");
            s->cond = intCond(expression());
            expect(Tok::RParen, "after condition");
            ++loopDepth_;
            s->body.push_back(statement());
            --loopDepth_;
            return s;
        }
        if (accept(Tok::KwFor)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::For;
            s->line = line;
            expect(Tok::LParen, "after 'for'");
            scopes_.emplace_back(); // scope of a for-init declaration
            if (!at(Tok::Semi))
                s->init = simpleStatement();
            expect(Tok::Semi, "after for-init");
            if (!at(Tok::Semi))
                s->cond = intCond(expression());
            expect(Tok::Semi, "after for-condition");
            if (!at(Tok::RParen))
                s->step = simpleStatement();
            expect(Tok::RParen, "after for-step");
            ++loopDepth_;
            s->body.push_back(statement());
            --loopDepth_;
            scopes_.pop_back();
            return s;
        }
        if (accept(Tok::KwReturn)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::Return;
            s->line = line;
            if (!at(Tok::Semi)) {
                if (fn_->retType == Type::Void)
                    err(line, "return with a value in void function '" +
                                  fn_->name + "'");
                s->value = convert(expression(), fn_->retType,
                                   "in return");
            } else if (fn_->retType != Type::Void) {
                err(line, "return without a value in non-void function '" +
                              fn_->name + "'");
            }
            expect(Tok::Semi, "after return");
            return s;
        }
        if (accept(Tok::KwBreak)) {
            if (loopDepth_ == 0)
                err(line, "'break' outside a loop");
            expect(Tok::Semi, "after 'break'");
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::Break;
            s->line = line;
            return s;
        }
        if (accept(Tok::KwContinue)) {
            if (loopDepth_ == 0)
                err(line, "'continue' outside a loop");
            expect(Tok::Semi, "after 'continue'");
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::Continue;
            s->line = line;
            return s;
        }
        StmtPtr s = simpleStatement();
        expect(Tok::Semi, "after statement");
        return s;
    }

    /** Declaration, assignment or call — the for-clause statement forms. */
    StmtPtr
    simpleStatement()
    {
        int line = cur().line;
        if (isTypeTok(cur().kind)) {
            Type type = parseType();
            Token ident = expect(Tok::Ident, "in declaration");
            if (at(Tok::LBracket))
                err(line, "local arrays are not supported; declare '" +
                              ident.text + "' as a global");
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::LocalDecl;
            s->line = line;
            s->name = ident.text;
            if (accept(Tok::Assign))
                s->value = convert(expression(), type, "in initializer");
            // Declare after the initializer so `int x = x;` is an error.
            s->varId = declareLocal(ident.text, type, line);
            return s;
        }
        Token ident = expect(Tok::Ident, "to start statement");
        if (at(Tok::LParen))
            return callStatement(ident, line);
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Assign;
        s->line = line;
        s->name = ident.text;
        Type target_type;
        if (accept(Tok::LBracket)) {
            const GlobalVar *g = module_->findGlobal(ident.text);
            if (!g || g->arraySize == 0)
                err(line, "'" + ident.text + "' is not a global array");
            s->index = convert(expression(), Type::Int, "as array index");
            expect(Tok::RBracket, "after array index");
            s->varId = -1;
            target_type = g->type;
        } else {
            int local = lookupLocal(ident.text);
            if (local >= 0) {
                s->varId = local;
                target_type = fn_->localTypes[local];
            } else {
                const GlobalVar *g = module_->findGlobal(ident.text);
                if (!g)
                    err(line, "assignment to undeclared '" + ident.text +
                                  "'");
                if (g->arraySize > 0)
                    err(line, "cannot assign whole array '" + ident.text +
                                  "'");
                s->varId = -1;
                target_type = g->type;
            }
        }
        expect(Tok::Assign, "in assignment");
        s->value = convert(expression(), target_type, "in assignment");
        return s;
    }

    StmtPtr
    callStatement(const Token &ident, int line)
    {
        auto s = std::make_unique<Stmt>();
        s->line = line;
        if (ident.text == "out") {
            expect(Tok::LParen, "after 'out'");
            s->kind = StmtKind::Out;
            s->value = convert(expression(), Type::Int, "in out()");
            expect(Tok::RParen, "after out argument");
            return s;
        }
        s->kind = StmtKind::ExprStmt;
        s->value = callExpr(ident, line, /*need_value=*/false);
        return s;
    }

    // ------------------------------------------------------ expressions --
    ExprPtr
    intCond(ExprPtr e)
    {
        if (e->type != Type::Int)
            err(e->line, "condition must be an int expression "
                         "(use a comparison for doubles)");
        return e;
    }

    ExprPtr expression() { return orExpr(); }

    ExprPtr
    binary(BinOp op, ExprPtr a, ExprPtr b, int line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->op = op;
        e->line = line;
        bool logical = op == BinOp::LAnd || op == BinOp::LOr;
        bool compare = op == BinOp::Eq || op == BinOp::Ne ||
                       op == BinOp::Lt || op == BinOp::Le ||
                       op == BinOp::Gt || op == BinOp::Ge;
        if (logical) {
            e->a = intCond(std::move(a));
            e->b = intCond(std::move(b));
            e->type = Type::Int;
        } else if (a->type == Type::Fp || b->type == Type::Fp) {
            if (op == BinOp::Rem)
                err(line, "'%' requires int operands");
            e->a = convert(std::move(a), Type::Fp, "in arithmetic");
            e->b = convert(std::move(b), Type::Fp, "in arithmetic");
            e->type = compare ? Type::Int : Type::Fp;
        } else {
            e->a = std::move(a);
            e->b = std::move(b);
            e->type = Type::Int;
        }
        return e;
    }

    ExprPtr
    orExpr()
    {
        ExprPtr e = andExpr();
        while (at(Tok::OrOr)) {
            int line = advance().line;
            e = binary(BinOp::LOr, std::move(e), andExpr(), line);
        }
        return e;
    }

    ExprPtr
    andExpr()
    {
        ExprPtr e = eqExpr();
        while (at(Tok::AndAnd)) {
            int line = advance().line;
            e = binary(BinOp::LAnd, std::move(e), eqExpr(), line);
        }
        return e;
    }

    ExprPtr
    eqExpr()
    {
        ExprPtr e = relExpr();
        while (at(Tok::Eq) || at(Tok::Ne)) {
            BinOp op = at(Tok::Eq) ? BinOp::Eq : BinOp::Ne;
            int line = advance().line;
            e = binary(op, std::move(e), relExpr(), line);
        }
        return e;
    }

    ExprPtr
    relExpr()
    {
        ExprPtr e = addExpr();
        for (;;) {
            BinOp op;
            if (at(Tok::Lt))
                op = BinOp::Lt;
            else if (at(Tok::Le))
                op = BinOp::Le;
            else if (at(Tok::Gt))
                op = BinOp::Gt;
            else if (at(Tok::Ge))
                op = BinOp::Ge;
            else
                return e;
            int line = advance().line;
            e = binary(op, std::move(e), addExpr(), line);
        }
    }

    ExprPtr
    addExpr()
    {
        ExprPtr e = mulExpr();
        while (at(Tok::Plus) || at(Tok::Minus)) {
            BinOp op = at(Tok::Plus) ? BinOp::Add : BinOp::Sub;
            int line = advance().line;
            e = binary(op, std::move(e), mulExpr(), line);
        }
        return e;
    }

    ExprPtr
    mulExpr()
    {
        ExprPtr e = unary();
        for (;;) {
            BinOp op;
            if (at(Tok::Star))
                op = BinOp::Mul;
            else if (at(Tok::Slash))
                op = BinOp::Div;
            else if (at(Tok::Percent))
                op = BinOp::Rem;
            else
                return e;
            int line = advance().line;
            e = binary(op, std::move(e), unary(), line);
        }
    }

    ExprPtr
    unary()
    {
        int line = cur().line;
        if (accept(Tok::Minus)) {
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Neg;
            e->line = line;
            e->a = unary();
            if (e->a->type == Type::Void)
                err(line, "void value negated");
            e->type = e->a->type;
            return e;
        }
        if (accept(Tok::Not)) {
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Not;
            e->line = line;
            e->a = intCond(unary());
            e->type = Type::Int;
            return e;
        }
        // Function-style casts: int(e), double(e).
        if (isTypeTok(cur().kind) && toks_[pos_ + 1].kind == Tok::LParen) {
            Type want = parseType();
            expect(Tok::LParen, "in cast");
            ExprPtr inner = expression();
            expect(Tok::RParen, "in cast");
            if (inner->type == want)
                return inner;
            return convert(std::move(inner), want, "in cast");
        }
        return primary();
    }

    ExprPtr
    primary()
    {
        int line = cur().line;
        if (at(Tok::IntLit)) {
            Token t = advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::IntLit;
            e->type = Type::Int;
            e->line = line;
            e->intVal = t.intVal;
            return e;
        }
        if (at(Tok::FpLit)) {
            Token t = advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::FpLit;
            e->type = Type::Fp;
            e->line = line;
            e->fpVal = t.fpVal;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = expression();
            expect(Tok::RParen, "to close parenthesis");
            return e;
        }
        Token ident = expect(Tok::Ident, "in expression");
        if (at(Tok::LParen))
            return callExpr(ident, line, /*need_value=*/true);
        if (accept(Tok::LBracket)) {
            const GlobalVar *g = module_->findGlobal(ident.text);
            if (!g || g->arraySize == 0)
                err(line, "'" + ident.text + "' is not a global array");
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::ArrayRef;
            e->type = g->type;
            e->line = line;
            e->name = ident.text;
            e->a = convert(expression(), Type::Int, "as array index");
            expect(Tok::RBracket, "after array index");
            return e;
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::VarRef;
        e->line = line;
        e->name = ident.text;
        int local = lookupLocal(ident.text);
        if (local >= 0) {
            e->varId = local;
            e->type = fn_->localTypes[local];
            return e;
        }
        const GlobalVar *g = module_->findGlobal(ident.text);
        if (!g)
            err(line, "use of undeclared '" + ident.text + "'");
        if (g->arraySize > 0)
            err(line, "array '" + ident.text + "' used without an index");
        e->varId = -1;
        e->type = g->type;
        return e;
    }

    ExprPtr
    callExpr(const Token &ident, int line, bool need_value)
    {
        if (ident.text == "out")
            err(line, "out() is a statement, not an expression");
        const Function *callee = module_->findFunction(ident.text);
        if (!callee)
            err(line, "call to undeclared function '" + ident.text + "'");
        if (need_value && callee->retType == Type::Void)
            err(line, "void function '" + ident.text +
                          "' used in an expression");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Call;
        e->type = callee->retType;
        e->line = line;
        e->name = ident.text;
        expect(Tok::LParen, "after function name");
        if (!at(Tok::RParen)) {
            do {
                e->args.push_back(expression());
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "after call arguments");
        if (static_cast<int>(e->args.size()) != callee->numParams) {
            err(line, "'" + ident.text + "' expects " +
                          std::to_string(callee->numParams) +
                          " argument(s), got " +
                          std::to_string(e->args.size()));
        }
        for (int i = 0; i < callee->numParams; ++i) {
            e->args[static_cast<std::size_t>(i)] =
                convert(std::move(e->args[static_cast<std::size_t>(i)]),
                        callee->localTypes[static_cast<std::size_t>(i)],
                        "in call argument");
        }
        return e;
    }

    std::string name_;
    std::vector<Token> toks_;
    std::size_t pos_ = 0;
    Module *module_ = nullptr;
    Function *fn_ = nullptr;
    std::vector<std::map<std::string, int>> scopes_;
    int loopDepth_ = 0;
};

} // namespace

Module
parse(const std::string &source, const std::string &name)
{
    return Parser(source, name).run();
}

} // namespace cc
} // namespace mmt
