/**
 * @file
 * Auto-SPMDization: rewrite provably-parallel counted loops in `main` so
 * the iteration space is sliced across hardware thread ids, leaving the
 * rest of the program to execute redundantly on every thread (which is
 * exactly the redundancy MMT's fetch/execution merging exploits).
 *
 * A sliced loop `for (iv = init; iv < bound; iv += C)` becomes
 *
 *     iv   = init + tid * C          (preheader)
 *     ...  loop body unchanged ...
 *     iv  += C * nthreads            (latch)
 *     BARRIER                        (re-convergence join on exit)
 *
 * `nthreads` is a data word the workload initializer overwrites with the
 * live thread count, so one binary serves every thread configuration.
 * `+`-reductions are supported through per-thread scratch slots combined
 * redundantly after the join barrier. Loops that cannot be proven safe
 * are left untouched; the pass reports what it sliced and tags global
 * accesses inside accepted loops (IrInst::sliced). Cross-thread hazard
 * warnings are produced by the driver (cc/compiler.cc), which runs the
 * barrier-aware race analyzer (analysis/race.hh) over the emitted
 * assembly and classifies each may-race pair using the sliced tags.
 */

#ifndef MMT_CC_SPMD_HH
#define MMT_CC_SPMD_HH

#include <string>
#include <vector>

#include "cc/ir.hh"

namespace mmt
{
namespace cc
{

/** Symbol holding the live thread count (set by workload init). */
extern const char *const kNumThreadsSym;

/** One loop the pass rewrote. */
struct SlicedLoop
{
    int line = 0;       // source line of the loop header compare
    int reductions = 0; // number of `+`-reduction variables handled
};

struct SpmdResult
{
    std::vector<SlicedLoop> sliced;
    /** Human-readable notes about loops that were *not* sliced. */
    std::vector<std::string> rejected;
    /** Possible cross-thread hazards in redundant code: may-race pairs
     *  from the static race analysis that the driver could not justify
     *  as benign (filled by cc::compile, not the SPMD pass itself). */
    std::vector<std::string> warnings;
};

/**
 * Run the pass over @p m (only `main` is considered for slicing).
 * Adds the `nthreads` global (and reduction scratch arrays) on demand.
 */
SpmdResult spmdize(IrModule &m);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_SPMD_HH
