#include "cc/spmd.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "cc/loop.hh"
#include "common/types.hh"

namespace mmt
{
namespace cc
{

const char *const kNumThreadsSym = "nthreads";

namespace
{

const char *const kScratchPrefix = "__mmtc_red";

bool
isScratchSym(const std::string &sym)
{
    return sym.rfind(kScratchPrefix, 0) == 0;
}

/**
 * Affine form of an index value inside one loop:
 * indvarCoeff * iv + sum(terms[v] * v) + constant, with every term vreg
 * loop-invariant. `ok == false` means "could not prove affine".
 */
struct Affine
{
    bool ok = false;
    std::int64_t indvarCoeff = 0;
    std::int64_t constant = 0;
    std::map<int, std::int64_t> terms;
    /**
     * Loads of scalar globals, keyed by symbol so two loads of the same
     * global unify. Sound because a scalar global stored anywhere inside
     * the loop disqualifies the candidate before these forms are
     * compared.
     */
    std::map<std::string, std::int64_t> symTerms;

    bool
    operator==(const Affine &o) const
    {
        return ok && o.ok && indvarCoeff == o.indvarCoeff &&
               constant == o.constant && terms == o.terms &&
               symTerms == o.symTerms;
    }
};

/** A recognized `+`-reduction variable of one candidate loop. */
struct Reduction
{
    int vreg = -1;
    Type type = Type::Int;
};

struct Candidate
{
    LoopInfo loop;
    std::vector<Reduction> reductions;
};

class SpmdPass
{
  public:
    explicit SpmdPass(IrModule &m) : m_(m) {}

    SpmdResult
    run()
    {
        IrFunction *main = m_.findFunction("main");
        if (main && checkNthreadsUsable())
            sliceFunction(*main);
        if (main)
            markSliced(*main);
        return std::move(result_);
    }

  private:
    IrModule &m_;
    SpmdResult result_;
    std::vector<Candidate> accepted_;
    int scratchCounter_ = 0;

    void
    warn(const std::string &msg)
    {
        if (std::find(result_.warnings.begin(), result_.warnings.end(),
                      msg) == result_.warnings.end())
            result_.warnings.push_back(msg);
    }

    GlobalVar *
    findGlobal(const std::string &sym)
    {
        for (GlobalVar &g : m_.globals)
            if (g.name == sym)
                return &g;
        return nullptr;
    }

    /**
     * The `nthreads` word must be usable as the live thread count: an
     * int scalar (declared by the program or synthesized here) that the
     * program never writes.
     */
    bool
    checkNthreadsUsable()
    {
        for (const IrFunction &f : m_.functions)
            for (const IrBlock &b : f.blocks)
                for (const IrInst &inst : b.insts)
                    if (inst.op == IrOp::StoreG && inst.sym == kNumThreadsSym) {
                        warn("program writes 'nthreads'; SPMD slicing "
                             "disabled");
                        return false;
                    }
        const GlobalVar *g = findGlobal(kNumThreadsSym);
        if (g && (g->type != Type::Int || g->arraySize != 0)) {
            warn("'nthreads' must be an int scalar to enable SPMD slicing");
            return false;
        }
        return true;
    }

    // ----- candidate selection ---------------------------------------

    void
    sliceFunction(IrFunction &f)
    {
        std::vector<LoopInfo> loops = findLoops(f);
        Liveness lv = computeLiveness(f);
        auto dom = computeDominators(f);

        // Outermost-first (findLoops order); loops nested inside an
        // accepted candidate stay untouched.
        for (LoopInfo &loop : loops) {
            bool insideAccepted = false;
            for (const Candidate &c : accepted_)
                if (c.loop.contains(loop.header))
                    insideAccepted = true;
            if (insideAccepted)
                continue;
            Candidate cand;
            cand.loop = loop;
            std::string reason;
            if (checkCandidate(f, lv, dom, cand, reason)) {
                accepted_.push_back(std::move(cand));
            } else {
                std::ostringstream os;
                os << "loop at line " << loopLine(f, loop)
                   << " not sliced: " << reason;
                result_.rejected.push_back(os.str());
            }
        }

        for (Candidate &c : accepted_)
            transform(f, c);
    }

    static int
    loopLine(const IrFunction &f, const LoopInfo &loop)
    {
        const IrBlock &hdr = f.blocks[static_cast<std::size_t>(loop.header)];
        return hdr.insts.empty() ? 0 : hdr.insts.back().line;
    }

    bool
    checkCandidate(const IrFunction &f, const Liveness &lv,
                   const std::vector<std::vector<bool>> &dom, Candidate &cand,
                   std::string &reason)
    {
        const LoopInfo &loop = cand.loop;
        if (loop.indvar < 0) {
            reason = "no canonical induction variable "
                     "(iv = init; iv < bound; iv += C)";
            return false;
        }

        // The bound must be loop-invariant.
        Affine bound = affineOf(f, loop, dom, loop.boundVreg, loop.header,
                                blockLen(f, loop.header) - 1);
        if (!bound.ok || bound.indvarCoeff != 0) {
            reason = "loop bound is not loop-invariant";
            return false;
        }

        // No side-effecting or thread-dependent instructions inside.
        for (int b : loop.blocks) {
            const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
            for (const IrInst &inst : blk.insts) {
                switch (inst.op) {
                  case IrOp::Call:
                    reason = "calls a function inside the loop";
                    return false;
                  case IrOp::Out:
                    reason = "out() inside the loop";
                    return false;
                  case IrOp::Barrier:
                  case IrOp::ReadTid:
                    reason = "already thread-dependent";
                    return false;
                  default:
                    break;
                }
            }
        }

        // Stores: global arrays only, one affine-in-iv index form per
        // array so the slices write disjoint elements.
        std::map<std::string, Affine> storeForm;
        for (int b : loop.blocks) {
            const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
            for (std::size_t i = 0; i < blk.insts.size(); ++i) {
                const IrInst &inst = blk.insts[i];
                if (inst.op != IrOp::StoreG)
                    continue;
                const GlobalVar *g = nullptr;
                for (const GlobalVar &gv : m_.globals)
                    if (gv.name == inst.sym)
                        g = &gv;
                if (!g || g->arraySize == 0 || inst.a < 0) {
                    reason = "stores a scalar global ('" + inst.sym + "')";
                    return false;
                }
                Affine form = affineOf(f, loop, dom, inst.a, b,
                                       static_cast<int>(i));
                if (!form.ok || form.indvarCoeff == 0) {
                    reason = "store index into '" + inst.sym +
                             "' is not affine in the induction variable";
                    return false;
                }
                auto it = storeForm.find(inst.sym);
                if (it == storeForm.end()) {
                    storeForm.emplace(inst.sym, form);
                } else if (!(it->second == form)) {
                    reason = "stores '" + inst.sym +
                             "' with two different index forms";
                    return false;
                }
            }
        }

        // Loads from arrays the loop also stores must use the exact
        // store index (read-your-own-slice); other arrays are free.
        for (int b : loop.blocks) {
            const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
            for (std::size_t i = 0; i < blk.insts.size(); ++i) {
                const IrInst &inst = blk.insts[i];
                if (inst.op != IrOp::LoadG)
                    continue;
                auto it = storeForm.find(inst.sym);
                if (it == storeForm.end())
                    continue;
                Affine form = affineOf(f, loop, dom, inst.a, b,
                                       static_cast<int>(i));
                if (!(form == it->second)) {
                    reason = "loads '" + inst.sym +
                             "' which the loop stores elsewhere";
                    return false;
                }
            }
        }

        // Scalars written in the loop must be iteration-private unless
        // they form a `+`-reduction; the induction variable must die at
        // the exit.
        std::set<int> defined;
        for (int b : loop.blocks)
            for (const IrInst &inst : f.blocks[static_cast<std::size_t>(b)].insts)
                if (instDef(inst) >= 0)
                    defined.insert(instDef(inst));

        auto hdr = static_cast<std::size_t>(loop.header);
        auto exitBlk = static_cast<std::size_t>(loop.exitTarget);
        for (int v : defined) {
            auto vi = static_cast<std::size_t>(v);
            if (v == loop.indvar) {
                if (lv.liveIn[exitBlk][vi]) {
                    reason = "induction variable is used after the loop";
                    return false;
                }
                continue;
            }
            if (!lv.liveIn[hdr][vi] && !lv.liveIn[exitBlk][vi])
                continue; // iteration-private temp or local
            Reduction red;
            if (!matchReduction(f, loop, v, red)) {
                std::ostringstream os;
                os << "scalar v" << v
                   << " is loop-carried and not a +-reduction";
                reason = os.str();
                return false;
            }
            cand.reductions.push_back(red);
        }
        return true;
    }

    static int
    blockLen(const IrFunction &f, int b)
    {
        return static_cast<int>(f.blocks[static_cast<std::size_t>(b)].insts.size());
    }

    /**
     * Affine form of vreg @p v as observed at use site (@p useBlock,
     * @p useIdx). Values defined inside the loop are followed only when
     * their single in-loop definition dominates the use site, so the
     * form is valid on every iteration.
     */
    Affine
    affineOf(const IrFunction &f, const LoopInfo &loop,
             const std::vector<std::vector<bool>> &dom, int v, int useBlock,
             int useIdx, int fuel = 32) const
    {
        Affine a;
        if (v < 0 || fuel <= 0)
            return a;
        if (v == loop.indvar) {
            a.ok = true;
            a.indvarCoeff = 1;
            return a;
        }

        const IrInst *def = nullptr;
        int defBlock = -1;
        int defIdx = -1;
        for (int b : loop.blocks) {
            const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
            for (std::size_t i = 0; i < blk.insts.size(); ++i) {
                if (instDef(blk.insts[i]) != v)
                    continue;
                if (def)
                    return a; // several in-loop defs: not analyzable
                def = &blk.insts[i];
                defBlock = b;
                defIdx = static_cast<int>(i);
            }
        }
        if (!def) {
            // No definition inside the loop: loop-invariant symbol.
            a.ok = true;
            a.terms[v] = 1;
            return a;
        }

        bool dominates =
            defBlock == useBlock
                ? defIdx < useIdx
                : dom[static_cast<std::size_t>(useBlock)]
                     [static_cast<std::size_t>(defBlock)];
        if (!dominates)
            return a;

        auto sub = [&](int opnd) {
            return affineOf(f, loop, dom, opnd, defBlock, defIdx, fuel - 1);
        };
        switch (def->op) {
          case IrOp::ConstI:
            a.ok = true;
            a.constant = def->imm;
            return a;
          case IrOp::Mov:
            return sub(def->a);
          case IrOp::Add:
          case IrOp::Sub: {
            Affine lhs = sub(def->a);
            Affine rhs = sub(def->b);
            if (!lhs.ok || !rhs.ok)
                return a;
            std::int64_t sign = def->op == IrOp::Add ? 1 : -1;
            a = lhs;
            a.indvarCoeff += sign * rhs.indvarCoeff;
            a.constant += sign * rhs.constant;
            for (const auto &t : rhs.terms) {
                a.terms[t.first] += sign * t.second;
                if (a.terms[t.first] == 0)
                    a.terms.erase(t.first);
            }
            for (const auto &t : rhs.symTerms) {
                a.symTerms[t.first] += sign * t.second;
                if (a.symTerms[t.first] == 0)
                    a.symTerms.erase(t.first);
            }
            return a;
          }
          case IrOp::Mul: {
            Affine lhs = sub(def->a);
            Affine rhs = sub(def->b);
            if (!lhs.ok || !rhs.ok)
                return a;
            // One side must be a plain constant.
            const Affine *cst = nullptr;
            const Affine *var = nullptr;
            if (lhs.indvarCoeff == 0 && lhs.terms.empty() &&
                lhs.symTerms.empty()) {
                cst = &lhs;
                var = &rhs;
            } else if (rhs.indvarCoeff == 0 && rhs.terms.empty() &&
                       rhs.symTerms.empty()) {
                cst = &rhs;
                var = &lhs;
            } else {
                return a;
            }
            a = *var;
            a.indvarCoeff *= cst->constant;
            a.constant *= cst->constant;
            for (auto &t : a.terms)
                t.second *= cst->constant;
            for (auto &t : a.symTerms)
                t.second *= cst->constant;
            return a;
          }
          case IrOp::LoadG:
            // A load of a scalar global is invariant for any candidate
            // we accept: in-loop scalar stores reject the loop outright.
            if (def->a < 0) {
                a.ok = true;
                a.symTerms[def->sym] = 1;
            }
            return a;
          default:
            return a;
        }
    }

    /**
     * `v` qualifies as a reduction when its only in-loop write is
     * `v = v + e` (Add or FAdd), `v` is not read anywhere else in the
     * loop, and `v` is zero-initialized in the preheader (the partials
     * are combined by plain summation).
     */
    bool
    matchReduction(const IrFunction &f, const LoopInfo &loop, int v,
                   Reduction &red) const
    {
        const IrInst *mov = nullptr;
        int movBlock = -1;
        int movIdx = -1;
        for (int b : loop.blocks) {
            const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
            for (std::size_t i = 0; i < blk.insts.size(); ++i) {
                if (instDef(blk.insts[i]) != v)
                    continue;
                if (mov)
                    return false;
                mov = &blk.insts[i];
                movBlock = b;
                movIdx = static_cast<int>(i);
            }
        }
        if (!mov || mov->op != IrOp::Mov)
            return false;

        // The moved value: Add/FAdd with v as one operand, defined in
        // the same block right before the Mov.
        const IrBlock &blk = f.blocks[static_cast<std::size_t>(movBlock)];
        const IrInst *add = nullptr;
        for (int i = 0; i < movIdx; ++i)
            if (instDef(blk.insts[static_cast<std::size_t>(i)]) == mov->a)
                add = &blk.insts[static_cast<std::size_t>(i)];
        if (!add || (add->op != IrOp::Add && add->op != IrOp::FAdd))
            return false;
        if (add->a != v && add->b != v)
            return false;

        // Every in-loop read of v must be that one Add.
        for (int b : loop.blocks) {
            for (const IrInst &inst :
                 f.blocks[static_cast<std::size_t>(b)].insts) {
                if (&inst == add)
                    continue;
                for (int u : instUses(inst))
                    if (u == v)
                        return false;
            }
        }

        // Zero-initialized in the preheader (last def wins).
        const IrBlock &pre =
            f.blocks[static_cast<std::size_t>(loop.preheader)];
        const IrInst *init = nullptr;
        for (const IrInst &inst : pre.insts)
            if (instDef(inst) == v)
                init = &inst;
        if (!init || init->op != IrOp::Mov)
            return false;
        const IrInst *cst = nullptr;
        for (const IrInst &inst : pre.insts) {
            if (&inst == init)
                break;
            if (instDef(inst) == init->a)
                cst = &inst;
        }
        bool zero = cst && ((cst->op == IrOp::ConstI && cst->imm == 0) ||
                            (cst->op == IrOp::ConstF && cst->fimm == 0.0));
        if (!zero)
            return false;

        red.vreg = v;
        red.type = f.vregTypes[static_cast<std::size_t>(v)];
        return true;
    }

    // ----- transformation --------------------------------------------

    void
    transform(IrFunction &f, Candidate &cand)
    {
        const LoopInfo &loop = cand.loop;
        if (!findGlobal(kNumThreadsSym)) {
            GlobalVar g;
            g.name = kNumThreadsSym;
            g.type = Type::Int;
            g.intInit.push_back(1);
            m_.globals.push_back(g);
        }

        int line = loopLine(f, loop);
        auto mk = [line](IrOp op) {
            IrInst inst;
            inst.op = op;
            inst.line = line;
            return inst;
        };

        // Preheader: iv += tid * C, and the per-iteration stride C * T.
        int tid = f.newTemp(Type::Int);
        int nthr = f.newTemp(Type::Int);
        int stepc = f.newTemp(Type::Int);
        int off = f.newTemp(Type::Int);
        int shifted = f.newTemp(Type::Int);
        int stride = f.newTemp(Type::Int);
        std::vector<IrInst> ins;
        {
            IrInst i1 = mk(IrOp::ReadTid);
            i1.dst = tid;
            ins.push_back(i1);
            IrInst i2 = mk(IrOp::LoadG);
            i2.dst = nthr;
            i2.sym = kNumThreadsSym;
            ins.push_back(i2);
            IrInst i3 = mk(IrOp::ConstI);
            i3.dst = stepc;
            i3.imm = loop.step;
            ins.push_back(i3);
            IrInst i4 = mk(IrOp::Mul);
            i4.dst = off;
            i4.a = tid;
            i4.b = stepc;
            ins.push_back(i4);
            IrInst i5 = mk(IrOp::Add);
            i5.dst = shifted;
            i5.a = loop.indvar;
            i5.b = off;
            ins.push_back(i5);
            IrInst i6 = mk(IrOp::Mov);
            i6.dst = loop.indvar;
            i6.a = shifted;
            ins.push_back(i6);
            IrInst i7 = mk(IrOp::Mul);
            i7.dst = stride;
            i7.a = nthr;
            i7.b = stepc;
            ins.push_back(i7);
        }
        IrBlock &pre = f.blocks[static_cast<std::size_t>(loop.preheader)];
        pre.insts.insert(pre.insts.end() - 1, ins.begin(), ins.end());

        // Latch: iv += C becomes iv += C * T.
        IrBlock &latch = f.blocks[static_cast<std::size_t>(loop.latch)];
        IrInst &add = latch.insts[static_cast<std::size_t>(loop.stepAddIdx)];
        if (add.a == loop.indvar)
            add.b = stride;
        else
            add.a = stride;

        // Join block on the exit edge: reduction spill, BARRIER, then a
        // redundant combine loop leaving identical totals everywhere.
        int jb = static_cast<int>(f.blocks.size());
        f.blocks.emplace_back();
        IrBlock &hdrBlk = f.blocks[static_cast<std::size_t>(loop.header)];
        hdrBlk.insts.back().targetF = jb;

        std::vector<std::string> scratch;
        for (const Reduction &red : cand.reductions) {
            GlobalVar g;
            g.name = kScratchPrefix + std::to_string(scratchCounter_++);
            g.type = red.type;
            g.arraySize = maxThreads;
            m_.globals.push_back(g);
            scratch.push_back(g.name);

            IrInst st = mk(IrOp::StoreG);
            st.sym = g.name;
            st.a = tid;
            st.b = red.vreg;
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(st);
        }
        f.blocks[static_cast<std::size_t>(jb)].insts.push_back(
            mk(IrOp::Barrier));

        if (cand.reductions.empty()) {
            IrInst br = mk(IrOp::Br);
            br.target = loop.exitTarget;
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(br);
        } else {
            emitCombine(f, cand, scratch, jb, nthr, mk);
        }

        SlicedLoop info;
        info.line = line;
        info.reductions = static_cast<int>(cand.reductions.size());
        result_.sliced.push_back(info);
    }

    /** Reset each reduction to zero and re-sum all per-thread partials
     *  (every thread redundantly, ending with identical totals). */
    template <typename Mk>
    void
    emitCombine(IrFunction &f, const Candidate &cand,
                const std::vector<std::string> &scratch, int jb, int nthr,
                Mk mk)
    {
        for (const Reduction &red : cand.reductions) {
            IrInst z = red.type == Type::Fp ? mk(IrOp::ConstF)
                                            : mk(IrOp::ConstI);
            z.dst = f.newTemp(red.type);
            IrInst mv = mk(IrOp::Mov);
            mv.dst = red.vreg;
            mv.a = z.dst;
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(z);
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(mv);
        }
        int cnt = f.newTemp(Type::Int);
        {
            IrInst z = mk(IrOp::ConstI);
            z.dst = f.newTemp(Type::Int);
            IrInst mv = mk(IrOp::Mov);
            mv.dst = cnt;
            mv.a = z.dst;
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(z);
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(mv);
        }

        int ch = static_cast<int>(f.blocks.size());
        f.blocks.emplace_back();
        int cb = static_cast<int>(f.blocks.size());
        f.blocks.emplace_back();
        int ex = static_cast<int>(f.blocks.size());
        f.blocks.emplace_back();

        {
            IrInst br = mk(IrOp::Br);
            br.target = ch;
            f.blocks[static_cast<std::size_t>(jb)].insts.push_back(br);
        }
        {
            IrInst cmp = mk(IrOp::CmpLT);
            cmp.dst = f.newTemp(Type::Int);
            cmp.a = cnt;
            cmp.b = nthr;
            IrInst br = mk(IrOp::CondBr);
            br.a = cmp.dst;
            br.target = cb;
            br.targetF = ex;
            f.blocks[static_cast<std::size_t>(ch)].insts.push_back(cmp);
            f.blocks[static_cast<std::size_t>(ch)].insts.push_back(br);
        }
        {
            IrBlock &body = f.blocks[static_cast<std::size_t>(cb)];
            for (std::size_t k = 0; k < cand.reductions.size(); ++k) {
                const Reduction &red = cand.reductions[k];
                IrInst ld = mk(IrOp::LoadG);
                ld.dst = f.newTemp(red.type);
                ld.sym = scratch[k];
                ld.a = cnt;
                IrInst sum =
                    red.type == Type::Fp ? mk(IrOp::FAdd) : mk(IrOp::Add);
                sum.dst = f.newTemp(red.type);
                sum.a = red.vreg;
                sum.b = ld.dst;
                IrInst mv = mk(IrOp::Mov);
                mv.dst = red.vreg;
                mv.a = sum.dst;
                body.insts.push_back(ld);
                body.insts.push_back(sum);
                body.insts.push_back(mv);
            }
            IrInst one = mk(IrOp::ConstI);
            one.dst = f.newTemp(Type::Int);
            one.imm = 1;
            IrInst next = mk(IrOp::Add);
            next.dst = f.newTemp(Type::Int);
            next.a = cnt;
            next.b = one.dst;
            IrInst mv = mk(IrOp::Mov);
            mv.dst = cnt;
            mv.a = next.dst;
            IrInst br = mk(IrOp::Br);
            br.target = ch;
            body.insts.push_back(one);
            body.insts.push_back(next);
            body.insts.push_back(mv);
            body.insts.push_back(br);
        }
        {
            IrInst br = mk(IrOp::Br);
            br.target = cand.loop.exitTarget;
            f.blocks[static_cast<std::size_t>(ex)].insts.push_back(br);
        }
    }

    // ----- sliced-access marking -------------------------------------

    /**
     * Tag every global access inside an accepted loop as sliced. The
     * emitter forwards the tag on the generated memory line, and the
     * driver's race-annotation pass (cc/compiler.cc) uses it to tell
     * compiler-asserted disjoint slices from genuinely redundant
     * accesses — the cross-thread hazard scan itself now runs on the
     * emitted assembly through the barrier-aware race analyzer
     * (analysis/race.hh) instead of an ad-hoc IR walk here.
     */
    void
    markSliced(IrFunction &main)
    {
        for (std::size_t b = 0; b < main.blocks.size(); ++b) {
            bool sliced = false;
            for (const Candidate &c : accepted_)
                if (c.loop.contains(static_cast<int>(b)))
                    sliced = true;
            if (!sliced)
                continue;
            for (IrInst &inst : main.blocks[b].insts) {
                if (inst.op == IrOp::LoadG || inst.op == IrOp::StoreG)
                    inst.sliced = true;
            }
        }
    }
};

} // namespace

SpmdResult
spmdize(IrModule &m)
{
    return SpmdPass(m).run();
}

} // namespace cc
} // namespace mmt
