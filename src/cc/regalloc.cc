#include "cc/regalloc.hh"

#include <algorithm>

namespace mmt
{
namespace cc
{
namespace
{

struct Interval
{
    int vreg = -1;
    int start = -1;
    int end = -1;
    bool crossesCall = false;
};

} // namespace

Allocation
allocateRegisters(const IrFunction &f)
{
    const std::size_t nv = f.vregTypes.size();
    Allocation alloc;
    alloc.loc.assign(nv, Location());

    Liveness lv = computeLiveness(f);

    // Global instruction numbering in block-layout order.
    std::vector<int> blockStart(f.blocks.size(), 0);
    int pos = 0;
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
        blockStart[b] = pos;
        pos += static_cast<int>(f.blocks[b].insts.size());
    }

    std::vector<Interval> ivs(nv);
    for (std::size_t v = 0; v < nv; ++v)
        ivs[v].vreg = static_cast<int>(v);
    auto extend = [&](int v, int p) {
        Interval &iv = ivs[static_cast<std::size_t>(v)];
        if (iv.start < 0 || p < iv.start)
            iv.start = p;
        if (p > iv.end)
            iv.end = p;
    };

    // Parameters are live from function entry (the prologue moves the
    // incoming argument registers into their homes).
    for (int p = 0; p < f.numParams; ++p)
        extend(p, 0);

    std::vector<int> callPositions;
    std::vector<int> callDefs; // dst vreg of the call at callPositions[i]
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
        int bs = blockStart[b];
        int be = bs + static_cast<int>(f.blocks[b].insts.size()) - 1;
        for (std::size_t v = 0; v < nv; ++v) {
            if (lv.liveIn[b][v])
                extend(static_cast<int>(v), bs);
            if (lv.liveOut[b][v])
                extend(static_cast<int>(v), be);
        }
        for (std::size_t i = 0; i < f.blocks[b].insts.size(); ++i) {
            const IrInst &inst = f.blocks[b].insts[i];
            int p = bs + static_cast<int>(i);
            for (int u : instUses(inst))
                extend(u, p);
            if (instDef(inst) >= 0)
                extend(instDef(inst), p);
            if (inst.op == IrOp::Call) {
                callPositions.push_back(p);
                callDefs.push_back(instDef(inst));
                alloc.hasCalls = true;
            }
        }
    }

    // Anything live across a call goes to the stack: the allocatable
    // registers are all caller-saved. An interval that *starts* at the
    // call position also crosses it when it is an argument reused
    // later (a parameter whose first use is the call) — only the
    // call's own result is defined after the clobber and may stay in a
    // register.
    for (Interval &iv : ivs) {
        if (iv.start < 0)
            continue;
        for (std::size_t c = 0; c < callPositions.size(); ++c) {
            int cp = callPositions[c];
            bool live_before =
                iv.start < cp ||
                (iv.start == cp && iv.vreg != callDefs[c]);
            if (live_before && iv.end > cp)
                iv.crossesCall = true;
        }
    }

    std::vector<const Interval *> order;
    for (const Interval &iv : ivs)
        if (iv.start >= 0)
            order.push_back(&iv);
    std::sort(order.begin(), order.end(),
              [](const Interval *a, const Interval *b) {
                  if (a->start != b->start)
                      return a->start < b->start;
                  return a->vreg < b->vreg;
              });

    // One scan per register class.
    for (int cls = 0; cls < 2; ++cls) {
        Type want = cls == 0 ? Type::Int : Type::Fp;
        std::vector<const Interval *> active; // sorted by end asc
        std::vector<int> freeRegs;
        for (int r = kLastAllocReg; r >= kFirstAllocReg; --r)
            freeRegs.push_back(r);

        for (const Interval *iv : order) {
            if (f.vregTypes[static_cast<std::size_t>(iv->vreg)] != want)
                continue;
            if (iv->crossesCall) {
                alloc.loc[static_cast<std::size_t>(iv->vreg)].slot =
                    alloc.numSlots++;
                continue;
            }
            // Expire intervals that ended before this one starts.
            std::size_t keep = 0;
            for (const Interval *a : active) {
                if (a->end < iv->start)
                    freeRegs.push_back(
                        alloc.loc[static_cast<std::size_t>(a->vreg)].reg);
                else
                    active[keep++] = a;
            }
            active.resize(keep);

            if (!freeRegs.empty()) {
                int r = freeRegs.back();
                freeRegs.pop_back();
                alloc.loc[static_cast<std::size_t>(iv->vreg)].reg = r;
                active.push_back(iv);
                std::sort(active.begin(), active.end(),
                          [](const Interval *a, const Interval *b) {
                              return a->end < b->end;
                          });
                continue;
            }
            // Spill whichever of {this, furthest-ending active} ends
            // last.
            const Interval *victim = active.back();
            if (victim->end > iv->end) {
                int r = alloc.loc[static_cast<std::size_t>(victim->vreg)].reg;
                alloc.loc[static_cast<std::size_t>(victim->vreg)].reg = -1;
                alloc.loc[static_cast<std::size_t>(victim->vreg)].slot =
                    alloc.numSlots++;
                alloc.loc[static_cast<std::size_t>(iv->vreg)].reg = r;
                active.back() = iv;
                std::sort(active.begin(), active.end(),
                          [](const Interval *a, const Interval *b) {
                              return a->end < b->end;
                          });
            } else {
                alloc.loc[static_cast<std::size_t>(iv->vreg)].slot =
                    alloc.numSlots++;
            }
        }
    }
    return alloc;
}

} // namespace cc
} // namespace mmt
