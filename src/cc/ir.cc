#include "cc/ir.hh"

#include <sstream>

#include "common/logging.hh"

namespace mmt
{
namespace cc
{

std::vector<int>
IrFunction::successors(int b) const
{
    const IrBlock &blk = blocks[static_cast<std::size_t>(b)];
    mmt_assert(!blk.insts.empty() && blk.insts.back().isTerminator(),
               "block %d of %s lacks a terminator", b, name.c_str());
    const IrInst &t = blk.insts.back();
    switch (t.op) {
      case IrOp::Br:
        return {t.target};
      case IrOp::CondBr:
        return {t.target, t.targetF};
      default:
        return {};
    }
}

std::vector<int>
instUses(const IrInst &inst)
{
    std::vector<int> uses;
    switch (inst.op) {
      case IrOp::ConstI:
      case IrOp::ConstF:
      case IrOp::ReadTid:
      case IrOp::Barrier:
      case IrOp::Br:
        break;
      case IrOp::Mov:
      case IrOp::CvtIF:
      case IrOp::CvtFI:
      case IrOp::FNeg:
      case IrOp::Bool:
      case IrOp::Not:
      case IrOp::Out:
      case IrOp::CondBr:
        uses.push_back(inst.a);
        break;
      case IrOp::Add: case IrOp::Sub: case IrOp::Mul: case IrOp::Div:
      case IrOp::Rem: case IrOp::FAdd: case IrOp::FSub: case IrOp::FMul:
      case IrOp::FDiv: case IrOp::CmpEQ: case IrOp::CmpNE:
      case IrOp::CmpLT: case IrOp::CmpLE: case IrOp::FCmpEQ:
      case IrOp::FCmpLT: case IrOp::FCmpLE:
        uses.push_back(inst.a);
        uses.push_back(inst.b);
        break;
      case IrOp::LoadG:
        if (inst.a >= 0)
            uses.push_back(inst.a);
        break;
      case IrOp::StoreG:
        if (inst.a >= 0)
            uses.push_back(inst.a);
        uses.push_back(inst.b);
        break;
      case IrOp::Call:
        uses = inst.args;
        break;
      case IrOp::Ret:
        if (inst.a >= 0)
            uses.push_back(inst.a);
        break;
    }
    return uses;
}

int
instDef(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::StoreG:
      case IrOp::Barrier:
      case IrOp::Out:
      case IrOp::Br:
      case IrOp::CondBr:
      case IrOp::Ret:
        return -1;
      case IrOp::Call:
        return inst.dst; // -1 for void calls
      default:
        return inst.dst;
    }
}

bool
instIsPure(const IrInst &inst)
{
    switch (inst.op) {
      case IrOp::StoreG:
      case IrOp::Call:
      case IrOp::Barrier:
      case IrOp::Out:
      case IrOp::Br:
      case IrOp::CondBr:
      case IrOp::Ret:
      case IrOp::LoadG:   // impure for motion purposes: memory may change
      case IrOp::ReadTid: // thread-dependent
        return false;
      default:
        return true;
    }
}

Liveness
computeLiveness(const IrFunction &f)
{
    const std::size_t nb = f.blocks.size();
    const std::size_t nv = f.vregTypes.size();
    Liveness lv;
    lv.liveIn.assign(nb, std::vector<bool>(nv, false));
    lv.liveOut.assign(nb, std::vector<bool>(nv, false));

    // Per-block gen (used before defined) and kill (defined) sets.
    std::vector<std::vector<bool>> gen(nb, std::vector<bool>(nv, false));
    std::vector<std::vector<bool>> kill(nb, std::vector<bool>(nv, false));
    for (std::size_t b = 0; b < nb; ++b) {
        for (const IrInst &inst : f.blocks[b].insts) {
            for (int u : instUses(inst)) {
                auto ui = static_cast<std::size_t>(u);
                if (!kill[b][ui])
                    gen[b][ui] = true;
            }
            int d = instDef(inst);
            if (d >= 0)
                kill[b][static_cast<std::size_t>(d)] = true;
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t bi = nb; bi-- > 0;) {
            int b = static_cast<int>(bi);
            std::vector<bool> out(nv, false);
            for (int s : f.successors(b)) {
                const auto &in = lv.liveIn[static_cast<std::size_t>(s)];
                for (std::size_t v = 0; v < nv; ++v)
                    if (in[v])
                        out[v] = true;
            }
            std::vector<bool> in = gen[bi];
            for (std::size_t v = 0; v < nv; ++v)
                if (out[v] && !kill[bi][v])
                    in[v] = true;
            if (out != lv.liveOut[bi] || in != lv.liveIn[bi]) {
                lv.liveOut[bi] = std::move(out);
                lv.liveIn[bi] = std::move(in);
                changed = true;
            }
        }
    }
    return lv;
}

namespace
{

const char *
opName(IrOp op)
{
    switch (op) {
      case IrOp::ConstI: return "consti";
      case IrOp::ConstF: return "constf";
      case IrOp::Mov: return "mov";
      case IrOp::CvtIF: return "cvtif";
      case IrOp::CvtFI: return "cvtfi";
      case IrOp::Add: return "add";
      case IrOp::Sub: return "sub";
      case IrOp::Mul: return "mul";
      case IrOp::Div: return "div";
      case IrOp::Rem: return "rem";
      case IrOp::FAdd: return "fadd";
      case IrOp::FSub: return "fsub";
      case IrOp::FMul: return "fmul";
      case IrOp::FDiv: return "fdiv";
      case IrOp::FNeg: return "fneg";
      case IrOp::CmpEQ: return "cmpeq";
      case IrOp::CmpNE: return "cmpne";
      case IrOp::CmpLT: return "cmplt";
      case IrOp::CmpLE: return "cmple";
      case IrOp::FCmpEQ: return "fcmpeq";
      case IrOp::FCmpLT: return "fcmplt";
      case IrOp::FCmpLE: return "fcmple";
      case IrOp::Bool: return "bool";
      case IrOp::Not: return "not";
      case IrOp::LoadG: return "loadg";
      case IrOp::StoreG: return "storeg";
      case IrOp::Call: return "call";
      case IrOp::ReadTid: return "readtid";
      case IrOp::Barrier: return "barrier";
      case IrOp::Out: return "out";
      case IrOp::Br: return "br";
      case IrOp::CondBr: return "condbr";
      case IrOp::Ret: return "ret";
    }
    return "?";
}

} // namespace

std::string
dumpIr(const IrFunction &f)
{
    std::ostringstream os;
    os << "function " << f.name << " (" << f.numParams << " params, "
       << f.vregTypes.size() << " vregs)\n";
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
        os << "bb" << b << ":\n";
        for (const IrInst &inst : f.blocks[b].insts) {
            os << "  " << opName(inst.op);
            if (inst.dst >= 0)
                os << " v" << inst.dst;
            if (inst.a >= 0)
                os << (inst.dst >= 0 ? ", v" : " v") << inst.a;
            if (inst.b >= 0)
                os << ", v" << inst.b;
            if (inst.op == IrOp::ConstI)
                os << " " << inst.imm;
            if (inst.op == IrOp::ConstF)
                os << " " << inst.fimm;
            if (!inst.sym.empty())
                os << " @" << inst.sym;
            for (int arg : inst.args)
                os << " v" << arg;
            if (inst.target >= 0)
                os << " -> bb" << inst.target;
            if (inst.targetF >= 0)
                os << " / bb" << inst.targetF;
            os << "\n";
        }
    }
    return os.str();
}

} // namespace cc
} // namespace mmt
