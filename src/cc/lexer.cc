#include "cc/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/logging.hh"

namespace mmt
{
namespace cc
{

namespace
{

const std::map<std::string, Tok> &
keywords()
{
    static const std::map<std::string, Tok> table = {
        {"int", Tok::KwInt},       {"double", Tok::KwDouble},
        {"void", Tok::KwVoid},     {"if", Tok::KwIf},
        {"else", Tok::KwElse},     {"while", Tok::KwWhile},
        {"for", Tok::KwFor},       {"return", Tok::KwReturn},
        {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
    };
    return table;
}

} // namespace

std::vector<Token>
lex(const std::string &source, const std::string &name)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = source.size();

    auto err = [&](const std::string &msg) {
        fatal("%s: line %d: %s", name.c_str(), line, msg.c_str());
    };
    auto peek = [&](std::size_t k = 0) -> char {
        return i + k < n ? source[i + k] : '\0';
    };
    auto push = [&](Tok kind) {
        Token t;
        t.kind = kind;
        t.line = line;
        out.push_back(t);
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < n && !(source[i] == '*' && peek(1) == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i >= n)
                err("unterminated block comment");
            i += 2;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t b = i;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_'))
                ++i;
            std::string word = source.substr(b, i - b);
            auto it = keywords().find(word);
            if (it != keywords().end()) {
                push(it->second);
            } else {
                Token t;
                t.kind = Tok::Ident;
                t.line = line;
                t.text = word;
                out.push_back(t);
            }
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::size_t b = i;
            bool is_fp = false;
            bool is_hex = c == '0' && (peek(1) == 'x' || peek(1) == 'X');
            if (is_hex)
                i += 2;
            while (i < n) {
                char d = source[i];
                if (std::isdigit(static_cast<unsigned char>(d)) ||
                    (is_hex &&
                     std::isxdigit(static_cast<unsigned char>(d)))) {
                    ++i;
                } else if (!is_hex && (d == '.' || d == 'e' || d == 'E')) {
                    is_fp = true;
                    ++i;
                    if ((d == 'e' || d == 'E') &&
                        (source[i] == '+' || source[i] == '-'))
                        ++i;
                } else {
                    break;
                }
            }
            std::string lit = source.substr(b, i - b);
            Token t;
            t.line = line;
            char *end = nullptr;
            if (is_fp) {
                t.kind = Tok::FpLit;
                t.fpVal = std::strtod(lit.c_str(), &end);
            } else {
                t.kind = Tok::IntLit;
                t.intVal = std::strtoll(lit.c_str(), &end, 0);
            }
            if (end != lit.c_str() + lit.size())
                err("bad numeric literal '" + lit + "'");
            out.push_back(t);
            continue;
        }
        auto two = [&](char a, char b, Tok kind) -> bool {
            if (c == a && peek(1) == b) {
                push(kind);
                i += 2;
                return true;
            }
            return false;
        };
        if (two('=', '=', Tok::Eq) || two('!', '=', Tok::Ne) ||
            two('<', '=', Tok::Le) || two('>', '=', Tok::Ge) ||
            two('&', '&', Tok::AndAnd) || two('|', '|', Tok::OrOr))
            continue;
        Tok kind;
        switch (c) {
          case '(': kind = Tok::LParen; break;
          case ')': kind = Tok::RParen; break;
          case '{': kind = Tok::LBrace; break;
          case '}': kind = Tok::RBrace; break;
          case '[': kind = Tok::LBracket; break;
          case ']': kind = Tok::RBracket; break;
          case ',': kind = Tok::Comma; break;
          case ';': kind = Tok::Semi; break;
          case '=': kind = Tok::Assign; break;
          case '+': kind = Tok::Plus; break;
          case '-': kind = Tok::Minus; break;
          case '*': kind = Tok::Star; break;
          case '/': kind = Tok::Slash; break;
          case '%': kind = Tok::Percent; break;
          case '<': kind = Tok::Lt; break;
          case '>': kind = Tok::Gt; break;
          case '!': kind = Tok::Not; break;
          default:
            err(std::string("unexpected character '") + c + "'");
        }
        push(kind);
        ++i;
    }
    Token end_tok;
    end_tok.kind = Tok::End;
    end_tok.line = line;
    out.push_back(end_tok);
    return out;
}

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "end of input";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FpLit: return "floating literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwDouble: return "'double'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::AndAnd: return "'&&'";
      case Tok::OrOr: return "'||'";
      case Tok::Not: return "'!'";
    }
    return "?";
}

} // namespace cc
} // namespace mmt
