/**
 * @file
 * mmtc driver: C subset source -> iasm text, via
 * parse -> IR lowering -> loop analysis -> auto-SPMDization ->
 * linear-scan register allocation -> emission. The output assembles
 * with iasm/assembler.hh and runs under every simulator configuration;
 * one binary serves all thread counts because slicing is driven by the
 * `nthreads` data word the workload initializer sets.
 */

#ifndef MMT_CC_COMPILER_HH
#define MMT_CC_COMPILER_HH

#include <string>

#include "cc/spmd.hh"

namespace mmt
{
namespace cc
{

struct CompileOptions
{
    /** Run the auto-SPMDization pass (default). With false the program
     *  is purely redundant: correct, but nothing is sliced. */
    bool spmd = true;
};

struct CompileResult
{
    /** Assemblable program text. */
    std::string iasm;
    /** What the SPMD pass did (sliced loops, rejections, hazards). */
    SpmdResult spmd;
};

/**
 * Compile @p source. @p name tags diagnostics (all front-end and
 * driver errors go through fatal()). Enforced limits: main() takes no
 * parameters; at most 6 int and 6 fp parameters per function; no
 * identifier may start with "__mmtc" or shadow the entry label "main".
 */
CompileResult compile(const std::string &source, const std::string &name,
                      const CompileOptions &opt = {});

} // namespace cc
} // namespace mmt

#endif // MMT_CC_COMPILER_HH
