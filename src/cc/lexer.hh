/**
 * @file
 * Lexer for the mmtc C subset (docs/COMPILER.md): identifiers, integer
 * and floating literals, keywords, and the operator/punctuation set of a
 * SysY-style language. Comments are `//` to end of line plus C block comments.
 *
 * Errors are reported with fatal(), prefixed by the program name and the
 * 1-based source line, matching the assembler's diagnostic style.
 */

#ifndef MMT_CC_LEXER_HH
#define MMT_CC_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmt
{
namespace cc
{

enum class Tok
{
    End,
    Ident,
    IntLit,
    FpLit,
    // Keywords.
    KwInt, KwDouble, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
    KwBreak, KwContinue,
    // Punctuation / operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Assign,
    Plus, Minus, Star, Slash, Percent,
    Eq, Ne, Lt, Le, Gt, Ge,
    AndAnd, OrOr, Not,
};

struct Token
{
    Tok kind = Tok::End;
    int line = 0;
    std::string text;       // Ident spelling
    std::int64_t intVal = 0;
    double fpVal = 0.0;
};

/** Tokenize @p source; fatal() on malformed input. */
std::vector<Token> lex(const std::string &source, const std::string &name);

/** Spelling of a token kind for diagnostics ("'+'", "identifier", ...). */
std::string tokName(Tok kind);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_LEXER_HH
