#include "cc/compiler.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/race.hh"
#include "cc/emit.hh"
#include "cc/irgen.hh"
#include "cc/parser.hh"
#include "cc/regalloc.hh"
#include "common/logging.hh"
#include "iasm/assembler.hh"

namespace mmt
{
namespace cc
{
namespace
{

void
checkModule(const Module &m, const std::string &name)
{
    const Function *main = m.findFunction("main");
    if (!main)
        fatal("%s: no main() function", name.c_str());
    if (main->numParams != 0)
        fatal("%s: line %d: main() must take no parameters", name.c_str(),
              main->line);

    for (const GlobalVar &g : m.globals) {
        if (g.name == "main")
            fatal("%s: line %d: global 'main' collides with the entry "
                  "label",
                  name.c_str(), g.line);
        if (g.name.rfind("__mmtc", 0) == 0)
            fatal("%s: line %d: identifier prefix '__mmtc' is reserved",
                  name.c_str(), g.line);
    }
    for (const auto &fn : m.functions) {
        if (fn->name.rfind("__mmtc", 0) == 0)
            fatal("%s: line %d: identifier prefix '__mmtc' is reserved",
                  name.c_str(), fn->line);
        int intParams = 0;
        int fpParams = 0;
        for (int p = 0; p < fn->numParams; ++p) {
            if (fn->localTypes[static_cast<std::size_t>(p)] == Type::Fp)
                ++fpParams;
            else
                ++intParams;
        }
        if (intParams > kMaxArgsPerClass || fpParams > kMaxArgsPerClass)
            fatal("%s: line %d: '%s' exceeds %d parameters of one class",
                  name.c_str(), fn->line, fn->name.c_str(),
                  kMaxArgsPerClass);
    }
}

/** Parsed "; mmtc:mem(sym[,sliced])" marker of one assembly line. */
struct MemMark
{
    bool valid = false;
    bool sliced = false;
    std::string sym;
};

constexpr const char *kMemMarker = "; mmtc:mem(";

MemMark
parseMark(const std::string &line)
{
    MemMark m;
    std::size_t pos = line.find(kMemMarker);
    if (pos == std::string::npos) {
        // Unmarked memory lines the emitter generates are sp-relative
        // (prologue saves, spill slots, call-argument reloads). The
        // per-thread stacks are 64 KiB apart in their own segment, so
        // they behave like a thread-private pseudo-global.
        if (line.find("(sp)") != std::string::npos) {
            m.sym = "<stack>";
            m.valid = true;
        }
        return m;
    }
    std::size_t open = pos + std::string(kMemMarker).size();
    std::size_t close = line.find(')', open);
    if (close == std::string::npos)
        return m;
    std::string inner = line.substr(open, close - open);
    std::size_t comma = inner.find(',');
    if (comma != std::string::npos) {
        m.sliced = inner.substr(comma + 1) == "sliced";
        inner = inner.substr(0, comma);
    }
    m.sym = inner;
    m.valid = true;
    return m;
}

/**
 * Cross-thread hazard check over the emitted assembly: run the
 * barrier-aware race analyzer (MT semantics) and classify every
 * may-race pair using the mmtc:mem markers.
 *
 *   - distinct globals: benign — SPMD slicing keeps every index inside
 *     its own array, so differently-named arrays cannot collide;
 *   - both endpoints inside accepted sliced loops: benign by the
 *     compiler-asserted per-thread index partition;
 *   - redundant store/store of one global: benign — every thread
 *     redundantly computes and writes the same value;
 *   - anything else is a real hazard warning (SpmdResult::warnings).
 *
 * Benign pairs get an "analyze:allow(<rule>)" suppression on the
 * anchor line so the emitted program is lint-clean; all three benign
 * claims are dynamically cross-checked by the happens-before race
 * oracle, which checks raw (pre-suppression) pairs. The markers are
 * stripped from the final text.
 */
void
annotateRaces(CompileResult &res, const std::string &name)
{
    Program prog =
        assemble(res.iasm, defaultCodeBase, defaultDataBase, name);
    analysis::Cfg cfg(prog);
    analysis::SharingOptions sopt; // MT shared-memory semantics
    analysis::SharingResult sharing = analysis::analyzeSharing(cfg, sopt);
    analysis::RaceResult race = analysis::analyzeRaces(cfg, sharing, sopt);

    std::vector<std::string> lines;
    {
        std::istringstream is(res.iasm);
        std::string l;
        while (std::getline(is, l))
            lines.push_back(l);
    }
    auto lineAt = [&](int n) -> const std::string & {
        static const std::string empty;
        return n >= 1 && n <= static_cast<int>(lines.size())
                   ? lines[(std::size_t)(n - 1)]
                   : empty;
    };
    auto warn = [&](const std::string &msg) {
        auto &ws = res.spmd.warnings;
        if (std::find(ws.begin(), ws.end(), msg) == ws.end())
            ws.push_back(msg);
    };

    // Classify every pair, then emit an "analyze:allow" only for
    // (anchor line, rule) groups where EVERY pair is benign: the
    // suppression is per (instruction, rule), so one surviving hazard
    // in the group must keep the whole group unsuppressed (the benign
    // co-anchored pairs then merely ride along in the lint's "+N more"
    // count).
    std::map<std::pair<int, std::string>, bool> group_ok;
    for (const analysis::RacePair &p : race.pairs) {
        int la = prog.line(p.instA);
        int lb = prog.line(p.instB);
        MemMark a = parseMark(lineAt(la));
        MemMark b = parseMark(lineAt(lb));
        int anchor_line = prog.line(p.anchor);
        auto verdict = [&](bool benign) {
            auto it = group_ok.emplace(
                std::make_pair(anchor_line, p.rule), true);
            it.first->second = it.first->second && benign;
        };
        bool red_scratch = a.sym.rfind("__mmtc_red", 0) == 0 &&
                           b.sym == a.sym;
        if (a.valid && b.valid &&
            (a.sym != b.sym || (a.sliced && b.sliced) || red_scratch)) {
            // Reduction scratch follows the store/BARRIER/combine-load
            // idiom; imprecise epochs (a barrier inside a loop) can keep
            // the pair alive statically, but the barrier orders it.
            verdict(true);
            continue;
        }
        if (a.valid && b.valid && !a.sliced && !b.sliced) {
            bool both_store = prog.code[(std::size_t)p.instA].isStore() &&
                              prog.code[(std::size_t)p.instB].isStore();
            if (both_store) {
                // Redundant store/store: every thread writes the value
                // it redundantly computed.
                verdict(true);
                continue;
            }
            verdict(false);
            std::ostringstream os;
            os << "global '" << a.sym
               << "' is read-modify-written by redundant code (asm line "
               << anchor_line << "); its value can diverge across threads";
            warn(os.str());
            continue;
        }
        if (a.valid && b.valid) {
            // Same global, exactly one endpoint sliced: a fast thread's
            // sliced accesses race a slow thread's redundant ones.
            verdict(false);
            const MemMark &red = a.sliced ? b : a;
            int red_inst = a.sliced ? p.instB : p.instA;
            bool red_store = prog.code[(std::size_t)red_inst].isStore();
            std::ostringstream os;
            os << "redundant " << (red_store ? "write" : "read")
               << " of '" << red.sym << "' (asm line "
               << prog.line(red_inst)
               << ") can race the sliced loop accessing it";
            warn(os.str());
            continue;
        }
        verdict(false);
        std::ostringstream os;
        os << "cross-thread hazard between asm lines " << la << " and "
           << lb << " (" << p.rule << ")";
        warn(os.str());
    }

    std::map<int, std::set<std::string>> allows; // asm line -> rules
    for (const auto &[key, ok] : group_ok) {
        if (ok)
            allows[key.first].insert(key.second);
    }

    // Rewrite: strip markers, attach the collected suppressions.
    std::ostringstream out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string l = lines[i];
        std::size_t pos = l.find(kMemMarker);
        if (pos != std::string::npos) {
            l.erase(pos);
            while (!l.empty() && (l.back() == ' ' || l.back() == '\t'))
                l.pop_back();
        }
        auto it = allows.find(static_cast<int>(i) + 1);
        if (it != allows.end()) {
            l += "   ; analyze:allow(";
            bool first = true;
            for (const std::string &r : it->second) {
                if (!first)
                    l += ", ";
                first = false;
                l += r;
            }
            l += ") mmtc: benign by slicing/redundancy, "
                 "oracle-cross-checked";
        }
        out << l << "\n";
    }
    res.iasm = out.str();
}

} // namespace

CompileResult
compile(const std::string &source, const std::string &name,
        const CompileOptions &opt)
{
    Module ast = parse(source, name);
    checkModule(ast, name);

    IrModule ir = lowerToIr(ast);
    CompileResult res;
    if (opt.spmd)
        res.spmd = spmdize(ir);

    std::vector<Allocation> allocs;
    allocs.reserve(ir.functions.size());
    for (const IrFunction &f : ir.functions)
        allocs.push_back(allocateRegisters(f));

    res.iasm = emitIasm(ir, allocs);
    annotateRaces(res, name);
    return res;
}

} // namespace cc
} // namespace mmt
