#include "cc/compiler.hh"

#include "cc/emit.hh"
#include "cc/irgen.hh"
#include "cc/parser.hh"
#include "cc/regalloc.hh"
#include "common/logging.hh"

namespace mmt
{
namespace cc
{
namespace
{

void
checkModule(const Module &m, const std::string &name)
{
    const Function *main = m.findFunction("main");
    if (!main)
        fatal("%s: no main() function", name.c_str());
    if (main->numParams != 0)
        fatal("%s: line %d: main() must take no parameters", name.c_str(),
              main->line);

    for (const GlobalVar &g : m.globals) {
        if (g.name == "main")
            fatal("%s: line %d: global 'main' collides with the entry "
                  "label",
                  name.c_str(), g.line);
        if (g.name.rfind("__mmtc", 0) == 0)
            fatal("%s: line %d: identifier prefix '__mmtc' is reserved",
                  name.c_str(), g.line);
    }
    for (const auto &fn : m.functions) {
        if (fn->name.rfind("__mmtc", 0) == 0)
            fatal("%s: line %d: identifier prefix '__mmtc' is reserved",
                  name.c_str(), fn->line);
        int intParams = 0;
        int fpParams = 0;
        for (int p = 0; p < fn->numParams; ++p) {
            if (fn->localTypes[static_cast<std::size_t>(p)] == Type::Fp)
                ++fpParams;
            else
                ++intParams;
        }
        if (intParams > kMaxArgsPerClass || fpParams > kMaxArgsPerClass)
            fatal("%s: line %d: '%s' exceeds %d parameters of one class",
                  name.c_str(), fn->line, fn->name.c_str(),
                  kMaxArgsPerClass);
    }
}

} // namespace

CompileResult
compile(const std::string &source, const std::string &name,
        const CompileOptions &opt)
{
    Module ast = parse(source, name);
    checkModule(ast, name);

    IrModule ir = lowerToIr(ast);
    CompileResult res;
    if (opt.spmd)
        res.spmd = spmdize(ir);

    std::vector<Allocation> allocs;
    allocs.reserve(ir.functions.size());
    for (const IrFunction &f : ir.functions)
        allocs.push_back(allocateRegisters(f));

    res.iasm = emitIasm(ir, allocs);
    return res;
}

} // namespace cc
} // namespace mmt
