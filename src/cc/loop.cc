#include "cc/loop.hh"

#include <algorithm>
#include <map>

namespace mmt
{
namespace cc
{
namespace
{

std::vector<std::vector<int>>
predecessors(const IrFunction &f)
{
    std::vector<std::vector<int>> preds(f.blocks.size());
    for (std::size_t b = 0; b < f.blocks.size(); ++b)
        for (int s : f.successors(static_cast<int>(b)))
            preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));
    return preds;
}

/** Collect the natural loop of back edge latch->header. */
void
collectLoop(const std::vector<std::vector<int>> &preds, int header, int latch,
            std::vector<bool> &inLoop)
{
    inLoop[static_cast<std::size_t>(header)] = true;
    std::vector<int> work;
    if (!inLoop[static_cast<std::size_t>(latch)]) {
        inLoop[static_cast<std::size_t>(latch)] = true;
        work.push_back(latch);
    }
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        for (int p : preds[static_cast<std::size_t>(b)]) {
            if (!inLoop[static_cast<std::size_t>(p)]) {
                inLoop[static_cast<std::size_t>(p)] = true;
                work.push_back(p);
            }
        }
    }
}

/** Locate the single in-loop definition of @p vreg; nullptr when the
 *  count differs from one. */
const IrInst *
singleLoopDef(const IrFunction &f, const LoopInfo &loop, int vreg,
              int *defBlock = nullptr, int *defIdx = nullptr)
{
    const IrInst *found = nullptr;
    for (int b : loop.blocks) {
        const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
        for (std::size_t i = 0; i < blk.insts.size(); ++i) {
            if (instDef(blk.insts[i]) != vreg)
                continue;
            if (found)
                return nullptr;
            found = &blk.insts[i];
            if (defBlock)
                *defBlock = b;
            if (defIdx)
                *defIdx = static_cast<int>(i);
        }
    }
    return found;
}

/**
 * Try to prove the canonical induction-variable shape and fill in the
 * indvar fields of @p loop.
 */
void
recognizeIndvar(const IrFunction &f, LoopInfo &loop)
{
    if (loop.latch < 0 || loop.preheader < 0)
        return;

    // The header must be the ONLY exiting block, with one exit edge.
    int exitTarget = -1;
    int bodyTarget = -1;
    for (int b : loop.blocks) {
        for (int s : f.successors(b)) {
            if (loop.contains(s))
                continue;
            if (b != loop.header || exitTarget >= 0)
                return; // break / multi-exit
            exitTarget = s;
        }
        const IrBlock &blk = f.blocks[static_cast<std::size_t>(b)];
        if (blk.insts.back().op == IrOp::Ret)
            return; // return inside the loop
    }
    if (exitTarget < 0)
        return; // no way out; never canonical

    const IrBlock &hdr = f.blocks[static_cast<std::size_t>(loop.header)];
    const IrInst &term = hdr.insts.back();
    if (term.op != IrOp::CondBr)
        return;
    if (term.target == exitTarget)
        return; // inverted loop shape (cond false enters body)
    bodyTarget = term.target;
    if (term.targetF != exitTarget)
        return;

    // Condition: CmpLT/CmpLE(iv, bound), defined in the header itself.
    const IrInst *cmp = nullptr;
    for (const IrInst &inst : hdr.insts)
        if (instDef(inst) == term.a)
            cmp = &inst;
    if (!cmp || (cmp->op != IrOp::CmpLT && cmp->op != IrOp::CmpLE))
        return;
    int iv = cmp->a;
    if (iv < 0)
        return;

    // Unique in-loop def of iv: `Mov iv, t` in the latch, with
    // `t = Add(iv, step)` and step a positive integer constant.
    int defBlock = -1;
    int defIdx = -1;
    const IrInst *mov = singleLoopDef(f, loop, iv, &defBlock, &defIdx);
    if (!mov || mov->op != IrOp::Mov || defBlock != loop.latch)
        return;
    const IrBlock &latchBlk = f.blocks[static_cast<std::size_t>(loop.latch)];
    const IrInst *add = nullptr;
    int addIdx = -1;
    for (int i = 0; i < defIdx; ++i) {
        if (instDef(latchBlk.insts[static_cast<std::size_t>(i)]) == mov->a) {
            add = &latchBlk.insts[static_cast<std::size_t>(i)];
            addIdx = i;
        }
    }
    if (!add || add->op != IrOp::Add)
        return;
    int stepVreg = -1;
    if (add->a == iv)
        stepVreg = add->b;
    else if (add->b == iv)
        stepVreg = add->a;
    else
        return;
    const IrInst *stepDef = nullptr;
    for (int i = 0; i < addIdx; ++i)
        if (instDef(latchBlk.insts[static_cast<std::size_t>(i)]) == stepVreg)
            stepDef = &latchBlk.insts[static_cast<std::size_t>(i)];
    if (!stepDef || stepDef->op != IrOp::ConstI || stepDef->imm <= 0)
        return;

    loop.indvar = iv;
    loop.step = stepDef->imm;
    loop.boundVreg = cmp->b;
    loop.cmpIsLe = cmp->op == IrOp::CmpLE;
    loop.exiting = loop.header;
    loop.exitTarget = exitTarget;
    loop.bodyTarget = bodyTarget;
    loop.stepAddIdx = addIdx;
}

} // namespace

std::vector<std::vector<bool>>
computeDominators(const IrFunction &f)
{
    const std::size_t nb = f.blocks.size();
    std::vector<std::vector<bool>> dom(nb, std::vector<bool>(nb, true));
    dom[0].assign(nb, false);
    dom[0][0] = true;

    auto preds = predecessors(f);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 1; b < nb; ++b) {
            std::vector<bool> next(nb, true);
            if (preds[b].empty()) {
                // Unreachable block: dominated only by itself.
                next.assign(nb, false);
            } else {
                for (int p : preds[b]) {
                    const auto &pd = dom[static_cast<std::size_t>(p)];
                    for (std::size_t i = 0; i < nb; ++i)
                        next[i] = next[i] && pd[i];
                }
            }
            next[b] = true;
            if (next != dom[b]) {
                dom[b] = std::move(next);
                changed = true;
            }
        }
    }
    return dom;
}

std::vector<LoopInfo>
findLoops(const IrFunction &f)
{
    const std::size_t nb = f.blocks.size();
    auto dom = computeDominators(f);
    auto preds = predecessors(f);

    // Gather back edges grouped by header.
    std::map<int, std::vector<int>> latchesByHeader;
    for (std::size_t b = 0; b < nb; ++b) {
        for (int s : f.successors(static_cast<int>(b))) {
            if (dom[b][static_cast<std::size_t>(s)])
                latchesByHeader[s].push_back(static_cast<int>(b));
        }
    }

    std::vector<LoopInfo> loops;
    for (const auto &entry : latchesByHeader) {
        LoopInfo loop;
        loop.header = entry.first;
        loop.latch = entry.second.size() == 1 ? entry.second[0] : -1;
        std::vector<bool> inLoop(nb, false);
        for (int latch : entry.second)
            collectLoop(preds, loop.header, latch, inLoop);
        for (std::size_t b = 0; b < nb; ++b)
            if (inLoop[b])
                loop.blocks.push_back(static_cast<int>(b));

        // Unique predecessor outside the loop -> preheader.
        int pre = -1;
        bool unique = true;
        for (int p : preds[static_cast<std::size_t>(loop.header)]) {
            if (inLoop[static_cast<std::size_t>(p)])
                continue;
            if (pre >= 0)
                unique = false;
            pre = p;
        }
        loop.preheader = unique ? pre : -1;

        recognizeIndvar(f, loop);
        loops.push_back(std::move(loop));
    }

    // Nesting: the innermost enclosing loop is the smallest strict
    // superset containing this loop's header.
    for (std::size_t i = 0; i < loops.size(); ++i) {
        int best = -1;
        std::size_t bestSize = 0;
        for (std::size_t j = 0; j < loops.size(); ++j) {
            if (i == j || loops[j].blocks.size() <= loops[i].blocks.size())
                continue;
            if (!loops[j].contains(loops[i].header))
                continue;
            if (best < 0 || loops[j].blocks.size() < bestSize) {
                best = static_cast<int>(j);
                bestSize = loops[j].blocks.size();
            }
        }
        loops[i].parent = best;
    }

    // Sort outermost-first (by block-set size descending, then header)
    // so the SPMD pass can walk parents before children.
    std::vector<std::size_t> order(loops.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (loops[a].blocks.size() != loops[b].blocks.size())
                      return loops[a].blocks.size() > loops[b].blocks.size();
                  return loops[a].header < loops[b].header;
              });
    std::vector<LoopInfo> sorted;
    std::vector<int> newIndex(loops.size(), -1);
    for (std::size_t i = 0; i < order.size(); ++i) {
        newIndex[order[i]] = static_cast<int>(i);
        sorted.push_back(std::move(loops[order[i]]));
    }
    for (LoopInfo &loop : sorted)
        if (loop.parent >= 0)
            loop.parent = newIndex[static_cast<std::size_t>(loop.parent)];
    for (LoopInfo &loop : sorted) {
        loop.depth = 1;
        for (int p = loop.parent; p >= 0;
             p = sorted[static_cast<std::size_t>(p)].parent)
            ++loop.depth;
    }
    return sorted;
}

} // namespace cc
} // namespace mmt
