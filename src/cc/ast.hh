/**
 * @file
 * Typed AST for the mmtc C subset.
 *
 * The parser resolves names and annotates every expression with its type
 * (Int = 64-bit signed, Fp = double), inserting implicit conversions as
 * Cast nodes, so downstream passes (IR generation and the reference
 * scalar interpreter) never re-do semantic analysis.
 *
 * Shape of the language (full grammar in docs/COMPILER.md):
 *  - globals: `int`/`double` scalars and 1-D arrays with constant
 *    initializers;
 *  - functions over scalar parameters with scalar/void returns;
 *  - statements: blocks, if/else, while, for, return, break, continue,
 *    local scalar declarations, assignments, expression statements;
 *  - `out(e)` is the built-in observable (the OUT instruction).
 */

#ifndef MMT_CC_AST_HH
#define MMT_CC_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mmt
{
namespace cc
{

/** Value type of an expression or variable. */
enum class Type { Int, Fp, Void };

/** Binary operator repertoire (comparisons yield Int 0/1). */
enum class BinOp
{
    Add, Sub, Mul, Div, Rem,
    Eq, Ne, Lt, Le, Gt, Ge,
    LAnd, LOr, // short-circuit
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind
{
    IntLit,   // intVal
    FpLit,    // fpVal
    VarRef,   // name, varId (locals/params) or global
    ArrayRef, // name (global array), index in a
    Binary,   // op, a, b
    Neg,      // a
    Not,      // a
    Call,     // name, args (user function; returns non-void)
    Cast,     // a (conversion to this->type)
};

struct Expr
{
    ExprKind kind;
    Type type = Type::Int;
    int line = 0;

    std::int64_t intVal = 0;
    double fpVal = 0.0;
    std::string name;
    /** Local/parameter slot within the enclosing function; -1 = global. */
    int varId = -1;
    BinOp op = BinOp::Add;
    ExprPtr a, b;
    std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind
{
    Block,    // body
    If,       // cond, then (body[0]), optional els
    While,    // cond, body[0]
    For,      // init (optional), cond, step (optional), body[0]
    Return,   // optional value
    Break,
    Continue,
    LocalDecl,// varId, optional init value
    Assign,   // target var or array element, value
    ExprStmt, // call expression evaluated for effect
    Out,      // value (int) appended to the thread output log
};

struct Stmt
{
    StmtKind kind;
    int line = 0;

    ExprPtr cond;          // If/While/For
    ExprPtr value;         // Return/LocalDecl/Assign/ExprStmt/Out
    ExprPtr index;         // Assign to array element (nullptr = scalar)
    std::string name;      // Assign target / LocalDecl name
    int varId = -1;        // Assign target local id (-1 = global)
    StmtPtr init, step;    // For clauses (Assign/LocalDecl/ExprStmt)
    std::vector<StmtPtr> body; // Block: all; If: then/else; loops: [0]
};

/** One global variable (scalar or 1-D array). */
struct GlobalVar
{
    std::string name;
    Type type = Type::Int;
    /** Element count; 0 for scalars. */
    int arraySize = 0;
    /** Initializer words (scalars: one entry; arrays: up to arraySize,
     *  remainder implicitly zero). Doubles are stored as doubles. */
    std::vector<std::int64_t> intInit;
    std::vector<double> fpInit;
    int line = 0;
};

/** One function: scalar params, local slots, a body block. */
struct Function
{
    std::string name;
    Type retType = Type::Void;
    int numParams = 0;
    /** Types of all local slots; params occupy slots [0, numParams). */
    std::vector<Type> localTypes;
    std::vector<std::string> localNames;
    StmtPtr body;
    int line = 0;
};

/** A parsed translation unit. */
struct Module
{
    std::string name;
    std::vector<GlobalVar> globals;
    std::vector<std::unique_ptr<Function>> functions;

    const Function *
    findFunction(const std::string &fname) const
    {
        for (const auto &f : functions)
            if (f->name == fname)
                return f.get();
        return nullptr;
    }

    const GlobalVar *
    findGlobal(const std::string &gname) const
    {
        for (const GlobalVar &g : globals)
            if (g.name == gname)
                return &g;
        return nullptr;
    }
};

} // namespace cc
} // namespace mmt

#endif // MMT_CC_AST_HH
