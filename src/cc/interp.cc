#include "cc/interp.hh"

#include <bit>
#include <limits>

#include "common/logging.hh"

namespace mmt
{
namespace cc
{
namespace
{

/** One scalar value; the active member follows the static AST type. */
struct Value
{
    std::int64_t i = 0;
    double f = 0.0;
};

/** How a statement finished. */
enum class Flow { Normal, Break, Continue, Return };

constexpr std::int64_t kStepLimit = 200 * 1000 * 1000;
constexpr int kMaxCallDepth = 256;

/** ISA division semantics (isa/exec.cc), without host UB. */
std::int64_t
isaDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return -1; // ~0 as signed
    if (b == -1)
        return static_cast<std::int64_t>(
            0 - static_cast<std::uint64_t>(a));
    return a / b;
}

std::int64_t
isaRem(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return a;
    if (b == -1)
        return 0;
    return a % b;
}

struct GlobalState
{
    const GlobalVar *decl = nullptr;
    std::vector<Value> words;
};

class Interp
{
  public:
    Interp(const Module &m, const GlobalWords &init) : m_(m)
    {
        for (const GlobalVar &g : m_.globals) {
            GlobalState st;
            st.decl = &g;
            std::size_t n =
                g.arraySize > 0 ? static_cast<std::size_t>(g.arraySize) : 1;
            st.words.assign(n, Value());
            if (g.type == Type::Fp) {
                for (std::size_t i = 0; i < g.fpInit.size() && i < n; ++i)
                    st.words[i].f = g.fpInit[i];
            } else {
                for (std::size_t i = 0; i < g.intInit.size() && i < n; ++i)
                    st.words[i].i = g.intInit[i];
            }
            auto it = init.find(g.name);
            if (it != init.end()) {
                for (std::size_t i = 0; i < it->second.size() && i < n;
                     ++i) {
                    if (g.type == Type::Fp)
                        st.words[i].f = std::bit_cast<double>(it->second[i]);
                    else
                        st.words[i].i =
                            static_cast<std::int64_t>(it->second[i]);
                }
            }
            globals_.emplace(g.name, std::move(st));
        }
    }

    std::vector<std::int64_t>
    run()
    {
        const Function *main = m_.findFunction("main");
        if (!main)
            fatal("%s: interp: no main() function", m_.name.c_str());
        callFunction(*main, {});
        return std::move(out_);
    }

  private:
    const Module &m_;
    std::map<std::string, GlobalState> globals_;
    std::vector<std::int64_t> out_;
    std::int64_t steps_ = 0;
    int depth_ = 0;

    void
    tick(int line)
    {
        if (++steps_ > kStepLimit)
            fatal("%s: interp: step limit exceeded at line %d (infinite "
                  "loop?)",
                  m_.name.c_str(), line);
    }

    GlobalState &
    global(const std::string &name, int line)
    {
        auto it = globals_.find(name);
        if (it == globals_.end())
            fatal("%s: interp: unknown global '%s' at line %d",
                  m_.name.c_str(), name.c_str(), line);
        return it->second;
    }

    Value &
    element(const std::string &name, std::int64_t idx, int line)
    {
        GlobalState &g = global(name, line);
        if (idx < 0 || static_cast<std::size_t>(idx) >= g.words.size())
            fatal("%s: interp: index %lld out of bounds for '%s' (size "
                  "%zu) at line %d",
                  m_.name.c_str(), static_cast<long long>(idx),
                  name.c_str(), g.words.size(), line);
        return g.words[static_cast<std::size_t>(idx)];
    }

    Value
    callFunction(const Function &fn, const std::vector<Value> &args)
    {
        if (++depth_ > kMaxCallDepth)
            fatal("%s: interp: call depth exceeded in '%s'",
                  m_.name.c_str(), fn.name.c_str());
        std::vector<Value> locals(fn.localTypes.size());
        for (std::size_t i = 0;
             i < args.size() && i < locals.size(); ++i)
            locals[i] = args[i];
        Value ret;
        execStmt(*fn.body, locals, ret);
        --depth_;
        return ret;
    }

    Flow
    execStmt(const Stmt &s, std::vector<Value> &locals, Value &ret)
    {
        tick(s.line);
        switch (s.kind) {
          case StmtKind::Block:
            for (const StmtPtr &child : s.body) {
                Flow fl = execStmt(*child, locals, ret);
                if (fl != Flow::Normal)
                    return fl;
            }
            return Flow::Normal;
          case StmtKind::If: {
            Value c = eval(*s.cond, locals);
            const Stmt *branch = nullptr;
            if (c.i != 0)
                branch = s.body[0].get();
            else if (s.body.size() > 1)
                branch = s.body[1].get();
            return branch ? execStmt(*branch, locals, ret) : Flow::Normal;
          }
          case StmtKind::While:
            while (true) {
                tick(s.line);
                if (eval(*s.cond, locals).i == 0)
                    return Flow::Normal;
                Flow fl = execStmt(*s.body[0], locals, ret);
                if (fl == Flow::Break)
                    return Flow::Normal;
                if (fl == Flow::Return)
                    return fl;
            }
          case StmtKind::For: {
            if (s.init) {
                Flow fl = execStmt(*s.init, locals, ret);
                if (fl != Flow::Normal)
                    return fl;
            }
            while (true) {
                tick(s.line);
                if (s.cond && eval(*s.cond, locals).i == 0)
                    return Flow::Normal;
                Flow fl = execStmt(*s.body[0], locals, ret);
                if (fl == Flow::Break)
                    return Flow::Normal;
                if (fl == Flow::Return)
                    return fl;
                if (s.step) {
                    fl = execStmt(*s.step, locals, ret);
                    if (fl != Flow::Normal)
                        return fl;
                }
            }
          }
          case StmtKind::Return:
            if (s.value)
                ret = eval(*s.value, locals);
            return Flow::Return;
          case StmtKind::Break:
            return Flow::Break;
          case StmtKind::Continue:
            return Flow::Continue;
          case StmtKind::LocalDecl:
            if (s.value)
                locals[static_cast<std::size_t>(s.varId)] =
                    eval(*s.value, locals);
            return Flow::Normal;
          case StmtKind::Assign: {
            Value v = eval(*s.value, locals);
            if (s.index) {
                std::int64_t idx = eval(*s.index, locals).i;
                element(s.name, idx, s.line) = v;
            } else if (s.varId >= 0) {
                locals[static_cast<std::size_t>(s.varId)] = v;
            } else {
                global(s.name, s.line).words[0] = v;
            }
            return Flow::Normal;
          }
          case StmtKind::ExprStmt:
            eval(*s.value, locals);
            return Flow::Normal;
          case StmtKind::Out:
            out_.push_back(eval(*s.value, locals).i);
            return Flow::Normal;
        }
        return Flow::Normal;
    }

    Value
    eval(const Expr &e, std::vector<Value> &locals)
    {
        tick(e.line);
        Value v;
        switch (e.kind) {
          case ExprKind::IntLit:
            v.i = e.intVal;
            return v;
          case ExprKind::FpLit:
            v.f = e.fpVal;
            return v;
          case ExprKind::VarRef:
            if (e.varId >= 0)
                return locals[static_cast<std::size_t>(e.varId)];
            return global(e.name, e.line).words[0];
          case ExprKind::ArrayRef: {
            std::int64_t idx = eval(*e.a, locals).i;
            return element(e.name, idx, e.line);
          }
          case ExprKind::Binary:
            return evalBinary(e, locals);
          case ExprKind::Neg: {
            Value a = eval(*e.a, locals);
            if (e.type == Type::Fp)
                v.f = -a.f;
            else
                v.i = static_cast<std::int64_t>(
                    0 - static_cast<std::uint64_t>(a.i));
            return v;
          }
          case ExprKind::Not:
            v.i = eval(*e.a, locals).i == 0 ? 1 : 0;
            return v;
          case ExprKind::Call: {
            const Function *fn = m_.findFunction(e.name);
            if (!fn)
                fatal("%s: interp: unknown function '%s' at line %d",
                      m_.name.c_str(), e.name.c_str(), e.line);
            std::vector<Value> args;
            for (const ExprPtr &arg : e.args)
                args.push_back(eval(*arg, locals));
            return callFunction(*fn, args);
          }
          case ExprKind::Cast: {
            Value a = eval(*e.a, locals);
            if (e.type == e.a->type)
                return a;
            if (e.type == Type::Fp)
                v.f = static_cast<double>(a.i);
            else
                v.i = static_cast<std::int64_t>(a.f); // ISA fcvti: trunc
            return v;
          }
        }
        return v;
    }

    Value
    evalBinary(const Expr &e, std::vector<Value> &locals)
    {
        Value v;
        // Short-circuit first: the right side may not evaluate at all.
        if (e.op == BinOp::LAnd || e.op == BinOp::LOr) {
            bool a = eval(*e.a, locals).i != 0;
            if (e.op == BinOp::LAnd)
                v.i = (a && eval(*e.b, locals).i != 0) ? 1 : 0;
            else
                v.i = (a || eval(*e.b, locals).i != 0) ? 1 : 0;
            return v;
        }
        Value a = eval(*e.a, locals);
        Value b = eval(*e.b, locals);
        bool fp = e.a->type == Type::Fp;
        switch (e.op) {
          case BinOp::Add:
            if (fp)
                v.f = a.f + b.f;
            else
                v.i = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a.i) +
                    static_cast<std::uint64_t>(b.i));
            return v;
          case BinOp::Sub:
            if (fp)
                v.f = a.f - b.f;
            else
                v.i = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a.i) -
                    static_cast<std::uint64_t>(b.i));
            return v;
          case BinOp::Mul:
            if (fp)
                v.f = a.f * b.f;
            else
                v.i = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a.i) *
                    static_cast<std::uint64_t>(b.i));
            return v;
          case BinOp::Div:
            if (fp)
                v.f = a.f / b.f;
            else
                v.i = isaDiv(a.i, b.i);
            return v;
          case BinOp::Rem:
            v.i = isaRem(a.i, b.i);
            return v;
          case BinOp::Eq:
            v.i = fp ? (a.f == b.f) : (a.i == b.i);
            return v;
          case BinOp::Ne:
            v.i = fp ? (a.f != b.f) : (a.i != b.i);
            return v;
          case BinOp::Lt:
            v.i = fp ? (a.f < b.f) : (a.i < b.i);
            return v;
          case BinOp::Le:
            v.i = fp ? (a.f <= b.f) : (a.i <= b.i);
            return v;
          case BinOp::Gt:
            v.i = fp ? (a.f > b.f) : (a.i > b.i);
            return v;
          case BinOp::Ge:
            v.i = fp ? (a.f >= b.f) : (a.i >= b.i);
            return v;
          case BinOp::LAnd:
          case BinOp::LOr:
            break;
        }
        return v;
    }
};

} // namespace

std::vector<std::int64_t>
interpret(const Module &m, const GlobalWords &init)
{
    return Interp(m, init).run();
}

} // namespace cc
} // namespace mmt
