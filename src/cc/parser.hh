/**
 * @file
 * Recursive-descent parser and semantic checker for the mmtc C subset:
 * tokens -> typed AST (cc/ast.hh). Name resolution, type checking and
 * implicit Int<->Fp conversions happen here; every error is reported via
 * fatal() with the program name and source line.
 */

#ifndef MMT_CC_PARSER_HH
#define MMT_CC_PARSER_HH

#include <string>

#include "cc/ast.hh"

namespace mmt
{
namespace cc
{

/**
 * Parse @p source into a typed Module.
 *
 * @param source the C-subset program text
 * @param name program name used in diagnostics (file name or workload)
 */
Module parse(const std::string &source, const std::string &name);

} // namespace cc
} // namespace mmt

#endif // MMT_CC_PARSER_HH
