#include "cc/irgen.hh"

#include <utility>

#include "common/logging.hh"

namespace mmt
{
namespace cc
{
namespace
{

class IrGen
{
  public:
    explicit IrGen(const Module &m) : mod_(m) {}

    IrModule
    run()
    {
        IrModule out;
        out.name = mod_.name;
        out.globals = mod_.globals;
        for (const auto &fn : mod_.functions) {
            out.functions.push_back(lowerFunction(*fn));
        }
        return out;
    }

  private:
    const Module &mod_;
    IrFunction *f_ = nullptr;
    int cur_ = 0;
    std::vector<int> breakTargets_;
    std::vector<int> continueTargets_;

    IrFunction
    lowerFunction(const Function &fn)
    {
        IrFunction irf;
        irf.name = fn.name;
        irf.retType = fn.retType;
        irf.numParams = fn.numParams;
        irf.vregTypes = fn.localTypes;
        irf.blocks.emplace_back();

        f_ = &irf;
        cur_ = 0;
        breakTargets_.clear();
        continueTargets_.clear();

        genStmt(*fn.body);
        terminateOpenBlocks(fn.retType);
        f_ = nullptr;
        return irf;
    }

    int
    newBlock()
    {
        f_->blocks.emplace_back();
        return static_cast<int>(f_->blocks.size()) - 1;
    }

    bool
    curTerminated() const
    {
        const IrBlock &b = f_->blocks[static_cast<std::size_t>(cur_)];
        return !b.insts.empty() && b.insts.back().isTerminator();
    }

    IrInst &
    emit(IrInst inst)
    {
        // Code after return/break/continue lands in a fresh unreachable
        // block so every block keeps exactly one terminator.
        if (curTerminated())
            cur_ = newBlock();
        IrBlock &b = f_->blocks[static_cast<std::size_t>(cur_)];
        b.insts.push_back(std::move(inst));
        return b.insts.back();
    }

    IrInst
    make(IrOp op, int line)
    {
        IrInst inst;
        inst.op = op;
        inst.line = line;
        return inst;
    }

    int
    emitConstI(std::int64_t v, int line)
    {
        IrInst inst = make(IrOp::ConstI, line);
        inst.dst = f_->newTemp(Type::Int);
        inst.imm = v;
        emit(inst);
        return inst.dst;
    }

    void
    emitBr(int target, int line)
    {
        if (curTerminated())
            return;
        IrInst inst = make(IrOp::Br, line);
        inst.target = target;
        emit(inst);
    }

    void
    emitCondBr(int cond, int t, int fblk, int line)
    {
        IrInst inst = make(IrOp::CondBr, line);
        inst.a = cond;
        inst.target = t;
        inst.targetF = fblk;
        emit(inst);
    }

    // ----- expressions ------------------------------------------------

    int
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            return emitConstI(e.intVal, e.line);
          case ExprKind::FpLit: {
            IrInst inst = make(IrOp::ConstF, e.line);
            inst.dst = f_->newTemp(Type::Fp);
            inst.fimm = e.fpVal;
            emit(inst);
            return inst.dst;
          }
          case ExprKind::VarRef:
            if (e.varId >= 0)
                return e.varId;
            return genGlobalLoad(e.name, -1, e.type, e.line);
          case ExprKind::ArrayRef: {
            int idx = genExpr(*e.a);
            return genGlobalLoad(e.name, idx, e.type, e.line);
          }
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Neg: {
            int a = genExpr(*e.a);
            if (e.type == Type::Fp) {
                IrInst inst = make(IrOp::FNeg, e.line);
                inst.dst = f_->newTemp(Type::Fp);
                inst.a = a;
                emit(inst);
                return inst.dst;
            }
            int zero = emitConstI(0, e.line);
            IrInst inst = make(IrOp::Sub, e.line);
            inst.dst = f_->newTemp(Type::Int);
            inst.a = zero;
            inst.b = a;
            emit(inst);
            return inst.dst;
          }
          case ExprKind::Not: {
            int a = genExpr(*e.a);
            IrInst inst = make(IrOp::Not, e.line);
            inst.dst = f_->newTemp(Type::Int);
            inst.a = a;
            emit(inst);
            return inst.dst;
          }
          case ExprKind::Call:
            return genCall(e);
          case ExprKind::Cast: {
            int a = genExpr(*e.a);
            if (e.type == e.a->type)
                return a;
            IrInst inst =
                make(e.type == Type::Fp ? IrOp::CvtIF : IrOp::CvtFI, e.line);
            inst.dst = f_->newTemp(e.type);
            inst.a = a;
            emit(inst);
            return inst.dst;
          }
        }
        mmt_assert(false, "unhandled expression kind");
        return -1;
    }

    int
    genGlobalLoad(const std::string &sym, int idx, Type type, int line)
    {
        IrInst inst = make(IrOp::LoadG, line);
        inst.dst = f_->newTemp(type);
        inst.a = idx;
        inst.sym = sym;
        emit(inst);
        return inst.dst;
    }

    int
    genCall(const Expr &e)
    {
        IrInst inst = make(IrOp::Call, e.line);
        for (const ExprPtr &arg : e.args)
            inst.args.push_back(genExpr(*arg));
        inst.sym = e.name;
        inst.dst = e.type == Type::Void ? -1 : f_->newTemp(e.type);
        emit(inst);
        return inst.dst;
    }

    int
    genBinary(const Expr &e)
    {
        if (e.op == BinOp::LAnd || e.op == BinOp::LOr)
            return genShortCircuit(e);

        bool fp = e.a->type == Type::Fp;
        int a = genExpr(*e.a);
        int b = genExpr(*e.b);
        IrOp op = IrOp::Add;
        bool swap = false;
        bool negate = false;
        switch (e.op) {
          case BinOp::Add: op = fp ? IrOp::FAdd : IrOp::Add; break;
          case BinOp::Sub: op = fp ? IrOp::FSub : IrOp::Sub; break;
          case BinOp::Mul: op = fp ? IrOp::FMul : IrOp::Mul; break;
          case BinOp::Div: op = fp ? IrOp::FDiv : IrOp::Div; break;
          case BinOp::Rem: op = IrOp::Rem; break;
          case BinOp::Eq: op = fp ? IrOp::FCmpEQ : IrOp::CmpEQ; break;
          case BinOp::Ne:
            // FP has no direct NE: lower as !(a == b).
            op = fp ? IrOp::FCmpEQ : IrOp::CmpNE;
            negate = fp;
            break;
          case BinOp::Lt: op = fp ? IrOp::FCmpLT : IrOp::CmpLT; break;
          case BinOp::Le: op = fp ? IrOp::FCmpLE : IrOp::CmpLE; break;
          case BinOp::Gt:
            op = fp ? IrOp::FCmpLT : IrOp::CmpLT;
            swap = true;
            break;
          case BinOp::Ge:
            op = fp ? IrOp::FCmpLE : IrOp::CmpLE;
            swap = true;
            break;
          case BinOp::LAnd:
          case BinOp::LOr:
            break;
        }
        IrInst inst = make(op, e.line);
        inst.dst = f_->newTemp(e.type);
        inst.a = swap ? b : a;
        inst.b = swap ? a : b;
        emit(inst);
        if (!negate)
            return inst.dst;
        IrInst inv = make(IrOp::Not, e.line);
        inv.dst = f_->newTemp(Type::Int);
        inv.a = inst.dst;
        emit(inv);
        return inv.dst;
    }

    int
    genShortCircuit(const Expr &e)
    {
        // result is a mutable temp assigned on both paths.
        int result = f_->newTemp(Type::Int);
        int a = genExpr(*e.a);
        int abool = f_->newTemp(Type::Int);
        IrInst toBool = make(IrOp::Bool, e.line);
        toBool.dst = abool;
        toBool.a = a;
        emit(toBool);
        IrInst movA = make(IrOp::Mov, e.line);
        movA.dst = result;
        movA.a = abool;
        emit(movA);

        int rhs = newBlock();
        int join = newBlock();
        if (e.op == BinOp::LAnd)
            emitCondBr(abool, rhs, join, e.line);
        else
            emitCondBr(abool, join, rhs, e.line);

        cur_ = rhs;
        int b = genExpr(*e.b);
        IrInst bBool = make(IrOp::Bool, e.line);
        bBool.dst = f_->newTemp(Type::Int);
        bBool.a = b;
        emit(bBool);
        IrInst movB = make(IrOp::Mov, e.line);
        movB.dst = result;
        movB.a = bBool.dst;
        emit(movB);
        emitBr(join, e.line);

        cur_ = join;
        return result;
    }

    // ----- statements -------------------------------------------------

    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Block:
            for (const StmtPtr &child : s.body)
                genStmt(*child);
            return;
          case StmtKind::If:
            genIf(s);
            return;
          case StmtKind::While:
            genWhile(s);
            return;
          case StmtKind::For:
            genFor(s);
            return;
          case StmtKind::Return: {
            IrInst inst = make(IrOp::Ret, s.line);
            inst.a = s.value ? genExpr(*s.value) : -1;
            emit(inst);
            return;
          }
          case StmtKind::Break:
            mmt_assert(!breakTargets_.empty(), "break outside loop");
            emitBr(breakTargets_.back(), s.line);
            return;
          case StmtKind::Continue:
            mmt_assert(!continueTargets_.empty(), "continue outside loop");
            emitBr(continueTargets_.back(), s.line);
            return;
          case StmtKind::LocalDecl:
            if (s.value) {
                IrInst inst = make(IrOp::Mov, s.line);
                inst.dst = s.varId;
                inst.a = genExpr(*s.value);
                emit(inst);
            }
            return;
          case StmtKind::Assign:
            genAssign(s);
            return;
          case StmtKind::ExprStmt:
            genExpr(*s.value);
            return;
          case StmtKind::Out: {
            IrInst inst = make(IrOp::Out, s.line);
            inst.a = genExpr(*s.value);
            emit(inst);
            return;
          }
        }
    }

    void
    genAssign(const Stmt &s)
    {
        if (s.index) {
            int idx = genExpr(*s.index);
            int val = genExpr(*s.value);
            IrInst inst = make(IrOp::StoreG, s.line);
            inst.a = idx;
            inst.b = val;
            inst.sym = s.name;
            emit(inst);
        } else if (s.varId >= 0) {
            IrInst inst = make(IrOp::Mov, s.line);
            inst.dst = s.varId;
            inst.a = genExpr(*s.value);
            emit(inst);
        } else {
            int val = genExpr(*s.value);
            IrInst inst = make(IrOp::StoreG, s.line);
            inst.a = -1;
            inst.b = val;
            inst.sym = s.name;
            emit(inst);
        }
    }

    void
    genIf(const Stmt &s)
    {
        int cond = genExpr(*s.cond);
        bool hasElse = s.body.size() > 1;
        int thenB = newBlock();
        int elseB = hasElse ? newBlock() : -1;
        int join = newBlock();
        emitCondBr(cond, thenB, hasElse ? elseB : join, s.line);

        cur_ = thenB;
        genStmt(*s.body[0]);
        emitBr(join, s.line);

        if (hasElse) {
            cur_ = elseB;
            genStmt(*s.body[1]);
            emitBr(join, s.line);
        }
        cur_ = join;
    }

    void
    genWhile(const Stmt &s)
    {
        int header = newBlock();
        emitBr(header, s.line);
        cur_ = header;
        int cond = genExpr(*s.cond);
        int body = newBlock();
        int exit = newBlock();
        emitCondBr(cond, body, exit, s.line);

        breakTargets_.push_back(exit);
        continueTargets_.push_back(header);
        cur_ = body;
        genStmt(*s.body[0]);
        emitBr(header, s.line);
        breakTargets_.pop_back();
        continueTargets_.pop_back();

        cur_ = exit;
    }

    void
    genFor(const Stmt &s)
    {
        // The block holding the init acts as the loop preheader; the
        // step lives in a dedicated latch so `continue` re-runs it.
        if (s.init)
            genStmt(*s.init);
        int header = newBlock();
        emitBr(header, s.line);
        cur_ = header;
        int cond = s.cond ? genExpr(*s.cond) : emitConstI(1, s.line);
        int body = newBlock();
        int latch = newBlock();
        int exit = newBlock();
        emitCondBr(cond, body, exit, s.line);

        breakTargets_.push_back(exit);
        continueTargets_.push_back(latch);
        cur_ = body;
        genStmt(*s.body[0]);
        emitBr(latch, s.line);
        breakTargets_.pop_back();
        continueTargets_.pop_back();

        cur_ = latch;
        if (s.step)
            genStmt(*s.step);
        emitBr(header, s.line);

        cur_ = exit;
    }

    void
    terminateOpenBlocks(Type retType)
    {
        for (IrBlock &b : f_->blocks) {
            if (!b.insts.empty() && b.insts.back().isTerminator())
                continue;
            // Fell off the end (or an empty join/unreachable block):
            // synthesize `return 0` / `return 0.0` / `return`.
            int line = b.insts.empty() ? 0 : b.insts.back().line;
            IrInst ret;
            ret.op = IrOp::Ret;
            ret.line = line;
            if (retType == Type::Void) {
                ret.a = -1;
            } else if (retType == Type::Fp) {
                IrInst cst;
                cst.op = IrOp::ConstF;
                cst.dst = f_->newTemp(Type::Fp);
                cst.fimm = 0.0;
                cst.line = line;
                b.insts.push_back(cst);
                ret.a = cst.dst;
            } else {
                IrInst cst;
                cst.op = IrOp::ConstI;
                cst.dst = f_->newTemp(Type::Int);
                cst.imm = 0;
                cst.line = line;
                b.insts.push_back(cst);
                ret.a = cst.dst;
            }
            b.insts.push_back(ret);
        }
    }
};

} // namespace

IrModule
lowerToIr(const Module &m)
{
    return IrGen(m).run();
}

} // namespace cc
} // namespace mmt
