#include "runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/analyzer.hh"
#include "common/logging.hh"
#include "iasm/assembler.hh"
#include "runner/result_store.hh"

namespace mmt
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Warn-and-keep-default env int: strict parse, minimum bound. */
void
envInt(const char *name, int min_value, int &out)
{
    const char *value = std::getenv(name);
    if (!value)
        return;
    long parsed = 0;
    if (!parseStrictInt(value, parsed) || parsed < min_value) {
        warn("%s='%s' is not an integer >= %d; keeping default %d", name,
             value, min_value, out);
        return;
    }
    out = static_cast<int>(parsed);
}

/** Warn-and-keep-default env bool. */
void
envBool(const char *name, bool &out)
{
    const char *value = std::getenv(name);
    if (!value)
        return;
    bool parsed = false;
    if (!parseStrictBool(value, parsed)) {
        warn("%s='%s' is not a boolean (0/1/true/false/on/off/yes/no); "
             "keeping default %d",
             name, value, out ? 1 : 0);
        return;
    }
    out = parsed;
}

} // namespace

std::vector<double>
predictSweepJobs(const SweepSpec &spec)
{
    std::vector<double> pred(spec.jobs.size(), 0.0);
    std::map<std::string, double> memo;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const JobSpec &job = spec.jobs[i];
        // Mirrors makeCoreParams: the Limit config forces tid to 0.
        bool tid0 = job.kind == ConfigKind::Limit;
        std::string key = job.workload + (tid0 ? "|tid0" : "");
        auto it = memo.find(key);
        if (it == memo.end()) {
            const Workload &w = resolveWorkload(job.workload);
            Program prog =
                assemble(w.source, defaultCodeBase, defaultDataBase,
                         w.name);
            analysis::AnalysisOptions opt;
            opt.multiExecution = w.multiExecution;
            opt.forceTidZero = tid0;
            double frac = analysis::analyzeProgram(prog, opt)
                              .staticMergeableFrac();
            it = memo.emplace(key, frac).first;
        }
        pred[i] = it->second;
    }
    return pred;
}

std::vector<std::size_t>
sweepPriorityOrder(const std::vector<double> &predictions)
{
    std::vector<std::size_t> order(predictions.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&predictions](std::size_t a, std::size_t b) {
                         return predictions[a] > predictions[b];
                     });
    return order;
}

ProgressReporter::ProgressReporter(const std::string &name,
                                   std::size_t total, bool enabled,
                                   Sink sink)
    : name_(name), total_(total), enabled_(enabled),
      sink_(std::move(sink)), start_(Clock::now())
{}

void
ProgressReporter::jobDone(const JobSpec &job, bool cached)
{
    // The increment and the emission share one critical section: with
    // the increment outside, two workers could observe the same count
    // (printing "[5/64]" twice, never "[6/64]") and the final line was
    // not guaranteed to read total/total.
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t done = ++done_;
    if (!enabled_)
        return;
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start_).count();
    double eta = done < total_
                     ? elapsed / static_cast<double>(done) *
                           static_cast<double>(total_ - done)
                     : 0.0;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "[%s %zu/%zu] %s/%s/%dT%s  elapsed %.1fs  eta %.1fs",
                  name_.c_str(), done, total_, job.workload.c_str(),
                  configName(job.kind), job.numThreads,
                  cached ? " (cached)" : "", elapsed, eta);
    if (sink_)
        sink_(line);
    else
        std::fprintf(stderr, "%s\n", line);
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

bool
parseStrictInt(const std::string &text, long &out)
{
    if (text.empty() || text.size() > 18)
        return false;
    long value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + (c - '0');
    }
    out = value;
    return true;
}

bool
parseStrictBool(const std::string &text, bool &out)
{
    if (text == "1" || text == "true" || text == "on" || text == "yes") {
        out = true;
        return true;
    }
    if (text == "0" || text == "false" || text == "off" ||
        text == "no") {
        out = false;
        return true;
    }
    return false;
}

bool
parseStrictDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    if (!(value >= 0.0) || value > 1e12) // rejects NaN and negatives
        return false;
    out = value;
    return true;
}

std::string
SweepOutcome::summary() const
{
    std::ostringstream os;
    os << results.size() << " jobs: " << executed << " simulated, "
       << cacheHits << " cached";
    if (corruptEntries)
        os << " (" << corruptEntries << " corrupt entries quarantined)";
    if (missingJobs)
        os << ", " << missingJobs
           << " missing (in flight elsewhere — re-run to complete)";
    if (goldenFailures)
        os << ", " << goldenFailures << " golden FAILURES";
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.1f", wallSeconds);
    os << " in " << secs << "s";
    return os.str();
}

SweepOutcome
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    const std::size_t total = spec.jobs.size();
    SweepOutcome out;
    out.results.resize(total);
    out.fromCache.assign(total, false);

    // Analyzer-driven pruning: claim jobs most-promising-first (by
    // descending predicted mergeable fraction) so partial runs cover
    // the interesting points early. Results still land in spec-order
    // slots — the artifacts are byte-identical for any ordering.
    out.predictedMergeable = predictSweepJobs(spec);
    out.executionOrder = sweepPriorityOrder(out.predictedMergeable);

    std::unique_ptr<ResultStore> store;
    if (!options.cacheDir.empty())
        store = std::make_unique<ResultStore>(options.cacheDir);

    ProgressReporter progress(spec.name.empty() ? "sweep" : spec.name,
                              total, options.progress);
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> executed{0}, hits{0}, corrupt{0}, golden{0};

    auto start = Clock::now();
    auto worker = [&]() {
        for (;;) {
            std::size_t next = cursor.fetch_add(1);
            if (next >= total)
                return;
            std::size_t i = out.executionOrder[next];
            const JobSpec &job = spec.jobs[i];
            bool cached = false;
            if (store && !options.forceRerun) {
                switch (store->load(job, out.results[i])) {
                  case ResultStore::Status::Hit:
                    cached = true;
                    ++hits;
                    break;
                  case ResultStore::Status::Corrupt:
                    store->quarantine(job);
                    ++corrupt;
                    break;
                  case ResultStore::Status::Miss:
                    break;
                }
            }
            if (!cached) {
                out.results[i] =
                    runWorkload(resolveWorkload(job.workload), job.kind,
                                job.numThreads, job.overrides,
                                job.checkGolden);
                ++executed;
                if (store)
                    store->store(job, out.results[i]);
            }
            out.fromCache[i] = cached;
            if (job.checkGolden && !out.results[i].goldenOk)
                ++golden;
            progress.jobDone(job, cached);
        }
    };

    int jobs = options.jobs;
    if (jobs < 1)
        jobs = 1;
    std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs), total);
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    out.executed = executed;
    out.cacheHits = hits;
    out.corruptEntries = corrupt;
    out.goldenFailures = golden;
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
}

SweepOptions
sweepOptionsFromEnv()
{
    SweepOptions opt;
    unsigned hw = std::thread::hardware_concurrency();
    opt.jobs = hw ? static_cast<int>(hw) : 1;
    envInt("MMT_JOBS", 1, opt.jobs);
    envInt("MMT_SHARDS", 0, opt.shards);
    if (const char *dir = std::getenv("MMT_CACHE_DIR")) {
        if (*dir)
            opt.cacheDir = dir;
        else
            warn("MMT_CACHE_DIR is set but empty; caching stays off");
    }
    opt.progress = true;
    envBool("MMT_PROGRESS", opt.progress);
    if (const char *stale = std::getenv("MMT_LEASE_STALE_SEC")) {
        double parsed = 0.0;
        if (parseStrictDouble(stale, parsed) && parsed > 0.0) {
            opt.leaseStaleSec = parsed;
        } else {
            warn("MMT_LEASE_STALE_SEC='%s' is not a positive number; "
                 "keeping default %.1f",
                 stale, opt.leaseStaleSec);
        }
    }
    return opt;
}

} // namespace mmt
