#include "runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/analyzer.hh"
#include "common/logging.hh"
#include "iasm/assembler.hh"
#include "runner/result_store.hh"

namespace mmt
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Serialized stderr progress lines with a running ETA. */
class ProgressReporter
{
  public:
    ProgressReporter(const std::string &name, std::size_t total,
                     bool enabled)
        : name_(name), total_(total), enabled_(enabled),
          start_(Clock::now())
    {}

    void
    jobDone(const JobSpec &job, bool cached)
    {
        std::size_t done = ++done_;
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        double eta = done < total_
                         ? elapsed / static_cast<double>(done) *
                               static_cast<double>(total_ - done)
                         : 0.0;
        std::fprintf(stderr,
                     "[%s %zu/%zu] %s/%s/%dT%s  elapsed %.1fs  eta %.1fs\n",
                     name_.c_str(), done, total_, job.workload.c_str(),
                     configName(job.kind), job.numThreads,
                     cached ? " (cached)" : "", elapsed, eta);
    }

  private:
    std::string name_;
    std::size_t total_;
    bool enabled_;
    Clock::time_point start_;
    std::atomic<std::size_t> done_{0};
    std::mutex mutex_;
};

/**
 * Analyzer predictions per job, memoized per (workload, thread-model):
 * the static pass costs microseconds, so running it up front for every
 * job is free next to even one simulation.
 */
std::vector<double>
predictJobs(const SweepSpec &spec)
{
    std::vector<double> pred(spec.jobs.size(), 0.0);
    std::map<std::string, double> memo;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const JobSpec &job = spec.jobs[i];
        // Mirrors makeCoreParams: the Limit config forces tid to 0.
        bool tid0 = job.kind == ConfigKind::Limit;
        std::string key = job.workload + (tid0 ? "|tid0" : "");
        auto it = memo.find(key);
        if (it == memo.end()) {
            const Workload &w = resolveWorkload(job.workload);
            Program prog =
                assemble(w.source, defaultCodeBase, defaultDataBase,
                         w.name);
            analysis::AnalysisOptions opt;
            opt.multiExecution = w.multiExecution;
            opt.forceTidZero = tid0;
            double frac = analysis::analyzeProgram(prog, opt)
                              .staticMergeableFrac();
            it = memo.emplace(key, frac).first;
        }
        pred[i] = it->second;
    }
    return pred;
}

} // namespace

std::string
SweepOutcome::summary() const
{
    std::ostringstream os;
    os << results.size() << " jobs: " << executed << " simulated, "
       << cacheHits << " cached";
    if (corruptEntries)
        os << " (" << corruptEntries << " corrupt entries re-run)";
    if (goldenFailures)
        os << ", " << goldenFailures << " golden FAILURES";
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.1f", wallSeconds);
    os << " in " << secs << "s";
    return os.str();
}

SweepOutcome
runSweep(const SweepSpec &spec, const SweepOptions &options)
{
    const std::size_t total = spec.jobs.size();
    SweepOutcome out;
    out.results.resize(total);
    out.fromCache.assign(total, false);

    // Analyzer-driven pruning: claim jobs most-promising-first (by
    // descending predicted mergeable fraction) so partial runs cover
    // the interesting points early. Results still land in spec-order
    // slots — the artifacts are byte-identical for any ordering.
    out.predictedMergeable = predictJobs(spec);
    out.executionOrder.resize(total);
    for (std::size_t i = 0; i < total; ++i)
        out.executionOrder[i] = i;
    std::stable_sort(out.executionOrder.begin(),
                     out.executionOrder.end(),
                     [&out](std::size_t a, std::size_t b) {
                         return out.predictedMergeable[a] >
                                out.predictedMergeable[b];
                     });

    std::unique_ptr<ResultStore> store;
    if (!options.cacheDir.empty())
        store = std::make_unique<ResultStore>(options.cacheDir);

    ProgressReporter progress(spec.name.empty() ? "sweep" : spec.name,
                              total, options.progress);
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> executed{0}, hits{0}, corrupt{0}, golden{0};

    auto start = Clock::now();
    auto worker = [&]() {
        for (;;) {
            std::size_t next = cursor.fetch_add(1);
            if (next >= total)
                return;
            std::size_t i = out.executionOrder[next];
            const JobSpec &job = spec.jobs[i];
            bool cached = false;
            if (store && !options.forceRerun) {
                switch (store->load(job, out.results[i])) {
                  case ResultStore::Status::Hit:
                    cached = true;
                    ++hits;
                    break;
                  case ResultStore::Status::Corrupt:
                    ++corrupt;
                    break;
                  case ResultStore::Status::Miss:
                    break;
                }
            }
            if (!cached) {
                out.results[i] =
                    runWorkload(resolveWorkload(job.workload), job.kind,
                                job.numThreads, job.overrides,
                                job.checkGolden);
                ++executed;
                if (store)
                    store->store(job, out.results[i]);
            }
            out.fromCache[i] = cached;
            if (job.checkGolden && !out.results[i].goldenOk)
                ++golden;
            progress.jobDone(job, cached);
        }
    };

    int jobs = options.jobs;
    if (jobs < 1)
        jobs = 1;
    std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs), total);
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    out.executed = executed;
    out.cacheHits = hits;
    out.corruptEntries = corrupt;
    out.goldenFailures = golden;
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
}

SweepOptions
sweepOptionsFromEnv()
{
    SweepOptions opt;
    unsigned hw = std::thread::hardware_concurrency();
    opt.jobs = hw ? static_cast<int>(hw) : 1;
    if (const char *jobs = std::getenv("MMT_JOBS")) {
        int n = std::atoi(jobs);
        if (n >= 1)
            opt.jobs = n;
    }
    if (const char *dir = std::getenv("MMT_CACHE_DIR")) {
        if (*dir)
            opt.cacheDir = dir;
    }
    const char *prog = std::getenv("MMT_PROGRESS");
    opt.progress = !prog || std::atoi(prog) != 0;
    return opt;
}

} // namespace mmt
