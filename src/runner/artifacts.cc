#include "runner/artifacts.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "runner/cache_key.hh"

namespace mmt
{

namespace
{

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/** Non-default override fields as "fhb=32;lsports=4", or "". */
std::string
overridesLabel(const SimOverrides &ov)
{
    std::ostringstream os;
    const char *sep = "";
    auto field = [&](const char *name, int value, int dflt) {
        if (value != dflt) {
            os << sep << name << "=" << value;
            sep = ";";
        }
    };
    field("fhb", ov.fhbEntries, -1);
    field("lsports", ov.lsPorts, -1);
    field("mshrs", ov.mshrs, -1);
    field("fetchwidth", ov.fetchWidth, -1);
    field("notracecache", ov.disableTraceCache ? 1 : 0, 0);
    field("mergereadports", ov.mergeReadPorts, -1);
    field("catchuppriority", ov.catchupPriority, -1);
    if (ov.staticHints != StaticHintsMode::Off) {
        os << sep << "statichints="
           << staticHintsModeName(ov.staticHints);
        sep = ";";
    }
    field("cores", ov.numCores, 1);
    if (ov.placement != Placement::Packed) {
        os << sep << "placement=" << placementName(ov.placement);
        sep = ";";
    }
    field("sharedicache", ov.sharedICache ? 1 : 0, 0);
    return os.str();
}

/** Per-core context lists as "0:1|2:3" (one group per populated core). */
std::string
perCoreContextsLabel(const RunResult &r)
{
    std::string out;
    for (std::size_t c = 0; c < r.perCore.size(); ++c) {
        if (c)
            out += "|";
        const std::vector<int> &ctxs = r.perCore[c].contexts;
        for (std::size_t i = 0; i < ctxs.size(); ++i)
            out += (i ? ":" : "") + std::to_string(ctxs[i]);
    }
    return out;
}

/** One numeric column value per core, pipe-joined. */
template <typename Fn>
std::string
perCoreJoined(const RunResult &r, Fn value)
{
    std::string out;
    for (std::size_t c = 0; c < r.perCore.size(); ++c) {
        if (c)
            out += "|";
        out += value(r.perCore[c]);
    }
    return out;
}

} // namespace

std::string
sweepToJson(const SweepSpec &spec, const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"sweep\": " << jsonStr(spec.name) << ",\n";
    os << "  \"codeVersion\": " << jsonStr(kCodeVersionSalt) << ",\n";
    os << "  \"executed\": " << outcome.executed << ",\n";
    os << "  \"cacheHits\": " << outcome.cacheHits << ",\n";
    os << "  \"wallSeconds\": " << jsonNum(outcome.wallSeconds) << ",\n";
    os << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const JobSpec &job = spec.jobs[i];
        const RunResult &r = outcome.results[i];
        os << "    {\"workload\": " << jsonStr(job.workload)
           << ", \"config\": " << jsonStr(configName(job.kind))
           << ", \"threads\": " << job.numThreads
           << ", \"overrides\": " << jsonStr(overridesLabel(job.overrides))
           << ", \"fromCache\": "
           << (outcome.fromCache[i] ? "true" : "false")
           << ",\n     \"cycles\": " << r.cycles
           << ", \"committedThreadInsts\": " << r.committedThreadInsts
           << ", \"ipc\": " << jsonNum(r.ipc())
           << ", \"fetchRecords\": " << r.fetchRecords
           << ", \"fetchedThreadInsts\": " << r.fetchedThreadInsts
           << ",\n     \"fetchModeFrac\": [" << jsonNum(r.fetchModeFrac[0])
           << ", " << jsonNum(r.fetchModeFrac[1]) << ", "
           << jsonNum(r.fetchModeFrac[2]) << "]"
           << ", \"identFrac\": [" << jsonNum(r.identFrac[0]) << ", "
           << jsonNum(r.identFrac[1]) << ", " << jsonNum(r.identFrac[2])
           << ", " << jsonNum(r.identFrac[3]) << "]"
           << ",\n     \"energyPj\": {\"cache\": " << jsonNum(r.energy.cache)
           << ", \"overhead\": " << jsonNum(r.energy.overhead)
           << ", \"other\": " << jsonNum(r.energy.other) << "}"
           << ", \"lvipRollbacks\": " << r.lvipRollbacks
           << ", \"branchMispredicts\": " << r.branchMispredicts
           << ",\n     \"divergences\": " << r.divergences
           << ", \"remerges\": " << r.remerges
           << ", \"remergeWithin512\": " << jsonNum(r.remergeWithin512)
           << ",\n     \"catchupAborted\": " << r.catchupAborted
           << ", \"syncLatencyCycles\": " << r.syncLatencyCycles
           << ", \"syncLatencySamples\": " << r.syncLatencySamples
           << ", \"meanSyncLatency\": " << jsonNum(r.meanSyncLatency())
           << ",\n     \"staticMergeableFrac\": "
           << jsonNum(r.staticMergeableFrac)
           << ", \"predicted_mergeable\": "
           << jsonNum(i < outcome.predictedMergeable.size()
                          ? outcome.predictedMergeable[i]
                          : 0.0)
           << ", \"mergedFrac\": " << jsonNum(r.mergedFrac())
           << ", \"goldenOk\": " << (r.goldenOk ? "true" : "false")
           << ",\n     \"splitSteerCharges\": " << r.splitSteerCharges
           << ", \"numCores\": " << r.numCores
           << ", \"placement\": " << jsonStr(placementName(r.placement))
           << ", \"sharedL2Accesses\": " << r.sharedL2Accesses
           << ", \"sharedL2Misses\": " << r.sharedL2Misses
           << ",\n     \"sharedICacheAccesses\": " << r.sharedICacheAccesses
           << ", \"sharedICacheHits\": " << r.sharedICacheHits
           << ",\n     \"perCore\": [";
        for (std::size_t c = 0; c < r.perCore.size(); ++c) {
            const CoreBreakdown &cb = r.perCore[c];
            os << (c ? ", " : "") << "{\"contexts\": [";
            for (std::size_t k = 0; k < cb.contexts.size(); ++k)
                os << (k ? ", " : "") << cb.contexts[k];
            os << "], \"cycles\": " << cb.cycles
               << ", \"committedThreadInsts\": " << cb.committedThreadInsts
               << ", \"mergedFrac\": " << jsonNum(cb.mergedFrac)
               << ", \"energyPj\": " << jsonNum(cb.energyPj)
               << ", \"sharedICacheHits\": " << cb.sharedICacheHits
               << "}";
        }
        os << "]"
           << ",\n     \"simSpeed\": {\"hostSeconds\": "
           << jsonNum(r.simSpeed.hostSeconds) << ", \"simCyclesPerSec\": "
           << jsonNum(r.simSpeed.simCyclesPerSec)
           << ", \"threadInstsPerSec\": "
           << jsonNum(r.simSpeed.threadInstsPerSec) << "}}"
           << (i + 1 < spec.jobs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
sweepToCsv(const SweepSpec &spec, const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << "workload,config,threads,overrides,fromCache,cycles,"
          "committedThreadInsts,ipc,fetchRecords,fetchedThreadInsts,"
          "mergeFrac,detectFrac,catchupFrac,identNoneFrac,identFetchFrac,"
          "identExecFrac,identExecMergeFrac,energyCachePj,"
          "energyOverheadPj,energyOtherPj,lvipRollbacks,branchMispredicts,"
          "divergences,remerges,remergeWithin512,catchupAborted,"
          "syncLatencyCycles,syncLatencySamples,meanSyncLatency,"
          "staticMergeableFrac,predicted_mergeable,mergedFrac,goldenOk,"
          "splitSteerCharges,numCores,placement,sharedL2Accesses,"
          "sharedL2Misses,sharedICacheAccesses,sharedICacheHits,"
          "perCoreContexts,perCoreCycles,perCoreMergedFrac,"
          "perCoreSharedICacheHits,"
          "hostSeconds,simCyclesPerSec,threadInstsPerSec\n";
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const JobSpec &job = spec.jobs[i];
        const RunResult &r = outcome.results[i];
        os << job.workload << "," << configName(job.kind) << ","
           << job.numThreads << "," << overridesLabel(job.overrides) << ","
           << (outcome.fromCache[i] ? 1 : 0) << "," << r.cycles << ","
           << r.committedThreadInsts << "," << jsonNum(r.ipc()) << ","
           << r.fetchRecords << "," << r.fetchedThreadInsts;
        for (double v : r.fetchModeFrac)
            os << "," << jsonNum(v);
        for (double v : r.identFrac)
            os << "," << jsonNum(v);
        os << "," << jsonNum(r.energy.cache) << ","
           << jsonNum(r.energy.overhead) << "," << jsonNum(r.energy.other)
           << "," << r.lvipRollbacks << "," << r.branchMispredicts << ","
           << r.divergences << "," << r.remerges << ","
           << jsonNum(r.remergeWithin512) << "," << r.catchupAborted
           << "," << r.syncLatencyCycles << "," << r.syncLatencySamples
           << "," << jsonNum(r.meanSyncLatency()) << ","
           << jsonNum(r.staticMergeableFrac) << ","
           << jsonNum(i < outcome.predictedMergeable.size()
                          ? outcome.predictedMergeable[i]
                          : 0.0)
           << "," << jsonNum(r.mergedFrac()) << "," << (r.goldenOk ? 1 : 0)
           << "," << r.splitSteerCharges << "," << r.numCores << ","
           << placementName(r.placement) << "," << r.sharedL2Accesses
           << "," << r.sharedL2Misses << "," << r.sharedICacheAccesses
           << "," << r.sharedICacheHits << ","
           << perCoreContextsLabel(r) << ","
           << perCoreJoined(r,
                            [](const CoreBreakdown &cb) {
                                return std::to_string(cb.cycles);
                            })
           << ","
           << perCoreJoined(r,
                            [](const CoreBreakdown &cb) {
                                return jsonNum(cb.mergedFrac);
                            })
           << ","
           << perCoreJoined(r,
                            [](const CoreBreakdown &cb) {
                                return std::to_string(
                                    cb.sharedICacheHits);
                            })
           << "," << jsonNum(r.simSpeed.hostSeconds) << ","
           << jsonNum(r.simSpeed.simCyclesPerSec) << ","
           << jsonNum(r.simSpeed.threadInstsPerSec) << "\n";
    }
    return os.str();
}

void
writeArtifact(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
    if (!out)
        fatal("cannot write artifact '%s'", path.c_str());
}

} // namespace mmt
