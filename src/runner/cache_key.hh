/**
 * @file
 * Content hashing for the sweep runner's persistent result cache.
 *
 * A cache key identifies one simulation job completely: the workload
 * (name *and* assembly source, so editing a kernel invalidates its
 * entries), the configuration, the thread count, every SimOverrides
 * field, and a code-version salt. The salt must be bumped whenever a
 * change to the simulator can alter RunResult values for unchanged
 * inputs — stale cache entries are otherwise indistinguishable from
 * fresh ones.
 */

#ifndef MMT_RUNNER_CACHE_KEY_HH
#define MMT_RUNNER_CACHE_KEY_HH

#include <cstdint>
#include <string>

#include "sim/configs.hh"

namespace mmt
{

struct JobSpec;

/**
 * Bump on any simulator change that affects results (pipeline timing,
 * energy parameters, workload data initialisation, RunResult layout).
 */
inline constexpr const char *kCodeVersionSalt = "mmt-sweep-v6";

/** FNV-1a 64-bit hash of a byte string. */
std::uint64_t fnv1a64(const std::string &bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** Fixed-width lowercase hex rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t hash);

/**
 * Canonical textual encoding of every SimOverrides field, in a fixed
 * order. Two overrides with equal encodings behave identically.
 * Guarded by a field-count sentinel in cache_key.cc: adding a field to
 * SimOverrides without extending this encoding fails the build.
 */
std::string overridesKey(const SimOverrides &ov);

/**
 * Canonical textual encoding of every CoreParams field (including the
 * nested branch/memory/trace-cache parameter structs), in a fixed
 * order. Same sentinel protection as overridesKey(): a new params field
 * cannot silently alias stale cache entries.
 */
std::string paramsKey(const CoreParams &p);

/**
 * Canonical textual encoding of the system topology (core count,
 * placement, shared-I-cache switch and geometry). Sentinel-guarded like
 * paramsKey().
 */
std::string systemKey(const SystemParams &sys);

/**
 * Canonical job identity *within* a sweep: workload name, config,
 * threads, overrides, golden flag, plus the fully-resolved paramsKey()
 * of the job. Used to index results; excludes the source hash and salt
 * (those only matter for on-disk reuse).
 */
std::string jobKey(const JobSpec &job);

/**
 * Full cache identity of a job: jobKey() plus the hash of the workload's
 * assembly source and the code-version salt.
 */
std::string cacheKeyString(const JobSpec &job);

/** 64-bit digest of cacheKeyString(); names the on-disk cache entry. */
std::uint64_t cacheKey(const JobSpec &job);

} // namespace mmt

#endif // MMT_RUNNER_CACHE_KEY_HH
