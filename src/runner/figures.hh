/**
 * @file
 * Declarative registry of the paper's figure sweeps.
 *
 * Each figure is a SweepSpec (what to simulate) plus a render function
 * (how to turn the results into the table the bench prints). The fig5*
 * and fig7* benches and `mmt_cli sweep` are thin wrappers over this
 * registry, so a figure simulated once — serially, in parallel, or from
 * the cache — always renders identically.
 */

#ifndef MMT_RUNNER_FIGURES_HH
#define MMT_RUNNER_FIGURES_HH

#include <string>
#include <vector>

#include "runner/sweep_runner.hh"

namespace mmt
{

/** One reproducible figure of the paper. */
struct Figure
{
    std::string id;        // "5a", "7d", ...
    std::string title;     // header text printed before the table
    std::string paperNote; // "Paper reference: ..." trailer
    SweepSpec sweep;

    /** Render the result table (trailing newline included). */
    std::string (*render)(const SweepSpec &spec,
                          const std::vector<RunResult> &results);
};

/** Ids of every registered figure, in paper order. */
const std::vector<std::string> &figureIds();

/** Build the named figure; fatal if @p id is unknown. */
Figure makeFigure(const std::string &id);

/**
 * Speedups of every MMT configuration over Base for one app.
 * Returned in order {MMT-F, MMT-FX, MMT-FXR, Limit}, as cycle ratios
 * (Base cycles / config cycles).
 */
struct SpeedupRow
{
    std::string app;
    Cycles baseCycles = 0;
    double mmtF = 0.0;
    double mmtFX = 0.0;
    double mmtFXR = 0.0;
    double limit = 0.0;
};

/** Extract one app's Figure 5(a)/(c) row from finished sweep results. */
SpeedupRow speedupRowFromResults(const ResultIndex &index,
                                 const std::string &app, int num_threads,
                                 const SimOverrides &ov = SimOverrides());

/**
 * Run the Figure 5(a)/(c) sweep for one app (serial, uncached).
 * Convenience wrapper over the runner for ad-hoc use.
 */
SpeedupRow speedupRow(const std::string &app, int num_threads,
                      const SimOverrides &ov = SimOverrides());

} // namespace mmt

#endif // MMT_RUNNER_FIGURES_HH
