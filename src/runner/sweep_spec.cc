#include "runner/sweep_spec.hh"

#include "common/logging.hh"
#include "runner/cache_key.hh"

namespace mmt
{

void
SweepSpec::add(const std::string &workload, ConfigKind kind,
               int num_threads, const SimOverrides &ov, bool check_golden)
{
    JobSpec job;
    job.workload = workload;
    job.kind = kind;
    job.numThreads = num_threads;
    job.overrides = ov;
    job.checkGolden = check_golden;
    jobs.push_back(std::move(job));
}

void
SweepSpec::cross(const std::vector<std::string> &workloads,
                 const std::vector<ConfigKind> &kinds,
                 const std::vector<int> &thread_counts,
                 const std::vector<SimOverrides> &overrides_list,
                 bool check_golden)
{
    for (const std::string &w : workloads) {
        for (ConfigKind k : kinds) {
            for (int t : thread_counts) {
                for (const SimOverrides &ov : overrides_list)
                    add(w, k, t, ov, check_golden);
            }
        }
    }
}

void
SweepSpec::filterWorkloads(const std::vector<std::string> &keep)
{
    std::vector<JobSpec> kept;
    for (JobSpec &job : jobs) {
        for (const std::string &name : keep) {
            if (job.workload == name) {
                kept.push_back(std::move(job));
                break;
            }
        }
    }
    jobs = std::move(kept);
}

const Workload &
resolveWorkload(const std::string &name)
{
    if (name == messagePassingWorkload().name)
        return messagePassingWorkload();
    return findWorkload(name);
}

ConfigKind
parseConfigKind(const std::string &name)
{
    for (ConfigKind k : {ConfigKind::Base, ConfigKind::MMT_F,
                         ConfigKind::MMT_FX, ConfigKind::MMT_FXR,
                         ConfigKind::Limit}) {
        if (name == configName(k))
            return k;
    }
    fatal("unknown config '%s'", name.c_str());
}

ResultIndex::ResultIndex(const SweepSpec &spec,
                         const std::vector<RunResult> &results)
{
    mmt_assert(spec.jobs.size() == results.size(),
               "sweep '%s': %zu jobs but %zu results", spec.name.c_str(),
               spec.jobs.size(), results.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        byKey_[jobKey(spec.jobs[i])] = &results[i];
}

const RunResult &
ResultIndex::get(const std::string &workload, ConfigKind kind,
                 int num_threads, const SimOverrides &ov) const
{
    // Golden checking does not change the measurements, so index
    // lookups match either flavour of the job.
    for (bool golden : {false, true}) {
        JobSpec probe;
        probe.workload = workload;
        probe.kind = kind;
        probe.numThreads = num_threads;
        probe.overrides = ov;
        probe.checkGolden = golden;
        auto it = byKey_.find(jobKey(probe));
        if (it != byKey_.end())
            return *it->second;
    }
    panic("sweep result missing: %s %s %dT", workload.c_str(),
          configName(kind), num_threads);
}

} // namespace mmt
