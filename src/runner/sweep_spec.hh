/**
 * @file
 * Declarative description of an experiment sweep: the cross product of
 * workloads x configurations x thread counts x parameter overrides that
 * stands behind one figure (or any ad-hoc batch). A SweepSpec is pure
 * data — building one runs no simulations; SweepRunner executes it.
 */

#ifndef MMT_RUNNER_SWEEP_SPEC_HH
#define MMT_RUNNER_SWEEP_SPEC_HH

#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace mmt
{

/** One independent simulation job. */
struct JobSpec
{
    std::string workload; // registry name, or "mp-ring"
    ConfigKind kind = ConfigKind::Base;
    int numThreads = 2;
    SimOverrides overrides;
    bool checkGolden = false;
};

/** An ordered set of jobs; results come back in the same order. */
struct SweepSpec
{
    std::string name; // e.g. "fig5a"
    std::vector<JobSpec> jobs;

    /** Append a single job. */
    void add(const std::string &workload, ConfigKind kind, int num_threads,
             const SimOverrides &ov = SimOverrides(),
             bool check_golden = false);

    /**
     * Append the full cross product
     * workloads x kinds x thread counts x overrides (order: workload
     * outermost, overrides innermost — the order the serial benches
     * used).
     */
    void cross(const std::vector<std::string> &workloads,
               const std::vector<ConfigKind> &kinds,
               const std::vector<int> &thread_counts,
               const std::vector<SimOverrides> &overrides_list =
                   {SimOverrides()},
               bool check_golden = false);

    /** Keep only jobs whose workload is in @p keep (CI smoke filters). */
    void filterWorkloads(const std::vector<std::string> &keep);
};

/** Registry name or "mp-ring"; fatal if unknown. */
const Workload &resolveWorkload(const std::string &name);

/** Parse a Table 5 configuration name ("Base", "MMT-FXR", ...). */
ConfigKind parseConfigKind(const std::string &name);

/**
 * Index results of a finished sweep by job identity so render code can
 * look them up without caring about job order.
 */
class ResultIndex
{
  public:
    ResultIndex(const SweepSpec &spec,
                const std::vector<RunResult> &results);

    /** Result of the matching job; panics if the sweep never ran it. */
    const RunResult &get(const std::string &workload, ConfigKind kind,
                         int num_threads,
                         const SimOverrides &ov = SimOverrides()) const;

  private:
    std::map<std::string, const RunResult *> byKey_;
};

} // namespace mmt

#endif // MMT_RUNNER_SWEEP_SPEC_HH
