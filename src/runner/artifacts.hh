/**
 * @file
 * Artifact emission for finished sweeps: machine-readable JSON (full
 * precision, one object per job plus sweep metadata) and spreadsheet-
 * friendly CSV. Plotting scripts consume these instead of scraping the
 * bench tables.
 */

#ifndef MMT_RUNNER_ARTIFACTS_HH
#define MMT_RUNNER_ARTIFACTS_HH

#include <string>

#include "runner/sweep_runner.hh"

namespace mmt
{

/** Render the sweep as a JSON document. */
std::string sweepToJson(const SweepSpec &spec, const SweepOutcome &outcome);

/** Render the sweep as CSV (header + one row per job). */
std::string sweepToCsv(const SweepSpec &spec, const SweepOutcome &outcome);

/** Write @p text to @p path; fatal on I/O failure. */
void writeArtifact(const std::string &path, const std::string &text);

} // namespace mmt

#endif // MMT_RUNNER_ARTIFACTS_HH
