#include "runner/shard.hh"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "runner/cache_key.hh"
#include "runner/result_store.hh"

namespace mmt
{

namespace fs = std::filesystem;

namespace
{

using Clock = std::chrono::steady_clock;

std::string
uniqueSuffix()
{
    static std::atomic<std::uint64_t> seq{0};
    return processTag() + "." + std::to_string(seq.fetch_add(1));
}

long
nowUnix()
{
    return static_cast<long>(::time(nullptr));
}

/** Seconds since @p path was last written; negative if unreadable. */
double
fileAgeSeconds(const fs::path &path)
{
    std::error_code ec;
    auto t = fs::last_write_time(path, ec);
    if (ec)
        return -1.0;
    auto now = fs::file_time_type::clock::now();
    return std::chrono::duration<double>(now - t).count();
}

std::string
jobLabel(const JobSpec &job)
{
    return job.workload + "/" + configName(job.kind) + "/" +
           std::to_string(job.numThreads) + "T";
}

/** Atomic (tmp + rename) small-file write; best effort. */
void
writeAtomicText(const std::string &path, const std::string &text)
{
    std::string tmp = path + ".tmp." + uniqueSuffix();
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << text;
        if (!out)
            return;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

/**
 * Remove stale `.tmp` litter for one entry (a dead writer's partial
 * publish). @p entry_base is the `<dir>/<hash>.result` path.
 */
std::size_t
removeStaleTmps(const std::string &entry_base, double stale_sec)
{
    fs::path base(entry_base);
    std::string prefix = base.filename().string() + ".tmp.";
    std::size_t removed = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(base.parent_path(), ec)) {
        std::string name = de.path().filename().string();
        if (name.rfind(prefix, 0) != 0)
            continue;
        double age = fileAgeSeconds(de.path());
        if (age < 0.0 || age <= stale_sec)
            continue;
        std::error_code rec;
        if (fs::remove(de.path(), rec))
            ++removed;
    }
    return removed;
}

/** What produced a job's result slot in the worker engine. */
enum class JobSource : char
{
    None = 0,  // still missing
    Store = 1, // loaded from the shared store
    Ran = 2,   // simulated by this process
};

struct EngineResult
{
    std::vector<RunResult> results;
    std::vector<JobSource> source;
    std::vector<double> predicted;
    std::vector<std::size_t> order;
    std::size_t executed = 0;
    std::size_t hits = 0;
    std::size_t corrupt = 0;
    std::size_t golden = 0;
    std::size_t missing = 0;
};

/**
 * The worker engine: claim jobs through leases until every job of the
 * sweep is published (wait_for_publish, the forked-fleet mode) or until
 * only live foreign leases remain (manual fleet mode). Runs
 * @p claim_threads claim loops plus one heartbeat thread.
 */
EngineResult
shardWorkerEngine(const SweepSpec &spec, const SweepOptions &options,
                  int shard_id, int shard_count, bool wait_for_publish,
                  int claim_threads, ProgressReporter *progress)
{
    const std::size_t total = spec.jobs.size();
    ResultStore store(options.cacheDir);
    LeaseManager leases(options.leaseStaleSec, shard_id);

    EngineResult res;
    res.results.resize(total);
    res.source.assign(total, JobSource::None);
    res.predicted = predictSweepJobs(spec);
    res.order = sweepPriorityOrder(res.predicted);
    // Each shard starts its walk at a different point of the priority
    // order: less lease contention at startup, same coverage.
    if (shard_count > 1 && total > 0) {
        std::size_t offset =
            (static_cast<std::size_t>(shard_id) * total) /
            static_cast<std::size_t>(shard_count);
        std::rotate(res.order.begin(),
                    res.order.begin() + static_cast<std::ptrdiff_t>(offset),
                    res.order.end());
    }

    // 0 = pending, 1 = done. The exchange in the claim loops makes
    // every job's completion attributed exactly once.
    std::unique_ptr<std::atomic<char>[]> state(
        new std::atomic<char>[total]);
    for (std::size_t i = 0; i < total; ++i)
        state[i].store(0, std::memory_order_relaxed);
    std::atomic<std::size_t> pending{total};
    std::atomic<std::size_t> executed{0}, hits{0}, corrupt{0}, golden{0};
    std::mutex result_mutex; // guards res.results/res.source slots

    // Status heartbeat: leases stay fresh while simulations run, and
    // the shard-status snapshot gives the parent (or an operator on
    // another host) live per-worker progress.
    std::error_code ec;
    fs::create_directories(shardStatusDir(options.cacheDir), ec);
    std::string status_path =
        shardStatusPath(options.cacheDir, spec.name);
    auto writeStatus = [&](bool finished) {
        ShardStatus s;
        s.sweep = spec.name;
        std::string tag = processTag();
        std::size_t dot = tag.rfind('.');
        s.host = tag.substr(0, dot);
        s.pid = static_cast<long>(::getpid());
        s.shard = shard_id;
        s.total = total;
        s.done = total - pending.load();
        s.executed = executed.load();
        s.hits = hits.load();
        s.corrupt = corrupt.load();
        s.golden = golden.load();
        s.finished = finished;
        s.updated = nowUnix();
        writeAtomicText(status_path, renderShardStatus(s));
    };

    std::atomic<bool> stop_heartbeat{false};
    double heartbeat_sec =
        std::min(2.0, std::max(0.05, options.leaseStaleSec / 4.0));
    std::thread heartbeat([&] {
        while (!stop_heartbeat.load()) {
            leases.heartbeat();
            writeStatus(false);
            // Sliced sleep so engine shutdown never waits a full
            // heartbeat period.
            auto until = Clock::now() +
                         std::chrono::duration<double>(heartbeat_sec);
            while (!stop_heartbeat.load() && Clock::now() < until) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }
    });

    auto markDone = [&](std::size_t idx, RunResult &&r, JobSource how,
                        bool cached) {
        if (state[idx].exchange(1) != 0)
            return false; // a sibling thread got there first
        {
            std::lock_guard<std::mutex> lock(result_mutex);
            res.results[idx] = std::move(r);
            res.source[idx] = how;
        }
        pending.fetch_sub(1);
        if (how == JobSource::Store)
            hits.fetch_add(1);
        else
            executed.fetch_add(1);
        if (progress)
            progress->jobDone(spec.jobs[idx], cached);
        return true;
    };

    auto claimLoop = [&] {
        double backoff = 0.05;
        for (;;) {
            bool progressed = false;
            for (std::size_t idx : res.order) {
                if (state[idx].load() != 0)
                    continue;
                const JobSpec &job = spec.jobs[idx];
                std::string lp = leasePath(store, job);
                if (leases.ownedByUs(lp))
                    continue; // a sibling thread is simulating it
                RunResult loaded;
                ResultStore::Status st = store.load(job, loaded);
                if (st == ResultStore::Status::Hit) {
                    markDone(idx, std::move(loaded), JobSource::Store,
                             true);
                    progressed = true;
                    continue;
                }
                if (st == ResultStore::Status::Corrupt) {
                    store.quarantine(job);
                    corrupt.fetch_add(1);
                }
                if (leases.tryClaim(lp, jobLabel(job)) !=
                    LeaseManager::Claim::Claimed) {
                    continue; // live owner (or lost the race)
                }
                // Re-check under the lease: the previous owner may
                // have published between our load and our claim.
                st = store.load(job, loaded);
                if (st == ResultStore::Status::Hit) {
                    leases.release(lp);
                    markDone(idx, std::move(loaded), JobSource::Store,
                             true);
                    progressed = true;
                    continue;
                }
                if (st == ResultStore::Status::Corrupt) {
                    store.quarantine(job);
                    corrupt.fetch_add(1);
                }
                RunResult r = runWorkload(resolveWorkload(job.workload),
                                          job.kind, job.numThreads,
                                          job.overrides, job.checkGolden);
                if (job.checkGolden && !r.goldenOk)
                    golden.fetch_add(1);
                store.store(job, r);
                markDone(idx, std::move(r), JobSource::Ran, false);
                leases.release(lp);
                progressed = true;
                backoff = 0.05;
            }
            if (pending.load() == 0)
                return;
            if (!progressed) {
                // Everything left is leased by a live foreign worker.
                if (!wait_for_publish)
                    return;
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
                backoff = std::min(backoff * 2.0, 1.0);
            }
        }
    };

    if (claim_threads <= 1) {
        claimLoop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(claim_threads));
        for (int i = 0; i < claim_threads; ++i)
            pool.emplace_back(claimLoop);
        for (std::thread &t : pool)
            t.join();
    }

    // Jobs published by foreign workers after our threads last looked.
    for (std::size_t idx = 0; idx < total; ++idx) {
        if (state[idx].load() != 0)
            continue;
        const JobSpec &job = spec.jobs[idx];
        RunResult loaded;
        if (store.load(job, loaded) == ResultStore::Status::Hit)
            markDone(idx, std::move(loaded), JobSource::Store, true);
    }

    stop_heartbeat.store(true);
    heartbeat.join();

    res.executed = executed.load();
    res.hits = hits.load();
    res.corrupt = corrupt.load();
    res.golden = golden.load();
    res.missing = pending.load();
    writeStatus(true);
    return res;
}

/** Shared argument validation for both sharded entry points. */
void
checkShardOptions(const SweepOptions &options, const char *mode)
{
    if (options.cacheDir.empty())
        fatal("%s requires a cache directory (--cache-dir / "
              "MMT_CACHE_DIR): the store is the coordination medium",
              mode);
    if (options.forceRerun)
        fatal("%s does not support --force: sharded workers trust the "
              "store; remove the cache directory to re-run", mode);
    if (options.leaseStaleSec <= 0.0)
        fatal("lease staleness must be positive (got %.3f)",
              options.leaseStaleSec);
}

} // namespace

std::string
leasePath(const ResultStore &store, const JobSpec &job)
{
    return store.entryPath(job) + ".lease";
}

LeaseManager::LeaseManager(double stale_sec, int shard_id)
    : staleSec_(stale_sec), shardId_(shard_id)
{}

bool
LeaseManager::isStale(const std::string &lease_path) const
{
    double age = fileAgeSeconds(lease_path);
    return age > staleSec_;
}

LeaseManager::Claim
LeaseManager::tryClaim(const std::string &lease_path,
                       const std::string &job_label)
{
    // Bounded attempts: each retry only follows a state change we
    // caused or observed (tombstoned a stale lease, saw one vanish);
    // callers back off between whole passes.
    for (int attempt = 0; attempt < 4; ++attempt) {
        int fd = ::open(lease_path.c_str(),
                        O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            std::ostringstream os;
            os << "mmt-lease v1\n"
               << "owner " << processTag() << "\n"
               << "shard " << shardId_ << "\n"
               << "job " << job_label << "\n"
               << "start " << nowUnix() << "\n";
            std::string body = os.str();
            ssize_t n = ::write(fd, body.data(), body.size());
            ::fsync(fd);
            ::close(fd);
            if (n != static_cast<ssize_t>(body.size())) {
                ::unlink(lease_path.c_str());
                return Claim::Busy;
            }
            std::lock_guard<std::mutex> lock(mutex_);
            owned_.push_back(lease_path);
            return Claim::Claimed;
        }
        if (errno != EEXIST) {
            warn("lease: cannot create '%s': %s", lease_path.c_str(),
                 std::strerror(errno));
            return Claim::Busy;
        }
        double age = fileAgeSeconds(lease_path);
        if (age < 0.0)
            continue; // vanished between open and stat: retry create
        if (age <= staleSec_)
            return Claim::Busy; // live owner
        // Stale: two-phase reclaim. Renaming to a unique tombstone can
        // succeed for exactly one reclaimer; everyone then re-runs the
        // O_EXCL race above. The dead owner's partial .tmp writes are
        // swept here too — its publish never happened.
        std::string tomb = lease_path + ".stale." + uniqueSuffix();
        if (::rename(lease_path.c_str(), tomb.c_str()) == 0) {
            ::unlink(tomb.c_str());
            std::string base = lease_path.substr(
                0, lease_path.size() - std::strlen(".lease"));
            removeStaleTmps(base, staleSec_);
            warn("lease: reclaimed stale lease for %s (heartbeat %.1fs "
                 "old)", job_label.c_str(), age);
        }
        // Either we freed the path or someone else did; retry.
    }
    return Claim::Busy;
}

void
LeaseManager::release(const std::string &lease_path)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = std::find(owned_.begin(), owned_.end(), lease_path);
        if (it != owned_.end())
            owned_.erase(it);
    }
    ::unlink(lease_path.c_str());
}

bool
LeaseManager::ownedByUs(const std::string &lease_path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::find(owned_.begin(), owned_.end(), lease_path) !=
           owned_.end();
}

void
LeaseManager::heartbeat()
{
    std::vector<std::string> paths;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paths = owned_;
    }
    for (const std::string &p : paths) {
        std::error_code ec;
        fs::last_write_time(p, fs::file_time_type::clock::now(), ec);
        // A release between the snapshot and here is fine to ignore.
    }
}

std::vector<std::string>
LeaseManager::owned() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return owned_;
}

std::string
shardStatusDir(const std::string &cache_dir)
{
    return cache_dir + "/shard-status";
}

std::string
shardStatusPath(const std::string &cache_dir,
                const std::string &sweep_name)
{
    return shardStatusDir(cache_dir) + "/" +
           (sweep_name.empty() ? "sweep" : sweep_name) + "." +
           processTag() + ".json";
}

std::string
renderShardStatus(const ShardStatus &s)
{
    std::ostringstream os;
    os << "{\"schema\": 1, \"sweep\": \"" << s.sweep << "\", \"host\": \""
       << s.host << "\", \"pid\": " << s.pid
       << ", \"shard\": " << s.shard << ", \"total\": " << s.total
       << ", \"done\": " << s.done << ", \"executed\": " << s.executed
       << ", \"hits\": " << s.hits << ", \"corrupt\": " << s.corrupt
       << ", \"golden\": " << s.golden << ", \"finished\": "
       << (s.finished ? "true" : "false")
       << ", \"updated\": " << s.updated << "}\n";
    return os.str();
}

bool
parseShardStatus(const std::string &text, ShardStatus &out)
{
    auto str_field = [&](const char *key, std::string &dst) {
        std::string pat = std::string("\"") + key + "\": \"";
        std::size_t pos = text.find(pat);
        if (pos == std::string::npos)
            return false;
        pos += pat.size();
        std::size_t end = text.find('"', pos);
        if (end == std::string::npos)
            return false;
        dst = text.substr(pos, end - pos);
        return true;
    };
    auto num_field = [&](const char *key, long &dst) {
        std::string pat = std::string("\"") + key + "\": ";
        std::size_t pos = text.find(pat);
        if (pos == std::string::npos)
            return false;
        pos += pat.size();
        char *end = nullptr;
        dst = std::strtol(text.c_str() + pos, &end, 10);
        return end != text.c_str() + pos;
    };
    long pid = 0, shard = 0, total = 0, done = 0, executed = 0;
    long hit = 0, corrupt = 0, golden = 0, updated = 0;
    if (!str_field("sweep", out.sweep) ||
        !str_field("host", out.host) || !num_field("pid", pid) ||
        !num_field("shard", shard) || !num_field("total", total) ||
        !num_field("done", done) || !num_field("executed", executed) ||
        !num_field("hits", hit) || !num_field("corrupt", corrupt) ||
        !num_field("golden", golden) || !num_field("updated", updated)) {
        return false;
    }
    if (total < 0 || done < 0 || executed < 0 || hit < 0)
        return false;
    out.pid = pid;
    out.shard = static_cast<int>(shard);
    out.total = static_cast<std::size_t>(total);
    out.done = static_cast<std::size_t>(done);
    out.executed = static_cast<std::size_t>(executed);
    out.hits = static_cast<std::size_t>(hit);
    out.corrupt = static_cast<std::size_t>(corrupt);
    out.golden = static_cast<std::size_t>(golden);
    out.updated = updated;
    out.finished = text.find("\"finished\": true") != std::string::npos;
    return true;
}

std::size_t
janitorSweep(const ResultStore &store, const SweepSpec &spec,
             double stale_sec)
{
    // Collect this sweep's entry basenames; only their litter is ours
    // to clean (the directory may be shared with other sweeps/fleets).
    std::vector<std::string> bases;
    bases.reserve(spec.jobs.size());
    for (const JobSpec &job : spec.jobs)
        bases.push_back(fs::path(store.entryPath(job)).filename().string());
    auto is_ours = [&](const std::string &name, std::string &rest) {
        for (const std::string &base : bases) {
            if (name.size() > base.size() &&
                name.rfind(base, 0) == 0 && name[base.size()] == '.') {
                rest = name.substr(base.size());
                return true;
            }
        }
        return false;
    };

    std::size_t removed = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(store.dir(), ec)) {
        std::string name = de.path().filename().string();
        std::string rest;
        if (!is_ours(name, rest))
            continue;
        bool litter = rest.rfind(".tmp.", 0) == 0 ||
                      rest.rfind(".lease.stale.", 0) == 0 ||
                      rest == ".lease";
        if (!litter)
            continue;
        double age = fileAgeSeconds(de.path());
        if (age < 0.0 || age <= stale_sec)
            continue; // fresh: possibly a live foreign fleet's
        std::error_code rec;
        if (fs::remove(de.path(), rec))
            ++removed;
    }
    return removed;
}

SweepOutcome
runShardWorker(const SweepSpec &spec, const SweepOptions &options)
{
    checkShardOptions(options, "--shard-id");
    int shard_count = std::max(1, options.shardCount);
    int shard_id = std::max(0, options.shardId);
    if (shard_id >= shard_count)
        fatal("--shard-id %d out of range for --shard-count %d",
              shard_id, shard_count);

    auto start = Clock::now();
    const std::size_t total = spec.jobs.size();
    ProgressReporter progress(
        (spec.name.empty() ? "sweep" : spec.name) + " shard " +
            std::to_string(shard_id) + "/" + std::to_string(shard_count),
        total, options.progress);

    EngineResult eng = shardWorkerEngine(
        spec, options, shard_id, shard_count, /*wait_for_publish=*/false,
        std::max(1, options.jobs), &progress);

    SweepOutcome out;
    out.results = std::move(eng.results);
    out.fromCache.resize(total);
    for (std::size_t i = 0; i < total; ++i)
        out.fromCache[i] = eng.source[i] == JobSource::Store;
    out.predictedMergeable = std::move(eng.predicted);
    out.executionOrder = std::move(eng.order);
    out.executed = eng.executed;
    out.cacheHits = eng.hits;
    out.corruptEntries = eng.corrupt;
    out.goldenFailures = eng.golden;
    out.missingJobs = eng.missing;
    if (out.missingJobs == 0) {
        ResultStore store(options.cacheDir);
        janitorSweep(store, spec, options.leaseStaleSec);
    }
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
}

SweepOutcome
runShardedSweep(const SweepSpec &spec, const SweepOptions &options)
{
    checkShardOptions(options, "--shards");
    if (options.shards < 2)
        fatal("--shards wants >= 2 worker processes (got %d); use "
              "--jobs for in-process parallelism", options.shards);
    const int shards = options.shards;
    const std::size_t total = spec.jobs.size();

    auto start = Clock::now();
    ResultStore store(options.cacheDir);
    SweepOutcome out;
    out.results.resize(total);
    out.fromCache.assign(total, false);
    out.predictedMergeable = predictSweepJobs(spec);
    out.executionOrder = sweepPriorityOrder(out.predictedMergeable);

    // Pre-scan: cached jobs are served directly by the parent (and
    // define the fromCache flags, exactly as a serial run would);
    // corrupt entries are quarantined so the fleet re-runs them.
    std::size_t prescan_hits = 0, corrupt = 0;
    for (std::size_t i = 0; i < total; ++i) {
        switch (store.load(spec.jobs[i], out.results[i])) {
          case ResultStore::Status::Hit:
            out.fromCache[i] = true;
            ++prescan_hits;
            break;
          case ResultStore::Status::Corrupt:
            store.quarantine(spec.jobs[i]);
            ++corrupt;
            break;
          case ResultStore::Status::Miss:
            break;
        }
    }
    std::size_t pending_total = total - prescan_hits;

    std::vector<pid_t> children;
    if (pending_total > 0) {
        // The fleet: forked workers claim the missing jobs through
        // leases. Flush first so buffered output is not duplicated
        // into every child.
        std::fflush(stdout);
        std::fflush(stderr);
        int per_worker_jobs = std::max(1, options.jobs / shards);
        for (int k = 0; k < shards; ++k) {
            pid_t pid = ::fork();
            if (pid < 0) {
                warn("fork failed for shard %d: %s", k,
                     std::strerror(errno));
                continue;
            }
            if (pid == 0) {
                SweepOptions child = options;
                child.progress = false;
                EngineResult eng = shardWorkerEngine(
                    spec, child, k, shards, /*wait_for_publish=*/true,
                    per_worker_jobs, nullptr);
                std::fflush(nullptr);
                ::_exit(eng.golden ? 1 : 0);
            }
            children.push_back(pid);
        }
        if (children.empty())
            fatal("could not fork any shard worker");

        // Monitor: reap children and aggregate their heartbeat files
        // into one progress/ETA line.
        std::string host = processTag();
        host = host.substr(0, host.rfind('.'));
        auto child_status_path = [&](pid_t pid) {
            return shardStatusDir(options.cacheDir) + "/" +
                   (spec.name.empty() ? "sweep" : spec.name) + "." +
                   host + "." + std::to_string(pid) + ".json";
        };
        std::vector<bool> reaped(children.size(), false);
        std::size_t alive = children.size();
        std::size_t last_done = static_cast<std::size_t>(-1);
        while (alive > 0) {
            for (std::size_t c = 0; c < children.size(); ++c) {
                if (reaped[c])
                    continue;
                int wstatus = 0;
                pid_t got = ::waitpid(children[c], &wstatus, WNOHANG);
                if (got == children[c]) {
                    reaped[c] = true;
                    --alive;
                    if (WIFSIGNALED(wstatus)) {
                        warn("shard worker %zu (pid %ld) killed by "
                             "signal %d; its in-flight job will be "
                             "reclaimed",
                             c, static_cast<long>(children[c]),
                             WTERMSIG(wstatus));
                    }
                }
            }
            std::size_t fleet_executed = 0;
            for (std::size_t c = 0; c < children.size(); ++c) {
                std::ifstream in(child_status_path(children[c]));
                if (!in)
                    continue;
                std::ostringstream ss;
                ss << in.rdbuf();
                ShardStatus s;
                if (parseShardStatus(ss.str(), s))
                    fleet_executed += s.executed;
            }
            std::size_t done = prescan_hits + fleet_executed;
            if (options.progress && done != last_done) {
                last_done = done;
                double elapsed = std::chrono::duration<double>(
                                     Clock::now() - start).count();
                double eta = 0.0;
                if (fleet_executed > 0 && done < total) {
                    eta = elapsed /
                          static_cast<double>(fleet_executed) *
                          static_cast<double>(total - done);
                }
                std::fprintf(stderr,
                             "[%s shards] %zu/%zu workers alive, "
                             "%zu/%zu jobs (%zu cached)  elapsed %.1fs"
                             "  eta %.1fs\n",
                             spec.name.empty() ? "sweep"
                                               : spec.name.c_str(),
                             alive, children.size(), done, total,
                             prescan_hits, elapsed, eta);
            }
            if (alive > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        }
    }

    // Collect the fleet's results. Anything still missing was lost
    // with a crashed worker *and* never reclaimed (e.g. every worker
    // died); a re-run completes it from the warm cache.
    std::size_t missing = 0;
    std::vector<bool> have(total, false);
    for (std::size_t i = 0; i < total; ++i) {
        if (out.fromCache[i]) {
            have[i] = true;
            continue;
        }
        switch (store.load(spec.jobs[i], out.results[i])) {
          case ResultStore::Status::Hit:
            have[i] = true;
            break;
          case ResultStore::Status::Corrupt:
            store.quarantine(spec.jobs[i]);
            ++corrupt;
            ++missing;
            break;
          case ResultStore::Status::Miss:
            ++missing;
            break;
        }
    }

    out.executed = pending_total - missing;
    out.cacheHits = prescan_hits;
    out.corruptEntries = corrupt;
    out.missingJobs = missing;
    for (std::size_t i = 0; i < total; ++i) {
        if (have[i] && spec.jobs[i].checkGolden &&
            !out.results[i].goldenOk) {
            ++out.goldenFailures;
        }
    }

    if (missing == 0) {
        janitorSweep(store, spec, options.leaseStaleSec);
        for (pid_t pid : children) {
            std::string host_tag = processTag();
            std::string path =
                shardStatusDir(options.cacheDir) + "/" +
                (spec.name.empty() ? "sweep" : spec.name) + "." +
                host_tag.substr(0, host_tag.rfind('.')) + "." +
                std::to_string(pid) + ".json";
            ::unlink(path.c_str());
        }
    } else {
        warn("sharded sweep incomplete: %zu job(s) missing; re-run to "
             "complete from the warm cache", missing);
    }

    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return out;
}

} // namespace mmt
