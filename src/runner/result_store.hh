/**
 * @file
 * Persistent on-disk result cache for the sweep runner.
 *
 * Each finished job is written to `<dir>/<cachekey>.result` as a small
 * line-oriented text record. Doubles are stored as IEEE-754 bit
 * patterns so a round trip is bit-identical, and every record ends with
 * an FNV-1a checksum over its payload. load() verifies the format
 * version, the full cache-key string (guarding against hash collisions
 * and stale code-version salts) and the checksum; any mismatch is
 * reported as Corrupt and the caller re-simulates.
 *
 * Writes go through a per-thread temp file followed by std::rename, so
 * concurrent workers (or concurrent sweep processes sharing a cache
 * directory) never observe half-written entries.
 */

#ifndef MMT_RUNNER_RESULT_STORE_HH
#define MMT_RUNNER_RESULT_STORE_HH

#include <string>

#include "runner/sweep_spec.hh"

namespace mmt
{

/**
 * Canonical textual serialization of a RunResult (bit-exact for
 * doubles). Also the payload format of cache entries, and what the
 * determinism tests byte-compare.
 */
std::string serializeResult(const RunResult &result);

/**
 * Inverse of serializeResult(). Returns false (leaving @p out in an
 * unspecified state) on any malformed input.
 */
bool deserializeResult(const std::string &text, RunResult &out);

class ResultStore
{
  public:
    enum class Status
    {
        Hit,     // entry present and valid
        Miss,    // no entry
        Corrupt, // entry present but failed validation
    };

    /** @param dir cache directory; created on first store(). */
    explicit ResultStore(std::string dir);

    /** Path of the entry for @p job. */
    std::string entryPath(const JobSpec &job) const;

    /** Look up @p job; on Hit fills @p out. */
    Status load(const JobSpec &job, RunResult &out) const;

    /** Persist the result of @p job (atomically replaces any entry). */
    void store(const JobSpec &job, const RunResult &result) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace mmt

#endif // MMT_RUNNER_RESULT_STORE_HH
