/**
 * @file
 * Persistent on-disk result cache for the sweep runner.
 *
 * Each finished job is written to `<dir>/<cachekey>.result` as a small
 * line-oriented text record. Doubles are stored as IEEE-754 bit
 * patterns so a round trip is bit-identical, and every record ends with
 * an FNV-1a checksum over its payload. load() verifies the format
 * version, the full cache-key string (guarding against hash collisions
 * and stale code-version salts) and the checksum; any mismatch is
 * reported as Corrupt and the caller re-simulates (after moving the bad
 * bytes aside with quarantine(), so the corruption is kept for
 * forensics instead of being re-detected on every run).
 *
 * The store is safe for genuinely concurrent writers — threads of one
 * process, several processes on one host, or a fleet of hosts sharing
 * one directory (the sharded sweep runner, runner/shard.hh). Writes go
 * through a host+pid+counter-qualified temp file that is fsync'd before
 * an atomic rename publish, so readers never observe half-written
 * entries and two writers can never interleave bytes in the same temp
 * file. A writer killed mid-publish leaves only a stale `.tmp.*` file,
 * which the sharded runner's janitor removes.
 */

#ifndef MMT_RUNNER_RESULT_STORE_HH
#define MMT_RUNNER_RESULT_STORE_HH

#include <string>

#include "runner/sweep_spec.hh"

namespace mmt
{

/**
 * Canonical textual serialization of a RunResult (bit-exact for
 * doubles). Also the payload format of cache entries, and what the
 * determinism tests byte-compare.
 */
std::string serializeResult(const RunResult &result);

/**
 * Inverse of serializeResult(). Returns false (leaving @p out in an
 * unspecified state) on any malformed input.
 */
bool deserializeResult(const std::string &text, RunResult &out);

/**
 * "<host>.<pid>" identity of the calling process. Computed per call so
 * it stays correct across fork() (the sharded runner forks workers);
 * only the hostname is cached.
 */
std::string processTag();

class ResultStore
{
  public:
    enum class Status
    {
        Hit,     // entry present and valid
        Miss,    // no entry
        Corrupt, // entry present but failed validation
    };

    /** @param dir cache directory; created on first store(). */
    explicit ResultStore(std::string dir);

    /** Path of the entry for @p job. */
    std::string entryPath(const JobSpec &job) const;

    /** Look up @p job; on Hit fills @p out. */
    Status load(const JobSpec &job, RunResult &out) const;

    /**
     * Persist the result of @p job (atomically replaces any entry):
     * unique temp file, fsync, rename, directory fsync. Returns false
     * (with a warning) if the entry could not be published.
     */
    bool store(const JobSpec &job, const RunResult &result) const;

    /**
     * Move a corrupt entry into `<dir>/quarantine/` so the bytes are
     * preserved for debugging and the next run sees a clean Miss
     * instead of re-detecting the same corruption. Returns the
     * quarantine path, or "" if the entry was already gone (e.g. a
     * concurrent worker quarantined or replaced it first).
     */
    std::string quarantine(const JobSpec &job) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace mmt

#endif // MMT_RUNNER_RESULT_STORE_HH
