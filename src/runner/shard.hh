/**
 * @file
 * Multi-process sweep sharding over a shared ResultStore directory.
 *
 * The in-process runner (runner/sweep_runner.hh) hands jobs to threads
 * through an atomic cursor; that cannot cross a process (or host)
 * boundary, and one crashed simulation takes the whole sweep down with
 * it. The sharded runner coordinates any number of worker *processes*
 * through the cache directory itself: the store is the service, and
 * the only shared state is files.
 *
 * ## Lease protocol
 *
 * Every job's cache entry `<hash>.result` has a companion lease file
 * `<hash>.result.lease`. A worker claims a job by creating the lease
 * with O_CREAT|O_EXCL (atomic on POSIX, including NFS v3+): the file
 * carries the owner's host+pid identity, and its mtime is the owner's
 * heartbeat, refreshed by a background thread while the simulation
 * runs. Publishing the result (write + fsync + atomic rename, see
 * ResultStore::store) and then releasing the lease completes the job.
 *
 * A lease whose mtime is older than SweepOptions::leaseStaleSec is
 * abandoned — its owner was killed or lost its host. Reclaim is
 * two-phase so two reclaimers cannot both think they own the job: the
 * stale lease is first renamed to a unique tombstone (only one rename
 * can succeed), then the reclaimer re-runs the O_EXCL claim race like
 * everyone else. Claim attempts are bounded and callers back off
 * exponentially between passes.
 *
 * ## Failure model
 *
 * A worker killed at any point loses only its in-flight job:
 *  - killed before claiming: nothing to clean;
 *  - killed holding the lease: the heartbeat stops, the lease goes
 *    stale, and any other worker (this run or a later one) reclaims
 *    and re-runs the job;
 *  - killed mid-write: the partial `.tmp.<host>.<pid>.<seq>` file is
 *    invisible to readers (entries publish by atomic rename) and is
 *    removed when the lease is reclaimed or by the end-of-run janitor;
 *  - killed between publish and release: the stale lease is reclaimed,
 *    the reclaimer sees the published entry and simply releases.
 * Results are deterministic, so even a pathological double-execution
 * (reclaim racing a live-but-stalled owner) publishes identical bytes.
 *
 * ## Observability
 *
 * Each worker heartbeats a `shard-status/<sweep>.<host>.<pid>.json`
 * snapshot (counts + liveness) into the store; the forked-fleet parent
 * aggregates them into a single progress/ETA line.
 */

#ifndef MMT_RUNNER_SHARD_HH
#define MMT_RUNNER_SHARD_HH

#include <mutex>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"

namespace mmt
{

class ResultStore;

/** Lease file for @p job's entry in @p store. */
std::string leasePath(const ResultStore &store, const JobSpec &job);

/**
 * Claims and heartbeats lease files for one worker process. Safe to
 * share between the worker's claim threads; the O_EXCL create is the
 * arbiter both across processes and across threads.
 */
class LeaseManager
{
  public:
    enum class Claim
    {
        Claimed, // we own the lease
        Busy,    // a live owner holds it (or we lost the race)
    };

    LeaseManager(double stale_sec, int shard_id);

    /** Try to take @p lease_path (reclaiming it if stale). */
    Claim tryClaim(const std::string &lease_path,
                   const std::string &job_label);

    /** Drop a lease we own (after publishing the result). */
    void release(const std::string &lease_path);

    /** True if this process currently owns @p lease_path. */
    bool ownedByUs(const std::string &lease_path) const;

    /** Refresh the heartbeat (mtime) of every lease we own. */
    void heartbeat();

    /** Leases currently owned (diagnostics). */
    std::vector<std::string> owned() const;

    /** True if the lease file's heartbeat is older than stale_sec. */
    bool isStale(const std::string &lease_path) const;

  private:
    double staleSec_;
    int shardId_;
    mutable std::mutex mutex_;
    std::vector<std::string> owned_; // guarded by mutex_
};

/** Parsed `shard-status/*.json` heartbeat snapshot. */
struct ShardStatus
{
    std::string sweep;
    std::string host;
    long pid = 0;
    int shard = -1;
    std::size_t total = 0;
    std::size_t done = 0;     // jobs this worker marked complete
    std::size_t executed = 0; // jobs this worker simulated
    std::size_t hits = 0;     // jobs it served from the store
    std::size_t corrupt = 0;
    std::size_t golden = 0;
    bool finished = false;
    long updated = 0; // unix seconds of the snapshot
};

/** Directory holding the per-worker heartbeat files. */
std::string shardStatusDir(const std::string &cache_dir);

/** Status file path for this process. */
std::string shardStatusPath(const std::string &cache_dir,
                            const std::string &sweep_name);

/** Render/parse one status snapshot (single-line JSON). */
std::string renderShardStatus(const ShardStatus &status);
bool parseShardStatus(const std::string &text, ShardStatus &out);

/**
 * Remove litter a crashed worker can leave for this sweep's jobs:
 * stale leases, tombstones and stale `.tmp` files. Called once a run
 * completes with every job published; returns the number of files
 * removed. Fresh leases and foreign files are left alone, so a
 * concurrent fleet sharing the directory is unaffected.
 */
std::size_t janitorSweep(const ResultStore &store, const SweepSpec &spec,
                         double stale_sec);

/**
 * Run as one worker of a manually-launched fleet (options.shardId of
 * options.shardCount, possibly on different hosts) sharing
 * options.cacheDir. Claims jobs through leases, publishes results,
 * exits when every job is either published or held by a live foreign
 * lease (outcome.missingJobs counts the latter — re-run, or let the
 * other shards finish, to complete the sweep).
 */
SweepOutcome runShardWorker(const SweepSpec &spec,
                            const SweepOptions &options);

/**
 * Fork options.shards lease-coordinated worker processes and wait for
 * the fleet: crash isolation for the parent (a dead worker loses one
 * job, the survivors reclaim its lease) plus an aggregated progress
 * line. Results, fromCache flags and artifacts are byte-identical to
 * a serial runSweep of the same spec against the same cache state.
 */
SweepOutcome runShardedSweep(const SweepSpec &spec,
                             const SweepOptions &options);

} // namespace mmt

#endif // MMT_RUNNER_SHARD_HH
