#include "runner/cache_key.hh"

#include <cstdio>
#include <sstream>

#include "runner/sweep_spec.hh"

namespace mmt
{

std::uint64_t
fnv1a64(const std::string &bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
overridesKey(const SimOverrides &ov)
{
    std::ostringstream os;
    os << "fhb=" << ov.fhbEntries << ";lsp=" << ov.lsPorts
       << ";mshr=" << ov.mshrs << ";fw=" << ov.fetchWidth
       << ";notc=" << (ov.disableTraceCache ? 1 : 0)
       << ";inv=" << (ov.checkInvariants ? 1 : 0)
       << ";mrp=" << ov.mergeReadPorts << ";cup=" << ov.catchupPriority;
    return os.str();
}

std::string
jobKey(const JobSpec &job)
{
    std::ostringstream os;
    os << "wl=" << job.workload << "|cfg=" << configName(job.kind)
       << "|t=" << job.numThreads << "|ov=" << overridesKey(job.overrides)
       << "|golden=" << (job.checkGolden ? 1 : 0);
    return os.str();
}

std::string
cacheKeyString(const JobSpec &job)
{
    const Workload &w = resolveWorkload(job.workload);
    std::ostringstream os;
    os << "salt=" << kCodeVersionSalt << "|" << jobKey(job)
       << "|src=" << hashHex(fnv1a64(w.source));
    return os.str();
}

std::uint64_t
cacheKey(const JobSpec &job)
{
    return fnv1a64(cacheKeyString(job));
}

} // namespace mmt
