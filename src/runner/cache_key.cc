#include "runner/cache_key.hh"

#include <cstdio>
#include <sstream>

#include "runner/sweep_spec.hh"

namespace mmt
{

std::uint64_t
fnv1a64(const std::string &bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

namespace
{

/**
 * Field-count sentinel. AnyField converts to anything, so
 * countFields<T>() probes aggregate initialization with ever more
 * initializers; the largest accepted count is the number of fields.
 * When a field is added to one of the keyed structs, the static_asserts
 * below fail until the matching key encoding (and the code-version
 * salt) are updated — a new parameter can never silently alias cache
 * entries produced before it existed.
 */
struct AnyField
{
    template <typename T> constexpr operator T() const;
};

template <typename T, typename... Fields>
constexpr std::size_t
countFields(Fields... fields)
{
    if constexpr (requires { T{fields..., AnyField{}}; })
        return countFields<T>(fields..., AnyField{});
    else
        return sizeof...(Fields);
}

static_assert(countFields<SimOverrides>() == 12,
              "SimOverrides changed: extend overridesKey() and bump "
              "kCodeVersionSalt");
static_assert(countFields<CoreParams>() == 35,
              "CoreParams changed: extend paramsKey() and bump "
              "kCodeVersionSalt");
static_assert(countFields<SystemParams>() == 5,
              "SystemParams changed: extend systemKey() and bump "
              "kCodeVersionSalt");
static_assert(countFields<BranchPredictorParams>() == 4,
              "BranchPredictorParams changed: extend paramsKey() and "
              "bump kCodeVersionSalt");
static_assert(countFields<MemoryParams>() == 8,
              "MemoryParams changed: extend paramsKey() and bump "
              "kCodeVersionSalt");
static_assert(countFields<CacheParams>() == 4,
              "CacheParams changed: extend paramsKey() and bump "
              "kCodeVersionSalt");
static_assert(countFields<TraceCacheParams>() == 5,
              "TraceCacheParams changed: extend paramsKey() and bump "
              "kCodeVersionSalt");
static_assert(countFields<StaticHintTable>() == 4,
              "StaticHintTable changed: extend paramsKey() and bump "
              "kCodeVersionSalt");

void
cacheParamsKey(std::ostringstream &os, const CacheParams &c)
{
    os << c.name << ":" << c.sizeBytes << ":" << c.assoc << ":"
       << c.lineBytes;
}

std::string
hintTableKey(const StaticHintTable &t)
{
    // The tables are derived from the program source (already hashed
    // into the cache key), so a content hash keeps the key short.
    std::string bytes;
    for (Addr a : t.divergentPcs)
        bytes += std::to_string(a) + ",";
    bytes += "|";
    for (Addr a : t.reconvergencePcs)
        bytes += std::to_string(a) + ",";
    bytes += "|";
    for (Addr a : t.splitPcs)
        bytes += std::to_string(a) + ",";
    bytes += "|";
    for (std::uint8_t c : t.splitCounts)
        bytes += std::to_string(c) + ",";
    return std::to_string(t.divergentPcs.size()) + ":" +
           std::to_string(t.reconvergencePcs.size()) + ":" +
           std::to_string(t.splitPcs.size()) + ":" +
           hashHex(fnv1a64(bytes));
}

} // namespace

std::string
overridesKey(const SimOverrides &ov)
{
    std::ostringstream os;
    os << "fhb=" << ov.fhbEntries << ";lsp=" << ov.lsPorts
       << ";mshr=" << ov.mshrs << ";fw=" << ov.fetchWidth
       << ";notc=" << (ov.disableTraceCache ? 1 : 0)
       << ";inv=" << (ov.checkInvariants ? 1 : 0)
       << ";mrp=" << ov.mergeReadPorts << ";cup=" << ov.catchupPriority
       << ";sh=" << static_cast<int>(ov.staticHints)
       << ";nc=" << ov.numCores
       << ";pl=" << placementName(ov.placement)
       << ";si=" << (ov.sharedICache ? 1 : 0);
    return os.str();
}

std::string
paramsKey(const CoreParams &p)
{
    std::ostringstream os;
    os << "nt=" << p.numThreads << ";fw=" << p.fetchWidth
       << ";dw=" << p.dispatchWidth << ";iw=" << p.issueWidth
       << ";cw=" << p.commitWidth << ";mfs=" << p.maxFetchStreams
       << ";rob=" << p.robSize << ";iq=" << p.iqSize
       << ";lsq=" << p.lsqSize << ";fq=" << p.fetchQueueSize
       << ";alu=" << p.numAlu << ";fpu=" << p.numFpu
       << ";lsp=" << p.lsPorts << ";fhb=" << p.fhbEntries
       << ";lvip=" << p.lvipEntries << ";mrp=" << p.mergeReadPorts
       << ";cup=" << (p.catchupPriority ? 1 : 0)
       << ";mhw=" << p.mergeHintWait << ";mr=" << p.mispredictRedirect
       << ";lrp=" << p.lvipRollbackPenalty << ";fd=" << p.frontendDelay
       << ";sf=" << (p.sharedFetch ? 1 : 0)
       << ";sx=" << (p.sharedExec ? 1 : 0)
       << ";rm=" << (p.regMerge ? 1 : 0)
       << ";me=" << (p.multiExecution ? 1 : 0)
       << ";tid0=" << (p.forceTidZero ? 1 : 0)
       << ";ctx=";
    if (p.contextIds.empty()) {
        os << "-";
    } else {
        for (std::size_t i = 0; i < p.contextIds.size(); ++i)
            os << (i ? ":" : "") << p.contextIds[i];
    }
    os << ";bp=" << p.bpred.phtEntries << ":" << p.bpred.historyBits
       << ":" << p.bpred.btbEntries << ":" << p.bpred.rasEntries
       << ";mem=";
    cacheParamsKey(os, p.mem.l1i);
    os << ",";
    cacheParamsKey(os, p.mem.l1d);
    os << ",";
    cacheParamsKey(os, p.mem.l2);
    os << "," << p.mem.l1Latency << ":" << p.mem.l2Latency << ":"
       << p.mem.dramLatency << ":" << p.mem.sharedILatency << ":"
       << p.mem.numMshrs
       << ";tc=" << (p.traceCache.enabled ? 1 : 0) << ":"
       << p.traceCache.sizeBytes << ":" << p.traceCache.assoc << ":"
       << p.traceCache.traceInsts << ":"
       << p.traceCache.maxBranchesPerTrace
       << ";maxc=" << p.maxCycles << ";dlc=" << p.deadlockCycles
       << ";inv=" << (p.checkInvariants ? 1 : 0)
       << ";sh=" << static_cast<int>(p.staticHints)
       << ";ht=" << hintTableKey(p.hintTable);
    return os.str();
}

std::string
systemKey(const SystemParams &sys)
{
    std::ostringstream os;
    os << "nc=" << sys.numCores << ":pl=" << placementName(sys.placement)
       << ":si=" << (sys.sharedICache ? 1 : 0) << ":sig=";
    cacheParamsKey(os, sys.sharedICacheGeom);
    return os.str();
}

std::string
jobKey(const JobSpec &job)
{
    const Workload &w = resolveWorkload(job.workload);
    SystemParams sys =
        makeSystemParams(job.kind, w, job.numThreads, job.overrides);
    std::ostringstream os;
    os << "wl=" << job.workload << "|cfg=" << configName(job.kind)
       << "|t=" << job.numThreads << "|ov=" << overridesKey(job.overrides)
       << "|golden=" << (job.checkGolden ? 1 : 0)
       << "|sys=" << systemKey(sys) << "|p=" << paramsKey(sys.core);
    return os.str();
}

std::string
cacheKeyString(const JobSpec &job)
{
    const Workload &w = resolveWorkload(job.workload);
    std::ostringstream os;
    os << "salt=" << kCodeVersionSalt << "|" << jobKey(job)
       << "|src=" << hashHex(fnv1a64(w.source));
    return os.str();
}

std::uint64_t
cacheKey(const JobSpec &job)
{
    return fnv1a64(cacheKeyString(job));
}

} // namespace mmt
