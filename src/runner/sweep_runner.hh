/**
 * @file
 * Parallel executor for SweepSpecs.
 *
 * Jobs of a sweep are independent simulations, so the runner fans them
 * out over a pool of worker threads that claim jobs from a shared
 * atomic cursor (work stealing degenerates to this for a single flat
 * queue). The cursor walks a priority permutation ordered by the static
 * analyzer's predicted mergeable fraction (most promising first), so a
 * partial or interrupted sweep covers the interesting points early.
 * Results land in a pre-sized vector slot per job, so the output order
 * — and every byte of every RunResult — is identical for any worker
 * count and any claiming order, including 1.
 *
 * With a cache directory set, each job is first looked up in the
 * ResultStore; valid entries skip simulation entirely, corrupted ones
 * are quarantined, re-run and overwritten.
 *
 * For multi-process execution (crash isolation, fleets of hosts
 * sharing one cache directory) see runner/shard.hh, which coordinates
 * workers through lease files in the store instead of an in-process
 * cursor.
 */

#ifndef MMT_RUNNER_SWEEP_RUNNER_HH
#define MMT_RUNNER_SWEEP_RUNNER_HH

#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runner/sweep_spec.hh"

namespace mmt
{

struct SweepOptions
{
    /** Worker threads; 1 reproduces the historical serial benches. */
    int jobs = 1;
    /** Result-cache directory; empty disables the cache. */
    std::string cacheDir;
    /** Emit per-job progress and an ETA to stderr. */
    bool progress = false;
    /** Ignore cached entries (still refreshes them after running). */
    bool forceRerun = false;

    // Multi-process sharding (runner/shard.hh; requires cacheDir).
    /** >1: fork this many lease-coordinated worker processes. */
    int shards = 0;
    /** >=0: run as worker @p shardId of a manually-launched fleet of
     *  shardCount processes (possibly on different hosts). */
    int shardId = -1;
    /** Fleet size for shardId mode. */
    int shardCount = 0;
    /** A lease whose heartbeat is older than this is considered
     *  abandoned and may be reclaimed by another worker. */
    double leaseStaleSec = 30.0;
};

struct SweepOutcome
{
    /** One result per spec job, in spec order. */
    std::vector<RunResult> results;
    /** Whether results[i] came from the cache. */
    std::vector<bool> fromCache;
    /** Analyzer prediction per spec job: staticMergeableFrac of the
     *  workload under the job's thread model — computed in microseconds
     *  before any simulation, used to order job execution and emitted
     *  next to the measured merged fraction in artifacts. */
    std::vector<double> predictedMergeable;
    /** Spec-order job indices in the order workers claim them: sorted
     *  by descending prediction (most promising first). Results still
     *  land in spec-order slots, so artifacts are byte-identical. */
    std::vector<std::size_t> executionOrder;

    std::size_t executed = 0;     // jobs actually simulated
    std::size_t cacheHits = 0;    // jobs served from the store
    std::size_t corruptEntries = 0; // invalid entries quarantined + re-run
    std::size_t goldenFailures = 0;
    /** Jobs with no result at exit (sharded runs only: another worker
     *  crashed or still holds the lease; a re-run completes them). */
    std::size_t missingJobs = 0;
    double wallSeconds = 0.0;

    /** "80 jobs: 3 simulated, 77 cached in 1.2s" summary line. */
    std::string summary() const;
};

/** Execute @p spec. */
SweepOutcome runSweep(const SweepSpec &spec,
                      const SweepOptions &options = SweepOptions());

/**
 * Serialized progress lines with a running ETA. jobDone() is safe to
 * call from any number of worker threads: the done-counter increment
 * and the line emission happen under one lock, so the printed
 * "[k/total]" sequence is exactly 1..total in order (an increment
 * outside the lock used to let two workers print the same k and skip
 * another). The sink defaults to stderr; tests inject their own.
 */
class ProgressReporter
{
  public:
    using Sink = std::function<void(const std::string &line)>;

    ProgressReporter(const std::string &name, std::size_t total,
                     bool enabled, Sink sink = Sink());

    /** Count one finished job and emit a "[name k/total] ..." line. */
    void jobDone(const JobSpec &job, bool cached);

    /** Jobs reported so far. */
    std::size_t done() const;

  private:
    using Clock = std::chrono::steady_clock;

    std::string name_;
    std::size_t total_;
    bool enabled_;
    Sink sink_;
    Clock::time_point start_;
    mutable std::mutex mutex_;
    std::size_t done_ = 0; // guarded by mutex_
};

/**
 * Strict base-10 unsigned integer parse: the entire string must be
 * digits (no sign, no suffix — "8x" and "" are rejected, unlike atoi).
 */
bool parseStrictInt(const std::string &text, long &out);

/**
 * Strict boolean parse: 0/1/true/false/on/off/yes/no (lowercase).
 * Anything else is rejected.
 */
bool parseStrictBool(const std::string &text, bool &out);

/** Strict finite non-negative double parse ("1.5"; rejects "1.5s"). */
bool parseStrictDouble(const std::string &text, double &out);

/**
 * Analyzer predictions per job (staticMergeableFrac of each job's
 * workload under its thread model), memoized per workload — the pass
 * costs microseconds. Shared by runSweep and the sharded runner so
 * every execution mode claims jobs in the same priority order.
 */
std::vector<double> predictSweepJobs(const SweepSpec &spec);

/**
 * Spec-order indices sorted by descending prediction (stable, so equal
 * predictions keep spec order): the claim order of workers.
 */
std::vector<std::size_t>
sweepPriorityOrder(const std::vector<double> &predictions);

/**
 * Options taken from the environment: MMT_JOBS (default: hardware
 * concurrency), MMT_SHARDS (default: no sharding), MMT_CACHE_DIR
 * (default: no cache), MMT_PROGRESS=0 to silence the reporter,
 * MMT_LEASE_STALE_SEC to tune lease reclaim. Values that fail strict
 * parsing warn and keep the default instead of being silently
 * misread (MMT_JOBS=8x used to become 8, MMT_PROGRESS=yes used to
 * become off). Used by the figure benches and mmt_cli so parallelism
 * is tunable without rebuilds.
 */
SweepOptions sweepOptionsFromEnv();

} // namespace mmt

#endif // MMT_RUNNER_SWEEP_RUNNER_HH
