/**
 * @file
 * Parallel executor for SweepSpecs.
 *
 * Jobs of a sweep are independent simulations, so the runner fans them
 * out over a pool of worker threads that claim jobs from a shared
 * atomic cursor (work stealing degenerates to this for a single flat
 * queue). The cursor walks a priority permutation ordered by the static
 * analyzer's predicted mergeable fraction (most promising first), so a
 * partial or interrupted sweep covers the interesting points early.
 * Results land in a pre-sized vector slot per job, so the output order
 * — and every byte of every RunResult — is identical for any worker
 * count and any claiming order, including 1.
 *
 * With a cache directory set, each job is first looked up in the
 * ResultStore; valid entries skip simulation entirely, corrupted ones
 * are re-run and overwritten.
 */

#ifndef MMT_RUNNER_SWEEP_RUNNER_HH
#define MMT_RUNNER_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "runner/sweep_spec.hh"

namespace mmt
{

struct SweepOptions
{
    /** Worker threads; 1 reproduces the historical serial benches. */
    int jobs = 1;
    /** Result-cache directory; empty disables the cache. */
    std::string cacheDir;
    /** Emit per-job progress and an ETA to stderr. */
    bool progress = false;
    /** Ignore cached entries (still refreshes them after running). */
    bool forceRerun = false;
};

struct SweepOutcome
{
    /** One result per spec job, in spec order. */
    std::vector<RunResult> results;
    /** Whether results[i] came from the cache. */
    std::vector<bool> fromCache;
    /** Analyzer prediction per spec job: staticMergeableFrac of the
     *  workload under the job's thread model — computed in microseconds
     *  before any simulation, used to order job execution and emitted
     *  next to the measured merged fraction in artifacts. */
    std::vector<double> predictedMergeable;
    /** Spec-order job indices in the order workers claim them: sorted
     *  by descending prediction (most promising first). Results still
     *  land in spec-order slots, so artifacts are byte-identical. */
    std::vector<std::size_t> executionOrder;

    std::size_t executed = 0;     // jobs actually simulated
    std::size_t cacheHits = 0;    // jobs served from the store
    std::size_t corruptEntries = 0; // invalid entries detected + re-run
    std::size_t goldenFailures = 0;
    double wallSeconds = 0.0;

    /** "80 jobs: 3 simulated, 77 cached in 1.2s" summary line. */
    std::string summary() const;
};

/** Execute @p spec. */
SweepOutcome runSweep(const SweepSpec &spec,
                      const SweepOptions &options = SweepOptions());

/**
 * Options taken from the environment: MMT_JOBS (default: hardware
 * concurrency), MMT_CACHE_DIR (default: no cache), MMT_PROGRESS=0 to
 * silence the reporter. Used by the figure benches so `make bench`
 * parallelism is tunable without rebuilds.
 */
SweepOptions sweepOptionsFromEnv();

} // namespace mmt

#endif // MMT_RUNNER_SWEEP_RUNNER_HH
