#include "runner/result_store.hh"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "runner/cache_key.hh"

namespace mmt
{

namespace
{

constexpr const char *kFormatTag = "mmt-result v1";

std::string
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return hashHex(bits);
}

bool
parseDoubleBits(const std::string &tok, double &out)
{
    if (tok.size() != 16)
        return false;
    std::uint64_t bits = 0;
    for (char c : tok) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    out = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
}

/**
 * Unique-per-call temp/quarantine suffix: process identity plus a
 * monotonic counter. The counter disambiguates threads and repeated
 * stores inside one process; the host+pid tag disambiguates processes
 * sharing the cache directory (a thread-id alone collides across
 * forked workers, which all observe the same main-thread id).
 */
std::string
uniqueSuffix()
{
    static std::atomic<std::uint64_t> seq{0};
    return processTag() + "." + std::to_string(seq.fetch_add(1));
}

/** Write @p body to @p path (O_EXCL) and fsync it. */
bool
writeFileDurable(const std::string &path, const std::string &body)
{
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        warn("result store: cannot create '%s': %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    std::size_t off = 0;
    while (off < body.size()) {
        ssize_t n = ::write(fd, body.data() + off, body.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("result store: write failed for '%s': %s", path.c_str(),
                 std::strerror(errno));
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    bool ok = ::fsync(fd) == 0;
    if (!ok) {
        warn("result store: fsync failed for '%s': %s", path.c_str(),
             std::strerror(errno));
    }
    ::close(fd);
    return ok;
}

/** fsync a directory so a just-renamed entry survives a crash. */
void
syncDirectory(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

std::string
processTag()
{
    // The hostname is stable across fork(); the pid is not, so it is
    // read fresh on every call.
    static const std::string host = [] {
        char buf[256];
        if (::gethostname(buf, sizeof(buf) - 1) != 0)
            return std::string("unknown-host");
        buf[sizeof(buf) - 1] = '\0';
        std::string h(buf);
        for (char &c : h) {
            if (c == '/' || c == '.' || c == ' ')
                c = '_';
        }
        return h.empty() ? std::string("unknown-host") : h;
    }();
    return host + "." + std::to_string(::getpid());
}

std::string
serializeResult(const RunResult &r)
{
    std::ostringstream os;
    os << "workload " << r.workload << "\n";
    os << "kind " << configName(r.kind) << "\n";
    os << "numThreads " << r.numThreads << "\n";
    os << "cycles " << r.cycles << "\n";
    os << "committedThreadInsts " << r.committedThreadInsts << "\n";
    os << "fetchRecords " << r.fetchRecords << "\n";
    os << "fetchedThreadInsts " << r.fetchedThreadInsts << "\n";
    os << "fetchModeFrac";
    for (double v : r.fetchModeFrac)
        os << " " << doubleBits(v);
    os << "\n";
    os << "identFrac";
    for (double v : r.identFrac)
        os << " " << doubleBits(v);
    os << "\n";
    os << "energy " << doubleBits(r.energy.cache) << " "
       << doubleBits(r.energy.overhead) << " "
       << doubleBits(r.energy.other) << "\n";
    os << "lvipRollbacks " << r.lvipRollbacks << "\n";
    os << "branchMispredicts " << r.branchMispredicts << "\n";
    os << "divergences " << r.divergences << "\n";
    os << "remerges " << r.remerges << "\n";
    os << "remergeWithin512 " << doubleBits(r.remergeWithin512) << "\n";
    os << "catchupAborted " << r.catchupAborted << "\n";
    os << "syncLatencyCycles " << r.syncLatencyCycles << "\n";
    os << "syncLatencySamples " << r.syncLatencySamples << "\n";
    os << "staticMergeableFrac " << doubleBits(r.staticMergeableFrac)
       << "\n";
    os << "splitSteerCharges " << r.splitSteerCharges << "\n";
    os << "system " << r.numCores << " " << placementName(r.placement)
       << " " << (r.sharedICache ? 1 : 0) << "\n";
    os << "sharedL2 " << r.sharedL2Accesses << " " << r.sharedL2Misses
       << "\n";
    os << "sharedICacheStats " << r.sharedICacheAccesses << " "
       << r.sharedICacheHits << "\n";
    os << "perCore " << r.perCore.size() << "\n";
    for (const CoreBreakdown &cb : r.perCore) {
        os << "core";
        for (std::size_t i = 0; i < cb.contexts.size(); ++i)
            os << (i ? ":" : " ") << cb.contexts[i];
        os << " " << cb.cycles << " " << cb.committedThreadInsts << " "
           << doubleBits(cb.mergedFrac) << " " << doubleBits(cb.energyPj)
           << " " << cb.sharedICacheHits << "\n";
    }
    os << "goldenOk " << (r.goldenOk ? 1 : 0) << "\n";
    return os.str();
}

bool
deserializeResult(const std::string &text, RunResult &out)
{
    std::istringstream is(text);
    std::string line;
    auto fields = [](const std::string &l) {
        std::vector<std::string> toks;
        std::istringstream ls(l);
        std::string t;
        while (ls >> t)
            toks.push_back(t);
        return toks;
    };
    auto next = [&](const char *name,
                    std::size_t nvals) -> std::vector<std::string> {
        if (!std::getline(is, line))
            return {};
        auto toks = fields(line);
        if (toks.size() != nvals + 1 || toks[0] != name)
            return {};
        toks.erase(toks.begin());
        return toks;
    };

    auto wl = next("workload", 1);
    if (wl.empty())
        return false;
    out.workload = wl[0];

    auto kind = next("kind", 1);
    if (kind.empty())
        return false;
    bool known = false;
    for (ConfigKind k : {ConfigKind::Base, ConfigKind::MMT_F,
                         ConfigKind::MMT_FX, ConfigKind::MMT_FXR,
                         ConfigKind::Limit}) {
        if (kind[0] == configName(k)) {
            out.kind = k;
            known = true;
        }
    }
    if (!known)
        return false;

    std::uint64_t u;
    auto readU64 = [&](const char *name, std::uint64_t &dst) {
        auto toks = next(name, 1);
        if (toks.empty() || !parseU64(toks[0], u))
            return false;
        dst = u;
        return true;
    };

    std::uint64_t threads;
    if (!readU64("numThreads", threads) || threads > 64)
        return false;
    out.numThreads = static_cast<int>(threads);
    std::uint64_t cycles;
    if (!readU64("cycles", cycles))
        return false;
    out.cycles = cycles;
    if (!readU64("committedThreadInsts", out.committedThreadInsts) ||
        !readU64("fetchRecords", out.fetchRecords) ||
        !readU64("fetchedThreadInsts", out.fetchedThreadInsts)) {
        return false;
    }

    auto fm = next("fetchModeFrac", out.fetchModeFrac.size());
    if (fm.size() != out.fetchModeFrac.size())
        return false;
    for (std::size_t i = 0; i < fm.size(); ++i) {
        if (!parseDoubleBits(fm[i], out.fetchModeFrac[i]))
            return false;
    }
    auto idf = next("identFrac", out.identFrac.size());
    if (idf.size() != out.identFrac.size())
        return false;
    for (std::size_t i = 0; i < idf.size(); ++i) {
        if (!parseDoubleBits(idf[i], out.identFrac[i]))
            return false;
    }
    auto en = next("energy", 3);
    if (en.size() != 3 || !parseDoubleBits(en[0], out.energy.cache) ||
        !parseDoubleBits(en[1], out.energy.overhead) ||
        !parseDoubleBits(en[2], out.energy.other)) {
        return false;
    }
    if (!readU64("lvipRollbacks", out.lvipRollbacks) ||
        !readU64("branchMispredicts", out.branchMispredicts) ||
        !readU64("divergences", out.divergences) ||
        !readU64("remerges", out.remerges)) {
        return false;
    }
    auto rw = next("remergeWithin512", 1);
    if (rw.empty() || !parseDoubleBits(rw[0], out.remergeWithin512))
        return false;
    if (!readU64("catchupAborted", out.catchupAborted) ||
        !readU64("syncLatencyCycles", out.syncLatencyCycles) ||
        !readU64("syncLatencySamples", out.syncLatencySamples)) {
        return false;
    }
    auto smf = next("staticMergeableFrac", 1);
    if (smf.empty() || !parseDoubleBits(smf[0], out.staticMergeableFrac))
        return false;
    if (!readU64("splitSteerCharges", out.splitSteerCharges))
        return false;
    auto sysl = next("system", 3);
    if (sysl.size() != 3)
        return false;
    std::uint64_t cores;
    if (!parseU64(sysl[0], cores) || cores < 1 ||
        cores > static_cast<std::uint64_t>(maxCores)) {
        return false;
    }
    out.numCores = static_cast<int>(cores);
    if (sysl[1] == "packed")
        out.placement = Placement::Packed;
    else if (sysl[1] == "spread")
        out.placement = Placement::Spread;
    else
        return false;
    if (sysl[2] != "0" && sysl[2] != "1")
        return false;
    out.sharedICache = sysl[2] == "1";
    auto sl2 = next("sharedL2", 2);
    if (sl2.size() != 2 || !parseU64(sl2[0], out.sharedL2Accesses) ||
        !parseU64(sl2[1], out.sharedL2Misses)) {
        return false;
    }
    auto sic = next("sharedICacheStats", 2);
    if (sic.size() != 2 ||
        !parseU64(sic[0], out.sharedICacheAccesses) ||
        !parseU64(sic[1], out.sharedICacheHits)) {
        return false;
    }
    std::uint64_t num_cores_listed;
    if (!readU64("perCore", num_cores_listed) ||
        num_cores_listed > static_cast<std::uint64_t>(maxCores)) {
        return false;
    }
    out.perCore.clear();
    // A context id is a global thread id, so across the whole perCore
    // list at most maxThreads ids can appear and none can repeat (one
    // context lives on exactly one core). Without these bounds a
    // corrupt entry with an arbitrarily long (or repetitive) colon
    // list would allocate unbounded memory and deserialize into an
    // impossible topology.
    std::array<bool, maxThreads> ctx_seen{};
    for (std::uint64_t c = 0; c < num_cores_listed; ++c) {
        auto cl = next("core", 6);
        if (cl.size() != 6)
            return false;
        CoreBreakdown cb;
        // Context ids are colon-joined ("0:1"); each is < maxThreads.
        std::istringstream cs(cl[0]);
        std::string tok;
        while (std::getline(cs, tok, ':')) {
            std::uint64_t ctx;
            if (cb.contexts.size() >=
                static_cast<std::size_t>(maxThreads)) {
                return false;
            }
            if (!parseU64(tok, ctx) ||
                ctx >= static_cast<std::uint64_t>(maxThreads)) {
                return false;
            }
            if (ctx_seen[ctx])
                return false;
            ctx_seen[ctx] = true;
            cb.contexts.push_back(static_cast<int>(ctx));
        }
        if (cb.contexts.empty())
            return false;
        std::uint64_t core_cycles;
        if (!parseU64(cl[1], core_cycles) ||
            !parseU64(cl[2], cb.committedThreadInsts) ||
            !parseDoubleBits(cl[3], cb.mergedFrac) ||
            !parseDoubleBits(cl[4], cb.energyPj) ||
            !parseU64(cl[5], cb.sharedICacheHits)) {
            return false;
        }
        cb.cycles = core_cycles;
        out.perCore.push_back(std::move(cb));
    }
    auto gk = next("goldenOk", 1);
    if (gk.empty() || (gk[0] != "0" && gk[0] != "1"))
        return false;
    out.goldenOk = gk[0] == "1";
    return true;
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    mmt_assert(!dir_.empty(), "result store needs a directory");
}

std::string
ResultStore::entryPath(const JobSpec &job) const
{
    return dir_ + "/" + hashHex(cacheKey(job)) + ".result";
}

ResultStore::Status
ResultStore::load(const JobSpec &job, RunResult &out) const
{
    std::ifstream in(entryPath(job));
    if (!in)
        return Status::Miss;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    // Header: format tag, then the full cache-key string. Validating
    // the key string (not just the hash in the file name) catches both
    // hash collisions and entries written under a different
    // code-version salt.
    std::string header = std::string(kFormatTag) + "\n" +
                         "key " + cacheKeyString(job) + "\n";
    if (text.compare(0, header.size(), header) != 0)
        return Status::Corrupt;

    // Trailer: checksum over everything before the checksum line.
    std::size_t nl = text.rfind('\n', text.size() - 2);
    if (text.empty() || text.back() != '\n' || nl == std::string::npos)
        return Status::Corrupt;
    std::string last = text.substr(nl + 1);
    std::string body = text.substr(0, nl + 1);
    if (last != "checksum " + hashHex(fnv1a64(body)) + "\n")
        return Status::Corrupt;

    std::string payload = body.substr(header.size());

    // Auxiliary host-speed section: a trailing "simspeed" line after the
    // canonical payload. Host timing is a measurement, not a simulation
    // result, so it lives outside serializeResult() (whose byte-identity
    // the determinism tests rely on) but still round-trips the cache.
    out.simSpeed = SimSpeedStats{};
    std::size_t aux = payload.rfind("simspeed ");
    if (aux != std::string::npos &&
        (aux == 0 || payload[aux - 1] == '\n')) {
        std::istringstream ls(payload.substr(aux));
        std::string tag, h, c, t;
        ls >> tag >> h >> c >> t;
        if (!parseDoubleBits(h, out.simSpeed.hostSeconds) ||
            !parseDoubleBits(c, out.simSpeed.simCyclesPerSec) ||
            !parseDoubleBits(t, out.simSpeed.threadInstsPerSec)) {
            return Status::Corrupt;
        }
        payload = payload.substr(0, aux);
    }
    if (!deserializeResult(payload, out))
        return Status::Corrupt;
    if (out.workload != resolveWorkload(job.workload).name ||
        out.kind != job.kind || out.numThreads != job.numThreads) {
        return Status::Corrupt;
    }
    return Status::Hit;
}

bool
ResultStore::store(const JobSpec &job, const RunResult &result) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        warn("result store: cannot create '%s': %s", dir_.c_str(),
             ec.message().c_str());
        return false;
    }

    std::ostringstream os;
    os << kFormatTag << "\n";
    os << "key " << cacheKeyString(job) << "\n";
    os << serializeResult(result);
    os << "simspeed " << doubleBits(result.simSpeed.hostSeconds) << " "
       << doubleBits(result.simSpeed.simCyclesPerSec) << " "
       << doubleBits(result.simSpeed.threadInstsPerSec) << "\n";
    std::string body = os.str();
    body += "checksum " + hashHex(fnv1a64(body)) + "\n";

    // Publish protocol: exclusive unique temp file, write, fsync,
    // atomic rename, directory fsync. Concurrent writers of the same
    // entry each own a distinct temp file; the last rename wins whole.
    std::string path = entryPath(job);
    std::string tmp = path + ".tmp." + uniqueSuffix();
    if (!writeFileDurable(tmp, body)) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("result store: rename to '%s' failed: %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    syncDirectory(dir_);
    return true;
}

std::string
ResultStore::quarantine(const JobSpec &job) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path qdir = fs::path(dir_) / "quarantine";
    fs::create_directories(qdir, ec);
    if (ec) {
        warn("result store: cannot create '%s': %s",
             qdir.string().c_str(), ec.message().c_str());
        return "";
    }
    std::string path = entryPath(job);
    std::string dest =
        (qdir / (hashHex(cacheKey(job)) + ".result." + uniqueSuffix()))
            .string();
    fs::rename(path, dest, ec);
    if (ec) {
        // Already quarantined or replaced by a concurrent worker.
        return "";
    }
    warn("result store: quarantined corrupt entry '%s' -> '%s'",
         path.c_str(), dest.c_str());
    return dest;
}

} // namespace mmt
