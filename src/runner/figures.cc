#include "runner/figures.hh"

#include "common/logging.hh"
#include "core/smt_core.hh"
#include "sim/experiment.hh"

namespace mmt
{

namespace
{

const std::vector<ConfigKind> kAllConfigs = {
    ConfigKind::Base, ConfigKind::MMT_F, ConfigKind::MMT_FX,
    ConfigKind::MMT_FXR, ConfigKind::Limit};

/** Figure 5(a)/(c) speedup table at @p num_threads. */
std::string
renderSpeedups(const SweepSpec &spec, const std::vector<RunResult> &results,
               int num_threads)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    std::vector<double> gf, gfx, gfxr, glim;
    for (const std::string &app : workloadNames()) {
        SpeedupRow r = speedupRowFromResults(index, app, num_threads);
        rows.push_back({r.app, std::to_string(r.baseCycles), fmt(r.mmtF),
                        fmt(r.mmtFX), fmt(r.mmtFXR), fmt(r.limit)});
        gf.push_back(r.mmtF);
        gfx.push_back(r.mmtFX);
        gfxr.push_back(r.mmtFXR);
        glim.push_back(r.limit);
    }
    rows.push_back({"geomean", "", fmt(geomean(gf)), fmt(geomean(gfx)),
                    fmt(geomean(gfxr)), fmt(geomean(glim))});
    return formatTable({"app", "base-cycles", "MMT-F", "MMT-FX",
                        "MMT-FXR", "Limit"},
                       rows);
}

std::string
renderFig5a(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    return renderSpeedups(spec, results, 2);
}

std::string
renderFig5c(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    return renderSpeedups(spec, results, 4);
}

std::string
renderFig5b(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    double se = 0, sr = 0, sf = 0;
    int n = 0;
    for (const std::string &app : workloadNames()) {
        const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2);
        double exec = 100.0 * r.identFrac[static_cast<int>(
                                  IdentClass::ExecIdentical)];
        double merge = 100.0 * r.identFrac[static_cast<int>(
                                   IdentClass::ExecIdenticalRegMerge)];
        double fetch = 100.0 * r.identFrac[static_cast<int>(
                                   IdentClass::FetchIdentical)];
        rows.push_back({app, fmt(exec, 1), fmt(merge, 1), fmt(fetch, 1),
                        fmt(exec + merge + fetch, 1)});
        se += exec;
        sr += merge;
        sf += fetch;
        ++n;
    }
    rows.push_back({"average", fmt(se / n, 1), fmt(sr / n, 1),
                    fmt(sf / n, 1), fmt((se + sr + sf) / n, 1)});
    return formatTable({"app", "exec-id%", "exec-id+regmerge%",
                        "fetch-id%", "identified%"},
                       rows);
}

std::string
renderFig5d(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    for (const std::string &app : workloadNames()) {
        const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2);
        rows.push_back({app, fmt(100.0 * r.fetchModeFrac[0], 1),
                        fmt(100.0 * r.fetchModeFrac[1], 1),
                        fmt(100.0 * r.fetchModeFrac[2], 1),
                        std::to_string(r.divergences),
                        std::to_string(r.remerges),
                        fmt(100.0 * r.remergeWithin512, 1)});
    }
    return formatTable({"app", "MERGE%", "DETECT%", "CATCHUP%",
                        "divergences", "remerges", "remerge<=512br%"},
                       rows);
}

constexpr int kFhbSizes[] = {8, 16, 32, 64, 128};

std::string
renderFig7a(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    std::vector<std::vector<double>> per_size(5);
    for (const std::string &app : workloadNames()) {
        const RunResult &base = index.get(app, ConfigKind::Base, 2);
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < 5; ++i) {
            SimOverrides ov;
            ov.fhbEntries = kFhbSizes[i];
            const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2, ov);
            double s = static_cast<double>(base.cycles) /
                       static_cast<double>(r.cycles);
            row.push_back(fmt(s));
            per_size[i].push_back(s);
        }
        rows.push_back(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (std::size_t i = 0; i < 5; ++i)
        gm.push_back(fmt(geomean(per_size[i])));
    rows.push_back(gm);
    return formatTable({"app", "fhb=8", "fhb=16", "fhb=32", "fhb=64",
                        "fhb=128"},
                       rows);
}

constexpr int kLsPorts[] = {2, 4, 8, 12};

std::string
renderFig7b(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    std::vector<std::vector<double>> per_port(4);
    for (const std::string &app : workloadNames()) {
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < 4; ++i) {
            SimOverrides ov;
            ov.lsPorts = kLsPorts[i];
            const RunResult &base = index.get(app, ConfigKind::Base, 2, ov);
            const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2, ov);
            double s = static_cast<double>(base.cycles) /
                       static_cast<double>(r.cycles);
            row.push_back(fmt(s));
            per_port[i].push_back(s);
        }
        rows.push_back(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (std::size_t i = 0; i < 4; ++i)
        gm.push_back(fmt(geomean(per_port[i])));
    rows.push_back(gm);
    return formatTable({"app", "ports=2", "ports=4", "ports=8",
                        "ports=12"},
                       rows);
}

constexpr int kFhbModeSizes[] = {8, 32, 128};

std::string
renderFig7c(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    for (const std::string &app : workloadNames()) {
        std::vector<std::string> row{app};
        for (int size : kFhbModeSizes) {
            SimOverrides ov;
            ov.fhbEntries = size;
            const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2, ov);
            row.push_back(fmt(100.0 * r.fetchModeFrac[0], 0) + "/" +
                          fmt(100.0 * r.fetchModeFrac[1], 0) + "/" +
                          fmt(100.0 * r.fetchModeFrac[2], 0));
        }
        rows.push_back(row);
    }
    return formatTable({"app", "fhb=8", "fhb=32", "fhb=128"}, rows);
}

constexpr int kFetchWidths[] = {4, 8, 16, 32};

std::string
renderFig7d(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    for (int width : kFetchWidths) {
        SimOverrides ov;
        ov.fetchWidth = width;
        std::vector<double> speedups;
        for (const std::string &app : workloadNames()) {
            const RunResult &base = index.get(app, ConfigKind::Base, 2, ov);
            const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2, ov);
            speedups.push_back(static_cast<double>(base.cycles) /
                               static_cast<double>(r.cycles));
        }
        rows.push_back({"width=" + std::to_string(width),
                        fmt(geomean(speedups))});
    }
    return formatTable({"fetch width", "geomean speedup"}, rows);
}

/** Names of the mmtc-compiled workloads (MT and ME variants). */
std::vector<std::string>
csrcNames()
{
    std::vector<std::string> names;
    for (const Workload &w : compiledWorkloads())
        names.push_back(w.name);
    return names;
}

/**
 * Compiled-workload figure: MMT-FXR speedup over Base at 2 and 4
 * threads plus the merged fraction, for every mmtc kernel in both
 * execution models.
 */
std::string
renderCsrc(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    std::vector<double> s2, s4;
    for (const std::string &app : csrcNames()) {
        const RunResult &b2 = index.get(app, ConfigKind::Base, 2);
        const RunResult &r2 = index.get(app, ConfigKind::MMT_FXR, 2);
        const RunResult &b4 = index.get(app, ConfigKind::Base, 4);
        const RunResult &r4 = index.get(app, ConfigKind::MMT_FXR, 4);
        double sp2 = static_cast<double>(b2.cycles) /
                     static_cast<double>(r2.cycles);
        double sp4 = static_cast<double>(b4.cycles) /
                     static_cast<double>(r4.cycles);
        rows.push_back({app, std::to_string(b2.cycles), fmt(sp2),
                        fmt(sp4), fmt(100.0 * r2.mergedFrac(), 1)});
        s2.push_back(sp2);
        s4.push_back(sp4);
    }
    rows.push_back({"geomean", "", fmt(geomean(s2)), fmt(geomean(s4)),
                    ""});
    return formatTable({"app", "base-cycles(2T)", "MMT-FXR 2T",
                        "MMT-FXR 4T", "merged%(2T)"},
                       rows);
}

constexpr StaticHintsMode kHintModes[] = {
    StaticHintsMode::Off, StaticHintsMode::FhbSeed,
    StaticHintsMode::SplitSteer, StaticHintsMode::Both};

/**
 * Static-hints ablation: predicted mergeable fraction from mmt-analyze
 * next to the measured merged fraction and divergence->re-merge latency
 * for each hints mode, plus cycle speedup of `both` over `off`.
 */
std::string
renderAblationHints(const SweepSpec &spec,
                    const std::vector<RunResult> &results)
{
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    std::vector<double> speedups;
    for (const std::string &app : workloadNames()) {
        std::vector<std::string> row{app};
        const RunResult *off = nullptr;
        const RunResult *both = nullptr;
        for (StaticHintsMode m : kHintModes) {
            SimOverrides ov;
            ov.staticHints = m;
            const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 2, ov);
            if (m == StaticHintsMode::Off) {
                off = &r;
                row.push_back(fmt(100.0 * r.staticMergeableFrac, 1));
            }
            if (m == StaticHintsMode::Both)
                both = &r;
            row.push_back(fmt(100.0 * r.mergedFrac(), 1) + "/" +
                          fmt(r.meanSyncLatency(), 0));
        }
        double s = static_cast<double>(off->cycles) /
                   static_cast<double>(both->cycles);
        speedups.push_back(s);
        row.push_back(fmt(s));
        rows.push_back(row);
    }
    rows.push_back({"geomean", "", "", "", "", "",
                    fmt(geomean(speedups))});
    return formatTable({"app", "pred-merge%", "off m%/lat",
                        "fhb-seed m%/lat", "split-steer m%/lat",
                        "both m%/lat", "speedup"},
                       rows);
}

SimOverrides
cmpOverrides(const PlacementScenario &s)
{
    SimOverrides ov;
    ov.numCores = s.numCores;
    ov.placement = s.placement;
    ov.sharedICache = s.sharedICache;
    return ov;
}

/**
 * CMP figure: per-app cycle ratio of each topology scenario against the
 * single-core SMT baseline (MMT-FXR, 4 threads), plus the merged
 * fraction once the contexts are spread one-per-core and the shared
 * I-cache hit rate when it is enabled.
 */
std::string
renderCmp(const SweepSpec &spec, const std::vector<RunResult> &results)
{
    const std::vector<PlacementScenario> &scns = placementScenarios();
    ResultIndex index(spec, results);
    std::vector<std::vector<std::string>> rows;
    std::vector<std::vector<double>> per_scn(scns.size() - 1);
    for (const std::string &app : workloadNames()) {
        const RunResult &base = index.get(app, ConfigKind::MMT_FXR, 4);
        std::vector<std::string> row{app, std::to_string(base.cycles)};
        const RunResult *spread4 = nullptr;
        const RunResult *spread4si = nullptr;
        for (std::size_t i = 1; i < scns.size(); ++i) {
            const PlacementScenario &s = scns[i];
            const RunResult &r = index.get(app, ConfigKind::MMT_FXR, 4,
                                           cmpOverrides(s));
            double ratio = static_cast<double>(base.cycles) /
                           static_cast<double>(r.cycles);
            row.push_back(fmt(ratio));
            per_scn[i - 1].push_back(ratio);
            if (s.numCores == 4 && s.placement == Placement::Spread)
                (s.sharedICache ? spread4si : spread4) = &r;
        }
        row.push_back(fmt(100.0 * spread4->mergedFrac(), 1));
        double si_hit =
            spread4si->sharedICacheAccesses > 0
                ? 100.0 *
                      static_cast<double>(spread4si->sharedICacheHits) /
                      static_cast<double>(spread4si->sharedICacheAccesses)
                : 0.0;
        row.push_back(fmt(si_hit, 1));
        rows.push_back(row);
    }
    std::vector<std::string> gm{"geomean", ""};
    for (std::size_t i = 0; i + 1 < scns.size(); ++i)
        gm.push_back(fmt(geomean(per_scn[i])));
    gm.push_back("");
    gm.push_back("");
    rows.push_back(gm);
    std::vector<std::string> headers{"app", "1c-cycles"};
    for (std::size_t i = 1; i < scns.size(); ++i)
        headers.push_back(scns[i].name);
    headers.push_back("merged%(4c-sp)");
    headers.push_back("siHit%(4c-sp)");
    return formatTable(headers, rows);
}

Figure
figureSpeedup(const std::string &id, int num_threads)
{
    Figure fig;
    fig.id = id;
    fig.title = "Figure 5(" + id.substr(1) + "): speedup over Base SMT, " +
                std::to_string(num_threads) + " threads\n";
    if (id == "5a")
        fig.title += describeTable4() + "\n";
    else
        fig.title += "\n";
    fig.sweep.name = "fig" + id;
    fig.sweep.cross(workloadNames(), kAllConfigs, {num_threads},
                    {SimOverrides()}, /*check_golden=*/true);
    fig.render = id == "5a" ? renderFig5a : renderFig5c;
    return fig;
}

} // namespace

const std::vector<std::string> &
figureIds()
{
    static const std::vector<std::string> ids = {
        "5a", "5b", "5c", "5d", "7a",
        "7b", "7c", "7d", "ablation_hints", "csrc", "cmp"};
    return ids;
}

Figure
makeFigure(const std::string &id)
{
    Figure fig;
    fig.id = id;
    fig.sweep.name = "fig" + id;
    if (id == "5a") {
        fig = figureSpeedup(id, 2);
        fig.paperNote =
            "\nPaper reference: MMT-FXR geomean ~1.15 at 2 threads; "
            "high-gain group\n(ammp equake mcf water-ns water-sp "
            "swaptions fluidanimate) 1.20-1.42;\nlow-gain group "
            "0-10%; libsvm/twolf/vortex/vpr show a large gap to "
            "Limit.\n";
    } else if (id == "5c") {
        fig = figureSpeedup(id, 4);
        fig.paperNote =
            "\nPaper reference: MMT-FXR geomean ~1.25 at 4 threads; "
            "gains grow with\nthread count (more identical work per "
            "fetch).\n";
    } else if (id == "5b") {
        fig.title = "Figure 5(b): identified identical instructions "
                    "(MMT-FXR, 2 threads, % of committed)\n\n";
        fig.paperNote =
            "\nPaper reference: ~60% of fetch-identical work "
            "identified on average, almost\nhalf execute-identical; "
            "register merging matters for equake, mcf, fft,\n"
            "water-ns; libsvm/twolf/vortex/vpr leave a large gap.\n";
        fig.sweep.cross(workloadNames(), {ConfigKind::MMT_FXR}, {2});
        fig.render = renderFig5b;
    } else if (id == "5d") {
        fig.title =
            "Figure 5(d): fetch mode breakdown (MMT-FXR, 2 threads)\n\n";
        fig.paperNote =
            "\nPaper reference (§6.3): CATCHUP is rare; twolf, vpr "
            "and vortex spend the\nleast time in MERGE mode; 90% of "
            "remerge points are found within 512\nfetched "
            "branches.\n";
        fig.sweep.cross(workloadNames(), {ConfigKind::MMT_FXR}, {2});
        fig.render = renderFig5d;
    } else if (id == "7a") {
        fig.title =
            "Figure 7(a): MMT-FXR speedup vs FHB size (2 threads)\n\n";
        fig.paperNote =
            "\nPaper reference: gains rise through 32 entries; "
            "averages keep inching up\ntoward 128, but 32 is the "
            "single-cycle-CAM design point.\n";
        std::vector<SimOverrides> fhb_ovs;
        for (int size : kFhbSizes) {
            SimOverrides ov;
            ov.fhbEntries = size;
            fhb_ovs.push_back(ov);
        }
        for (const std::string &app : workloadNames()) {
            fig.sweep.add(app, ConfigKind::Base, 2);
            for (const SimOverrides &ov : fhb_ovs)
                fig.sweep.add(app, ConfigKind::MMT_FXR, 2, ov);
        }
        fig.render = renderFig7a;
    } else if (id == "7b") {
        fig.title = "Figure 7(b): speedup vs load/store ports "
                    "(MMT-FXR vs Base, 2 threads, MSHRs scaled)\n\n";
        fig.paperNote =
            "\nPaper reference: more load/store ports (and MSHRs) -> "
            "larger MMT gains,\nbecause the memory system stops "
            "masking the fetch bottleneck.\n";
        std::vector<SimOverrides> port_ovs;
        for (int ports : kLsPorts) {
            SimOverrides ov;
            ov.lsPorts = ports;
            port_ovs.push_back(ov);
        }
        fig.sweep.cross(workloadNames(),
                        {ConfigKind::Base, ConfigKind::MMT_FXR}, {2},
                        port_ovs);
        fig.render = renderFig7b;
    } else if (id == "7c") {
        fig.title = "Figure 7(c): fetch modes vs FHB size "
                    "(MMT-FXR, 2 threads; MERGE/DETECT/CATCHUP %)\n\n";
        fig.paperNote =
            "\nPaper reference: equake/ocean/lu/fft/water-ns gain "
            "MERGE time with a larger\nFHB; twolf/vortex/vpr/water-sp "
            "accumulate CATCHUP time instead.\n";
        std::vector<SimOverrides> fhb_ovs;
        for (int size : kFhbModeSizes) {
            SimOverrides ov;
            ov.fhbEntries = size;
            fhb_ovs.push_back(ov);
        }
        fig.sweep.cross(workloadNames(), {ConfigKind::MMT_FXR}, {2},
                        fhb_ovs);
        fig.render = renderFig7c;
    } else if (id == "7d") {
        fig.title = "Figure 7(d): geomean speedup vs fetch width "
                    "(MMT-FXR vs Base, 2 threads)\n\n";
        fig.paperNote =
            "\nPaper reference: gains shrink with wider fetch; "
            "~11% remains at 32-wide.\n";
        std::vector<SimOverrides> width_ovs;
        for (int width : kFetchWidths) {
            SimOverrides ov;
            ov.fetchWidth = width;
            width_ovs.push_back(ov);
        }
        fig.sweep.cross(workloadNames(),
                        {ConfigKind::Base, ConfigKind::MMT_FXR}, {2},
                        width_ovs);
        fig.render = renderFig7d;
    } else if (id == "ablation_hints") {
        fig.sweep.name = "fig_ablation_hints";
        fig.title = "Static fetch hints ablation (MMT-FXR, 2 threads; "
                    "merged% / mean divergence->re-merge cycles)\n\n";
        fig.paperNote =
            "\npred-merge% is mmt-analyze's static upper estimate of "
            "mergeable work;\nthe per-mode columns show what the "
            "pipeline actually merged. fhb-seed\npre-populates FHBs "
            "with re-convergence points; split-steer charges\nfetch "
            "slots by the predicted sub-instruction count.\n";
        std::vector<SimOverrides> hint_ovs;
        for (StaticHintsMode m : kHintModes) {
            SimOverrides ov;
            ov.staticHints = m;
            hint_ovs.push_back(ov);
        }
        fig.sweep.cross(workloadNames(), {ConfigKind::MMT_FXR}, {2},
                        hint_ovs);
        fig.render = renderAblationHints;
    } else if (id == "csrc") {
        fig.sweep.name = "fig_csrc";
        fig.title = "Compiled C workloads (mmtc): MMT-FXR speedup over "
                    "Base SMT\n\n";
        fig.paperNote =
            "\nMT kernels ('c-*') read nthreads and partition their "
            "auto-SPMDized\nloops by tid; ME variants ('c-*-me') run "
            "one perturbed instance per\ncontext, so MMT merges their "
            "redundant instructions instead.\n";
        fig.sweep.cross(csrcNames(),
                        {ConfigKind::Base, ConfigKind::MMT_FXR}, {2, 4},
                        {SimOverrides()}, /*check_golden=*/true);
        fig.render = renderCsrc;
    } else if (id == "cmp") {
        fig.sweep.name = "fig_cmp";
        fig.title = "CMP topology: cycle ratio vs single-core SMT "
                    "(MMT-FXR, 4 threads; >1.00 = faster)\n\n";
        fig.paperNote =
            "\nPacked keeps all contexts on core 0 (cycle-identical to "
            "1c by\nconstruction); spread gives each context a private "
            "pipeline but\nforfeits intra-core merging, so merged% "
            "collapses once every core\nholds one context. '+si' adds "
            "the Sphynx-style shared I-cache between\nthe private L1Is "
            "and the shared L2.\n";
        std::vector<SimOverrides> cmp_ovs;
        for (const PlacementScenario &s : placementScenarios())
            cmp_ovs.push_back(cmpOverrides(s));
        fig.sweep.cross(workloadNames(), {ConfigKind::MMT_FXR}, {4},
                        cmp_ovs, /*check_golden=*/true);
        fig.render = renderCmp;
    } else {
        fatal("unknown figure '%s' (try: 5a 5b 5c 5d 7a 7b 7c 7d "
              "ablation_hints csrc cmp)",
              id.c_str());
    }
    return fig;
}

SpeedupRow
speedupRowFromResults(const ResultIndex &index, const std::string &app,
                      int num_threads, const SimOverrides &ov)
{
    SpeedupRow row;
    row.app = app;
    const RunResult &base = index.get(app, ConfigKind::Base, num_threads,
                                      ov);
    row.baseCycles = base.cycles;
    auto speedup = [&](ConfigKind kind) {
        const RunResult &r = index.get(app, kind, num_threads, ov);
        return static_cast<double>(base.cycles) /
               static_cast<double>(r.cycles);
    };
    row.mmtF = speedup(ConfigKind::MMT_F);
    row.mmtFX = speedup(ConfigKind::MMT_FX);
    row.mmtFXR = speedup(ConfigKind::MMT_FXR);
    // Limit runs identical inputs: its absolute cycle count is compared
    // to the same Base as the paper does.
    row.limit = speedup(ConfigKind::Limit);
    return row;
}

SpeedupRow
speedupRow(const std::string &app, int num_threads, const SimOverrides &ov)
{
    SweepSpec spec;
    spec.name = "speedup-row";
    spec.cross({app}, kAllConfigs, {num_threads}, {ov},
               /*check_golden=*/true);
    SweepOutcome outcome = runSweep(spec);
    return speedupRowFromResults(ResultIndex(spec, outcome.results), app,
                                 num_threads, ov);
}

} // namespace mmt
