/**
 * @file
 * Helpers for filling workload data segments deterministically and for
 * applying the per-instance input perturbations that characterize
 * multi-execution workloads (paper §3.1: "applications that require many
 * instances of the program with slightly different input values").
 */

#ifndef MMT_WORKLOADS_DATA_INIT_HH
#define MMT_WORKLOADS_DATA_INIT_HH

#include "common/random.hh"
#include "iasm/program.hh"
#include "isa/exec.hh"
#include "mem/memory_image.hh"

namespace mmt
{
namespace wl
{

/** Address of @p sym plus @p word_index * 8. */
inline Addr
wordAddr(const Program &prog, const char *sym, int word_index = 0)
{
    return prog.symbol(sym) + static_cast<Addr>(word_index) * 8;
}

/** Store one integer word at @p sym[index]. */
inline void
setWord(MemoryImage &img, const Program &prog, const char *sym,
        std::uint64_t value, int index = 0)
{
    img.write64(wordAddr(prog, sym, index), value);
}

/** Store one double at @p sym[index]. */
inline void
setDouble(MemoryImage &img, const Program &prog, const char *sym,
          double value, int index = 0)
{
    img.write64(wordAddr(prog, sym, index), exec::fromF(value));
}

/** Fill @p n doubles at @p sym with uniform values in [lo, hi). */
inline void
fillDoubles(MemoryImage &img, const Program &prog, const char *sym, int n,
            Rng &rng, double lo, double hi)
{
    for (int i = 0; i < n; ++i)
        setDouble(img, prog, sym, lo + rng.uniform() * (hi - lo), i);
}

/** Fill @p n integer words at @p sym with uniform values in [0, bound). */
inline void
fillWords(MemoryImage &img, const Program &prog, const char *sym, int n,
          Rng &rng, std::uint64_t bound)
{
    for (int i = 0; i < n; ++i)
        setWord(img, prog, sym, rng.below(bound), i);
}

/**
 * Perturb a fraction of the doubles at @p sym: each element is replaced
 * by a fresh uniform draw in [lo, hi) with probability @p frac. The rng
 * should be seeded per instance so instances differ from each other.
 */
inline void
perturbDoubles(MemoryImage &img, const Program &prog, const char *sym,
               int n, Rng &rng, double frac, double lo, double hi)
{
    for (int i = 0; i < n; ++i) {
        if (rng.uniform() < frac)
            setDouble(img, prog, sym, lo + rng.uniform() * (hi - lo), i);
    }
}

/** Integer-word version of perturbDoubles(). */
inline void
perturbWords(MemoryImage &img, const Program &prog, const char *sym, int n,
             Rng &rng, double frac, std::uint64_t bound)
{
    for (int i = 0; i < n; ++i) {
        if (rng.uniform() < frac)
            setWord(img, prog, sym, rng.below(bound), i);
    }
}

} // namespace wl
} // namespace mmt

#endif // MMT_WORKLOADS_DATA_INIT_HH
