/**
 * @file
 * SPLASH-2 stand-ins (multi-threaded, shared memory): lu, fft, water-sp,
 * ocean, water-ns. Work is partitioned by the tid register with stride-T
 * loops (so merged groups keep a single PC stream and diverge only at
 * data-dependent branches and final loop iterations); phases synchronize
 * with BARRIER, whose release naturally re-merges all threads.
 */

#include "workloads/workload.hh"

#include <cmath>

#include "workloads/data_init.hh"

namespace mmt
{

namespace
{

// ------------------------------------------------------------------ lu --
// Blocked-free LU factorization, rows strided across threads. The pivot
// row a[k][*] is read by every thread at the same inner-loop step: those
// loads are execute-identical (shared memory); each thread's own row data
// differs -> mostly fetch-identical (paper Figure 1: lu has limited
// execute-identical work).
const char *luSrc = R"(
.data
lun:      .word 32
nthreads: .word 1
lua:      .space 8192
.text
main:
    la   r1, lun
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, lua
    li   r4, 0
lu_kloop:
    barrier
    addi r5, r4, 1
    add  r5, r5, tid
lu_iloop:
    bge  r5, r1, lu_kdone
    mul  r7, r5, r1
    add  r7, r7, r4
    slli r7, r7, 3
    add  r7, r3, r7
    fld  f1, 0(r7)
    mul  r8, r4, r1
    add  r8, r8, r4
    slli r8, r8, 3
    add  r8, r3, r8
    fld  f2, 0(r8)
    fdiv f3, f1, f2
    fst  f3, 0(r7)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    addi r9, r4, 1
    mul  r10, r5, r1
    add  r10, r10, r9
    slli r10, r10, 3
    add  r10, r3, r10
    mul  r11, r4, r1
    add  r11, r11, r9
    slli r11, r11, 3
    add  r11, r3, r11
lu_jloop:
    bge  r9, r1, lu_inext
    fld  f4, 0(r10)
    fld  f5, 0(r11)
    fmul f6, f3, f5
    fsub f4, f4, f6
    fst  f4, 0(r10)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    addi r10, r10, 8
    addi r11, r11, 8
    addi r9, r9, 1
    j    lu_jloop
lu_inext:
    add  r5, r5, r2
    j    lu_iloop
lu_kdone:
    addi r4, r4, 1
    addi r12, r1, -1
    blt  r4, r12, lu_kloop
    barrier
    bnez tid, lu_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r5, 0
lu_sum:
    mul  r7, r5, r1
    add  r7, r7, r5
    slli r7, r7, 3
    add  r7, r3, r7
    fld  f21, 0(r7)
    fabs f21, f21
    fadd f20, f20, f21
    addi r5, r5, 1
    blt  r5, r1, lu_sum
    fli  f22, 100.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
lu_end:
    halt
)";

void
luInit(MemoryImage &img, const Program &prog, int, int num_contexts, bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1101);
    const int n = 32;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            double v = 1.0 + rng.uniform();
            if (i == j)
                v += static_cast<double>(n); // diagonal dominance
            wl::setDouble(img, prog, "lua", v, i * n + j);
        }
    }
}

// ----------------------------------------------------------------- fft --
// Radix-2 butterfly stages, butterflies strided across threads; per-stage
// barriers. Per-thread twiddle/data indices differ -> high fetch-identical
// with little execute-identical work.
const char *fftSrc = R"(
.data
fftn:     .word 512
nthreads: .word 1
fre:      .space 4096
fim:      .space 4096
ftwr:     .space 2048
ftwi:     .space 2048
.text
main:
    la   r1, fftn
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, fre
    la   r4, fim
    la   r5, ftwr
    la   r6, ftwi
    srli r8, r1, 1
    li   r7, 1
    li   r24, 0
fft_stage:
    addi r25, r7, -1
    srl  r26, r8, r24
    mv   r9, tid
fft_bloop:
    bge  r9, r8, fft_bdone
    srl  r10, r9, r24
    and  r11, r9, r25
    slli r12, r10, 1
    mul  r12, r12, r7
    add  r12, r12, r11
    add  r13, r12, r7
    mul  r14, r11, r26
    slli r15, r14, 3
    add  r16, r5, r15
    fld  f1, 0(r16)
    add  r16, r6, r15
    fld  f2, 0(r16)
    slli r17, r12, 3
    slli r18, r13, 3
    add  r19, r3, r17
    fld  f3, 0(r19)
    add  r20, r4, r17
    fld  f4, 0(r20)
    add  r21, r3, r18
    fld  f5, 0(r21)
    add  r22, r4, r18
    fld  f6, 0(r22)
    fmul f7, f1, f5
    fmul f8, f2, f6
    fsub f7, f7, f8
    fmul f9, f1, f6
    fmul f10, f2, f5
    fadd f9, f9, f10
    fsub f11, f3, f7
    fsub f12, f4, f9
    fadd f3, f3, f7
    fadd f4, f4, f9
    fst  f3, 0(r19)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    fst  f4, 0(r20)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    fst  f11, 0(r21)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    fst  f12, 0(r22)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    add  r9, r9, r2
    j    fft_bloop
fft_bdone:
    barrier
    slli r7, r7, 1
    addi r24, r24, 1
    blt  r7, r1, fft_stage
    bnez tid, fft_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r9, 0
fft_sum:
    slli r17, r9, 3
    add  r19, r3, r17
    fld  f21, 0(r19)
    fabs f21, f21
    fadd f20, f20, f21
    addi r9, r9, 1
    blt  r9, r1, fft_sum
    fli  f22, 10.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
fft_end:
    halt
)";

void
fftInit(MemoryImage &img, const Program &prog, int, int num_contexts, bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1102);
    const int n = 512;
    wl::fillDoubles(img, prog, "fre", n, rng, -1.0, 1.0);
    wl::fillDoubles(img, prog, "fim", n, rng, -1.0, 1.0);
    for (int k = 0; k < n / 2; ++k) {
        double ang = -2.0 * M_PI * static_cast<double>(k) /
                     static_cast<double>(n);
        wl::setDouble(img, prog, "ftwr", std::cos(ang), k);
        wl::setDouble(img, prog, "ftwi", std::sin(ang), k);
    }
}

// ------------------------------------------------------------- water-ns --
// O(n^2) pairwise interactions: the inner j-loop loads every molecule's
// position at the same time in all threads (execute-identical shared
// loads); a distance-cutoff branch on per-thread data diverges briefly
// and register merging re-establishes sharing after each re-merge —
// water is one of the apps the paper credits to register merging.
const char *waterNsSrc = R"(
.data
wn:       .word 64
nthreads: .word 1
wx:       .space 512
wy:       .space 512
wz:       .space 512
wfx:      .space 512
wcut:     .double 0.02
.text
main:
    la   r1, wn
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, wx
    la   r4, wy
    la   r5, wz
    la   r6, wfx
    la   r7, wcut
    fld  f9, 0(r7)
    fli  f14, 1.0e-3
    fli  f15, 1.0
    mv   r8, tid
wns_iloop:
    bge  r8, r1, wns_idone
    slli r9, r8, 3
    add  r10, r3, r9
    fld  f1, 0(r10)
    add  r10, r4, r9
    fld  f2, 0(r10)
    add  r10, r5, r9
    fld  f3, 0(r10)
    fli  f10, 0.0
    li   r11, 0
wns_jloop:
    slli r12, r11, 3
    add  r13, r3, r12
    fld  f4, 0(r13)
    add  r13, r4, r12
    fld  f5, 0(r13)
    add  r13, r5, r12
    fld  f6, 0(r13)
    fsub f4, f1, f4
    fmul f4, f4, f4
    fsub f5, f2, f5
    fmul f5, f5, f5
    fsub f6, f3, f6
    fmul f6, f6, f6
    fadd f4, f4, f5
    fadd f4, f4, f6
    fadd f4, f4, f14
    fdiv f12, f15, f4
    fadd f10, f10, f12
    fclt r14, f4, f9
    beqz r14, wns_jnext
    fsqrt f11, f4
    fdiv f13, f15, f11
    fadd f10, f10, f13
wns_jnext:
    addi r11, r11, 1
    blt  r11, r1, wns_jloop
    add  r16, r6, r9
    fst  f10, 0(r16)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    add  r8, r8, r2
    j    wns_iloop
wns_idone:
    barrier
    bnez tid, wns_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r8, 0
wns_sum:
    slli r9, r8, 3
    add  r16, r6, r9
    fld  f21, 0(r16)
    fadd f20, f20, f21
    addi r8, r8, 1
    blt  r8, r1, wns_sum
    fli  f22, 10.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
wns_end:
    halt
)";

void
waterNsInit(MemoryImage &img, const Program &prog, int, int num_contexts,
            bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1103);
    wl::fillDoubles(img, prog, "wx", 64, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "wy", 64, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "wz", 64, rng, 0.0, 1.0);
}

// ------------------------------------------------------------- water-sp --
// Cell-list variant: per-cell molecule counts vary, so threads' loop trip
// counts differ -> longer divergences than water-ns.
const char *waterSpSrc = R"(
.data
wspn:     .word 256
wspcells: .word 8
nthreads: .word 1
wsx:      .space 2048
wsy:      .space 2048
wsfx:     .space 2048
wscount:  .space 128
wsstart:  .space 128
wscut:    .double 0.03
.text
main:
    la   r1, wspn
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r21, wspcells
    ld   r21, 0(r21)
    la   r3, wsx
    la   r4, wsy
    la   r5, wsfx
    la   r6, wscount
    la   r7, wsstart
    la   r8, wscut
    fld  f9, 0(r8)
    fli  f14, 1.0e-3
    fli  f15, 1.0
    mv   r9, tid
wsp_cloop:
    bge  r9, r21, wsp_cdone
    slli r10, r9, 3
    add  r11, r7, r10
    ld   r12, 0(r11)
    add  r11, r6, r10
    ld   r13, 0(r11)
    add  r13, r12, r13
    addi r14, r9, 1
    rem  r14, r14, r21
    slli r15, r14, 3
    add  r16, r7, r15
    ld   r17, 0(r16)
    add  r16, r6, r15
    ld   r18, 0(r16)
    add  r18, r17, r18
    mv   r19, r12
wsp_mloop:
    bge  r19, r13, wsp_mdone
    slli r20, r19, 3
    add  r22, r3, r20
    fld  f1, 0(r22)
    add  r22, r4, r20
    fld  f2, 0(r22)
    fli  f10, 0.0
    mv   r23, r17
wsp_kloop:
    bge  r23, r18, wsp_kdone
    slli r24, r23, 3
    add  r25, r3, r24
    fld  f4, 0(r25)
    add  r25, r4, r24
    fld  f5, 0(r25)
    fsub f4, f1, f4
    fmul f4, f4, f4
    fsub f5, f2, f5
    fmul f5, f5, f5
    fadd f4, f4, f5
    fadd f4, f4, f14
    fdiv f12, f15, f4
    fadd f10, f10, f12
    fclt r26, f4, f9
    beqz r26, wsp_knext
    fsqrt f11, f4
    fdiv f13, f15, f11
    fadd f10, f10, f13
wsp_knext:
    addi r23, r23, 1
    j    wsp_kloop
wsp_kdone:
    add  r27, r5, r20
    fst  f10, 0(r27)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    addi r19, r19, 1
    j    wsp_mloop
wsp_mdone:
    add  r9, r9, r2
    j    wsp_cloop
wsp_cdone:
    barrier
    bnez tid, wsp_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r9, 0
wsp_sum:
    slli r10, r9, 3
    add  r11, r5, r10
    fld  f21, 0(r11)
    fadd f20, f20, f21
    addi r9, r9, 1
    blt  r9, r1, wsp_sum
    fli  f22, 10.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
wsp_end:
    halt
)";

void
waterSpInit(MemoryImage &img, const Program &prog, int, int num_contexts,
            bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1104);
    const int n = 256;
    const int cells = 8;
    wl::fillDoubles(img, prog, "wsx", n, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "wsy", n, rng, 0.0, 1.0);
    // Equal occupancy keeps the threads' pair loops in lockstep (the
    // cell-list structure still differs from water-ns).
    const int per_cell = n / cells;
    for (int c = 0; c < cells; ++c) {
        wl::setWord(img, prog, "wscount",
                    static_cast<std::uint64_t>(per_cell), c);
        wl::setWord(img, prog, "wsstart",
                    static_cast<std::uint64_t>(c * per_cell), c);
    }
}

// --------------------------------------------------------------- ocean --
// Red-black-free Jacobi relaxation over a bordered grid, rows strided
// across threads, ping-pong buffers, per-iteration barriers.
const char *oceanSrc = R"(
.data
ocn:      .word 34
ociters:  .word 6
nthreads: .word 1
ogrid:    .space 9248
ogrid2:   .space 9248
.text
main:
    la   r1, ocn
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, ociters
    ld   r3, 0(r3)
    la   r10, ogrid
    la   r11, ogrid2
    fli  f9, 0.25
    addi r12, r1, -1
    slli r14, r1, 3
    li   r4, 0
ocean_iter:
    barrier
    li   r5, 1
    add  r5, r5, tid
ocean_row:
    bge  r5, r12, ocean_rdone
    mul  r6, r5, r1
    li   r7, 1
ocean_col:
    bge  r7, r12, ocean_cdone
    add  r8, r6, r7
    slli r9, r8, 3
    add  r13, r10, r9
    fld  f1, -8(r13)
    fld  f2, 8(r13)
    sub  r15, r13, r14
    fld  f3, 0(r15)
    add  r15, r13, r14
    fld  f4, 0(r15)
    fadd f1, f1, f2
    fadd f3, f3, f4
    fadd f1, f1, f3
    fmul f1, f1, f9
    add  r16, r11, r9
    fst  f1, 0(r16)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    addi r7, r7, 1
    j    ocean_col
ocean_cdone:
    add  r5, r5, r2
    j    ocean_row
ocean_rdone:
    barrier
    xor  r10, r10, r11
    xor  r11, r10, r11
    xor  r10, r10, r11
    addi r4, r4, 1
    blt  r4, r3, ocean_iter
    bnez tid, ocean_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    mul  r6, r1, r1
    li   r5, 0
ocean_sum:
    slli r9, r5, 3
    add  r13, r10, r9
    fld  f21, 0(r13)
    fadd f20, f20, f21
    addi r5, r5, 1
    blt  r5, r6, ocean_sum
    fli  f22, 10.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
ocean_end:
    halt
)";

void
oceanInit(MemoryImage &img, const Program &prog, int, int num_contexts,
          bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1105);
    const int n = 34;
    wl::fillDoubles(img, prog, "ogrid", n * n, rng, 0.0, 4.0);
    for (int i = 0; i < n * n; ++i)
        wl::setDouble(img, prog, "ogrid2", 0.0, i);
}

} // namespace

std::vector<Workload>
splash2Workloads()
{
    std::vector<Workload> v;
    v.push_back({"lu", "SPLASH-2", false, luSrc, luInit});
    v.push_back({"fft", "SPLASH-2", false, fftSrc, fftInit});
    v.push_back({"water-sp", "SPLASH-2", false, waterSpSrc, waterSpInit});
    v.push_back({"ocean", "SPLASH-2", false, oceanSrc, oceanInit});
    v.push_back({"water-ns", "SPLASH-2", false, waterNsSrc, waterNsInit});
    return v;
}

} // namespace mmt
