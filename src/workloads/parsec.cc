/**
 * @file
 * Parsec stand-ins (multi-threaded): swaptions, fluidanimate,
 * blackscholes, canneal.
 */

#include "workloads/workload.hh"

#include "workloads/data_init.hh"

namespace mmt
{

namespace
{

// -------------------------------------------------------- blackscholes --
// Closed-form option pricing: straight-line FP per option, options
// strided across threads. No data-dependent branches, so threads stay
// merged; per-option inputs differ, so most work is fetch-identical only
// (blackscholes sits in the paper's low-gain group).
const char *blackscholesSrc = R"(
.data
bsopts:   .word 384
bspasses: .word 2
nthreads: .word 1
bsrate:   .double 0.05
bss:      .space 6144
bsk:      .space 6144
bst:      .space 6144
bsv:      .space 6144
bsout:    .space 6144
.text
main:
    la   r1, bsopts
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, bss
    la   r4, bsk
    la   r5, bst
    la   r6, bsv
    la   r7, bsout
    fli  f13, 0.5
    fli  f14, -1.7
    fli  f15, 1.0
    la   r21, bspasses
    ld   r21, 0(r21)
    li   r22, 0
bs_pass:
    mv   r8, tid
bs_loop:
    bge  r8, r1, bs_done
    slli r9, r8, 3
    la   r20, bsrate
    fld  f0, 0(r20)
    add  r10, r3, r9
    fld  f1, 0(r10)
    add  r10, r4, r9
    fld  f2, 0(r10)
    add  r10, r5, r9
    fld  f3, 0(r10)
    add  r10, r6, r9
    fld  f4, 0(r10)
    fdiv f5, f1, f2
    flog f5, f5
    fmul f6, f4, f4
    fmul f6, f6, f13
    fadd f6, f6, f0
    fmul f6, f6, f3
    fadd f5, f5, f6
    fsqrt f7, f3
    fmul f8, f4, f7
    fdiv f5, f5, f8
    fsub f6, f5, f8
    fmul f9, f5, f14
    fexp f9, f9
    fadd f9, f9, f15
    fdiv f9, f15, f9
    fmul f10, f6, f14
    fexp f10, f10
    fadd f10, f10, f15
    fdiv f10, f15, f10
    fneg f11, f0
    fmul f11, f11, f3
    fexp f11, f11
    fmul f12, f2, f11
    fmul f12, f12, f10
    fmul f1, f1, f9
    fsub f1, f1, f12
    add  r10, r7, r9
    fst  f1, 0(r10)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    add  r8, r8, r2
    j    bs_loop
bs_done:
    addi r22, r22, 1
    blt  r22, r21, bs_pass
    barrier
    bnez tid, bs_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r8, 0
bs_sum:
    slli r9, r8, 3
    add  r10, r7, r9
    fld  f21, 0(r10)
    fadd f20, f20, f21
    addi r8, r8, 1
    blt  r8, r1, bs_sum
    fcvti r25, f20
    out  r25
bs_end:
    halt
)";

void
blackscholesInit(MemoryImage &img, const Program &prog, int,
                 int num_contexts, bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1201);
    const int n = 384;
    wl::fillDoubles(img, prog, "bss", n, rng, 20.0, 120.0);
    wl::fillDoubles(img, prog, "bsk", n, rng, 20.0, 120.0);
    wl::fillDoubles(img, prog, "bst", n, rng, 0.1, 2.0);
    wl::fillDoubles(img, prog, "bsv", n, rng, 0.1, 0.6);
}

// ----------------------------------------------------------- swaptions --
// HJM Monte-Carlo with a *shared* random path stream (variance
// reduction): every thread walks the same shocked forward curve and only
// the strike comparison differs, so almost all work is execute-identical
// — swaptions is in the paper's high-gain group.
const char *swaptionsSrc = R"(
.data
swcount:  .word 4
swpaths:  .word 128
swten:    .word 16
nthreads: .word 1
swseed:   .word 99
swfwd:    .space 128
swstrike: .space 32
swout:    .space 32
.text
main:
    la   r1, swcount
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r3, swpaths
    ld   r3, 0(r3)
    la   r4, swten
    ld   r4, 0(r4)
    la   r5, swfwd
    la   r6, swstrike
    la   r7, swout
    fli  f15, 0.0000000001
    mv   r8, tid
sw_sloop:
    bge  r8, r1, sw_sdone
    slli r9, r8, 3
    add  r10, r6, r9
    fld  f8, 0(r10)
    fli  f10, 0.0
    la   r11, swseed
    ld   r12, 0(r11)
    li   r13, 0
sw_ploop:
    bge  r13, r3, sw_pdone
    li   r14, 6364136223846793005
    mul  r12, r12, r14
    li   r14, 1442695040888963407
    add  r12, r12, r14
    srli r15, r12, 33
    fcvt f1, r15
    fmul f1, f1, f15
    fli  f2, 0.0
    li   r16, 0
sw_tloop:
    slli r17, r16, 3
    add  r18, r5, r17
    fld  f3, 0(r18)
    fadd f3, f3, f1
    fadd f2, f2, f3
    addi r16, r16, 1
    blt  r16, r4, sw_tloop
    fcvt f4, r4
    fdiv f2, f2, f4
    fsub f5, f2, f8
    fli  f6, 0.0
    fmax f5, f5, f6
    fadd f10, f10, f5
    addi r13, r13, 1
    j    sw_ploop
sw_pdone:
    add  r19, r7, r9
    fst  f10, 0(r19)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    add  r8, r8, r2
    j    sw_sloop
sw_sdone:
    barrier
    bnez tid, sw_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r8, 0
sw_sum:
    slli r9, r8, 3
    add  r19, r7, r9
    fld  f21, 0(r19)
    fadd f20, f20, f21
    addi r8, r8, 1
    blt  r8, r1, sw_sum
    fli  f22, 100.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
sw_end:
    halt
)";

void
swaptionsInit(MemoryImage &img, const Program &prog, int, int num_contexts,
              bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1202);
    wl::fillDoubles(img, prog, "swfwd", 16, rng, 0.02, 0.08);
    for (int s = 0; s < 4; ++s)
        wl::setDouble(img, prog, "swstrike",
                      0.03 + 0.01 * static_cast<double>(s), s);
    for (int s = 0; s < 4; ++s)
        wl::setDouble(img, prog, "swout", 0.0, s);
}

// -------------------------------------------------------- fluidanimate --
// Grid-binned particle density with a cubic smoothing kernel: per-cell
// occupancy varies and the cutoff branch depends on per-thread data ->
// medium divergence.
const char *fluidanimateSrc = R"(
.data
flparts:  .word 256
flcells:  .word 8
nthreads: .word 1
flx:      .space 2048
fly:      .space 2048
fldens:   .space 2048
flcount:  .space 128
flstart:  .space 128
flh2:     .double 0.05
.text
main:
    la   r1, flparts
    ld   r1, 0(r1)
    la   r2, nthreads
    ld   r2, 0(r2)
    la   r21, flcells
    ld   r21, 0(r21)
    la   r3, flx
    la   r4, fly
    la   r5, fldens
    la   r6, flcount
    la   r7, flstart
    la   r8, flh2
    fld  f9, 0(r8)
    fli  f11, 0.0
    fli  f12, 0.002
    mv   r9, tid
fl_cloop:
    bge  r9, r21, fl_cdone
    slli r10, r9, 3
    add  r11, r7, r10
    ld   r12, 0(r11)
    add  r11, r6, r10
    ld   r13, 0(r11)
    add  r13, r12, r13
    addi r14, r9, 1
    rem  r14, r14, r21
    slli r15, r14, 3
    add  r16, r7, r15
    ld   r17, 0(r16)
    add  r16, r6, r15
    ld   r18, 0(r16)
    add  r18, r17, r18
    mv   r19, r12
fl_mloop:
    bge  r19, r13, fl_mdone
    slli r20, r19, 3
    add  r22, r3, r20
    fld  f1, 0(r22)
    add  r22, r4, r20
    fld  f2, 0(r22)
    fli  f10, 0.0
    mv   r23, r17
fl_kloop:
    bge  r23, r18, fl_kdone
    slli r24, r23, 3
    add  r25, r3, r24
    fld  f4, 0(r25)
    add  r25, r4, r24
    fld  f5, 0(r25)
    fsub f4, f1, f4
    fmul f4, f4, f4
    fsub f5, f2, f5
    fmul f5, f5, f5
    fadd f4, f4, f5
    fsub f6, f9, f4
    fmin f6, f6, f9
    fmax f6, f6, f11
    fmul f7, f6, f6
    fmul f7, f7, f6
    fadd f10, f10, f7
    fclt r26, f4, f12
    beqz r26, fl_knext
    fsqrt f8, f4
    fadd f10, f10, f8
fl_knext:
    addi r23, r23, 1
    j    fl_kloop
fl_kdone:
    add  r27, r5, r20
    fst  f10, 0(r27)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
    addi r19, r19, 1
    j    fl_mloop
fl_mdone:
    add  r9, r9, r2
    j    fl_cloop
fl_cdone:
    barrier
    bnez tid, fl_end   ; analyze:allow(tid-divergent-branch) thread 0 reduces
    fli  f20, 0.0
    li   r9, 0
fl_sum:
    slli r10, r9, 3
    add  r11, r5, r10
    fld  f21, 0(r11)
    fadd f20, f20, f21
    addi r9, r9, 1
    blt  r9, r1, fl_sum
    fli  f22, 100000.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
fl_end:
    halt
)";

void
fluidanimateInit(MemoryImage &img, const Program &prog, int,
                 int num_contexts, bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1203);
    const int n = 256;
    const int cells = 8;
    wl::fillDoubles(img, prog, "flx", n, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "fly", n, rng, 0.0, 1.0);
    // Equal occupancy: threads walk their cells in loop-lockstep, so
    // divergence comes only from the (rare) refinement branch.
    const int per_cell = n / cells;
    for (int c = 0; c < cells; ++c) {
        wl::setWord(img, prog, "flcount",
                    static_cast<std::uint64_t>(per_cell), c);
        wl::setWord(img, prog, "flstart",
                    static_cast<std::uint64_t>(c * per_cell), c);
    }
}

// ------------------------------------------------------------- canneal --
// Annealing swaps over a shared netlist with *per-thread* RNG streams:
// register state diverges immediately and accept branches diverge often,
// so canneal has little execute-identical work and low MERGE residency.
const char *cannealSrc = R"(
.data
cnelems:  .word 1024
cniters:  .word 2400
nthreads: .word 1
cnpos:    .space 8192
cnshadow: .space 8192
.text
main:
    la   r1, cnelems
    ld   r1, 0(r1)
    la   r2, cniters
    ld   r2, 0(r2)
    la   r3, nthreads
    ld   r3, 0(r3)
    div  r2, r2, r3
    la   r4, cnpos
    la   r5, cnshadow
    li   r6, 77
    mul  r6, r6, tid
    addi r6, r6, 1000
    li   r7, 0
    li   r20, 0
cn_iter:
    li   r8, 6364136223846793005
    mul  r6, r6, r8
    li   r8, 1442695040888963407
    add  r6, r6, r8
    srli r9, r6, 33
    rem  r10, r9, r1
    srli r9, r6, 13
    rem  r11, r9, r1
    slli r12, r10, 3
    add  r13, r4, r12
    ld   r14, 0(r13)
    slli r15, r11, 3
    add  r16, r4, r15
    ld   r17, 0(r16)
    sub  r18, r14, r17
    srai r19, r18, 63
    xor  r18, r18, r19
    sub  r18, r18, r19
    slti r19, r18, 64
    beqz r19, cn_next
    addi r20, r20, 1
    andi r21, r7, 63
    li   r23, 64
    mul  r23, r23, tid
    add  r23, r23, r21
    slli r23, r23, 3
    add  r23, r5, r23
    st   r14, 0(r23)   ; analyze:allow(race-store-load, race-store-store) per-thread slice: disjointness is data-dependent (dynamic race oracle cross-checks)
cn_next:
    addi r7, r7, 1
    blt  r7, r2, cn_iter
    out  r20
    barrier
    halt
)";

void
cannealInit(MemoryImage &img, const Program &prog, int, int num_contexts,
            bool)
{
    wl::setWord(img, prog, "nthreads",
                static_cast<std::uint64_t>(num_contexts));
    Rng rng(1204);
    wl::fillWords(img, prog, "cnpos", 1024, rng, 4096);
    for (int i = 0; i < 1024; ++i)
        wl::setWord(img, prog, "cnshadow", 0, i);
}

} // namespace

std::vector<Workload>
parsecWorkloads()
{
    std::vector<Workload> v;
    v.push_back({"swaptions", "Parsec", false, swaptionsSrc,
                 swaptionsInit});
    v.push_back({"fluidanimate", "Parsec", false, fluidanimateSrc,
                 fluidanimateInit});
    v.push_back({"blackscholes", "Parsec", false, blackscholesSrc,
                 blackscholesInit});
    v.push_back({"canneal", "Parsec", false, cannealSrc, cannealInit});
    return v;
}

} // namespace mmt
