#include "workloads/workload.hh"

#include "common/logging.hh"

namespace mmt
{

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        auto add = [&](std::vector<Workload> ws) {
            for (auto &w : ws)
                v.push_back(std::move(w));
        };
        // Table 1 order: ME first (SPEC2000 + SVM), then MT suites.
        add(specMeWorkloads());
        add(libsvmWorkloads());
        add(splash2Workloads());
        add(parsecWorkloads());
        return v;
    }();
    return all;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    for (const Workload &w : compiledWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace mmt
