#include "workloads/workload.hh"

#include "common/logging.hh"

namespace mmt
{

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        auto add = [&](std::vector<Workload> ws) {
            for (auto &w : ws)
                v.push_back(std::move(w));
        };
        // Table 1 order: ME first (SPEC2000 + SVM), then MT suites.
        add(specMeWorkloads());
        add(libsvmWorkloads());
        add(splash2Workloads());
        add(parsecWorkloads());
        return v;
    }();
    return all;
}

const std::vector<PlacementScenario> &
placementScenarios()
{
    static const std::vector<PlacementScenario> scenarios = {
        {"1c", 1, Placement::Packed, false,
         "single SMT core (the paper's topology)"},
        {"1c-spread", 1, Placement::Spread, false,
         "spread over one core: cycle-identical to 1c"},
        {"2c-packed", 2, Placement::Packed, false,
         "two cores, every context packed onto core 0"},
        {"2c-spread", 2, Placement::Spread, false,
         "two cores, contexts dealt round-robin"},
        {"2c-spread+si", 2, Placement::Spread, true,
         "two cores round-robin, shared I-cache on"},
        {"4c-packed", 4, Placement::Packed, false,
         "four cores, every context packed onto core 0"},
        {"4c-spread", 4, Placement::Spread, false,
         "one context per core: no intra-core merging"},
        {"4c-spread+si", 4, Placement::Spread, true,
         "one context per core, shared I-cache on"},
    };
    return scenarios;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    for (const Workload &w : compiledWorkloads()) {
        if (w.name == name)
            return w;
    }
    for (const Workload &w : racyCompiledWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace mmt
