/**
 * @file
 * Multi-execution kernels standing in for the paper's SPEC2000 picks:
 * ammp, equake, mcf, twolf, vpr, vortex. Each instance runs the same
 * binary; initData perturbs a small fraction of the input data per
 * instance (suppressed for the Limit configuration).
 */

#include "workloads/workload.hh"

#include <cstdint>
#include <utility>
#include <vector>

#include "workloads/data_init.hh"

namespace mmt
{

namespace
{

// ---------------------------------------------------------------- ammp --
// Molecular mechanics: pairwise nonbonded forces over a neighbor window.
// Almost all inputs identical across instances -> very high
// execute-identical fraction (paper Figure 1).
const char *ammpSrc = R"(
.data
natoms:  .word 128
window:  .word 8
cutoff:  .double 1.9
posx:    .space 1024
posy:    .space 1024
chg:     .space 1024
forcex:  .space 1024
.text
main:
    la   r1, natoms
    ld   r1, 0(r1)
    la   r2, posx
    la   r3, posy
    la   r4, chg
    la   r5, forcex
    la   r20, cutoff
    fld  f9, 0(r20)
    la   r21, window
    ld   r21, 0(r21)
    li   r6, 0
ammp_iloop:
    slli r7, r6, 3
    add  r8, r2, r7
    fld  f1, 0(r8)
    add  r8, r3, r7
    fld  f2, 0(r8)
    add  r8, r4, r7
    fld  f3, 0(r8)
    fli  f10, 0.0
    li   r9, 1
ammp_kloop:
    add  r10, r6, r9
    rem  r10, r10, r1
    slli r11, r10, 3
    add  r12, r2, r11
    fld  f4, 0(r12)
    add  r12, r3, r11
    fld  f5, 0(r12)
    add  r12, r4, r11
    fld  f6, 0(r12)
    fsub f7, f1, f4
    fmul f7, f7, f7
    fsub f8, f2, f5
    fmul f8, f8, f8
    fadd f7, f7, f8
    fclt r14, f7, f9
    beqz r14, ammp_skip
    fli  f12, 1.0e-6
    fadd f7, f7, f12
    fsqrt f11, f7
    fmul f12, f3, f6
    fdiv f12, f12, f11
    fneg f13, f7
    fexp f13, f13
    fadd f12, f12, f13
    fadd f10, f10, f12
ammp_skip:
    addi r9, r9, 1
    ble  r9, r21, ammp_kloop
    add  r16, r5, r7
    fst  f10, 0(r16)
    addi r6, r6, 1
    blt  r6, r1, ammp_iloop
    fli  f20, 0.0
    li   r6, 0
ammp_sum:
    slli r7, r6, 3
    add  r8, r5, r7
    fld  f21, 0(r8)
    fadd f20, f20, f21
    addi r6, r6, 1
    blt  r6, r1, ammp_sum
    fli  f22, 1000.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
    halt
)";

void
ammpInit(MemoryImage &img, const Program &prog, int instance, int,
         bool identical)
{
    Rng rng(1001);
    wl::fillDoubles(img, prog, "posx", 128, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "posy", 128, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "chg", 128, rng, 0.5, 1.5);
    if (!identical && instance > 0) {
        Rng prng(2000 + static_cast<std::uint64_t>(instance));
        wl::perturbDoubles(img, prog, "posx", 128, prng, 0.03, 0.0, 1.0);
    }
}

// -------------------------------------------------------------- equake --
// Sparse mat-vec with a data-dependent relaxation loop: instances
// perturb a contiguous block of the source vector, producing *long*
// divergent paths (Figure 2 shows equake's divergences are long).
const char *equakeSrc = R"(
.data
erows:   .word 96
ennz:    .word 8
esteps:  .word 4
ethr:    .double 3.0
ecolidx: .space 6144
eaval:   .space 6144
evec:    .space 768
eout:    .space 768
.text
main:
    la   r1, erows
    ld   r1, 0(r1)
    la   r2, ennz
    ld   r2, 0(r2)
    la   r3, esteps
    ld   r3, 0(r3)
    la   r4, ecolidx
    la   r5, eaval
    la   r6, evec
    la   r7, eout
    la   r8, ethr
    fld  f9, 0(r8)
    fli  f5, 0.9
    fli  f15, 0.5
    li   r9, 0
equake_step:
    li   r10, 0
equake_row:
    fli  f1, 0.0
    mul  r11, r10, r2
    slli r11, r11, 3
    add  r12, r4, r11
    add  r13, r5, r11
    li   r14, 0
equake_nnz:
    ld   r15, 0(r12)
    fld  f2, 0(r13)
    slli r16, r15, 3
    add  r16, r6, r16
    fld  f3, 0(r16)
    fmul f2, f2, f3
    fadd f1, f1, f2
    addi r12, r12, 8
    addi r13, r13, 8
    addi r14, r14, 1
    blt  r14, r2, equake_nnz
    fabs f4, f1
    fcle r17, f4, f9
    bnez r17, equake_store
    li   r18, 20
equake_relax:
    beqz r18, equake_store
    fmul f1, f1, f5
    addi r18, r18, -1
    j    equake_relax
equake_store:
    slli r20, r10, 3
    add  r21, r7, r20
    fst  f1, 0(r21)
    add  r22, r6, r20
    fld  f6, 0(r22)
    fadd f6, f6, f1
    fmul f6, f6, f15
    fst  f6, 0(r22)
    addi r10, r10, 1
    blt  r10, r1, equake_row
    addi r9, r9, 1
    blt  r9, r3, equake_step
    fli  f20, 0.0
    li   r10, 0
equake_sum:
    slli r20, r10, 3
    add  r21, r7, r20
    fld  f21, 0(r21)
    fadd f20, f20, f21
    addi r10, r10, 1
    blt  r10, r1, equake_sum
    fli  f22, 100.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
    halt
)";

void
equakeInit(MemoryImage &img, const Program &prog, int instance, int,
           bool identical)
{
    Rng rng(1002);
    wl::fillWords(img, prog, "ecolidx", 96 * 8, rng, 96);
    wl::fillDoubles(img, prog, "eaval", 96 * 8, rng, 0.0, 1.0);
    wl::fillDoubles(img, prog, "evec", 96, rng, 0.0, 2.0);
    if (!identical && instance > 0) {
        // Contiguous block of the source term differs per instance.
        Rng prng(3000 + static_cast<std::uint64_t>(instance));
        int base = static_cast<int>(prng.below(94));
        for (int i = 0; i < 2; ++i) {
            wl::setDouble(img, prog, "evec",
                          prng.uniform() * 4.0, base + i);
        }
    }
}

// ----------------------------------------------------------------- mcf --
// Network-simplex style pointer chasing over a big arc array with
// reduced-cost tests; memory-bound with moderate divergence.
const char *mcfSrc = R"(
.data
mnodes:  .word 4096
mwalks:  .word 32
mlen:    .word 96
mnext:   .space 32768
mcost:   .space 32768
mpot:    .space 32768
.text
main:
    la   r1, mnodes
    ld   r1, 0(r1)
    la   r2, mwalks
    ld   r2, 0(r2)
    la   r3, mlen
    ld   r3, 0(r3)
    la   r4, mnext
    la   r5, mcost
    la   r6, mpot
    li   r7, 0
    li   r8, 0
    li   r20, 0
mcf_walk:
    li   r9, 0
mcf_step:
    slli r10, r8, 3
    add  r11, r4, r10
    ld   r8, 0(r11)
    add  r12, r5, r10
    ld   r13, 0(r12)
    add  r14, r6, r10
    ld   r15, 0(r14)
    sub  r16, r13, r15
    bltz r16, mcf_improve
    addi r9, r9, 1
    blt  r9, r3, mcf_step
    j    mcf_walkdone
mcf_improve:
    add  r20, r20, r16
    srai r17, r16, 1
    sub  r15, r15, r17
    st   r15, 0(r14)
    addi r9, r9, 1
    blt  r9, r3, mcf_step
mcf_walkdone:
    addi r7, r7, 1
    li   r21, 37
    mul  r8, r7, r21
    andi r8, r8, 4095
    blt  r7, r2, mcf_walk
    out  r20
    halt
)";

void
mcfInit(MemoryImage &img, const Program &prog, int instance, int,
        bool identical)
{
    Rng rng(1003);
    // next[] is a random permutation cycle so chases stay in range and
    // visit most of the (L1-exceeding) working set.
    const int n = 4096;
    std::vector<std::uint64_t> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        perm[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i);
    for (int i = n - 1; i > 0; --i) {
        int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i)));
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < n; ++i)
        wl::setWord(img, prog, "mnext", perm[static_cast<std::size_t>(i)],
                    i);
    wl::fillWords(img, prog, "mcost", n, rng, 1000);
    for (int i = 0; i < n; ++i)
        wl::setWord(img, prog, "mpot", rng.below(80), i);
    if (!identical && instance > 0) {
        Rng prng(4000 + static_cast<std::uint64_t>(instance));
        wl::perturbWords(img, prog, "mcost", n, prng, 0.02, 1000);
    }
}

// --------------------------------------------------------------- twolf --
// Simulated-annealing placement: a shared RNG stream picks the cells,
// perturbed wire weights decide accept/reject — frequent divergence and
// low MERGE-mode residency (paper §6.3 singles out twolf/vpr/vortex).
const char *twolfSrc = R"(
.data
tcells:  .word 512
titers:  .word 1500
tseed:   .word 12345
tposx:   .space 4096
twire:   .space 4096
.text
main:
    la   r1, tcells
    ld   r1, 0(r1)
    la   r2, titers
    ld   r2, 0(r2)
    la   r3, tseed
    ld   r3, 0(r3)
    la   r4, tposx
    la   r6, twire
    li   r7, 0
    li   r20, 0
twolf_iter:
    li   r8, 6364136223846793005
    mul  r3, r3, r8
    li   r8, 1442695040888963407
    add  r3, r3, r8
    srli r9, r3, 33
    rem  r10, r9, r1
    srli r9, r3, 13
    rem  r11, r9, r1
    slli r12, r10, 3
    slli r13, r11, 3
    add  r14, r4, r12
    ld   r15, 0(r14)
    add  r16, r4, r13
    ld   r17, 0(r16)
    add  r18, r6, r12
    ld   r19, 0(r18)
    add  r21, r6, r13
    ld   r22, 0(r21)
    sub  r23, r15, r17
    srai r24, r23, 63
    xor  r23, r23, r24
    sub  r23, r23, r24
    mul  r24, r23, r19
    mul  r25, r23, r22
    sub  r26, r24, r25
    slli r27, r23, 7
    add  r26, r26, r27
    bltz r26, twolf_accept
    j    twolf_next
twolf_accept:
    st   r15, 0(r16)
    st   r17, 0(r14)
    addi r20, r20, 1
twolf_next:
    addi r7, r7, 1
    blt  r7, r2, twolf_iter
    out  r20
    halt
)";

void
twolfInit(MemoryImage &img, const Program &prog, int instance, int,
          bool identical)
{
    Rng rng(1004);
    wl::fillWords(img, prog, "tposx", 512, rng, 4096);
    wl::fillWords(img, prog, "twire", 512, rng, 256);
    if (!identical && instance > 0) {
        Rng prng(5000 + static_cast<std::uint64_t>(instance));
        wl::perturbWords(img, prog, "twire", 512, prng, 0.15, 256);
    }
}

// ----------------------------------------------------------------- vpr --
// Routing-cost relaxation with congestion-dependent inner trip counts:
// many short divergences.
const char *vprSrc = R"(
.data
vnets:   .word 384
vpasses: .word 4
vcong:   .space 3072
vcost:   .space 3072
.text
main:
    la   r1, vnets
    ld   r1, 0(r1)
    la   r2, vpasses
    ld   r2, 0(r2)
    la   r4, vcong
    la   r5, vcost
    li   r6, 0
    li   r20, 0
vpr_pass:
    li   r7, 0
vpr_net:
    slli r8, r7, 3
    add  r9, r4, r8
    ld   r10, 0(r9)
    andi r11, r10, 3
    addi r11, r11, 2
    li   r12, 0
    mv   r13, r10
vpr_relax:
    beq  r12, r11, vpr_done
    srai r13, r13, 1
    addi r13, r13, 3
    addi r12, r12, 1
    j    vpr_relax
vpr_done:
    add  r14, r5, r8
    ld   r15, 0(r14)
    add  r15, r15, r13
    st   r15, 0(r14)
    add  r20, r20, r13
    addi r7, r7, 1
    blt  r7, r1, vpr_net
    addi r6, r6, 1
    blt  r6, r2, vpr_pass
    out  r20
    halt
)";

void
vprInit(MemoryImage &img, const Program &prog, int instance, int,
        bool identical)
{
    Rng rng(1005);
    // Unperturbed congestion values have zero low bits, so every
    // instance relaxes each net the same number of times; perturbation
    // randomizes the trip count of a few nets.
    for (int i = 0; i < 384; ++i)
        wl::setWord(img, prog, "vcong", rng.below(4096) & ~0x3ull, i);
    for (int i = 0; i < 384; ++i)
        wl::setWord(img, prog, "vcost", 0, i);
    if (!identical && instance > 0) {
        Rng prng(6000 + static_cast<std::uint64_t>(instance));
        wl::perturbWords(img, prog, "vcong", 384, prng, 0.25, 4096);
    }
}

// -------------------------------------------------------------- vortex --
// Object-database stand-in: branchy binary-search-tree probes whose
// paths diverge mid-tree on perturbed keys; long divergence tails
// (Figure 2 shows vortex as the other long-divergence app).
const char *vortexSrc = R"(
.data
xnodes:   .word 1023
xqueries: .word 600
xseed:    .word 42
xkeys:    .space 8184
xcount:   .space 8184
.text
main:
    la   r1, xnodes
    ld   r1, 0(r1)
    la   r2, xqueries
    ld   r2, 0(r2)
    la   r3, xseed
    ld   r3, 0(r3)
    la   r4, xkeys
    la   r5, xcount
    li   r6, 0
    li   r20, 0
    li   r24, 0
vortex_q:
    li   r8, 2862933555777941757
    mul  r3, r3, r8
    li   r8, 3037000493
    add  r3, r3, r8
    srli r9, r3, 40
    li   r10, 0
vortex_walk:
    slli r11, r10, 3
    add  r12, r4, r11
    ld   r13, 0(r12)
    xor  r21, r13, r9
    slli r22, r21, 13
    xor  r21, r21, r22
    srli r22, r21, 7
    xor  r21, r21, r22
    add  r24, r24, r21
    beq  r13, r9, vortex_found
    blt  r13, r9, vortex_right
    slli r10, r10, 1
    addi r10, r10, 1
    j    vortex_chk
vortex_right:
    slli r10, r10, 1
    addi r10, r10, 2
vortex_chk:
    blt  r10, r1, vortex_walk
    j    vortex_next
vortex_found:
    addi r20, r20, 1
    add  r14, r5, r11
    ld   r15, 0(r14)
    addi r15, r15, 1
    st   r15, 0(r14)
vortex_next:
    addi r6, r6, 1
    blt  r6, r2, vortex_q
    out  r20
    out  r24
    halt
)";

void
vortexInit(MemoryImage &img, const Program &prog, int instance, int,
           bool identical)
{
    // Build a valid BST over 24-bit keys: the in-order rank of heap
    // index i determines its key.
    const int n = 1023;
    // In-order traversal of the perfect heap assigns ranks.
    std::vector<int> rank(static_cast<std::size_t>(n), 0);
    int next_rank = 0;
    // Iterative in-order over implicit tree.
    std::vector<int> stack;
    int cur = 0;
    while (cur < n || !stack.empty()) {
        while (cur < n) {
            stack.push_back(cur);
            cur = 2 * cur + 1;
        }
        cur = stack.back();
        stack.pop_back();
        rank[static_cast<std::size_t>(cur)] = next_rank++;
        cur = 2 * cur + 2;
    }
    const std::uint64_t span = (1ull << 24) / static_cast<std::uint64_t>(n);
    for (int i = 0; i < n; ++i) {
        wl::setWord(img, prog, "xkeys",
                    static_cast<std::uint64_t>(
                        rank[static_cast<std::size_t>(i)]) * span + 7,
                    i);
        wl::setWord(img, prog, "xcount", 0, i);
    }
    if (!identical && instance > 0) {
        Rng prng(7000 + static_cast<std::uint64_t>(instance));
        // Jitter a fraction of the keys slightly: searches still work but
        // take different paths near the perturbed nodes.
        for (int i = 0; i < n; ++i) {
            if (prng.uniform() < 0.04) {
                std::uint64_t k =
                    img.read64(wl::wordAddr(prog, "xkeys", i));
                wl::setWord(img, prog, "xkeys", k + prng.below(span / 2),
                            i);
            }
        }
    }
}

} // namespace

std::vector<Workload>
specMeWorkloads()
{
    std::vector<Workload> v;
    v.push_back({"ammp", "SPEC2000", true, ammpSrc, ammpInit});
    v.push_back({"twolf", "SPEC2000", true, twolfSrc, twolfInit});
    v.push_back({"vpr", "SPEC2000", true, vprSrc, vprInit});
    v.push_back({"equake", "SPEC2000", true, equakeSrc, equakeInit});
    v.push_back({"mcf", "SPEC2000", true, mcfSrc, mcfInit});
    v.push_back({"vortex", "SPEC2000", true, vortexSrc, vortexInit});
    return v;
}

} // namespace mmt
