/**
 * @file
 * Message-passing ring all-reduce — the third SPMD class of paper §3.1
 * ("message-passing, in which threads communicate through explicit
 * messages") and the application class §7 names as future work.
 *
 * Every instance runs in its own address space (like ME) and learns its
 * rank from memory (like an MPI process); a classic ring all-reduce then
 * circulates partial sums with SEND/RECV. All instances execute the same
 * instruction stream; only rank-derived registers and the (slightly
 * perturbed) local data differ — prime MMT territory.
 */

#include "workloads/workload.hh"

#include "workloads/data_init.hh"

namespace mmt
{

namespace
{

const char *mpRingSrc = R"(
.data
mpn:    .word 192
mpep:   .word 12
mpctx:  .word 1
mpid:   .word 0
mpdata: .space 1536
.text
main:
    la   r1, mpn
    ld   r1, 0(r1)
    la   r2, mpctx
    ld   r2, 0(r2)
    la   r3, mpdata
    la   r14, mpep
    ld   r14, 0(r14)
    li   r15, 0            # grand total across epochs
mp_epoch:
    # Local reduction over this rank's data.
    li   r4, 0
    li   r5, 0
mp_sum:
    slli r6, r5, 3
    add  r6, r3, r6
    ld   r7, 0(r6)
    # weight the element by a small data-dependent term
    andi r13, r7, 7
    mul  r7, r7, r13
    add  r4, r4, r7
    addi r5, r5, 1
    blt  r5, r1, mp_sum
    # Rank and ring neighbours.
    la   r8, mpid
    ld   r8, 0(r8)
    addi r9, r8, 1
    rem  r9, r9, r2
    add  r10, r8, r2
    addi r10, r10, -1
    rem  r10, r10, r2
    # Ring all-reduce: ctx-1 rounds of pass-left, accumulate.
    addi r11, r2, -1
    mv   r12, r4
mp_round:
    beqz r11, mp_done
    send r9, r12
    recv r12, r10
    add  r4, r4, r12
    addi r11, r11, -1
    j    mp_round
mp_done:
    add  r15, r15, r4
    # fold the epoch index into the data so epochs differ
    la   r6, mpdata
    ld   r7, 0(r6)
    add  r7, r7, r14
    st   r7, 0(r6)
    addi r14, r14, -1
    bnez r14, mp_epoch
    out  r15
    halt
)";

void
mpRingInit(MemoryImage &img, const Program &prog, int instance,
           int num_contexts, bool identical)
{
    // Rank and context count are identity, not input: they survive the
    // Limit configuration (otherwise every rank would be 0 and the ring
    // would deadlock).
    wl::setWord(img, prog, "mpctx",
                static_cast<std::uint64_t>(num_contexts));
    wl::setWord(img, prog, "mpid", static_cast<std::uint64_t>(instance));
    Rng rng(1301);
    wl::fillWords(img, prog, "mpdata", 192, rng, 1 << 16);
    if (!identical && instance > 0) {
        Rng prng(9000 + static_cast<std::uint64_t>(instance));
        wl::perturbWords(img, prog, "mpdata", 192, prng, 0.05, 1 << 16);
    }
}

} // namespace

const Workload &
messagePassingWorkload()
{
    static const Workload w = [] {
        Workload v;
        v.name = "mp-ring";
        v.suite = "MP";
        v.multiExecution = true;
        v.messagePassing = true;
        v.source = mpRingSrc;
        v.initData = mpRingInit;
        return v;
    }();
    return w;
}

} // namespace mmt
