/**
 * @file
 * Workload registry: the 16 SPMD kernels standing in for the paper's
 * benchmark suites (Table 1). Each kernel is written in MMT-RISC assembly
 * and calibrated to reproduce its application's published sharing
 * character (DESIGN.md §4): compute mix, data-sharing pattern, and
 * divergence behaviour.
 *
 * Multi-threaded (MT) kernels share one address space, read `nthreads`
 * from the data segment, partition work by the tid register and
 * synchronize with BARRIER. Multi-execution (ME) kernels ignore tid and
 * run one instance per address space whose *data* differs slightly
 * (initData perturbs the inputs per instance, paper §3.1).
 */

#ifndef MMT_WORKLOADS_WORKLOAD_HH
#define MMT_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "iasm/program.hh"
#include "mem/memory_image.hh"

namespace mmt
{

/** One benchmark kernel. */
struct Workload
{
    std::string name;
    std::string suite; // SPEC2000 / SPLASH-2 / Parsec / SVM / MP
    bool multiExecution = false;
    /** Assembly text of the kernel. */
    std::string source;
    /**
     * Populate the data segment of one address space.
     *
     * @param image destination memory
     * @param prog the assembled program (for symbol lookups)
     * @param instance ME instance index (0 for the MT shared image)
     * @param num_contexts thread/instance count (MT kernels read their
     *        partitioning from it)
     * @param identical Limit configuration: suppress per-instance input
     *        perturbation so every context is exactly identical
     */
    std::function<void(MemoryImage &image, const Program &prog,
                       int instance, int num_contexts, bool identical)>
        initData;

    /** Uses SEND/RECV channels (implies separate address spaces). */
    bool messagePassing = false;
};

/** All 16 workloads in the paper's Table 1 order. */
const std::vector<Workload> &allWorkloads();

/**
 * Kernels compiled from the C sources in workloads/csrc/ by the mmtc
 * frontend (cc/compiler.hh): each C workload appears twice, as an MT
 * kernel ("c-<name>") whose sliced loops partition by tid, and as an ME
 * variant ("c-<name>-me") with one instance per address space and
 * per-instance input perturbation. Kept separate from allWorkloads() so
 * the paper's Table 1 suite stays at 16 apps.
 */
const std::vector<Workload> &compiledWorkloads();

/**
 * One C workload as shipped: the embedded C text plus the assembly the
 * mmtc frontend produced for it. Tests use the pair for golden
 * equivalence (interpret the C, execute the assembly, compare OUT logs).
 */
struct CompiledSource
{
    std::string name;    // base name, e.g. "saxpy"
    std::string csource; // C text (embedded at build time)
    std::string iasm;    // mmtc output, also Workload::source
};

/** The compiled C workloads, one entry per file under workloads/csrc/. */
const std::vector<CompiledSource> &compiledSources();

/**
 * Deliberately racy compiled kernels (workloads/csrc/racy_*.c), MT
 * only: negative test corpus for the race analyzer and the dynamic
 * happens-before oracle. Kept out of compiledWorkloads() so sweeps,
 * golden verification, and the lint-clean gates never see them; run
 * them with golden checking off (their results are schedule-dependent
 * by construction).
 */
const std::vector<CompiledSource> &racyCompiledSources();
const std::vector<Workload> &racyCompiledWorkloads();

/** Find a workload by name (registry or compiled); fatal if unknown. */
const Workload &findWorkload(const std::string &name);

// Suite constructors (one translation unit per suite).
std::vector<Workload> specMeWorkloads();  // ammp twolf vpr equake mcf vortex
std::vector<Workload> libsvmWorkloads();  // libsvm
std::vector<Workload> splash2Workloads(); // lu fft water-sp ocean water-ns
std::vector<Workload> parsecWorkloads();  // swaptions fluidanimate
                                          // blackscholes canneal

/**
 * Message-passing ring all-reduce (extension: the application class the
 * paper names as future work in §7). Not part of allWorkloads(): the
 * paper's Table 1 suite stays at 16 apps.
 */
const Workload &messagePassingWorkload();

/**
 * A named thread-group placement: how a workload's contexts map onto
 * the cores of a CMP. Packed reproduces the paper's single-SMT-core
 * layout (every context competes for one pipeline and can merge);
 * Spread deals contexts round-robin, trading intra-core merging for
 * private pipelines.
 */
struct PlacementScenario
{
    std::string name; // e.g. "2c-spread"
    int numCores = 1;
    Placement placement = Placement::Packed;
    bool sharedICache = false;
    std::string description;
};

/**
 * The canonical placement-scenario axis used by the `cmp` figure and
 * the CMP tests. The first entry is the single-core baseline every
 * other scenario is measured against; `1c-spread` places identically
 * to it and so doubles as a bit-identity check of the topology code.
 */
const std::vector<PlacementScenario> &placementScenarios();

} // namespace mmt

#endif // MMT_WORKLOADS_WORKLOAD_HH
