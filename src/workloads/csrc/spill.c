// spill: high register pressure without calls — twenty int scalars stay
// live into the final reduction, overflowing the sixteen caller-saved
// int registers so the allocator must spill constant-derived values.
// Hand asm never produces this pattern; it exists to stress the
// analyzer's spill-slot tracking.
int n = 32;
int a[32];

int main() {
    int c0 = 3;
    int c1 = c0 + 4;
    int c2 = c1 * 2;
    int c3 = c2 - c0;
    int c4 = c3 + 5;
    int c5 = c4 * 2 - c1;
    int c6 = c5 + c2;
    int c7 = c6 - c3;
    int c8 = c7 + c0;
    int c9 = c8 * 2 - c4;
    int c10 = c9 + c5;
    int c11 = c10 - c6;
    int c12 = c11 + c7;
    int c13 = c12 * 2 - c8;
    int c14 = c13 + c9;
    int c15 = c14 - c10;
    int c16 = c15 + c11;
    int c17 = c16 * 2 - c12;
    int c18 = c17 + c13;
    int c19 = c18 - c14;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * (c0 + c19);
    }
    out(s + c1 + c2 + c3 + c4 + c5 + c6 + c7 + c8 + c9 + c10 + c11 +
        c12 + c13 + c14 + c15 + c16 + c17 + c18);
    return 0;
}
