// window: clamp helper with internal control flow called from two
// sites with different constants — the per-context argument join
// exercises the affine base-set machinery while lo spills across the
// second call.
int n = 48;
double x[48];

int clampi(int v, int limit) {
    if (v < 0) {
        return 0;
    }
    if (v > limit) {
        return limit;
    }
    return v;
}

int main() {
    int lo = clampi(6 - 9, 48);
    int hi = clampi(40 + 16, 48);
    double s = 0.0;
    for (int i = lo; i < hi; i = i + 1) {
        s = s + x[i] * 0.5;
    }
    out(int(s) + (hi - lo));
    return 0;
}
