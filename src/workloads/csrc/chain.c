// chain: three-call helper pipeline over index math. i0/i1 live across
// later calls, so mmtc's caller-saved allocator spills them; the
// analyzer only keeps the reloads precise via stack-slot forwarding
// through per-call-site contexts.
int n = 32;
int a[32];

int stepidx(int k, int s) {
    return k * s + (s - 1);
}

int main() {
    int i0 = stepidx(2, 3);
    int i1 = stepidx(i0, 2);
    int i2 = stepidx(i1 + i0, 1);
    int m = i0 + i1 * 2 + i2;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * (m + i);
    }
    out(s + m);
    return 0;
}
