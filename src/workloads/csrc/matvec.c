// mat-vec: y = A * x with row-major A. The outer row loop slices
// (stores y[i], one row per iteration); the inner dot product is
// iteration-private and rides along unchanged inside the slice.
int n = 32;
double A[1024];
double x[32];
double y[32];

int main() {
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc = acc + A[i * n + j] * x[j];
        }
        y[i] = acc;
    }
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + y[i];
    }
    out(int(s * 100.0));
    return 0;
}
