// dot: inner product with a single +-reduction; every thread accumulates
// a private partial over its stride-T slice, the partials meet in the
// per-thread scratch array after the re-convergence barrier.
int n = 64;
double x[64];
double y[64];

int main() {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + x[i] * y[i];
    }
    out(int(s * 100.0));
    return 0;
}
