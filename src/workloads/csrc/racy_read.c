// racy-read: deliberately racy — the redundant pre-read of a[0] sits in
// the same barrier epoch as the sliced loop that rewrites a[0] (thread
// 0 owns that element), so a slow thread's read races a fast thread's
// store. Statically a race-store-load pair anchored at the sliced
// store; dynamically visible because the store changes the value.
int n = 32;
int a[32];

int main() {
    int t = a[0];
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        a[i] = a[i] * 3 + i;
    }
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i];
    }
    out(s + t);
    return 0;
}
