// saxpy: y = y + alpha * x, then a checksum reduction.
// Both loops auto-SPMDize: the update stores y[i] (disjoint slices per
// thread), the checksum is a +-reduction combined after the join.
int n = 64;
double alpha = 2.0;
double x[64];
double y[64];

int main() {
    for (int i = 0; i < n; i = i + 1) {
        y[i] = y[i] + alpha * x[i];
    }
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + y[i];
    }
    out(int(s * 1000.0));
    return 0;
}
