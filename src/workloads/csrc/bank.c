// bank: loop bounds come from a two-site address helper; lo lives
// across the second call, so the bound check and trip math in main are
// only provably uniform when the spilled reload is forwarded.
int n = 64;
int a[64];

int bankbase(int b, int w) {
    return b * w + w / 2;
}

int main() {
    int lo = bankbase(0, 8);
    int hi = bankbase(3, 8) + lo;
    int s = 0;
    for (int i = lo; i < hi; i = i + 1) {
        s = s + a[i];
    }
    out(s * (hi - lo));
    return 0;
}
