// racy-stst: deliberately racy — the redundant store a[0] = 7 and the
// sliced loop's store to the same element share one barrier epoch, so
// two different values target one word concurrently (race-store-store);
// the redundant store also races the sliced loop's loads of a
// (race-store-load). Dynamically mostly benign (the redundant stores
// all write 7 — silent after the first), which is exactly the
// static-strict / dynamic-quiet corner the gate must accept.
int n = 32;
int a[32];

int main() {
    a[0] = 7;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        a[i] = a[i] * 2 + 1;
    }
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i];
    }
    out(s);
    return 0;
}
