// mixed: double-typed spills — w0 lives across the second blend call,
// so the reload goes through an fst/fld pair and the analyzer's
// forwarding must handle FP slots bit-cast lane-wise.
int n = 32;
double x[32];

double blend(double w, double v) {
    return w * v + (1.0 - w) * 0.25;
}

int main() {
    double w0 = blend(0.75, 0.5);
    double w1 = blend(w0, 2.0);
    double g = w0 * 4.0 + w1;
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + x[i] * g;
    }
    out(int(s * 10.0) + int(g * 4.0));
    return 0;
}
