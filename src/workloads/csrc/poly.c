// poly: Horner steps through a three-site helper; h and g are reused
// after later calls, forcing spill/reload pairs whose precision
// depends on call-site contexts keeping each frame separate.
int n = 40;
int a[40];

int horner(int acc, int x, int c) {
    return acc * x + c;
}

int main() {
    int h = horner(1, 4, 3);
    int g = horner(h, 4, 7) + h;
    int f = horner(g - h, 2, 5);
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * (f + g + h);
    }
    out(s + f * 2 + g + h);
    return 0;
}
