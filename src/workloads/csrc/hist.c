// hist: bin counting, phrased loop-over-bins so the outer loop slices
// (each thread owns whole bins and stores disjoint h[b]); the inner
// scan over the samples stays inside the sliced region. The weighted
// checksum is a +-reduction.
int n = 128;
int nbins = 8;
int x[128];
int h[8];

int main() {
    for (int b = 0; b < nbins; b = b + 1) {
        int c = 0;
        for (int i = 0; i < n; i = i + 1) {
            if (x[i] % nbins == b) {
                c = c + 1;
            }
        }
        h[b] = c;
    }
    int s = 0;
    for (int b = 0; b < nbins; b = b + 1) {
        s = s + h[b] * (b + 1);
    }
    out(s);
    return 0;
}
