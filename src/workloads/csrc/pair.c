// pair: nested helpers — sumpair calls off twice, and is itself called
// from two sites, so off's contexts carry depth-2 call strings. b
// spills inside sumpair's frame and u across the second outer call.
int n = 32;
int a[32];

int off(int k) {
    return k * 2 + 1;
}

int sumpair(int b) {
    return off(b) + off(b + 3);
}

int main() {
    int u = sumpair(2);
    int v = sumpair(u) + u;
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * (u + v);
    }
    out(s + v - u);
    return 0;
}
