// prefix-sum: Hillis-Steele inclusive scan. The outer doubling loop is
// redundant (every thread runs it identically: the carried d = d * 2 is
// not a +-reduction, so it is deliberately not sliced); the two inner
// loops slice with a join barrier each, which is exactly the
// compute / barrier / copy / barrier phase structure of the hand-written
// SPLASH-2 kernels.
int n = 64;
int a[64];
int b[64];

int main() {
    int d = 1;
    while (d < n) {
        for (int i = 0; i < n; i = i + 1) {
            if (i >= d) {
                b[i] = a[i] + a[i - d];
            } else {
                b[i] = a[i];
            }
        }
        for (int i = 0; i < n; i = i + 1) {
            a[i] = b[i];
        }
        d = d * 2;
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * (i % 7 + 1);
    }
    out(s);
    return 0;
}
