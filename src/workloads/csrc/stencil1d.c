// stencil-1d: 3-point smoothing from a into b over padded interior
// [1, n]. The stencil loop reads neighbours of an array it never
// writes, so slicing is safe without any index restriction; the
// checksum reduction runs after the join barrier.
int n = 64;
double a[66];
double b[66];

int main() {
    for (int i = 1; i <= n; i = i + 1) {
        b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
    double s = 0.0;
    for (int i = 1; i <= n; i = i + 1) {
        s = s + b[i];
    }
    out(int(s * 1000.0));
    return 0;
}
