// racy-rmw: deliberately racy — the global accumulator g is
// read-modify-written by redundant (unsliced) code, so under MT every
// thread races the others on the same word. The static analyzer must
// flag the load/store pair (race-store-load) and mmtc must refuse to
// suppress it; the dynamic oracle observes the race whenever a store
// overlaps another thread's stale read.
int n = 32;
int a[32];
int g = 0;

int main() {
    for (int i = 0; i < n; i = i + 1) {
        a[i] = a[i] + i;
    }
    g = g + n;
    out(g);
    return 0;
}
