/**
 * @file
 * libsvm stand-in (multi-execution): SMO-style passes over a sample set.
 * The kernel dot products are identical across instances; perturbed
 * labels make the alpha-update branch diverge on a subset of samples.
 */

#include "workloads/workload.hh"

#include "workloads/data_init.hh"

namespace mmt
{

namespace
{

const char *libsvmSrc = R"(
.data
lsamples: .word 96
lfeat:    .word 16
lepochs:  .word 3
lx:       .space 12288
ly:       .space 768
lalpha:   .space 768
lthr:     .double 0.15
.text
main:
    la   r1, lsamples
    ld   r1, 0(r1)
    la   r2, lfeat
    ld   r2, 0(r2)
    la   r3, lepochs
    ld   r3, 0(r3)
    la   r4, lx
    la   r5, ly
    la   r6, lalpha
    la   r7, lthr
    fld  f9, 0(r7)
    fli  f7, 0.1
    li   r8, 0
svm_epoch:
    li   r9, 0
svm_sample:
    addi r10, r9, 1
    rem  r10, r10, r1
    mul  r11, r9, r2
    slli r11, r11, 3
    add  r11, r4, r11
    mul  r12, r10, r2
    slli r12, r12, 3
    add  r12, r4, r12
    fli  f1, 0.0
    li   r13, 0
svm_dot:
    fld  f2, 0(r11)
    fld  f3, 0(r12)
    fmul f2, f2, f3
    fadd f1, f1, f2
    addi r11, r11, 8
    addi r12, r12, 8
    addi r13, r13, 1
    blt  r13, r2, svm_dot
    slli r14, r9, 3
    add  r15, r5, r14
    fld  f4, 0(r15)
    fmul f5, f4, f1
    fclt r16, f5, f9
    beqz r16, svm_next
    add  r17, r6, r14
    fld  f6, 0(r17)
    fmul f8, f4, f7
    fadd f6, f6, f8
    fst  f6, 0(r17)
svm_next:
    addi r9, r9, 1
    blt  r9, r1, svm_sample
    addi r8, r8, 1
    blt  r8, r3, svm_epoch
    fli  f20, 0.0
    li   r9, 0
svm_sum:
    slli r14, r9, 3
    add  r17, r6, r14
    fld  f21, 0(r17)
    fadd f20, f20, f21
    addi r9, r9, 1
    blt  r9, r1, svm_sum
    fli  f22, 1000.0
    fmul f20, f20, f22
    fcvti r25, f20
    out  r25
    halt
)";

void
libsvmInit(MemoryImage &img, const Program &prog, int instance, int,
           bool identical)
{
    Rng rng(1007);
    wl::fillDoubles(img, prog, "lx", 96 * 16, rng, -0.25, 0.25);
    for (int i = 0; i < 96; ++i) {
        wl::setDouble(img, prog, "ly", rng.uniform() < 0.5 ? -1.0 : 1.0,
                      i);
        wl::setDouble(img, prog, "lalpha", 0.0, i);
    }
    if (!identical && instance > 0) {
        Rng prng(8000 + static_cast<std::uint64_t>(instance));
        for (int i = 0; i < 96; ++i) {
            if (prng.uniform() < 0.08) {
                // Flip the label.
                Addr a = wl::wordAddr(prog, "ly", i);
                double v = exec::toF(img.read64(a));
                wl::setDouble(img, prog, "ly", -v, i);
            }
        }
    }
}

} // namespace

std::vector<Workload>
libsvmWorkloads()
{
    return {{"libsvm", "SVM", true, libsvmSrc, libsvmInit}};
}

} // namespace mmt
