/**
 * @file
 * Compiled C workloads: the kernels under workloads/csrc/ are embedded
 * at build time (csrc_embed.hh), translated by the mmtc frontend on
 * first use, and registered both as MT kernels ("c-<name>") whose
 * auto-SPMDized loops partition by tid, and as ME variants
 * ("c-<name>-me") that run one instance per address space with
 * per-instance input perturbation — the same two execution models the
 * hand-written suites cover.
 */

#include "workloads/workload.hh"

#include "cc/compiler.hh"
#include "common/logging.hh"
#include "csrc_embed.hh"
#include "workloads/data_init.hh"

namespace mmt
{
namespace
{

/**
 * Deterministic fill + per-instance perturbation for one kernel. The
 * fill seed depends only on the kernel, so the MT image and ME instance
 * 0 see identical inputs; perturbation applies to ME instances > 0
 * unless the Limit configuration (@p identical) suppresses it.
 */
void
initCsrcData(const std::string &base, MemoryImage &img, const Program &prog,
             int instance, bool identical)
{
    bool perturb = !identical && instance > 0;
    Rng prng(9000 + static_cast<std::uint64_t>(instance));
    if (base == "saxpy") {
        Rng rng(501);
        wl::fillDoubles(img, prog, "x", 64, rng, 0.0, 1.0);
        wl::fillDoubles(img, prog, "y", 64, rng, 0.0, 1.0);
        if (perturb)
            wl::perturbDoubles(img, prog, "y", 64, prng, 0.25, 0.0, 1.0);
    } else if (base == "dot") {
        Rng rng(502);
        wl::fillDoubles(img, prog, "x", 64, rng, 0.0, 1.0);
        wl::fillDoubles(img, prog, "y", 64, rng, 0.0, 1.0);
        if (perturb)
            wl::perturbDoubles(img, prog, "x", 64, prng, 0.25, 0.0, 1.0);
    } else if (base == "stencil1d") {
        Rng rng(503);
        wl::fillDoubles(img, prog, "a", 66, rng, 0.0, 2.0);
        if (perturb)
            wl::perturbDoubles(img, prog, "a", 66, prng, 0.25, 0.0, 2.0);
    } else if (base == "hist") {
        Rng rng(504);
        wl::fillWords(img, prog, "x", 128, rng, 1 << 20);
        if (perturb)
            wl::perturbWords(img, prog, "x", 128, prng, 0.25, 1 << 20);
    } else if (base == "matvec") {
        Rng rng(505);
        wl::fillDoubles(img, prog, "A", 1024, rng, 0.0, 1.0);
        wl::fillDoubles(img, prog, "x", 32, rng, 0.0, 1.0);
        if (perturb)
            wl::perturbDoubles(img, prog, "x", 32, prng, 0.25, 0.0, 1.0);
    } else if (base == "psum") {
        Rng rng(506);
        wl::fillWords(img, prog, "a", 64, rng, 512);
        if (perturb)
            wl::perturbWords(img, prog, "a", 64, prng, 0.25, 512);
    } else if (base == "chain") {
        Rng rng(507);
        wl::fillWords(img, prog, "a", 32, rng, 256);
        if (perturb)
            wl::perturbWords(img, prog, "a", 32, prng, 0.25, 256);
    } else if (base == "spill") {
        Rng rng(508);
        wl::fillWords(img, prog, "a", 32, rng, 128);
        if (perturb)
            wl::perturbWords(img, prog, "a", 32, prng, 0.25, 128);
    } else if (base == "poly") {
        Rng rng(509);
        wl::fillWords(img, prog, "a", 40, rng, 64);
        if (perturb)
            wl::perturbWords(img, prog, "a", 40, prng, 0.25, 64);
    } else if (base == "bank") {
        Rng rng(510);
        wl::fillWords(img, prog, "a", 64, rng, 1024);
        if (perturb)
            wl::perturbWords(img, prog, "a", 64, prng, 0.25, 1024);
    } else if (base == "window") {
        Rng rng(511);
        wl::fillDoubles(img, prog, "x", 48, rng, 0.0, 2.0);
        if (perturb)
            wl::perturbDoubles(img, prog, "x", 48, prng, 0.25, 0.0, 2.0);
    } else if (base == "pair") {
        Rng rng(512);
        wl::fillWords(img, prog, "a", 32, rng, 512);
        if (perturb)
            wl::perturbWords(img, prog, "a", 32, prng, 0.25, 512);
    } else if (base == "mixed") {
        Rng rng(513);
        wl::fillDoubles(img, prog, "x", 32, rng, 0.0, 1.0);
        if (perturb)
            wl::perturbDoubles(img, prog, "x", 32, prng, 0.25, 0.0, 1.0);
    } else if (base == "racy_rmw" || base == "racy_read" ||
               base == "racy_stst") {
        Rng rng(514);
        wl::fillWords(img, prog, "a", 32, rng, 256);
    } else {
        fatal("initCsrcData: unknown compiled workload '%s'", base.c_str());
    }
}

Workload
makeCompiled(const CompiledSource &src, bool multi_execution)
{
    Workload w;
    w.name = "c-" + src.name + (multi_execution ? "-me" : "");
    w.suite = "CSRC";
    w.multiExecution = multi_execution;
    w.source = src.iasm;
    std::string base = src.name;
    w.initData = [base, multi_execution](MemoryImage &img,
                                         const Program &prog, int instance,
                                         int num_contexts, bool identical) {
        // ME instances are whole independent programs, so the sliced
        // loops must each run their full range: nthreads stays 1.
        wl::setWord(img, prog, cc::kNumThreadsSym,
                    static_cast<std::uint64_t>(
                        multi_execution ? 1 : num_contexts));
        initCsrcData(base, img, prog, instance, identical);
    };
    return w;
}

} // namespace

const std::vector<CompiledSource> &
compiledSources()
{
    static const std::vector<CompiledSource> sources = [] {
        std::vector<CompiledSource> v;
        auto add = [&](const char *name, const char *text) {
            CompiledSource s;
            s.name = name;
            s.csource = text;
            s.iasm = cc::compile(text, name).iasm;
            v.push_back(std::move(s));
        };
        add("saxpy", csrc::saxpy_c);
        add("dot", csrc::dot_c);
        add("stencil1d", csrc::stencil1d_c);
        add("hist", csrc::hist_c);
        add("matvec", csrc::matvec_c);
        add("psum", csrc::psum_c);
        // Analyzer stress corpus: helper calls and register pressure
        // produce the caller-saved spill patterns hand asm never has.
        add("chain", csrc::chain_c);
        add("spill", csrc::spill_c);
        add("poly", csrc::poly_c);
        add("bank", csrc::bank_c);
        add("window", csrc::window_c);
        add("pair", csrc::pair_c);
        add("mixed", csrc::mixed_c);
        return v;
    }();
    return sources;
}

const std::vector<Workload> &
compiledWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        for (const CompiledSource &s : compiledSources()) {
            v.push_back(makeCompiled(s, false));
            v.push_back(makeCompiled(s, true));
        }
        return v;
    }();
    return all;
}

const std::vector<CompiledSource> &
racyCompiledSources()
{
    static const std::vector<CompiledSource> sources = [] {
        std::vector<CompiledSource> v;
        auto add = [&](const char *name, const char *text) {
            CompiledSource s;
            s.name = name;
            s.csource = text;
            s.iasm = cc::compile(text, name).iasm;
            v.push_back(std::move(s));
        };
        add("racy_rmw", csrc::racy_rmw_c);
        add("racy_read", csrc::racy_read_c);
        add("racy_stst", csrc::racy_stst_c);
        return v;
    }();
    return sources;
}

const std::vector<Workload> &
racyCompiledWorkloads()
{
    // MT only: the races are cross-thread conflicts on the shared
    // image; an ME variant would be race-free (and pointless).
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        for (const CompiledSource &s : racyCompiledSources())
            v.push_back(makeCompiled(s, false));
        return v;
    }();
    return all;
}

} // namespace mmt
