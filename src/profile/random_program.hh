/**
 * @file
 * Directed-random SPMD program generator for differential testing, in
 * the spirit of gem5's random testers.
 *
 * Programs are generated deterministically from a seed and are
 * guaranteed to terminate (all loops have bounded literal trip counts)
 * and to be race-free (threads write only their own scratch region;
 * shared data is read-only). The generated kernels mix integer and FP
 * arithmetic, shared and private loads/stores, data-dependent forward
 * hammocks, nested bounded loops, and (for MT programs) top-level
 * barriers — i.e. every control/data shape the MMT mechanisms must
 * handle: divergence, re-merge, splitting, LVIP verification and
 * register merging.
 *
 * tests/test_random_programs.cc sweeps seeds and requires the timing
 * pipeline's architected results to match the functional interpreter
 * under every configuration.
 */

#ifndef MMT_PROFILE_RANDOM_PROGRAM_HH
#define MMT_PROFILE_RANDOM_PROGRAM_HH

#include <cstdint>
#include <string>

#include "workloads/workload.hh"

namespace mmt
{

/** Generation knobs. */
struct RandomProgramParams
{
    std::uint64_t seed = 1;
    bool multiExecution = false;
    /** Top-level fragments to emit. */
    int fragments = 40;
    /** Shared read-only words. */
    int sharedWords = 64;
    /** Private scratch words per thread. */
    int privateWords = 64;
    /** Probability weights (relative). */
    int weightIntAlu = 30;
    int weightFpAlu = 20;
    int weightSharedLoad = 12;
    int weightPrivateMem = 12;
    int weightHammock = 12;
    int weightLoop = 8;
    int weightBarrier = 4; // MT only
    int weightHint = 4;    // timing-only mergehint
    /** Fraction of shared words perturbed per ME instance. */
    double mePerturbFraction = 0.1;
};

/**
 * Generate a self-contained Workload (source + initData) from @p params.
 * The workload ends by emitting a checksum of the register pool and the
 * private scratch region via OUT, so any architected-state corruption is
 * observable.
 */
Workload generateRandomWorkload(const RandomProgramParams &params);

} // namespace mmt

#endif // MMT_PROFILE_RANDOM_PROGRAM_HH
