#include "profile/random_program.hh"

#include <sstream>

#include "common/random.hh"
#include "workloads/data_init.hh"

namespace mmt
{

namespace
{

/**
 * Emitter state. Register conventions inside generated programs:
 *   r1..r15   integer working pool (freely clobbered)
 *   f1..f15   fp working pool
 *   r16..r19  loop counters (one per nesting level)
 *   r20       private scratch base (priv + tid*privateWords*8)
 *   r21       shared base
 *   r22       scratch for addressing
 *   r24       checksum accumulator
 */
class Generator
{
  public:
    explicit Generator(const RandomProgramParams &params)
        : p_(params), rng_(params.seed * 0x9e3779b97f4a7c15ull + 1)
    {
    }

    std::string
    run()
    {
        prologue();
        for (int i = 0; i < p_.fragments; ++i)
            fragment(/*depth=*/0);
        epilogue();
        return os_.str();
    }

  private:
    int
    pick(int bound)
    {
        return static_cast<int>(rng_.below(static_cast<std::uint64_t>(
            bound)));
    }

    std::string
    ir(int lo = 1, int hi = 15)
    {
        return "r" + std::to_string(lo + pick(hi - lo + 1));
    }

    std::string
    fr()
    {
        return "f" + std::to_string(1 + pick(15));
    }

    std::string
    label(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(labelId_++);
    }

    void
    emit(const std::string &line)
    {
        os_ << "    " << line << "\n";
    }

    void
    prologue()
    {
        os_ << ".data\n";
        os_ << "nthreads: .word 1\n";
        os_ << "shared:   .space " << p_.sharedWords * 8 << "\n";
        os_ << "priv:     .space " << p_.privateWords * 8 * maxThreads
            << "\n";
        os_ << ".text\n";
        os_ << "main:\n";
        emit("la   r21, shared");
        emit("la   r20, priv");
        // Private base: priv + tid * privateWords * 8.
        emit("li   r22, " + std::to_string(p_.privateWords * 8));
        emit("mul  r22, r22, tid");
        emit("add  r20, r20, r22");
        // Seed the integer pool with a mix of tid-dependent and shared
        // values so both split and merged instances appear immediately.
        for (int r = 1; r <= 15; ++r) {
            switch (pick(3)) {
              case 0:
                emit("li   r" + std::to_string(r) + ", " +
                     std::to_string(pick(1 << 20)));
                break;
              case 1:
                emit("addi r" + std::to_string(r) + ", tid, " +
                     std::to_string(pick(64)));
                break;
              default:
                sharedLoadInto("r" + std::to_string(r));
                break;
            }
        }
        for (int f = 1; f <= 15; ++f) {
            emit("fcvt f" + std::to_string(f) + ", r" +
                 std::to_string(1 + pick(15)));
        }
        emit("li   r24, 0");
    }

    void
    sharedLoadInto(const std::string &rd)
    {
        // rd = shared[(rs & mask)]
        std::string rs = ir();
        emit("andi r22, " + rs + ", " +
             std::to_string((p_.sharedWords - 1) & ~0));
        emit("slli r22, r22, 3");
        emit("add  r22, r21, r22");
        emit("ld   " + rd + ", 0(r22)");
    }

    void
    intAlu()
    {
        static const char *ops2[] = {"add", "sub", "mul", "and", "or",
                                     "xor", "slt", "sltu"};
        static const char *opsi[] = {"addi", "andi", "ori", "xori",
                                     "slti"};
        if (pick(2) == 0) {
            emit(std::string(ops2[pick(8)]) + " " + ir() + ", " + ir() +
                 ", " + ir());
        } else {
            emit(std::string(opsi[pick(5)]) + " " + ir() + ", " + ir() +
                 ", " + std::to_string(pick(4096) - 2048));
        }
        // Shifts with literal amounts stay well-defined.
        if (pick(3) == 0) {
            emit(std::string(pick(2) ? "slli" : "srli") + " " + ir() +
                 ", " + ir() + ", " + std::to_string(pick(24)));
        }
    }

    void
    fpAlu()
    {
        static const char *ops2[] = {"fadd", "fsub", "fmul", "fmin",
                                     "fmax"};
        static const char *ops1[] = {"fabs", "fneg", "fmv"};
        switch (pick(4)) {
          case 0:
          case 1:
            emit(std::string(ops2[pick(5)]) + " " + fr() + ", " + fr() +
                 ", " + fr());
            break;
          case 2:
            emit(std::string(ops1[pick(3)]) + " " + fr() + ", " + fr());
            break;
          default:
            // Keep values finite-ish occasionally via conversion.
            emit("fcvt " + fr() + ", " + ir());
            break;
        }
        if (pick(4) == 0)
            emit("fclt " + ir() + ", " + fr() + ", " + fr());
    }

    void
    privateMem()
    {
        // Address: priv_base + (rs & (P-1)) * 8 — always within the
        // thread's own scratch region, so MT programs stay race-free.
        std::string rs = ir();
        emit("andi r22, " + rs + ", " +
             std::to_string(p_.privateWords - 1));
        emit("slli r22, r22, 3");
        emit("add  r22, r20, r22");
        if (pick(2)) {
            emit("st   " + ir() + ", 0(r22)");
        } else {
            emit("ld   " + ir() + ", 0(r22)");
        }
    }

    void
    hammock(int depth)
    {
        std::string skip = label("skip");
        std::string rs = ir();
        switch (pick(3)) {
          case 0:
            emit("beqz " + rs + ", " + skip);
            break;
          case 1:
            emit("bltz " + rs + ", " + skip);
            break;
          default:
            emit("andi r22, " + rs + ", 1");
            emit("bnez r22, " + skip);
            break;
        }
        int body = 1 + pick(3);
        for (int i = 0; i < body; ++i)
            simpleFragment(depth);
        os_ << skip << ":\n";
    }

    void
    loop(int depth)
    {
        std::string counter = "r" + std::to_string(16 + depth);
        std::string head = label("loop");
        int trips = 2 + pick(5);
        emit("li   " + counter + ", " + std::to_string(trips));
        os_ << head << ":\n";
        int body = 2 + pick(4);
        for (int i = 0; i < body; ++i)
            fragment(depth + 1);
        emit("addi " + counter + ", " + counter + ", -1");
        emit("bnez " + counter + ", " + head);
    }

    /** Fragment kinds legal anywhere (no control). */
    void
    simpleFragment(int depth)
    {
        (void)depth;
        int total = p_.weightIntAlu + p_.weightFpAlu +
                    p_.weightSharedLoad + p_.weightPrivateMem;
        int roll = pick(total);
        if ((roll -= p_.weightIntAlu) < 0) {
            intAlu();
        } else if ((roll -= p_.weightFpAlu) < 0) {
            fpAlu();
        } else if ((roll -= p_.weightSharedLoad) < 0) {
            sharedLoadInto(ir());
        } else {
            privateMem();
        }
    }

    void
    fragment(int depth)
    {
        int total = p_.weightIntAlu + p_.weightFpAlu +
                    p_.weightSharedLoad + p_.weightPrivateMem +
                    p_.weightHammock;
        bool allow_loop = depth < 2;
        bool allow_barrier = depth == 0 && !p_.multiExecution;
        if (allow_loop)
            total += p_.weightLoop;
        if (allow_barrier)
            total += p_.weightBarrier;
        total += p_.weightHint;

        int roll = pick(total);
        if ((roll -= p_.weightIntAlu) < 0) {
            intAlu();
        } else if ((roll -= p_.weightFpAlu) < 0) {
            fpAlu();
        } else if ((roll -= p_.weightSharedLoad) < 0) {
            sharedLoadInto(ir());
        } else if ((roll -= p_.weightPrivateMem) < 0) {
            privateMem();
        } else if ((roll -= p_.weightHammock) < 0) {
            hammock(depth);
        } else if (allow_loop && (roll -= p_.weightLoop) < 0) {
            loop(depth);
        } else if (allow_barrier && (roll -= p_.weightBarrier) < 0) {
            emit("barrier");
        } else {
            emit("mergehint");
        }
    }

    void
    epilogue()
    {
        // Fold the register pool into the checksum.
        for (int r = 1; r <= 15; ++r) {
            emit("xor  r24, r24, r" + std::to_string(r));
            emit("li   r22, 1442695040888963407");
            emit("mul  r24, r24, r22");
        }
        for (int f = 1; f <= 15; ++f) {
            emit("fcvti r22, f" + std::to_string(f));
            emit("add  r24, r24, r22");
        }
        // Fold the private scratch region.
        std::string head = label("cksum");
        emit("li   r16, " + std::to_string(p_.privateWords));
        emit("mv   r22, r20");
        os_ << head << ":\n";
        emit("ld   r23, 0(r22)");
        emit("xor  r24, r24, r23");
        emit("addi r22, r22, 8");
        emit("addi r16, r16, -1");
        emit("bnez r16, " + head);
        emit("out  r24");
        if (!p_.multiExecution)
            emit("barrier");
        emit("halt");
    }

    RandomProgramParams p_;
    Rng rng_;
    std::ostringstream os_;
    int labelId_ = 0;
};

} // namespace

Workload
generateRandomWorkload(const RandomProgramParams &params)
{
    Workload w;
    w.name = std::string(params.multiExecution ? "rand-me-" : "rand-mt-") +
             std::to_string(params.seed);
    w.suite = "random";
    w.multiExecution = params.multiExecution;
    w.source = Generator(params).run();

    RandomProgramParams p = params;
    w.initData = [p](MemoryImage &img, const Program &prog, int instance,
                     int num_contexts, bool identical) {
        wl::setWord(img, prog, "nthreads",
                    static_cast<std::uint64_t>(num_contexts));
        Rng rng(p.seed ^ 0xabcdef12345ull);
        for (int i = 0; i < p.sharedWords; ++i)
            wl::setWord(img, prog, "shared", rng.below(1u << 24), i);
        for (int i = 0; i < p.privateWords * maxThreads; ++i)
            wl::setWord(img, prog, "priv", 0, i);
        if (p.multiExecution && !identical && instance > 0) {
            Rng prng(p.seed * 77 + static_cast<std::uint64_t>(instance));
            wl::perturbWords(img, prog, "shared", p.sharedWords, prng,
                             p.mePerturbFraction, 1u << 24);
        }
    };
    return w;
}

} // namespace mmt
