#include "profile/tracer.hh"

#include "common/logging.hh"

namespace mmt
{

FunctionalCpu::FunctionalCpu(const Program *program,
                             std::vector<MemoryImage *> images,
                             bool multi_execution, bool force_tid_zero)
    : program_(program)
{
    int n = static_cast<int>(images.size());
    threads_.resize(static_cast<std::size_t>(n));
    for (ThreadId t = 0; t < n; ++t) {
        FuncThread &ft = threads_[t];
        ft.image = images[t];
        ft.pc = program->entry;
        ft.regs[regSp] = defaultStackTop;
        if (!multi_execution) {
            ft.regs[regSp] = defaultStackTop -
                             static_cast<Addr>(t) * defaultStackBytes;
            ft.regs[regTid] =
                force_tid_zero ? 0 : static_cast<RegVal>(t);
        }
    }
}

bool
FunctionalCpu::step(ThreadId tid)
{
    FuncThread &ft = threads_[tid];
    if (ft.halted || ft.atBarrier)
        return false;

    mmt_assert(program_->validPc(ft.pc), "functional cpu at bad pc %#lx",
               static_cast<unsigned long>(ft.pc));
    const Instruction &inst = program_->fetch(ft.pc);
    const InstInfo &info = inst.info();
    Addr pc = ft.pc;

    TraceRecord rec;
    rec.pc = pc;
    rec.op = inst.op;
    rec.readsA = info.readsSrc1;
    rec.readsB = info.readsSrc2;
    rec.writesDest = info.writesDest && inst.rd != regZero;
    rec.isLoad = inst.isLoad();

    RegVal a = info.readsSrc1 ? ft.regs[inst.rs1] : 0;
    RegVal b = info.readsSrc2 ? ft.regs[inst.rs2] : 0;
    rec.srcA = a;
    rec.srcB = b;

    Addr next = pc + instBytes;
    RegVal dest = 0;
    (void)b;

    if (inst.isLoad()) {
        rec.effAddr = exec::effectiveAddr(inst, a);
        dest = ft.image->read64(rec.effAddr);
    } else if (inst.isStore()) {
        rec.effAddr = exec::effectiveAddr(inst, a);
        ft.image->write64(rec.effAddr, b);
    } else if (inst.isControl()) {
        BranchOut out = exec::evalBranch(inst, a, b, pc);
        rec.isTakenBranch = out.taken;
        if (out.taken)
            next = out.target;
        if (info.writesDest)
            dest = exec::evalAlu(inst, a, b, pc);
    } else if (inst.isSyscall()) {
        switch (inst.op) {
          case Opcode::HALT:
            ft.halted = true;
            // A halting thread may release a barrier the others wait at.
            releaseBarrierIfReady();
            break;
          case Opcode::BARRIER:
            ft.atBarrier = true;
            break;
          case Opcode::OUT:
            ft.output.push_back(a);
            break;
          case Opcode::SEND:
            mmt_assert(net_ != nullptr, "SEND without a message network");
            net_->send(tid, static_cast<ThreadId>(a & 3), b);
            break;
          case Opcode::MERGEHINT:
            break; // timing-only hint
          case Opcode::RECV: {
            mmt_assert(net_ != nullptr, "RECV without a message network");
            ThreadId from = static_cast<ThreadId>(a & 3);
            if (!net_->canRecv(from, tid))
                return false; // blocked; retried by run()
            dest = net_->recv(from, tid);
            break;
          }
          default:
            panic("unhandled syscall");
        }
    } else if (info.writesDest) {
        dest = exec::evalAlu(inst, a, b, pc);
    }

    if (rec.writesDest) {
        ft.regs[inst.rd] = dest;
        rec.destVal = dest;
    }

    ft.pc = next;
    ++ft.executed;
    if (trace_)
        trace_(tid, rec);
    if (ft.atBarrier)
        releaseBarrierIfReady();
    return true;
}

void
FunctionalCpu::releaseBarrierIfReady()
{
    bool any = false;
    for (const FuncThread &ft : threads_) {
        if (ft.halted)
            continue;
        if (!ft.atBarrier)
            return;
        any = true;
    }
    if (!any)
        return;
    for (FuncThread &ft : threads_)
        ft.atBarrier = false;
}

void
FunctionalCpu::run(std::uint64_t max_insts_per_thread)
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (ThreadId t = 0; t < numThreads(); ++t) {
            // Interleave at a coarse quantum; workloads are race-free.
            for (int k = 0; k < 1000; ++k) {
                if (!step(t))
                    break;
                progress = true;
            }
            if (threads_[t].executed > max_insts_per_thread)
                fatal("functional thread %d exceeded %llu instructions",
                      t,
                      static_cast<unsigned long long>(
                          max_insts_per_thread));
        }
    }
    for (ThreadId t = 0; t < numThreads(); ++t) {
        if (!threads_[t].halted)
            fatal("functional cpu finished with thread %d not halted "
                  "(barrier or receive deadlock?)", t);
    }
}

} // namespace mmt
