/**
 * @file
 * FunctionalCpu — a plain in-order interpreter for MMT-RISC programs.
 *
 * Two uses:
 *  1. Golden model: tests run every workload through both the pipeline
 *     and this interpreter and require identical final architected state,
 *     memory, and OUT logs (DESIGN.md §7).
 *  2. Tracer: the profiling experiments (paper §3.2/§3.3, Figures 1-2)
 *     capture per-thread instruction traces via a callback.
 *
 * This is deliberately an independent re-implementation of the execution
 * semantics used by the pipeline's fetch stage, sharing only the
 * low-level exec:: helpers.
 */

#ifndef MMT_PROFILE_TRACER_HH
#define MMT_PROFILE_TRACER_HH

#include <array>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "iasm/program.hh"
#include "isa/exec.hh"
#include "core/msg_net.hh"
#include "mem/memory_image.hh"

namespace mmt
{

/** One executed instruction, as seen by the tracer. */
struct TraceRecord
{
    Addr pc = 0;
    Opcode op = Opcode::NOP;
    RegVal srcA = 0;
    RegVal srcB = 0;
    bool readsA = false;
    bool readsB = false;
    RegVal destVal = 0;
    bool writesDest = false;
    bool isTakenBranch = false;
    Addr effAddr = 0;
    bool isLoad = false;
};

/** Architectural state of one interpreted thread. */
struct FuncThread
{
    std::array<RegVal, numArchRegs> regs{};
    Addr pc = 0;
    MemoryImage *image = nullptr;
    bool halted = false;
    bool atBarrier = false;
    std::vector<RegVal> output;
    std::uint64_t executed = 0;
};

/** Round-robin multi-threaded interpreter with barrier support. */
class FunctionalCpu
{
  public:
    using TraceFn = std::function<void(ThreadId, const TraceRecord &)>;

    /**
     * @param program shared binary
     * @param images one per thread (same pointer for shared-memory MT)
     * @param multi_execution ME register conventions (no sp/tid skew)
     * @param force_tid_zero Limit configuration: every thread gets tid 0
     */
    FunctionalCpu(const Program *program,
                  std::vector<MemoryImage *> images, bool multi_execution,
                  bool force_tid_zero = false);

    /** Attach a message network (required to execute SEND/RECV). */
    void setMessageNetwork(MessageNetwork *net) { net_ = net; }

    /** Install a per-instruction trace callback (may be null). */
    void setTrace(TraceFn fn) { trace_ = std::move(fn); }

    /**
     * Run until every thread halts.
     * @param max_insts_per_thread safety net; fatal when exceeded
     */
    void run(std::uint64_t max_insts_per_thread = 50'000'000);

    /** Execute one instruction of @p tid.
     *  @return false if the thread is halted or blocked at a barrier */
    bool step(ThreadId tid);

    int numThreads() const { return static_cast<int>(threads_.size()); }
    const FuncThread &thread(ThreadId tid) const { return threads_[tid]; }
    FuncThread &thread(ThreadId tid) { return threads_[tid]; }

  private:
    void releaseBarrierIfReady();

    const Program *program_;
    std::vector<FuncThread> threads_;
    TraceFn trace_;
    MessageNetwork *net_ = nullptr;
};

} // namespace mmt

#endif // MMT_PROFILE_TRACER_HH
