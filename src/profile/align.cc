#include "profile/align.hh"

#include <algorithm>

namespace mmt
{

double
DivergenceStats::fractionWithin(std::uint64_t limit) const
{
    if (lengthDiffs.empty())
        return 0.0;
    std::uint64_t within = 0;
    for (std::uint64_t d : lengthDiffs) {
        if (d <= limit)
            ++within;
    }
    return static_cast<double>(within) /
           static_cast<double>(lengthDiffs.size());
}

bool
executeIdentical(const TraceRecord &x, const TraceRecord &y)
{
    if (x.pc != y.pc || x.op != y.op)
        return false;
    if (x.readsA && x.srcA != y.srcA)
        return false;
    if (x.readsB && x.srcB != y.srcB)
        return false;
    if (x.isLoad && x.destVal != y.destVal)
        return false;
    return true;
}

namespace
{

/** Count taken branches in records [from, to) of @p tr. */
std::uint64_t
takenBranches(const std::vector<TraceRecord> &tr, std::size_t from,
              std::size_t to)
{
    std::uint64_t n = 0;
    for (std::size_t i = from; i < to && i < tr.size(); ++i) {
        if (tr[i].isTakenBranch)
            ++n;
    }
    return n;
}

/** Do traces re-align at (i, j) for at least `confirm` records? */
bool
confirmed(const std::vector<TraceRecord> &a,
          const std::vector<TraceRecord> &b, std::size_t i, std::size_t j,
          int confirm)
{
    for (int k = 0; k < confirm; ++k) {
        std::size_t ia = i + static_cast<std::size_t>(k);
        std::size_t jb = j + static_cast<std::size_t>(k);
        if (ia >= a.size() || jb >= b.size())
            return i < a.size() && j < b.size(); // tail: accept short match
        if (a[ia].pc != b[jb].pc)
            return false;
    }
    return true;
}

} // namespace

SharingProfile
alignTraces(const std::vector<TraceRecord> &a,
            const std::vector<TraceRecord> &b,
            DivergenceStats *divergences, const AlignParams &params)
{
    SharingProfile prof;
    prof.total = a.size() + b.size();

    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].pc == b[j].pc) {
            if (executeIdentical(a[i], b[j]))
                prof.execIdentical += 2;
            else
                prof.fetchIdentical += 2;
            ++i;
            ++j;
            continue;
        }

        // Divergence: find the minimal combined skip that re-syncs.
        std::size_t best_i = 0;
        std::size_t best_j = 0;
        bool found = false;
        int limit = 2 * params.window;
        for (int d = 1; d <= limit && !found; ++d) {
            for (int k = std::max(0, d - params.window);
                 k <= std::min(d, params.window); ++k) {
                std::size_t ii = i + static_cast<std::size_t>(k);
                std::size_t jj = j + static_cast<std::size_t>(d - k);
                if (ii >= a.size() || jj >= b.size())
                    continue;
                if (a[ii].pc == b[jj].pc &&
                    confirmed(a, b, ii, jj, params.confirm)) {
                    best_i = ii;
                    best_j = jj;
                    found = true;
                    break;
                }
            }
        }
        if (!found) {
            // No resync within the window: consume the rest divergent.
            best_i = a.size();
            best_j = b.size();
        }

        prof.notIdentical += (best_i - i) + (best_j - j);
        if (divergences) {
            std::uint64_t ta = takenBranches(a, i, best_i);
            std::uint64_t tb = takenBranches(b, j, best_j);
            divergences->lengthDiffs.push_back(ta > tb ? ta - tb
                                                       : tb - ta);
        }
        i = best_i;
        j = best_j;
    }

    // Unmatched tails are divergent instructions.
    prof.notIdentical += (a.size() - i) + (b.size() - j);
    return prof;
}

} // namespace mmt
