/**
 * @file
 * Trace alignment for the paper's profiling experiments (§3.2, §3.3).
 *
 * Figure 1 asks: of all executed instructions, how many are
 * *fetch-identical* (the same instruction executed by both threads at the
 * same point of the common subtraces) and how many of those are
 * *execute-identical* (identical operand values too)? Figure 2 asks: when
 * execution paths diverge, how different are the divergent path lengths,
 * measured in taken branches?
 *
 * We find common subtraces with a greedy windowed alignment: advance both
 * traces while PCs match; on a mismatch, search the smallest combined
 * skip (i+j) such that the traces re-align for at least `confirm`
 * consecutive records.
 */

#ifndef MMT_PROFILE_ALIGN_HH
#define MMT_PROFILE_ALIGN_HH

#include <cstdint>
#include <vector>

#include "profile/tracer.hh"

namespace mmt
{

/** Result of aligning two traces (counts in thread-instructions). */
struct SharingProfile
{
    std::uint64_t total = 0;
    std::uint64_t fetchIdentical = 0; // NOT including execute-identical
    std::uint64_t execIdentical = 0;
    std::uint64_t notIdentical = 0;

    double fracFetch() const
    {
        return total ? double(fetchIdentical) / double(total) : 0.0;
    }
    double fracExec() const
    {
        return total ? double(execIdentical) / double(total) : 0.0;
    }
    double fracNot() const
    {
        return total ? double(notIdentical) / double(total) : 0.0;
    }
};

/** Alignment tuning knobs. */
struct AlignParams
{
    int window = 256;  // max records skipped per trace per divergence
    int confirm = 4;   // consecutive PC matches to accept a resync
};

/** Divergence-length differences in taken branches (Figure 2 samples). */
struct DivergenceStats
{
    /** One |len(pathA) - len(pathB)| sample per divergence. */
    std::vector<std::uint64_t> lengthDiffs;

    /** Fraction of divergences with difference <= @p limit. */
    double fractionWithin(std::uint64_t limit) const;
};

/**
 * Align two traces and classify every instruction.
 *
 * @param a thread 0's trace
 * @param b thread 1's trace
 * @param divergences optional out-param collecting Figure 2 samples
 */
SharingProfile alignTraces(const std::vector<TraceRecord> &a,
                           const std::vector<TraceRecord> &b,
                           DivergenceStats *divergences = nullptr,
                           const AlignParams &params = AlignParams());

/** True if the two records are execute-identical (same PC and operand
 *  values; loads additionally require the same loaded value). */
bool executeIdentical(const TraceRecord &x, const TraceRecord &y);

} // namespace mmt

#endif // MMT_PROFILE_ALIGN_HH
