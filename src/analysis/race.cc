#include "analysis/race.hh"

#include <algorithm>
#include <bit>
#include <map>

namespace mmt
{
namespace analysis
{

const char *const kRuleRaceStoreStore = "race-store-store";
const char *const kRuleRaceStoreLoad = "race-store-load";
const char *const kRuleUnguardedReduction = "unguarded-reduction";

namespace
{

constexpr std::uint8_t kAllThreads =
    static_cast<std::uint8_t>((1u << maxThreads) - 1);

/** Prefix of the mmtc reduction scratch symbols. */
constexpr const char *kRedPrefix = "__mmtc_red";

/** [lo, hi) extent of one reduction scratch array in the data segment. */
struct RedRegion
{
    Addr lo = 0;
    Addr hi = 0;
};

/** Two 8-byte accesses at @p a and @p b overlap. */
bool
rangesOverlap(RegVal a, RegVal b)
{
    return a - b + 7 < 15; // unsigned: |a - b| < 8
}

/**
 * Per-thread address candidates of one access: exact values when the
 * lattice pins them (Known lanes, non-heuristic Affine with a
 * surviving base set), otherwise unbounded (n == 0).
 */
int
addrCandidates(const AbsVal &base, RegVal imm, int t,
               RegVal out[AbsVal::kMaxBases])
{
    if (base.kind == AbsVal::Kind::Known) {
        out[0] = base.v[(std::size_t)t] + imm;
        return 1;
    }
    if (base.kind == AbsVal::Kind::Affine && !base.heuristic &&
        base.nBases > 0) {
        for (int i = 0; i < base.nBases; ++i)
            out[i] = base.bases[(std::size_t)i] +
                     static_cast<RegVal>(t) * base.stride + imm;
        return base.nBases;
    }
    return 0;
}

/**
 * Alignment-residue facts of thread @p t's address: every admissible
 * address ≡ r (mod 2^k). k == 0 means no fact (proof unavailable).
 */
void
addrResidue(const AbsVal &base, RegVal imm, int t, int *k_out,
            RegVal *r_out)
{
    *k_out = 0;
    *r_out = 0;
    if (base.kind == AbsVal::Kind::Known) {
        *k_out = 64;
        *r_out = base.v[(std::size_t)t] + imm;
        return;
    }
    if (base.kind == AbsVal::Kind::Affine && !base.heuristic &&
        base.baseAlign > 0) {
        *k_out = base.baseAlign;
        *r_out = (base.baseRes + static_cast<RegVal>(t) * base.stride +
                  imm) &
                 alignMask(base.baseAlign);
    }
}

class RaceAnalyzer
{
  public:
    RaceAnalyzer(const Cfg &cfg, const SharingResult &sharing,
                 const SharingOptions &opt)
        : cfg_(cfg), prog_(cfg.program()), sh_(sharing), opt_(opt)
    {
    }

    RaceResult
    run()
    {
        RaceResult res;
        if (opt_.multiExecution)
            return res; // private address spaces: nothing shared
        res.checked = true;
        const auto &nodes = cfg_.ctxNodes();
        if (nodes.empty())
            return res;
        res.nodeEpochs.assign(nodes.size(), EpochSet());
        res.nodeMayExec.assign(nodes.size(), 0);
        computeEpochs(res);
        computeMayExec(res);
        collectRedRegions();
        collectAccesses(res);
        checkPairs(res);
        return res;
    }

  private:
    /** Number of BARRIERs in block @p b strictly before instruction
     *  index @p i (shifts the node-entry epoch set to the access). */
    EpochSet
    epochsAt(const EpochSet &entry, int block, int i) const
    {
        EpochSet e = entry;
        const BasicBlock &blk = cfg_.blocks()[(std::size_t)block];
        for (int j = blk.first; j < i; ++j) {
            if (prog_.code[(std::size_t)j].op == Opcode::BARRIER)
                e = e.shifted();
        }
        return e;
    }

    void
    computeEpochs(RaceResult &res)
    {
        const auto &nodes = cfg_.ctxNodes();
        int entry = cfg_.ctxEntry();
        res.nodeEpochs[(std::size_t)entry].bits = 1; // epoch 0
        std::vector<bool> queued(nodes.size(), false);
        std::vector<int> work{entry};
        queued[(std::size_t)entry] = true;
        while (!work.empty()) {
            int v = work.back();
            work.pop_back();
            queued[(std::size_t)v] = false;
            const CtxNode &node = nodes[(std::size_t)v];
            const BasicBlock &blk =
                cfg_.blocks()[(std::size_t)node.block];
            EpochSet out = epochsAt(res.nodeEpochs[(std::size_t)v],
                                    node.block, blk.last + 1);
            for (int s : node.succs) {
                if (res.nodeEpochs[(std::size_t)s].join(out) &&
                    !queued[(std::size_t)s]) {
                    queued[(std::size_t)s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    void
    computeMayExec(RaceResult &res)
    {
        const auto &nodes = cfg_.ctxNodes();
        int entry = cfg_.ctxEntry();
        res.nodeMayExec[(std::size_t)entry] = kAllThreads;
        std::vector<bool> queued(nodes.size(), false);
        std::vector<int> work{entry};
        queued[(std::size_t)entry] = true;
        while (!work.empty()) {
            int v = work.back();
            work.pop_back();
            queued[(std::size_t)v] = false;
            const CtxNode &node = nodes[(std::size_t)v];
            const BasicBlock &blk =
                cfg_.blocks()[(std::size_t)node.block];
            std::uint8_t m = res.nodeMayExec[(std::size_t)v];
            const Instruction &last =
                prog_.code[(std::size_t)blk.last];

            // Classify each successor edge of a conditional branch as
            // taken / fall-through so the feasibility masks refine the
            // flowing thread set (tid-guarded sections).
            int taken_block = -1, fall_block = -1;
            if (last.isCondBranch()) {
                Addr target = static_cast<Addr>(last.imm);
                if (prog_.validPc(target)) {
                    taken_block = cfg_.blockOf(static_cast<int>(
                        (target - prog_.codeBase) / instBytes));
                }
                if (blk.last + 1 <
                    static_cast<int>(prog_.code.size()))
                    fall_block = cfg_.blockOf(blk.last + 1);
            }
            for (int s : node.succs) {
                int sb = nodes[(std::size_t)s].block;
                std::uint8_t em = m;
                if (last.isCondBranch()) {
                    em = 0;
                    if (sb == taken_block)
                        em |= m & sh_.branchCanTake[(std::size_t)blk.last];
                    if (sb == fall_block)
                        em |= m & sh_.branchCanFall[(std::size_t)blk.last];
                    if (sb != taken_block && sb != fall_block)
                        em = m; // unexpected edge: stay conservative
                }
                std::uint8_t joined =
                    res.nodeMayExec[(std::size_t)s] | em;
                if (joined != res.nodeMayExec[(std::size_t)s]) {
                    res.nodeMayExec[(std::size_t)s] = joined;
                    if (!queued[(std::size_t)s]) {
                        queued[(std::size_t)s] = true;
                        work.push_back(s);
                    }
                }
            }
        }
    }

    void
    collectRedRegions()
    {
        for (const auto &[name, addr] : prog_.symbols) {
            if (name.rfind(kRedPrefix, 0) != 0)
                continue;
            Addr hi = prog_.dataLimit;
            for (const auto &[other, oaddr] : prog_.symbols) {
                if (oaddr > addr && oaddr < hi)
                    hi = oaddr;
            }
            redRegions_.push_back({addr, hi});
        }
    }

    struct Access
    {
        int inst = 0;
        EpochSet epochs;
        std::uint8_t mask = 0;
        bool store = false;
    };

    void
    collectAccesses(RaceResult &res)
    {
        const auto &nodes = cfg_.ctxNodes();
        for (std::size_t v = 0; v < nodes.size(); ++v) {
            if (res.nodeEpochs[v].empty())
                continue; // unreached node
            const CtxNode &node = nodes[v];
            const BasicBlock &blk =
                cfg_.blocks()[(std::size_t)node.block];
            for (int i = blk.first; i <= blk.last; ++i) {
                const Instruction &in = prog_.code[(std::size_t)i];
                if (!in.isMem())
                    continue;
                Access a;
                a.inst = i;
                a.epochs = epochsAt(res.nodeEpochs[v], node.block, i);
                a.mask = res.nodeMayExec[v];
                a.store = in.isStore();
                accesses_.push_back(a);
            }
        }
    }

    /** Thread t's access at @p i may overlap thread u's at @p j. */
    bool
    mayOverlap(int i, int j, int t, int u) const
    {
        const AbsVal &a = sh_.memBase[(std::size_t)i];
        const AbsVal &b = sh_.memBase[(std::size_t)j];
        RegVal ia = static_cast<RegVal>(prog_.code[(std::size_t)i].imm);
        RegVal ib = static_cast<RegVal>(prog_.code[(std::size_t)j].imm);
        RegVal ca[AbsVal::kMaxBases], cb[AbsVal::kMaxBases];
        int na = addrCandidates(a, ia, t, ca);
        int nb = addrCandidates(b, ib, u, cb);
        if (na > 0 && nb > 0) {
            for (int x = 0; x < na; ++x)
                for (int y = 0; y < nb; ++y)
                    if (rangesOverlap(ca[x], cb[y]))
                        return true;
            return false;
        }
        // At least one side unbounded: try the alignment residue. The
        // addresses are provably >= 8 apart when their residue delta
        // mod 2^k lies in [8, 2^k - 8] (needs k >= 4).
        int ka = 0, kb = 0;
        RegVal ra = 0, rb = 0;
        addrResidue(a, ia, t, &ka, &ra);
        addrResidue(b, ib, u, &kb, &rb);
        if (ka == 0 || kb == 0)
            return true; // no facts: may overlap
        int k = ka < kb ? ka : kb;
        if (k < 4)
            return true;
        RegVal mask = alignMask(k);
        RegVal rho = (ra - rb) & mask;
        return !(rho >= 8 && rho <= mask - 7);
    }

    /** Every exact address candidate of @p i (all threads in @p mask)
     *  lies inside a reduction scratch region. */
    bool
    insideRedRegion(int i, std::uint8_t mask) const
    {
        if (redRegions_.empty())
            return false;
        const AbsVal &base = sh_.memBase[(std::size_t)i];
        RegVal imm = static_cast<RegVal>(prog_.code[(std::size_t)i].imm);
        bool any = false;
        for (int t = 0; t < maxThreads; ++t) {
            if (!(mask & (1u << t)))
                continue;
            RegVal c[AbsVal::kMaxBases];
            int n = addrCandidates(base, imm, t, c);
            if (n == 0)
                return false; // unbounded: cannot attribute
            for (int x = 0; x < n; ++x) {
                bool in = false;
                for (const RedRegion &r : redRegions_) {
                    if (static_cast<Addr>(c[x]) >= r.lo &&
                        static_cast<Addr>(c[x]) + 8 <= r.hi)
                        in = true;
                }
                if (!in)
                    return false;
                any = true;
            }
        }
        return any;
    }

    void
    checkPairs(RaceResult &res)
    {
        // (min inst, max inst) -> rule; collected across node pairs.
        std::map<std::pair<int, int>, const char *> found;
        std::size_t n = accesses_.size();
        for (std::size_t x = 0; x < n; ++x) {
            const Access &a = accesses_[x];
            for (std::size_t y = x; y < n; ++y) {
                const Access &b = accesses_[y];
                if (!a.store && !b.store)
                    continue;
                std::pair<int, int> key =
                    a.inst <= b.inst
                        ? std::make_pair(a.inst, b.inst)
                        : std::make_pair(b.inst, a.inst);
                if (found.count(key))
                    continue;
                if (!a.epochs.intersects(b.epochs))
                    continue;
                // Cross-thread feasibility: some t in a.mask and
                // u in b.mask with t != u (two identical singletons are
                // a tid-guarded section — benign).
                if (a.mask == 0 || b.mask == 0 ||
                    std::popcount(
                        static_cast<unsigned>(a.mask | b.mask)) < 2)
                    continue;
                bool conflict = false;
                for (int t = 0; t < maxThreads && !conflict; ++t) {
                    if (!(a.mask & (1u << t)))
                        continue;
                    for (int u = 0; u < maxThreads && !conflict; ++u) {
                        if (u == t || !(b.mask & (1u << u)))
                            continue;
                        conflict = mayOverlap(a.inst, b.inst, t, u);
                    }
                }
                if (!conflict)
                    continue;
                const char *rule;
                if (insideRedRegion(a.inst, a.mask) ||
                    insideRedRegion(b.inst, b.mask))
                    rule = kRuleUnguardedReduction;
                else if (a.store && b.store)
                    rule = kRuleRaceStoreStore;
                else
                    rule = kRuleRaceStoreLoad;
                found.emplace(key, rule);
            }
        }
        for (const auto &[key, rule] : found) {
            RacePair p;
            p.instA = key.first;
            p.instB = key.second;
            // Anchor at the store endpoint (min-index store when both
            // qualify): suppressions and diagnostics attach there.
            p.anchor = prog_.code[(std::size_t)p.instA].isStore()
                           ? p.instA
                           : p.instB;
            p.rule = rule;
            p.suppressed = prog_.allowed(p.anchor, p.rule);
            res.pairs.push_back(std::move(p));
        }
    }

    const Cfg &cfg_;
    const Program &prog_;
    const SharingResult &sh_;
    SharingOptions opt_;
    std::vector<RedRegion> redRegions_;
    std::vector<Access> accesses_;
};

} // namespace

EpochSet
RaceResult::epochsOf(const Cfg &cfg, int i) const
{
    EpochSet e;
    if (!checked || nodeEpochs.empty())
        return e;
    int b = cfg.blockOf(i);
    const BasicBlock &blk = cfg.blocks()[(std::size_t)b];
    const Program &prog = cfg.program();
    for (int v : cfg.ctxNodesOf(b)) {
        EpochSet node = nodeEpochs[(std::size_t)v];
        if (node.empty())
            continue;
        for (int j = blk.first; j < i; ++j) {
            if (prog.code[(std::size_t)j].op == Opcode::BARRIER)
                node = node.shifted();
        }
        e.join(node);
    }
    return e;
}

bool
RaceResult::reportsPair(int i, int j) const
{
    int lo = i < j ? i : j;
    int hi = i < j ? j : i;
    for (const RacePair &p : pairs) {
        if (p.instA == lo && p.instB == hi)
            return true;
    }
    return false;
}

RaceResult
analyzeRaces(const Cfg &cfg, const SharingResult &sharing,
             const SharingOptions &opt)
{
    return RaceAnalyzer(cfg, sharing, opt).run();
}

} // namespace analysis
} // namespace mmt
