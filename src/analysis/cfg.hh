/**
 * @file
 * Control-flow graph over an assembled iasm::Program, interprocedural
 * at call-string depth 1.
 *
 * Blocks are maximal straight-line index ranges of the instruction
 * stream; edges come from branch/jump immediates and fall-through.
 *
 * Indirect jumps have no static target, so they are resolved in two
 * tiers:
 *
 *   1. Call-site-aware return matching. `jal`/`jalr` write the return
 *      PC to `ra`, so each acts as a call pushing an abstract return
 *      point (the next instruction). A `ret` (`jr ra`) reached from a
 *      direct callee's entry without leaving the callee's frame gets
 *      edges only to the return points of the call sites that target
 *      that callee (plus the return point of every `jalr`, whose callee
 *      is unknown). Matching assumes the usual bracketed call/return
 *      discipline; if any non-call, non-load instruction writes `ra`
 *      (a computed address materialized into the link register), every
 *      ret falls back to tier 2.
 *   2. Address-taken fallback (conservative): every return point plus
 *      every code address materialized by an immediate or stored in the
 *      initial data image (jump tables). Used for `jr` through a
 *      non-`ra` register, rets reachable from the entry frame without a
 *      call, and rets with no matched call site.
 *
 * BasicBlock::indirectMatched distinguishes the tiers, and the tighter
 * tier-1 edges sharpen post-dominators — and with them the lint layer's
 * control-dependence checks and the FetchHints re-convergence points.
 *
 * Besides forward reachability the CFG computes post-dominators over a
 * virtual exit node (successor of HALT and of fall-off-the-end blocks).
 */

#ifndef MMT_ANALYSIS_CFG_HH
#define MMT_ANALYSIS_CFG_HH

#include <vector>

#include "iasm/program.hh"

namespace mmt
{
namespace analysis
{

/** One basic block: instructions [first, last] of Program::code. */
struct BasicBlock
{
    int first = 0;
    int last = 0;
    std::vector<int> succs; // successor block ids (virtual exit excluded)
    std::vector<int> preds;
    bool reachable = false;   // from the entry block
    bool fallsOffEnd = false; // control can run past the last instruction
    bool hasIndirect = false; // ends in JR/JALR
    /** hasIndirect only: successors were resolved by call-site return
     *  matching rather than the conservative address-taken fallback. */
    bool indirectMatched = false;
};

/** Control-flow graph of one program. */
class Cfg
{
  public:
    explicit Cfg(const Program &prog);

    const Program &program() const { return *prog_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    /** Block id containing instruction @p index. */
    int blockOf(int index) const { return blockOf_[(std::size_t)index]; }
    /** Id of the virtual exit node (== blocks().size()). */
    int exitNode() const { return static_cast<int>(blocks_.size()); }

    /** True if instruction @p index is reachable from the entry. */
    bool
    reachable(int index) const
    {
        return blocks_[(std::size_t)blockOf(index)].reachable;
    }

    /**
     * True if block @p a post-dominates block @p b: every path from b
     * to the virtual exit passes through a. For blocks that cannot
     * reach the exit at all (infinite loops) the property is vacuous
     * and the standard fixpoint reports the initialization value.
     */
    bool postDominates(int a, int b) const;

    /**
     * Immediate post-dominator of block @p b: the unique strict
     * post-dominator of b that is post-dominated by every other strict
     * post-dominator of b. Returns exitNode() when the exit is the only
     * strict post-dominator, and -1 when b has none at all (blocks that
     * cannot reach the exit).
     */
    int immediatePostDominator(int b) const;

  private:
    void findLeaders();
    void buildEdges();
    void markReachable();
    void computePostDominators();

    /** Conservative successor indices of an indirect jump (tier 2). */
    std::vector<int> indirectTargets() const;
    /**
     * Tier-1 matching: per instruction index, the matched return-point
     * indices of a recognized `ret`, or an empty vector when the
     * conservative fallback applies to it.
     */
    std::vector<std::vector<int>> matchReturnSites() const;

    const Program *prog_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;
    /** pdom_[b][a]: block a post-dominates block b (dense, incl. exit). */
    std::vector<std::vector<bool>> pdom_;
};

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_CFG_HH
