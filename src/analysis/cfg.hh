/**
 * @file
 * Control-flow graph over an assembled iasm::Program, interprocedural
 * and call-graph aware: call-string contexts of depth kCallStringDepth
 * outside recursive SCCs, conservative fallback inside them.
 *
 * Blocks are maximal straight-line index ranges of the instruction
 * stream; edges come from branch/jump immediates and fall-through.
 *
 * Indirect jumps have no static target, so they are resolved in two
 * tiers:
 *
 *   1. Call-site-aware return matching. `jal`/`jalr` write the return
 *      PC to `ra`, so each acts as a call pushing an abstract return
 *      point (the next instruction). A `ret` (`jr ra`) reached from a
 *      direct callee's entry without leaving the callee's frame gets
 *      edges only to the return points of the call sites that target
 *      that callee (plus the return point of every `jalr`, whose callee
 *      is unknown). Matching assumes the usual bracketed call/return
 *      discipline; if any non-call, non-load instruction writes `ra`
 *      (a computed address materialized into the link register), every
 *      ret falls back to tier 2.
 *   2. Address-taken fallback (conservative): every return point plus
 *      every code address materialized by an immediate or stored in the
 *      initial data image (jump tables). Used for `jr` through a
 *      non-`ra` register, rets reachable from the entry frame without a
 *      call, and rets with no matched call site.
 *
 * BasicBlock::indirectMatched distinguishes the tiers, and the tighter
 * tier-1 edges sharpen post-dominators — and with them the lint layer's
 * control-dependence checks and the FetchHints re-convergence points.
 *
 * On top of the flat block graph the Cfg builds a *context-expanded*
 * graph for flow-sensitive clients (the sharing pass): it derives the
 * call graph from direct `jal` sites, condenses its strongly connected
 * components (Tarjan), and clones each non-recursive function's blocks
 * once per call-string suffix of depth kCallStringDepth. A context's
 * `ret` then has exactly one successor per call site that created it —
 * the matching return point in the *caller's* context — so caller state
 * flows around a call without being joined with other call sites'
 * state. Functions inside a recursive SCC (or reached through one)
 * share a single bottom context whose rets conservatively return to
 * every recorded call site. Programs that break the preconditions
 * (broken ra-discipline, `jalr` calls, computed jumps, entry-frame
 * rets) degenerate to one root context over the flat graph, which is
 * exactly the old behavior.
 *
 * Besides forward reachability the CFG computes post-dominators over a
 * virtual exit node (successor of HALT and of fall-off-the-end blocks).
 * When the context expansion is active, the post-dominator relation is
 * refined over it: block a post-dominates block b iff every expanded
 * path from any context copy of b to the exit passes through some copy
 * of a. Expanded paths are a subset of flat paths (spurious
 * cross-call-site return edges disappear), so the refinement only adds
 * post-dominator facts — re-convergence hints for helper-heavy code get
 * tighter, never looser.
 */

#ifndef MMT_ANALYSIS_CFG_HH
#define MMT_ANALYSIS_CFG_HH

#include <vector>

#include "iasm/program.hh"

namespace mmt
{
namespace analysis
{

/** Call-string suffix length tracked outside recursive SCCs. */
inline constexpr int kCallStringDepth = 2;

/** One basic block: instructions [first, last] of Program::code. */
struct BasicBlock
{
    int first = 0;
    int last = 0;
    std::vector<int> succs; // successor block ids (virtual exit excluded)
    std::vector<int> preds;
    bool reachable = false;   // from the entry block
    bool fallsOffEnd = false; // control can run past the last instruction
    bool hasIndirect = false; // ends in JR/JALR
    /** hasIndirect only: successors were resolved by call-site return
     *  matching rather than the conservative address-taken fallback. */
    bool indirectMatched = false;
};

/** One calling context of the expanded graph. */
struct CallContext
{
    /** Function entry instruction index; -1 for the root (entry) frame. */
    int func = -1;
    /** Call-string suffix: `jal` instruction indices, outermost first,
     *  at most kCallStringDepth long. Empty for root/bottom contexts. */
    std::vector<int> callString;
    /** Shared conservative context (recursive SCC / unknown callers). */
    bool bottom = false;
};

/** One node of the context-expanded graph: (block, context). */
struct CtxNode
{
    int block = 0;
    int ctx = 0;
    std::vector<int> succs; // CtxNode indices (virtual exit excluded)
};

/** Control-flow graph of one program. */
class Cfg
{
  public:
    explicit Cfg(const Program &prog);

    const Program &program() const { return *prog_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    /** Block id containing instruction @p index. */
    int blockOf(int index) const { return blockOf_[(std::size_t)index]; }
    /** Id of the virtual exit node (== blocks().size()). */
    int exitNode() const { return static_cast<int>(blocks_.size()); }

    /** True if instruction @p index is reachable from the entry. */
    bool
    reachable(int index) const
    {
        return blocks_[(std::size_t)blockOf(index)].reachable;
    }

    /**
     * True if block @p a post-dominates block @p b: every path from b
     * to the virtual exit passes through a. For blocks that cannot
     * reach the exit at all (infinite loops) the property is vacuous
     * and the standard fixpoint reports the initialization value.
     */
    bool postDominates(int a, int b) const;

    /**
     * Immediate post-dominator of block @p b: the unique strict
     * post-dominator of b that is post-dominated by every other strict
     * post-dominator of b. Returns exitNode() when the exit is the only
     * strict post-dominator, and -1 when b has none at all (blocks that
     * cannot reach the exit).
     */
    int immediatePostDominator(int b) const;

    // ---- context-expanded graph (see file comment) ----

    /** All contexts; index 0 is always the root context. */
    const std::vector<CallContext> &contexts() const { return contexts_; }
    /** Expanded nodes; entry node is ctxEntry(). */
    const std::vector<CtxNode> &ctxNodes() const { return ctxNodes_; }
    /** Expanded node ids of block @p b (empty if never reached). */
    const std::vector<int> &
    ctxNodesOf(int b) const
    {
        return nodesOfBlock_[(std::size_t)b];
    }
    int ctxEntry() const { return ctxEntry_; }
    /** True when the call-string expansion is active (not degenerate). */
    bool contextSensitive() const { return contextSensitive_; }
    /** Direct-call function entries (instruction indices), sorted. */
    const std::vector<int> &functionEntries() const { return funcEntries_; }
    /** True if functionEntries()[i] is in a recursive call-graph SCC. */
    bool
    functionRecursive(int i) const
    {
        return funcRecursive_[(std::size_t)i];
    }

  private:
    void findLeaders();
    void buildEdges();
    void markReachable();
    void computePostDominators();
    void buildContextGraph();
    void buildDegenerateContextGraph();
    void refinePostDominators();

    /** Conservative successor indices of an indirect jump (tier 2). */
    std::vector<int> indirectTargets() const;
    /**
     * Tier-1 matching: per instruction index, the matched return-point
     * indices of a recognized `ret`, or an empty vector when the
     * conservative fallback applies to it.
     */
    std::vector<std::vector<int>> matchReturnSites() const;

    const Program *prog_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;
    /** pdom_[b][a]: block a post-dominates block b (dense, incl. exit). */
    std::vector<std::vector<bool>> pdom_;

    std::vector<CallContext> contexts_;
    std::vector<CtxNode> ctxNodes_;
    std::vector<std::vector<int>> nodesOfBlock_;
    int ctxEntry_ = 0;
    bool contextSensitive_ = false;
    std::vector<int> funcEntries_;
    std::vector<bool> funcRecursive_;
};

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_CFG_HH
