/**
 * @file
 * Control-flow graph over an assembled iasm::Program.
 *
 * Blocks are maximal straight-line index ranges of the instruction
 * stream; edges come from branch/jump immediates and fall-through.
 * Indirect jumps (JR/JALR) have no static target, so they are given a
 * conservative successor set: every return point (the instruction after
 * a JAL/JALR) plus every code address that is materialized by an
 * immediate or stored in the initial data image (address-taken).
 *
 * Besides forward reachability the CFG computes post-dominators over a
 * virtual exit node (successor of HALT and of fall-off-the-end blocks),
 * which the lint layer uses for barrier control-dependence checks.
 */

#ifndef MMT_ANALYSIS_CFG_HH
#define MMT_ANALYSIS_CFG_HH

#include <vector>

#include "iasm/program.hh"

namespace mmt
{
namespace analysis
{

/** One basic block: instructions [first, last] of Program::code. */
struct BasicBlock
{
    int first = 0;
    int last = 0;
    std::vector<int> succs; // successor block ids (virtual exit excluded)
    std::vector<int> preds;
    bool reachable = false;   // from the entry block
    bool fallsOffEnd = false; // control can run past the last instruction
    bool hasIndirect = false; // ends in JR/JALR (succs are conservative)
};

/** Control-flow graph of one program. */
class Cfg
{
  public:
    explicit Cfg(const Program &prog);

    const Program &program() const { return *prog_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    /** Block id containing instruction @p index. */
    int blockOf(int index) const { return blockOf_[(std::size_t)index]; }
    /** Id of the virtual exit node (== blocks().size()). */
    int exitNode() const { return static_cast<int>(blocks_.size()); }

    /** True if instruction @p index is reachable from the entry. */
    bool
    reachable(int index) const
    {
        return blocks_[(std::size_t)blockOf(index)].reachable;
    }

    /**
     * True if block @p a post-dominates block @p b: every path from b
     * to the virtual exit passes through a. For blocks that cannot
     * reach the exit at all (infinite loops) the property is vacuous
     * and the standard fixpoint reports the initialization value.
     */
    bool postDominates(int a, int b) const;

    /**
     * Immediate post-dominator of block @p b: the unique strict
     * post-dominator of b that is post-dominated by every other strict
     * post-dominator of b. Returns exitNode() when the exit is the only
     * strict post-dominator, and -1 when b has none at all (blocks that
     * cannot reach the exit).
     */
    int immediatePostDominator(int b) const;

  private:
    void findLeaders();
    void buildEdges();
    void markReachable();
    void computePostDominators();

    /** Conservative successor indices of an indirect jump. */
    std::vector<int> indirectTargets() const;

    const Program *prog_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;
    /** pdom_[b][a]: block a post-dominates block b (dense, incl. exit). */
    std::vector<std::vector<bool>> pdom_;
};

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_CFG_HH
