#include "analysis/race_oracle.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>
#include <utility>

#include "iasm/assembler.hh"

namespace mmt
{
namespace analysis
{

namespace
{

using Clock = std::vector<std::uint64_t>;

/** Last access bookkeeping of one address (FastTrack-style, but with a
 *  full read vector — the context count is at most maxThreads). */
struct Access
{
    std::uint64_t clock = 0; // owner's own component at access time
    Addr pc = 0;
    RegVal val = 0;
    bool valid = false;
    int ctx = -1;
};

struct Shadow
{
    Access lastStore;
    std::vector<Access> lastLoad; // indexed by context
};

class Replayer
{
  public:
    explicit Replayer(const RaceTrace &trace)
        : trace_(trace), nctx_(static_cast<int>(trace.size())),
          pos_(trace.size(), 0), clocks_(trace.size())
    {
        for (int c = 0; c < nctx_; ++c) {
            clocks_[(std::size_t)c].assign((std::size_t)nctx_, 0);
            clocks_[(std::size_t)c][(std::size_t)c] = 1;
        }
    }

    std::vector<DynamicRace>
    run()
    {
        // Round-based scheduler: drain every context up to its next
        // barrier (or a receive whose message has not been sent yet),
        // then rendezvous the barrier arrivals and repeat. Traces come
        // from completed runs, so this always terminates with every
        // stream consumed; a malformed trace just stops early.
        for (;;) {
            bool progressed = false;
            for (int c = 0; c < nctx_; ++c)
                progressed |= drain(c);
            std::vector<int> arrived;
            for (int c = 0; c < nctx_; ++c) {
                if (atBarrier(c))
                    arrived.push_back(c);
            }
            if (!arrived.empty()) {
                rendezvous(arrived);
                progressed = true;
            }
            if (!progressed)
                break;
        }
        std::vector<DynamicRace> out;
        out.reserve(races_.size());
        for (const auto &[key, race] : races_)
            out.push_back(race);
        return out;
    }

  private:
    const std::vector<RaceEvent> &
    stream(int c) const
    {
        return trace_[(std::size_t)c];
    }

    bool
    atBarrier(int c) const
    {
        const auto &s = stream(c);
        return pos_[(std::size_t)c] < s.size() &&
               s[pos_[(std::size_t)c]].kind == RaceEvent::Kind::Barrier;
    }

    /** Process context @p c until barrier / end / blocked receive. */
    bool
    drain(int c)
    {
        bool progressed = false;
        const auto &s = stream(c);
        while (pos_[(std::size_t)c] < s.size()) {
            const RaceEvent &ev = s[pos_[(std::size_t)c]];
            if (ev.kind == RaceEvent::Kind::Barrier)
                break;
            if (ev.kind == RaceEvent::Kind::Recv &&
                channel(ev.partner, c).empty())
                break; // message not sent yet: another context first
            step(c, ev);
            ++pos_[(std::size_t)c];
            progressed = true;
        }
        return progressed;
    }

    void
    step(int c, const RaceEvent &ev)
    {
        Clock &vc = clocks_[(std::size_t)c];
        switch (ev.kind) {
          case RaceEvent::Kind::Load: onLoad(c, ev); break;
          case RaceEvent::Kind::Store: onStore(c, ev); break;
          case RaceEvent::Kind::Send:
            channel(c, ev.partner).push_back(vc);
            ++vc[(std::size_t)c];
            break;
          case RaceEvent::Kind::Recv: {
            std::deque<Clock> &q = channel(ev.partner, c);
            joinInto(vc, q.front());
            q.pop_front();
            ++vc[(std::size_t)c];
            break;
          }
          case RaceEvent::Kind::Barrier: break; // handled by rendezvous
        }
    }

    void
    rendezvous(const std::vector<int> &arrived)
    {
        // All arrivals synchronize through one release: join their
        // clocks into a common frontier, then tick each own component
        // so post-barrier accesses are concurrent across contexts again.
        Clock merged((std::size_t)nctx_, 0);
        for (int c : arrived)
            joinInto(merged, clocks_[(std::size_t)c]);
        for (int c : arrived) {
            clocks_[(std::size_t)c] = merged;
            ++clocks_[(std::size_t)c][(std::size_t)c];
            ++pos_[(std::size_t)c];
        }
    }

    static void
    joinInto(Clock &dst, const Clock &src)
    {
        for (std::size_t i = 0; i < dst.size(); ++i)
            dst[i] = std::max(dst[i], src[i]);
    }

    /** @p a happened before context @p c's current point? */
    bool
    ordered(const Access &a, int c) const
    {
        return a.clock <=
               clocks_[(std::size_t)c][(std::size_t)a.ctx];
    }

    Shadow &
    shadow(Addr addr)
    {
        Shadow &sh = shadows_[addr];
        if (sh.lastLoad.empty())
            sh.lastLoad.resize((std::size_t)nctx_);
        return sh;
    }

    void
    onLoad(int c, const RaceEvent &ev)
    {
        Shadow &sh = shadow(ev.addr);
        const Access &st = sh.lastStore;
        if (st.valid && st.ctx != c && !ordered(st, c) && st.val != ev.val)
            record(st.pc, ev.pc, ev.addr, false);
        Access &me = sh.lastLoad[(std::size_t)c];
        me.clock = clocks_[(std::size_t)c][(std::size_t)c];
        me.pc = ev.pc;
        me.val = ev.val;
        me.valid = true;
        me.ctx = c;
    }

    void
    onStore(int c, const RaceEvent &ev)
    {
        if (ev.val == ev.old)
            return; // silent store: every interleaving is equivalent
        Shadow &sh = shadow(ev.addr);
        const Access &st = sh.lastStore;
        if (st.valid && st.ctx != c && !ordered(st, c) && st.val != ev.val)
            record(st.pc, ev.pc, ev.addr, true);
        for (const Access &ld : sh.lastLoad) {
            if (ld.valid && ld.ctx != c && !ordered(ld, c) &&
                ld.val != ev.val)
                record(ld.pc, ev.pc, ev.addr, false);
        }
        sh.lastStore.clock = clocks_[(std::size_t)c][(std::size_t)c];
        sh.lastStore.pc = ev.pc;
        sh.lastStore.val = ev.val;
        sh.lastStore.valid = true;
        sh.lastStore.ctx = c;
    }

    std::deque<Clock> &
    channel(int from, int to)
    {
        return channels_[{from, to}];
    }

    void
    record(Addr pcA, Addr pcB, Addr addr, bool store_store)
    {
        Addr lo = std::min(pcA, pcB);
        Addr hi = std::max(pcA, pcB);
        DynamicRace &r = races_[std::make_tuple(lo, hi, store_store)];
        if (r.count == 0) {
            r.pcA = lo;
            r.pcB = hi;
            r.addr = addr;
            r.storeStore = store_store;
        }
        ++r.count;
    }

    const RaceTrace &trace_;
    int nctx_;
    std::vector<std::size_t> pos_;
    std::vector<Clock> clocks_;
    std::map<Addr, Shadow> shadows_;
    std::map<std::pair<int, int>, std::deque<Clock>> channels_;
    std::map<std::tuple<Addr, Addr, bool>, DynamicRace> races_;
};

} // namespace

std::vector<DynamicRace>
replayRaceTrace(const RaceTrace &trace)
{
    return Replayer(trace).run();
}

RaceGateReport
checkRaceGate(const AnalysisResult &analysis, const Program &prog,
              const std::vector<DynamicRace> &races)
{
    RaceGateReport rep;
    rep.checked = analysis.race.checked;
    rep.races = races;
    auto instOf = [&](Addr pc) {
        return prog.validPc(pc)
                   ? static_cast<int>((pc - prog.codeBase) / instBytes)
                   : -1;
    };
    for (const DynamicRace &r : races) {
        int a = instOf(r.pcA);
        int b = instOf(r.pcB);
        if (a < 0 || b < 0 || !analysis.race.reportsPair(a, b))
            rep.unreported.push_back(r);
    }
    return rep;
}

RaceGateReport
runRaceGate(const Workload &w, ConfigKind kind, int num_threads,
            AnalysisResult *out_analysis, RunResult *out_result,
            const SimOverrides &ov)
{
    if (w.multiExecution) {
        // Private per-context images: no shared memory, no races; the
        // static side agrees (RaceResult::checked == false).
        RaceGateReport rep;
        rep.checked = false;
        return rep;
    }
    auto owned = std::make_shared<Program>(
        assemble(w.source, defaultCodeBase, defaultDataBase, w.name));
    AnalysisOptions opt;
    opt.multiExecution = w.multiExecution;
    opt.forceTidZero = kind == ConfigKind::Limit;
    AnalysisResult analysis = analyzeProgram(*owned, opt);
    analysis.program = std::move(owned);
    RaceTrace trace;
    RunResult r = runWorkload(w, kind, num_threads, ov,
                              /*check_golden=*/false, nullptr, &trace);
    RaceGateReport rep = checkRaceGate(
        analysis, *analysis.program, replayRaceTrace(trace));
    if (out_analysis)
        *out_analysis = std::move(analysis);
    if (out_result)
        *out_result = std::move(r);
    return rep;
}

} // namespace analysis
} // namespace mmt
