/**
 * @file
 * Barrier-aware static data-race detection over iasm programs.
 *
 * May-happen-in-parallel (MHP) model. BARRIER is a global rendezvous:
 * the simulator gates fetch until every live thread arrives, so two
 * dynamic accesses can overlap in time only when their threads have
 * passed the *same number* of barriers (threads with different barrier
 * counts are temporally ordered by the releases between them, and a
 * halted thread's accesses are ordered before every later release,
 * which waits only on live threads). The analysis therefore abstracts
 * each instruction's possible barrier counts — its *epoch set* — with
 * a small bitset plus an "open tail" (EpochSet), propagated over the
 * context-expanded interprocedural CFG (depth-2 call strings): a
 * BARRIER shifts the set, joins union it, and a barrier inside a loop
 * widens into the open tail. Two accesses may race only when their
 * epoch sets intersect.
 *
 * Same-epoch pairs with at least one store are then checked for
 * cross-thread conflict:
 *
 *   - disjointness proof: per-thread address candidates from the
 *     affine-with-base sharing lattice (Known lanes, exact base sets,
 *     or the power-of-2 alignment residue) must be >= 8 bytes apart
 *     for every feasible cross-thread pair (t, u), t != u;
 *   - tid-guarded sections: a may-execute thread-mask dataflow over the
 *     branch feasibility masks (SharingResult::branchCanTake/Fall)
 *     proves accesses reachable by a single common thread benign;
 *   - the `__mmtc_red<k>` reduction idiom: scratch-slot stores are
 *     indexed by tid (provably disjoint) and the combine loop reads
 *     after the join barrier; a surviving pair touching a reduction
 *     scratch region is a misused idiom and gets its own rule.
 *
 * Everything else is reported as a lint rule — `race-store-store`,
 * `race-store-load`, or `unguarded-reduction` — anchored at the store
 * endpoint of the pair (lower-index store when both are stores), where
 * the existing "; analyze:allow(<rule>)" suppression mechanism applies. The raw
 * pre-suppression pair set is retained: the dynamic happens-before
 * oracle (analysis/race_oracle.hh) enforces that every dynamically
 * observed race appears in it, suppressed or not.
 *
 * Multi-execution programs run one address space per context, so no
 * cross-thread shared-memory race exists; RaceResult::checked is false
 * and the pair list empty.
 */

#ifndef MMT_ANALYSIS_RACE_HH
#define MMT_ANALYSIS_RACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sharing.hh"

namespace mmt
{
namespace analysis
{

/** Lint rule names reported by the race analysis. */
extern const char *const kRuleRaceStoreStore;
extern const char *const kRuleRaceStoreLoad;
extern const char *const kRuleUnguardedReduction;

/**
 * Abstract set of barrier epochs: epoch k is in the set when bit k of
 * @ref bits is set (k < 64), or when the open tail covers it
 * (openFrom >= 0 and k >= openFrom). The open tail is the widening for
 * barriers inside loops: once a path's count can exceed the bitset
 * range (or the fixpoint keeps shifting), every later epoch is
 * admitted. Monotone under join and shift, so the dataflow converges.
 */
struct EpochSet
{
    std::uint64_t bits = 0;
    int openFrom = -1; // -1: no open tail; else all epochs >= openFrom

    bool empty() const { return bits == 0 && openFrom < 0; }

    bool
    contains(int k) const
    {
        if (openFrom >= 0 && k >= openFrom)
            return true;
        return k >= 0 && k < 64 && ((bits >> k) & 1) != 0;
    }

    /** The set after passing one barrier (every epoch advances by 1). */
    EpochSet
    shifted() const
    {
        EpochSet r;
        r.bits = bits << 1;
        r.openFrom = openFrom < 0 ? -1 : (openFrom >= 63 ? 63
                                                         : openFrom + 1);
        if ((bits >> 63) != 0)
            r.openFrom = 63; // shifted past the bitset: widen
        return r;
    }

    /** Union; returns true when this set grew. */
    bool
    join(const EpochSet &o)
    {
        std::uint64_t nb = bits | o.bits;
        int nf = openFrom;
        if (o.openFrom >= 0)
            nf = nf < 0 ? o.openFrom : (nf < o.openFrom ? nf : o.openFrom);
        bool grew = nb != bits || nf != openFrom;
        bits = nb;
        openFrom = nf;
        return grew;
    }

    bool
    intersects(const EpochSet &o) const
    {
        if ((bits & o.bits) != 0)
            return true;
        if (openFrom >= 0 && o.openFrom >= 0)
            return true;
        if (openFrom >= 0 && (o.bits >> openFrom) != 0)
            return true;
        if (o.openFrom >= 0 && (bits >> o.openFrom) != 0)
            return true;
        return false;
    }
};

/** One may-race access pair (instruction indices, instA <= instB). */
struct RacePair
{
    int instA = 0;
    int instB = 0;
    /** Diagnostics and suppressions attach to the anchor: the store
     *  endpoint of a store/load pair (the access responsible for the
     *  conflict), the lower-index store of a store/store pair. */
    int anchor = 0;
    std::string rule;
    /** An "; analyze:allow(<rule>)" comment on the anchor covers it. */
    bool suppressed = false;
};

/** Result of the race analysis over one program. */
struct RaceResult
{
    /** False for multi-execution programs (private address spaces — no
     *  shared memory, hence no cross-thread races by construction). */
    bool checked = false;

    /** Deduplicated may-race pairs, pre-suppression, sorted by
     *  (instA, instB). The dynamic-oracle gate checks against this
     *  list, so suppressed pairs still count as statically reported. */
    std::vector<RacePair> pairs;

    /** Per ctx-node epoch set at node entry (empty for unreached
     *  nodes); exposed for the epoch-segmentation tests. */
    std::vector<EpochSet> nodeEpochs;
    /** Per ctx-node may-execute thread mask (bit t: thread t can reach
     *  the node), refined through tid-guarded branches. */
    std::vector<std::uint8_t> nodeMayExec;

    /** Epoch set of instruction @p i joined over every context copy
     *  (convenience for tests; empty when unreachable / unchecked). */
    EpochSet epochsOf(const Cfg &cfg, int i) const;

    /** True when some raw pair (suppressed or not) covers the
     *  unordered instruction pair {i, j}. */
    bool reportsPair(int i, int j) const;
};

/**
 * Run the race analysis. @p sharing must come from analyzeSharing over
 * the same @p cfg with the same options.
 */
RaceResult analyzeRaces(const Cfg &cfg, const SharingResult &sharing,
                        const SharingOptions &opt);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_RACE_HH
