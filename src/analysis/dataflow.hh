/**
 * @file
 * Classic bit-vector dataflow over the CFG, sized for MMT-RISC's 64
 * unified architected registers (one std::uint64_t per register set).
 *
 *   - Must-defined (forward, intersection): which registers are
 *     definitely written on every path reaching a point. Reading a
 *     register outside this set — other than the hardware-initialized
 *     zero/tid/sp — is a use-before-def.
 *   - Liveness (backward, union): which registers may still be read
 *     before being overwritten. A definition whose target is dead is
 *     useless work. Because the golden model compares final register
 *     state, every register is treated as live at program exit, so only
 *     defs that are re-defined before any use on *all* paths are
 *     flagged.
 */

#ifndef MMT_ANALYSIS_DATAFLOW_HH
#define MMT_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace mmt
{
namespace analysis
{

/** Bit set over the 64 unified architected registers. */
using RegMask = std::uint64_t;

constexpr RegMask
regBit(RegIndex r)
{
    return RegMask(1) << static_cast<unsigned>(r);
}

/** Per-instruction findings of the dataflow pass. */
struct DataflowResult
{
    /** Registers possibly read before any definition (0 if none).
     *  Index-aligned with Program::code; reachable code only. */
    std::vector<RegMask> useBeforeDef;
    /** True if the instruction defines a register that is overwritten
     *  before any use on every path (dead definition). */
    std::vector<bool> deadDef;
};

DataflowResult analyzeDataflow(const Cfg &cfg);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_DATAFLOW_HH
