#include "analysis/sharing.hh"

#include <algorithm>

#include "isa/exec.hh"

namespace mmt
{
namespace analysis
{

namespace
{

/** Abstract machine state: one AbsVal per architected register. */
using RegState = std::array<AbsVal, numArchRegs>;

/**
 * One tracked memory slot for store-to-load forwarding: lane t of the
 * abstract store wrote lane t of @p val to address addr[t]. Tracked
 * only when the per-lane image is unambiguous — the addresses are
 * pairwise distinct (MT private stack slots), the address spaces are
 * separate (ME), or the address and value are both uniform — so an
 * exact-address load can recover the stored AbsVal lane-wise. This is
 * what sees through mmtc's caller-saved spills: every value live
 * across a call sits in a stack slot, and without forwarding each
 * reload collapses to Unknown.
 */
struct MemSlot
{
    std::array<RegVal, maxThreads> addr{};
    AbsVal val;

    bool operator==(const MemSlot &o) const = default;
};

/** Slot-count cap; a full frame drops new stores (toward ⊤, sound). */
constexpr int kMaxSlots = 24;

/** Register file plus the tracked spill-slot frame. */
struct AnalysisState
{
    RegState regs;
    /** Sorted by address vector (lexicographic); absent slot = ⊤. */
    std::vector<MemSlot> slots;

    bool operator==(const AnalysisState &o) const = default;
};

/** All lanes of @p a pairwise distinct (no 8-byte range overlap). */
bool
lanesDisjoint(const std::array<RegVal, maxThreads> &a)
{
    for (int t = 0; t < maxThreads; ++t)
        for (int u = t + 1; u < maxThreads; ++u) {
            // overlap iff |a[t] - a[u]| < 8 (unsigned wraparound-safe)
            RegVal d = a[(std::size_t)t] - a[(std::size_t)u];
            if (d + 7 < 15)
                return false;
        }
    return true;
}

/**
 * May the 8-byte accesses at @p a and @p b touch a common location?
 * ME instances own private address spaces, so only same-lane pairs can
 * collide; MT threads share memory, so every lane pair can.
 */
bool
vecsMayOverlap(const std::array<RegVal, maxThreads> &a,
               const std::array<RegVal, maxThreads> &b, bool me)
{
    for (int t = 0; t < maxThreads; ++t)
        for (int u = 0; u < maxThreads; ++u) {
            if (me && t != u)
                continue;
            RegVal d = a[(std::size_t)t] - b[(std::size_t)u];
            if (d + 7 < 15)
                return true;
        }
    return false;
}

/** Entry state per the simulator's thread setup (SmtCore ctor). */
RegState
entryState(const SharingOptions &opt)
{
    RegState s;
    s.fill(AbsVal::constant(0)); // reg files are zero-initialized
    bool mt = !opt.multiExecution && !opt.forceTidZero;
    if (mt) {
        std::array<RegVal, maxThreads> tid{}, sp{};
        for (int t = 0; t < maxThreads; ++t) {
            tid[(std::size_t)t] = static_cast<RegVal>(t);
            sp[(std::size_t)t] =
                defaultStackTop -
                static_cast<Addr>(t) * defaultStackBytes;
        }
        s[regTid] = AbsVal::known(tid);
        s[regSp] = AbsVal::known(sp);
    } else {
        s[regSp] = AbsVal::constant(defaultStackTop);
    }
    return s;
}

/** Register sources read by @p in (unified indices). */
inline int
readSources(const Instruction &in, RegIndex out[2])
{
    int n = 0;
    const InstInfo &info = in.info();
    if (info.readsSrc1)
        out[n++] = in.rs1;
    if (info.readsSrc2)
        out[n++] = in.rs2;
    return n;
}

/** An exactly-known uniform scaling operand. (Single-base Affine
 *  values canonicalize to Known, so this covers pinned joins too.) */
bool
knownConst(const AbsVal &s, RegVal *out)
{
    if (s.kind == AbsVal::Kind::Known && s.lanesAllEqual()) {
        *out = s.v[0];
        return true;
    }
    return false;
}

/**
 * Ops that are linear in the Affine base, so a stride (and base facts)
 * survive the transfer: add/sub are linear in both operands, addi and
 * slli scale by a compile-time constant, and mul/sll need the scaling
 * operand to be an exactly-pinned uniform constant (the result stride
 * is stride * constant, which an unpinned Affine{0} cannot supply).
 */
bool
strideLinear(const Instruction &in, const AbsVal &a, const AbsVal &b)
{
    RegVal c = 0;
    switch (in.op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::ADDI:
      case Opcode::SLLI:
        return true;
      case Opcode::MUL:
        return knownConst(a, &c) || knownConst(b, &c);
      case Opcode::SLL:
        return knownConst(b, &c);
      default:
        return false;
    }
}

/** Second synthetic Affine base, to verify base-independence. */
constexpr RegVal kProbeBase = 0x1000'0000'0001ull;

/** Base facts of one affine-viewed source (see BaseView notes). */
struct BaseView
{
    int k = 0;      // alignment: base ≡ r (mod 2^k)
    RegVal r = 0;   // residue (also the evalAlu representative)
    int nb = 0;     // exact candidates (0 = unknown base)
    std::array<RegVal, AbsVal::kMaxBases> b{};
};

/**
 * Base view of a source that passed affineStride(): Known vectors pin
 * the base to v[0]; Affine values expose their lattice + set. Heuristic
 * values carry no base facts (k = 0, empty set).
 */
BaseView
viewOf(const AbsVal &s)
{
    BaseView o;
    if (s.kind == AbsVal::Kind::Known) {
        o.k = 64;
        o.r = s.v[0];
        o.nb = 1;
        o.b[0] = s.v[0];
        return o;
    }
    if (s.kind == AbsVal::Kind::Affine && !s.heuristic) {
        o.k = s.baseAlign;
        o.r = s.baseRes;
        o.nb = s.nBases;
        o.b = s.bases;
    }
    return o;
}

/** A source an op does not read acts as the exact constant 0. */
BaseView
zeroView()
{
    BaseView o;
    o.k = 64;
    o.nb = 1;
    return o;
}

/** Alignment join: all of a's and b's residue classes, coarsened. */
void
latticeJoin(int ka, RegVal ra, int kb, RegVal rb, int *k, RegVal *r)
{
    int kk = ka < kb ? ka : kb;
    int dv = twoAdicVal(ra - rb);
    if (dv < kk)
        kk = dv;
    *k = kk;
    *r = ra & alignMask(kk);
}

/** Per-lane effective addresses of a memory access with Known base. */
std::array<RegVal, maxThreads>
effAddrs(const Instruction &in, const AbsVal &base)
{
    std::array<RegVal, maxThreads> a{};
    for (int t = 0; t < maxThreads; ++t)
        a[(std::size_t)t] =
            base.v[(std::size_t)t] + static_cast<RegVal>(in.imm);
    return a;
}

/** Abstract result of one register-writing instruction. */
AbsVal
evalAbstract(const Instruction &in, Addr pc, const AnalysisState &st,
             const SharingOptions &opt)
{
    const RegState &regs = st.regs;
    if (in.op == Opcode::RECV)
        return AbsVal::unknown(); // per-context message channel
    if (in.op == Opcode::JAL || in.op == Opcode::JALR)
        return AbsVal::constant(exec::evalAlu(in, 0, 0, pc)); // link pc
    if (in.isLoad()) {
        const AbsVal &base = regs[(std::size_t)in.rs1];
        // Store-to-load forwarding: an exact (lane-wise) address match
        // against a tracked slot recovers the stored abstract value.
        if (base.kind == AbsVal::Kind::Known) {
            std::array<RegVal, maxThreads> addr = effAddrs(in, base);
            for (const MemSlot &s : st.slots)
                if (s.addr == addr)
                    return s.val;
        }
        // A load from a thread-uniform address in a *shared* address
        // space sees one location; absent data races the loaded value
        // is uniform too. This is the one data heuristic of the domain
        // — it taints the result Affine{0, heuristic}. ME instances
        // deliberately perturb their private data, so their loads are
        // unknowable.
        if (!opt.multiExecution && base.uniformish())
            return AbsVal::affine(0, /*heuristic=*/true);
        return AbsVal::unknown();
    }

    RegIndex src[2];
    int n = readSources(in, src);
    bool all_known = true;
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        if (s.kind == AbsVal::Kind::Unknown ||
            s.kind == AbsVal::Kind::Bottom) {
            return AbsVal::unknown();
        }
        if (s.kind != AbsVal::Kind::Known)
            all_known = false;
    }
    if (all_known) {
        // All inputs exactly known: run the real ALU per thread lane.
        std::array<RegVal, maxThreads> out{};
        for (int t = 0; t < maxThreads; ++t) {
            RegVal a = in.info().readsSrc1
                           ? regs[(std::size_t)in.rs1].v[(std::size_t)t]
                           : 0;
            RegVal b = in.info().readsSrc2
                           ? regs[(std::size_t)in.rs2].v[(std::size_t)t]
                           : 0;
            out[(std::size_t)t] = exec::evalAlu(in, a, b, pc);
        }
        return AbsVal::known(out);
    }

    // Mixed Known/Affine sources. Collect the heuristic taint and the
    // per-source affine view (Known vectors use their exact lanes).
    bool heuristic = false;
    bool all_uniform = true;
    bool shaped = true;
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        heuristic = heuristic ||
                    (s.kind == AbsVal::Kind::Affine && s.heuristic);
        all_uniform = all_uniform && s.uniformish();
        RegVal stride = 0;
        shaped = shaped && s.affineStride(&stride);
    }

    AbsVal s1 = in.info().readsSrc1 ? regs[(std::size_t)in.rs1] : AbsVal();
    AbsVal s2 = in.info().readsSrc2 ? regs[(std::size_t)in.rs2] : AbsVal();
    bool linear = shaped && strideLinear(in, s1, s2);

    if (!linear) {
        if (!all_uniform)
            return AbsVal::unknown();
        // Deterministic op, every thread presents identical inputs: the
        // result is uniform regardless of the op's shape. When every
        // source's value set is pinned, the result's is too (the op
        // applied to each candidate combination).
        if (!heuristic) {
            BaseView va = in.info().readsSrc1 ? viewOf(s1) : zeroView();
            BaseView vb = in.info().readsSrc2 ? viewOf(s2) : zeroView();
            if (va.nb > 0 && vb.nb > 0) {
                RegVal cand[AbsVal::kMaxBases * AbsVal::kMaxBases];
                int nc = 0;
                for (int i = 0; i < va.nb; ++i)
                    for (int j = 0; j < vb.nb; ++j)
                        cand[nc++] = exec::evalAlu(
                            in, va.b[(std::size_t)i],
                            vb.b[(std::size_t)j], pc);
                return AbsVal::affineBases(0, false, cand, nc);
            }
        }
        return AbsVal::affine(0, heuristic);
    }

    // Some source may be strided. Only base-linear ops keep a provable
    // stride; verify it by evaluating the real ALU lane-wise on two
    // synthetic base vectors and checking both results are affine in
    // tid with the same stride.
    auto lanes = [&](const AbsVal &s, RegVal base,
                     std::array<RegVal, maxThreads> &out) {
        if (s.kind == AbsVal::Kind::Known) {
            out = s.v;
            return;
        }
        for (int t = 0; t < maxThreads; ++t)
            out[(std::size_t)t] =
                base + static_cast<RegVal>(t) * s.stride;
    };
    std::array<RegVal, maxThreads> out0{}, out1{};
    for (int pass = 0; pass < 2; ++pass) {
        RegVal base = pass == 0 ? 0 : kProbeBase;
        std::array<RegVal, maxThreads> a{}, b{};
        if (in.info().readsSrc1)
            lanes(s1, base, a);
        if (in.info().readsSrc2)
            lanes(s2, base, b);
        auto &out = pass == 0 ? out0 : out1;
        for (int t = 0; t < maxThreads; ++t)
            out[(std::size_t)t] = exec::evalAlu(
                in, a[(std::size_t)t], b[(std::size_t)t], pc);
    }
    RegVal stride = out0[1] - out0[0];
    for (int t = 0; t < maxThreads; ++t) {
        RegVal off = static_cast<RegVal>(t) * stride;
        if (out0[(std::size_t)t] != out0[0] + off ||
            out1[(std::size_t)t] != out1[0] + off) {
            return AbsVal::unknown();
        }
    }
    if (heuristic)
        return AbsVal::affine(stride, true);

    // Analytic base propagation. The op is linear in each unpinned
    // source (that is what strideLinear admits), so the result base is
    // evalAlu applied to the source bases, its exact candidates are the
    // op over the candidate cross product, and its alignment is each
    // source's alignment boosted by the 2-adic valuation of that
    // source's linear coefficient (derived by finite difference).
    BaseView va = in.info().readsSrc1 ? viewOf(s1) : zeroView();
    BaseView vb = in.info().readsSrc2 ? viewOf(s2) : zeroView();
    if (va.nb > 0 && vb.nb > 0) {
        RegVal cand[AbsVal::kMaxBases * AbsVal::kMaxBases];
        int nc = 0;
        for (int i = 0; i < va.nb; ++i)
            for (int j = 0; j < vb.nb; ++j)
                cand[nc++] = exec::evalAlu(in, va.b[(std::size_t)i],
                                           vb.b[(std::size_t)j], pc);
        AbsVal res = AbsVal::affineBases(stride, false, cand, nc);
        if (res.nBases > 0)
            return res;
        // Set overflowed under the cap: fall through to the lattice.
    }
    RegVal r0 = exec::evalAlu(in, va.r, vb.r, pc);
    RegVal m1 = exec::evalAlu(in, va.r + 1, vb.r, pc) - r0;
    RegVal m2 = exec::evalAlu(in, va.r, vb.r + 1, pc) - r0;
    auto contrib = [](int k, RegVal m) {
        if (k >= 64)
            return 64;
        int c = k + twoAdicVal(m);
        return c > 64 ? 64 : c;
    };
    int ka = contrib(va.k, m1);
    int kb = contrib(vb.k, m2);
    return AbsVal::affineAligned(stride, false, ka < kb ? ka : kb, r0);
}

/**
 * Memory effect of a store on the tracked frame. Any slot the store
 * may overlap is dropped; a new slot is recorded only when the lane
 * image is unambiguous (see MemSlot).
 */
void
storeTransfer(const Instruction &in, AnalysisState &st,
              const SharingOptions &opt)
{
    const AbsVal &base = st.regs[(std::size_t)in.rs1];
    if (base.kind != AbsVal::Kind::Known) {
        // Unknown/affine target: could hit any tracked slot. (Base
        // facts bound residues, not ranges, so no disjointness proof.)
        st.slots.clear();
        return;
    }
    std::array<RegVal, maxThreads> addr = effAddrs(in, base);
    std::erase_if(st.slots, [&](const MemSlot &s) {
        return vecsMayOverlap(s.addr, addr, opt.multiExecution);
    });
    const AbsVal &val = st.regs[(std::size_t)in.rs2];
    bool lane_safe = opt.multiExecution || lanesDisjoint(addr) ||
                     (base.lanesAllEqual() && val.uniformish());
    if (!lane_safe || val.kind == AbsVal::Kind::Unknown ||
        val.kind == AbsVal::Kind::Bottom) {
        return;
    }
    if (static_cast<int>(st.slots.size()) >= kMaxSlots)
        return;
    MemSlot slot{addr, val};
    auto it = std::lower_bound(st.slots.begin(), st.slots.end(), slot,
                               [](const MemSlot &a, const MemSlot &b) {
                                   return a.addr < b.addr;
                               });
    st.slots.insert(it, std::move(slot));
}

/** Apply @p in to the abstract state (register and frame effects). */
void
transfer(const Instruction &in, Addr pc, AnalysisState &st,
         const SharingOptions &opt)
{
    if (in.isStore()) {
        storeTransfer(in, st, opt);
        return;
    }
    if (!in.info().writesDest || in.rd == regZero)
        return; // r0 writes are architecturally dropped
    st.regs[(std::size_t)in.rd] = evalAbstract(in, pc, st, opt);
}

/** dst = dst ⊔ src on frames: keep exact-address matches, join values. */
void
joinSlots(std::vector<MemSlot> &dst, const std::vector<MemSlot> &src)
{
    std::erase_if(dst, [&](MemSlot &d) {
        for (const MemSlot &s : src)
            if (s.addr == d.addr) {
                d.val = join(d.val, s.val);
                return d.val.kind == AbsVal::Kind::Unknown;
            }
        return true;
    });
}

/** Distinct values among a Known vector's lanes. */
int
distinctLanes(const AbsVal &s)
{
    int n = 0;
    for (int t = 0; t < maxThreads; ++t) {
        bool seen = false;
        for (int u = 0; u < t; ++u)
            seen = seen ||
                   s.v[(std::size_t)u] == s.v[(std::size_t)t];
        n += seen ? 0 : 1;
    }
    return n;
}

/**
 * Classify @p in given the register state flowing into it; also
 * records the predicted sub-instruction count in @p lanes_out.
 */
ShareClass
classify(const Instruction &in, const RegState &regs,
         std::uint8_t *lanes_out)
{
    *lanes_out = 1;

    // RECV reads a per-context FIFO; the splitter never merges it.
    if (in.op == Opcode::RECV) {
        *lanes_out = maxThreads;
        return ShareClass::Divergent;
    }

    RegIndex src[2];
    int n = readSources(in, src);

    // Divergent (sound, enforced): for every thread pair some source
    // provably differs, so no pair can ever present identical inputs.
    // Known lanes prove it pointwise; a non-heuristic Affine proves it
    // when its base facts exclude every cross-path collision.
    bool all_pairs_differ = true;
    for (int t = 0; t < maxThreads && all_pairs_differ; ++t) {
        for (int u = t + 1; u < maxThreads && all_pairs_differ; ++u) {
            bool differs = false;
            for (int i = 0; i < n; ++i) {
                const AbsVal &s = regs[(std::size_t)src[i]];
                if (s.kind == AbsVal::Kind::Known &&
                    s.v[(std::size_t)t] != s.v[(std::size_t)u]) {
                    differs = true;
                    break;
                }
            }
            all_pairs_differ = differs;
        }
    }
    if (n > 0 && all_pairs_differ) {
        int lanes = 2;
        for (int i = 0; i < n; ++i) {
            const AbsVal &s = regs[(std::size_t)src[i]];
            if (s.kind == AbsVal::Kind::Known)
                lanes = std::max(lanes, distinctLanes(s));
        }
        *lanes_out = static_cast<std::uint8_t>(lanes);
        return ShareClass::Divergent;
    }
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        if (s.provablyPairwiseDistinct()) {
            *lanes_out = maxThreads;
            return ShareClass::Divergent;
        }
    }

    // Mergeable (upper bound): every source is uniform across threads.
    // Proven when the uniformity never leaned on the load heuristic.
    bool heuristic = false;
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        if (!s.uniformish())
            return ShareClass::Unclassified;
        heuristic = heuristic || !s.provenUniform();
    }
    return heuristic ? ShareClass::MergeableHeuristic
                     : ShareClass::MergeableProven;
}

/**
 * Candidate condition-operand values of thread @p t: a Known lane is a
 * singleton; a non-heuristic Affine with a surviving base set yields
 * {b + t*stride}. Returns the count, 0 when unbounded.
 */
int
threadCandidates(const AbsVal &s, int t,
                 RegVal out[AbsVal::kMaxBases])
{
    if (s.kind == AbsVal::Kind::Known) {
        out[0] = s.v[(std::size_t)t];
        return 1;
    }
    if (s.kind == AbsVal::Kind::Affine && !s.heuristic && s.nBases > 0) {
        for (int i = 0; i < s.nBases; ++i)
            out[i] = s.bases[(std::size_t)i] +
                     static_cast<RegVal>(t) * s.stride;
        return s.nBases;
    }
    return 0;
}

/**
 * Branch-direction feasibility per thread over candidate value sets.
 * Bit t of @p take_out / @p fall_out is set when thread t may take /
 * may fall through; threads with unbounded candidates get both bits.
 * Both masks are zero for non-conditional-branch instructions.
 */
void
branchLaneMasks(const Instruction &in, Addr pc, const RegState &regs,
                std::uint8_t *take_out, std::uint8_t *fall_out)
{
    *take_out = 0;
    *fall_out = 0;
    if (!in.isCondBranch())
        return;
    const AbsVal &a = regs[(std::size_t)in.rs1];
    const AbsVal &b = regs[(std::size_t)in.rs2];
    for (int t = 0; t < maxThreads; ++t) {
        RegVal ca[AbsVal::kMaxBases], cb[AbsVal::kMaxBases];
        int na = threadCandidates(a, t, ca);
        int nb = threadCandidates(b, t, cb);
        auto bit = static_cast<std::uint8_t>(1u << t);
        if (na == 0 || nb == 0) {
            // Unbounded: could go either way.
            *take_out |= bit;
            *fall_out |= bit;
            continue;
        }
        for (int i = 0; i < na; ++i) {
            for (int j = 0; j < nb; ++j) {
                if (exec::evalBranch(in, ca[i], cb[j], pc).taken)
                    *take_out |= bit;
                else
                    *fall_out |= bit;
            }
        }
    }
}

/**
 * True when some thread is always-taken while another is always-not-
 * taken (so the two provably disagree whatever bases they arrived with).
 */
bool
branchDiverges(std::uint8_t take, std::uint8_t fall)
{
    return (take & static_cast<std::uint8_t>(~fall)) != 0 &&
           (fall & static_cast<std::uint8_t>(~take)) != 0;
}

} // namespace

AbsVal
AbsVal::affineBases(RegVal stride, bool heuristic, const RegVal *cand,
                    int n)
{
    if (heuristic || n <= 0)
        return affine(stride, heuristic);
    RegVal sorted[kMaxBases];
    int nb = 0;
    bool overflow = false;
    for (int i = 0; i < n && !overflow; ++i) {
        bool dup = false;
        for (int j = 0; j < nb; ++j)
            dup = dup || sorted[j] == cand[i];
        if (dup)
            continue;
        if (nb == kMaxBases) {
            overflow = true;
            break;
        }
        sorted[nb++] = cand[i];
    }
    if (overflow)
        return affine(stride, heuristic);
    // Bounded insertion sort (nb <= kMaxBases; std::sort's unrolled
    // small-array path trips gcc's -Warray-bounds here).
    for (int i = 1; i < nb; ++i) {
        RegVal x = sorted[i];
        int j = i;
        for (; j > 0 && sorted[j - 1] > x; --j)
            sorted[j] = sorted[j - 1];
        sorted[j] = x;
    }
    if (nb == 1) {
        // A single admissible base pins every lane exactly: canonicalize
        // to Known so downstream transfer/classify/lints get full
        // precision (and the representation stays unique).
        std::array<RegVal, maxThreads> lanes{};
        for (int t = 0; t < maxThreads; ++t)
            lanes[(std::size_t)t] =
                sorted[0] + static_cast<RegVal>(t) * stride;
        return known(lanes);
    }
    AbsVal a;
    a.kind = Kind::Affine;
    a.stride = stride;
    a.nBases = static_cast<std::uint8_t>(nb);
    int k = 64;
    RegVal r = sorted[0];
    for (int i = 0; i < nb; ++i) {
        a.bases[(std::size_t)i] = sorted[i];
        int kj = 0;
        RegVal rj = 0;
        latticeJoin(k, r, 64, sorted[i], &kj, &rj);
        k = kj;
        r = rj;
    }
    a.baseAlign = static_cast<std::uint8_t>(k);
    a.baseRes = r;
    return a;
}

bool
AbsVal::provablyPairwiseDistinct() const
{
    if (kind != Kind::Affine || heuristic || stride == 0)
        return false;
    for (int d = 1; d < maxThreads; ++d) {
        RegVal delta = static_cast<RegVal>(d) * stride;
        if (nBases > 0) {
            // Thread t holds b1 + t*s, thread t+d holds b2 + (t+d)*s:
            // they collide iff b1 - b2 == d*s for some candidate pair.
            for (int i = 0; i < nBases; ++i)
                for (int j = 0; j < nBases; ++j)
                    if (bases[(std::size_t)i] - bases[(std::size_t)j] ==
                        delta)
                        return false;
        } else if (baseAlign > 0) {
            // All bases agree mod 2^k, so a collision needs d*s ≡ 0.
            if ((delta & alignMask(baseAlign)) == 0)
                return false;
        } else {
            return false;
        }
    }
    return true;
}

AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::Bottom)
        return b;
    if (b.kind == Kind::Bottom)
        return a;
    if (a == b)
        return a;
    if (a.kind == Kind::Unknown || b.kind == Kind::Unknown)
        return AbsVal::unknown();
    // Widening: distinct values sharing a per-thread stride join to
    // Affine{stride} instead of collapsing to Unknown, so loop-carried
    // induction variables stabilize. The base facts of both sides merge:
    // exact candidate sets union (widening away past the cap), and the
    // alignment lattice coarsens to the common residue class. stride ==
    // 0 is the uniform-but-path-dependent case that used to be
    // `Uniform`.
    RegVal sa = 0, sb = 0;
    if (a.affineStride(&sa) && b.affineStride(&sb) && sa == sb) {
        bool heuristic = (a.kind == Kind::Affine && a.heuristic) ||
                         (b.kind == Kind::Affine && b.heuristic);
        if (heuristic)
            return AbsVal::affine(sa, true);
        BaseView va = viewOf(a), vb = viewOf(b);
        if (va.nb > 0 && vb.nb > 0) {
            RegVal cand[2 * AbsVal::kMaxBases];
            int nc = 0;
            for (int i = 0; i < va.nb; ++i)
                cand[nc++] = va.b[(std::size_t)i];
            for (int i = 0; i < vb.nb; ++i)
                cand[nc++] = vb.b[(std::size_t)i];
            AbsVal res = AbsVal::affineBases(sa, false, cand, nc);
            if (res.nBases > 0)
                return res;
        }
        // Set widened away (or one side already had): keep alignment.
        int k = 0;
        RegVal r = 0;
        latticeJoin(va.k, va.r, vb.k, vb.r, &k, &r);
        return AbsVal::affineAligned(sa, false, k, r);
    }
    return AbsVal::unknown();
}

const char *
shareClassName(ShareClass c)
{
    switch (c) {
      case ShareClass::MergeableProven: return "mergeable-proven";
      case ShareClass::MergeableHeuristic: return "mergeable-heuristic";
      case ShareClass::Unclassified: return "unknown";
      case ShareClass::Divergent: return "divergent";
    }
    return "?";
}

SharingResult
analyzeSharing(const Cfg &cfg, const SharingOptions &opt)
{
    const Program &prog = cfg.program();
    const auto &blocks = cfg.blocks();
    std::size_t n_insts = prog.code.size();

    SharingResult res;
    res.shareClass.assign(n_insts, ShareClass::Unclassified);
    res.memBase.assign(n_insts, AbsVal());
    res.divergentBranch.assign(n_insts, false);
    res.predictedLanes.assign(n_insts, 1);
    res.branchCanTake.assign(n_insts, 0);
    res.branchCanFall.assign(n_insts, 0);
    if (blocks.empty())
        return res;

    // Node-entry states; fixpoint over the context-expanded graph (one
    // node per block in the degenerate case — the old flat analysis).
    // Running per (block, call-string) node keeps caller state intact
    // around calls: a helper's body is analyzed once per context, and
    // its ret flows each context's state only to the matching call
    // site's return point instead of joining every caller.
    const auto &nodes = cfg.ctxNodes();
    std::vector<AnalysisState> in(nodes.size());
    for (auto &st : in)
        st.regs.fill(AbsVal());
    if (nodes.empty())
        return res;
    int entry_node = cfg.ctxEntry();
    in[(std::size_t)entry_node].regs = entryState(opt);

    std::vector<bool> queued(nodes.size(), false);
    std::vector<int> work{entry_node};
    queued[(std::size_t)entry_node] = true;
    while (!work.empty()) {
        int v = work.back();
        work.pop_back();
        queued[(std::size_t)v] = false;

        AnalysisState st = in[(std::size_t)v];
        const BasicBlock &blk = blocks[(std::size_t)nodes[(std::size_t)v].block];
        for (int i = blk.first; i <= blk.last; ++i) {
            const Instruction &inst = prog.code[(std::size_t)i];
            Addr pc = prog.codeBase +
                      static_cast<Addr>(i) * instBytes;
            transfer(inst, pc, st, opt);
        }
        for (int s : nodes[(std::size_t)v].succs) {
            AnalysisState &cur = in[(std::size_t)s];
            AnalysisState merged;
            for (int r = 0; r < numArchRegs; ++r) {
                merged.regs[(std::size_t)r] =
                    join(cur.regs[(std::size_t)r],
                         st.regs[(std::size_t)r]);
            }
            // First state to reach a node seeds its frame; later ones
            // meet it (slots start "absent everywhere" = ⊤ only once a
            // path has actually arrived).
            bool first = true;
            for (int r = 0; first && r < numArchRegs; ++r)
                first = cur.regs[(std::size_t)r].kind ==
                        AbsVal::Kind::Bottom;
            merged.slots = first ? st.slots : cur.slots;
            if (!first)
                joinSlots(merged.slots, st.slots);
            if (!(merged == cur)) {
                cur = std::move(merged);
                if (!queued[(std::size_t)s]) {
                    queued[(std::size_t)s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    // Final walk: classify each reachable instruction with the state
    // flowing into it — the join over all of its block's context
    // copies, since PC-coincidence merging can group threads from any
    // mix of contexts. Single-context blocks (all of the entry frame)
    // keep full per-context precision.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &blk = blocks[b];
        if (!blk.reachable)
            continue;
        AnalysisState st;
        st.regs.fill(AbsVal());
        bool first = true;
        for (int v : cfg.ctxNodesOf(static_cast<int>(b))) {
            for (int r = 0; r < numArchRegs; ++r)
                st.regs[(std::size_t)r] =
                    join(st.regs[(std::size_t)r],
                         in[(std::size_t)v].regs[(std::size_t)r]);
            if (first)
                st.slots = in[(std::size_t)v].slots;
            else
                joinSlots(st.slots, in[(std::size_t)v].slots);
            first = false;
        }
        for (int i = blk.first; i <= blk.last; ++i) {
            const Instruction &inst = prog.code[(std::size_t)i];
            Addr pc = prog.codeBase +
                      static_cast<Addr>(i) * instBytes;
            std::uint8_t lanes = 1;
            ShareClass c = classify(inst, st.regs, &lanes);
            res.shareClass[(std::size_t)i] = c;
            res.predictedLanes[(std::size_t)i] = lanes;
            res.classCounts[(std::size_t)c] += 1;
            if (inst.isMem())
                res.memBase[(std::size_t)i] = st.regs[(std::size_t)inst.rs1];
            std::uint8_t take = 0, fall = 0;
            branchLaneMasks(inst, pc, st.regs, &take, &fall);
            res.branchCanTake[(std::size_t)i] = take;
            res.branchCanFall[(std::size_t)i] = fall;
            if (branchDiverges(take, fall))
                res.divergentBranch[(std::size_t)i] = true;
            transfer(inst, pc, st, opt);
        }
    }
    return res;
}

} // namespace analysis
} // namespace mmt
