#include "analysis/sharing.hh"

#include "isa/exec.hh"

namespace mmt
{
namespace analysis
{

namespace
{

/** Abstract machine state: one AbsVal per architected register. */
using RegState = std::array<AbsVal, numArchRegs>;

/** Entry state per the simulator's thread setup (SmtCore ctor). */
RegState
entryState(const SharingOptions &opt)
{
    RegState s;
    s.fill(AbsVal::constant(0)); // reg files are zero-initialized
    bool mt = !opt.multiExecution && !opt.forceTidZero;
    if (mt) {
        std::array<RegVal, maxThreads> tid{}, sp{};
        for (int t = 0; t < maxThreads; ++t) {
            tid[(std::size_t)t] = static_cast<RegVal>(t);
            sp[(std::size_t)t] =
                defaultStackTop -
                static_cast<Addr>(t) * defaultStackBytes;
        }
        s[regTid] = AbsVal::known(tid);
        s[regSp] = AbsVal::known(sp);
    } else {
        s[regSp] = AbsVal::constant(defaultStackTop);
    }
    return s;
}

/** Register sources read by @p in (unified indices). */
inline int
readSources(const Instruction &in, RegIndex out[2])
{
    int n = 0;
    const InstInfo &info = in.info();
    if (info.readsSrc1)
        out[n++] = in.rs1;
    if (info.readsSrc2)
        out[n++] = in.rs2;
    return n;
}

/**
 * Ops that are linear in the untracked Affine base, so a stride
 * survives the transfer: add/sub are linear in both operands, addi and
 * slli scale by a compile-time constant, and mul/sll need the scaling
 * operand to be an exactly-Known uniform constant (the result stride is
 * stride * constant, which an untracked Affine{0} value cannot supply).
 */
bool
strideLinear(const Instruction &in, const AbsVal &a, const AbsVal &b)
{
    auto known_const = [](const AbsVal &s) {
        return s.kind == AbsVal::Kind::Known && s.lanesAllEqual();
    };
    switch (in.op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::ADDI:
      case Opcode::SLLI:
        return true;
      case Opcode::MUL:
        return known_const(a) || known_const(b);
      case Opcode::SLL:
        return known_const(b);
      default:
        return false;
    }
}

/** Second synthetic Affine base, to verify base-independence. */
constexpr RegVal kProbeBase = 0x1000'0000'0001ull;

/** Abstract result of one register-writing instruction. */
AbsVal
evalAbstract(const Instruction &in, Addr pc, const RegState &regs,
             const SharingOptions &opt)
{
    if (in.op == Opcode::RECV)
        return AbsVal::unknown(); // per-context message channel
    if (in.op == Opcode::JAL || in.op == Opcode::JALR)
        return AbsVal::constant(exec::evalAlu(in, 0, 0, pc)); // link pc
    if (in.isLoad()) {
        // A load from a thread-uniform address in a *shared* address
        // space sees one location; absent data races the loaded value
        // is uniform too. This is the one data heuristic of the domain
        // — it taints the result Affine{0, heuristic}. ME instances
        // deliberately perturb their private data, so their loads are
        // unknowable.
        const AbsVal &base = regs[(std::size_t)in.rs1];
        if (!opt.multiExecution && base.uniformish())
            return AbsVal::affine(0, /*heuristic=*/true);
        return AbsVal::unknown();
    }

    RegIndex src[2];
    int n = readSources(in, src);
    bool all_known = true;
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        if (s.kind == AbsVal::Kind::Unknown ||
            s.kind == AbsVal::Kind::Bottom) {
            return AbsVal::unknown();
        }
        if (s.kind != AbsVal::Kind::Known)
            all_known = false;
    }
    if (all_known) {
        // All inputs exactly known: run the real ALU per thread lane.
        std::array<RegVal, maxThreads> out{};
        for (int t = 0; t < maxThreads; ++t) {
            RegVal a = in.info().readsSrc1
                           ? regs[(std::size_t)in.rs1].v[(std::size_t)t]
                           : 0;
            RegVal b = in.info().readsSrc2
                           ? regs[(std::size_t)in.rs2].v[(std::size_t)t]
                           : 0;
            out[(std::size_t)t] = exec::evalAlu(in, a, b, pc);
        }
        return AbsVal::known(out);
    }

    // Mixed Known/Affine sources. Collect the heuristic taint and the
    // per-source affine view (Known vectors use their exact lanes).
    bool heuristic = false;
    bool all_uniform = true;
    bool shaped = true;
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        heuristic = heuristic ||
                    (s.kind == AbsVal::Kind::Affine && s.heuristic);
        all_uniform = all_uniform && s.uniformish();
        RegVal stride = 0;
        shaped = shaped && s.affineStride(&stride);
    }
    // Deterministic op, every thread presents identical inputs: the
    // result is uniform regardless of the op's shape.
    if (all_uniform)
        return AbsVal::affine(0, heuristic);

    // Some source is strided. Only base-linear ops keep a provable
    // stride; verify it by evaluating the real ALU lane-wise on two
    // synthetic base vectors and checking both results are affine in
    // tid with the same stride.
    AbsVal s1 = in.info().readsSrc1 ? regs[(std::size_t)in.rs1] : AbsVal();
    AbsVal s2 = in.info().readsSrc2 ? regs[(std::size_t)in.rs2] : AbsVal();
    if (!shaped || !strideLinear(in, s1, s2))
        return AbsVal::unknown();

    auto lanes = [&](const AbsVal &s, RegVal base,
                     std::array<RegVal, maxThreads> &out) {
        if (s.kind == AbsVal::Kind::Known) {
            out = s.v;
            return;
        }
        for (int t = 0; t < maxThreads; ++t)
            out[(std::size_t)t] =
                base + static_cast<RegVal>(t) * s.stride;
    };
    std::array<RegVal, maxThreads> out0{}, out1{};
    for (int pass = 0; pass < 2; ++pass) {
        RegVal base = pass == 0 ? 0 : kProbeBase;
        std::array<RegVal, maxThreads> a{}, b{};
        if (in.info().readsSrc1)
            lanes(s1, base, a);
        if (in.info().readsSrc2)
            lanes(s2, base, b);
        auto &out = pass == 0 ? out0 : out1;
        for (int t = 0; t < maxThreads; ++t)
            out[(std::size_t)t] = exec::evalAlu(
                in, a[(std::size_t)t], b[(std::size_t)t], pc);
    }
    RegVal stride = out0[1] - out0[0];
    for (int t = 0; t < maxThreads; ++t) {
        RegVal off = static_cast<RegVal>(t) * stride;
        if (out0[(std::size_t)t] != out0[0] + off ||
            out1[(std::size_t)t] != out1[0] + off) {
            return AbsVal::unknown();
        }
    }
    return AbsVal::affine(stride, heuristic);
}

/** Apply @p in to @p regs (register effect only). */
void
transfer(const Instruction &in, Addr pc, RegState &regs,
         const SharingOptions &opt)
{
    if (!in.info().writesDest || in.rd == regZero)
        return; // r0 writes are architecturally dropped
    regs[(std::size_t)in.rd] = evalAbstract(in, pc, regs, opt);
}

/** Classify @p in given the register state flowing into it. */
ShareClass
classify(const Instruction &in, const RegState &regs)
{
    // RECV reads a per-context FIFO; the splitter never merges it.
    if (in.op == Opcode::RECV)
        return ShareClass::Divergent;

    RegIndex src[2];
    int n = readSources(in, src);

    // Divergent (sound, enforced): for every thread pair some source
    // provably differs, so no pair can ever present identical inputs.
    // Only Known facts qualify — an Affine stride proves pairwise
    // inequality along one path, not across paths.
    bool all_pairs_differ = true;
    for (int t = 0; t < maxThreads && all_pairs_differ; ++t) {
        for (int u = t + 1; u < maxThreads && all_pairs_differ; ++u) {
            bool differs = false;
            for (int i = 0; i < n; ++i) {
                const AbsVal &s = regs[(std::size_t)src[i]];
                if (s.kind == AbsVal::Kind::Known &&
                    s.v[(std::size_t)t] != s.v[(std::size_t)u]) {
                    differs = true;
                    break;
                }
            }
            all_pairs_differ = differs;
        }
    }
    if (n > 0 && all_pairs_differ)
        return ShareClass::Divergent;

    // Mergeable (upper bound): every source is uniform across threads.
    // Proven when the uniformity never leaned on the load heuristic.
    bool heuristic = false;
    for (int i = 0; i < n; ++i) {
        const AbsVal &s = regs[(std::size_t)src[i]];
        if (!s.uniformish())
            return ShareClass::Unclassified;
        heuristic = heuristic || !s.provenUniform();
    }
    return heuristic ? ShareClass::MergeableHeuristic
                     : ShareClass::MergeableProven;
}

/** Lane-wise branch direction; true if two lanes provably disagree. */
bool
branchDiverges(const Instruction &in, Addr pc, const RegState &regs)
{
    if (!in.isCondBranch())
        return false;
    const AbsVal &a = regs[(std::size_t)in.rs1];
    const AbsVal &b = regs[(std::size_t)in.rs2];
    if (a.kind != AbsVal::Kind::Known || b.kind != AbsVal::Kind::Known)
        return false;
    bool taken0 = exec::evalBranch(in, a.v[0], b.v[0], pc).taken;
    for (int t = 1; t < maxThreads; ++t) {
        if (exec::evalBranch(in, a.v[(std::size_t)t],
                             b.v[(std::size_t)t], pc)
                .taken != taken0) {
            return true;
        }
    }
    return false;
}

} // namespace

AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    using Kind = AbsVal::Kind;
    if (a.kind == Kind::Bottom)
        return b;
    if (b.kind == Kind::Bottom)
        return a;
    if (a == b)
        return a;
    if (a.kind == Kind::Unknown || b.kind == Kind::Unknown)
        return AbsVal::unknown();
    // Widening: distinct values sharing a per-thread stride join to
    // Affine{stride} (base forgotten) instead of collapsing to Unknown,
    // so loop-carried induction variables stabilize. stride == 0 is the
    // uniform-but-path-dependent case that used to be `Uniform`.
    RegVal sa = 0, sb = 0;
    if (a.affineStride(&sa) && b.affineStride(&sb) && sa == sb) {
        bool heuristic = (a.kind == Kind::Affine && a.heuristic) ||
                         (b.kind == Kind::Affine && b.heuristic);
        return AbsVal::affine(sa, heuristic);
    }
    return AbsVal::unknown();
}

const char *
shareClassName(ShareClass c)
{
    switch (c) {
      case ShareClass::MergeableProven: return "mergeable-proven";
      case ShareClass::MergeableHeuristic: return "mergeable-heuristic";
      case ShareClass::Unclassified: return "unknown";
      case ShareClass::Divergent: return "divergent";
    }
    return "?";
}

SharingResult
analyzeSharing(const Cfg &cfg, const SharingOptions &opt)
{
    const Program &prog = cfg.program();
    const auto &blocks = cfg.blocks();
    std::size_t n_insts = prog.code.size();

    SharingResult res;
    res.shareClass.assign(n_insts, ShareClass::Unclassified);
    res.memBase.assign(n_insts, AbsVal());
    res.divergentBranch.assign(n_insts, false);
    if (blocks.empty())
        return res;

    // Block-entry states; fixpoint over reachable blocks.
    std::vector<RegState> in(blocks.size());
    for (auto &st : in)
        st.fill(AbsVal());
    int entry_block =
        prog.validPc(prog.entry)
            ? cfg.blockOf(static_cast<int>((prog.entry - prog.codeBase) /
                                           instBytes))
            : 0;
    in[(std::size_t)entry_block] = entryState(opt);

    std::vector<bool> queued(blocks.size(), false);
    std::vector<int> work{entry_block};
    queued[(std::size_t)entry_block] = true;
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        queued[(std::size_t)b] = false;

        RegState st = in[(std::size_t)b];
        const BasicBlock &blk = blocks[(std::size_t)b];
        for (int i = blk.first; i <= blk.last; ++i) {
            const Instruction &inst = prog.code[(std::size_t)i];
            Addr pc = prog.codeBase +
                      static_cast<Addr>(i) * instBytes;
            transfer(inst, pc, st, opt);
        }
        for (int s : blk.succs) {
            RegState merged;
            bool changed = false;
            for (int r = 0; r < numArchRegs; ++r) {
                merged[(std::size_t)r] =
                    join(in[(std::size_t)s][(std::size_t)r],
                         st[(std::size_t)r]);
                changed = changed || !(merged[(std::size_t)r] ==
                                       in[(std::size_t)s][(std::size_t)r]);
            }
            if (changed) {
                in[(std::size_t)s] = merged;
                if (!queued[(std::size_t)s]) {
                    queued[(std::size_t)s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    // Final walk: classify each reachable instruction with the state
    // flowing into it.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &blk = blocks[b];
        if (!blk.reachable)
            continue;
        RegState st = in[b];
        for (int i = blk.first; i <= blk.last; ++i) {
            const Instruction &inst = prog.code[(std::size_t)i];
            Addr pc = prog.codeBase +
                      static_cast<Addr>(i) * instBytes;
            ShareClass c = classify(inst, st);
            res.shareClass[(std::size_t)i] = c;
            res.classCounts[(std::size_t)c] += 1;
            if (inst.isMem())
                res.memBase[(std::size_t)i] = st[(std::size_t)inst.rs1];
            if (branchDiverges(inst, pc, st))
                res.divergentBranch[(std::size_t)i] = true;
            transfer(inst, pc, st, opt);
        }
    }
    return res;
}

} // namespace analysis
} // namespace mmt
