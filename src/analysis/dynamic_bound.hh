/**
 * @file
 * Dynamic cross-check of the static sharing upper bound.
 *
 * The sharing pass's Divergent class is a *proof* that an instruction
 * can never be execute-merged. The simulator reports which PCs it
 * actually merged (PcMergeProfile, filled by a commit hook); if a
 * merged PC is statically Divergent, either the pipeline merged
 * non-identical instances (an RST/splitter bug) or the analyzer's
 * abstract domain is unsound. Enforced as a ctest over the registered
 * workloads and as a property test on random programs.
 *
 * The weighted fractions follow: every dynamically merged
 * thread-instruction belongs to a non-Divergent PC, hence
 * staticMergeableFrac >= dynamicMergedFrac (both weighted by committed
 * thread-instructions).
 */

#ifndef MMT_ANALYSIS_DYNAMIC_BOUND_HH
#define MMT_ANALYSIS_DYNAMIC_BOUND_HH

#include "analysis/analyzer.hh"
#include "sim/simulator.hh"

namespace mmt
{
namespace analysis
{

/** One violation: a merged PC the analysis proved unmergeable. */
struct BoundViolation
{
    Addr pc = 0;
    int line = 0;
    std::uint64_t merged = 0; // merged thread-insts committed at pc
};

/** Comparison of static classes against one run's merge profile. */
struct MergeBoundReport
{
    std::uint64_t committed = 0;           // total thread-insts
    std::uint64_t merged = 0;              // exec-merged thread-insts
    std::uint64_t mergeableCommitted = 0;  // committed at non-Divergent pcs
    std::vector<BoundViolation> violations;

    bool ok() const { return violations.empty(); }

    double
    dynamicMergedFrac() const
    {
        return committed ? static_cast<double>(merged) /
                               static_cast<double>(committed)
                         : 0.0;
    }

    /** Committed-weighted static upper bound. */
    double
    staticMergeableFrac() const
    {
        return committed ? static_cast<double>(mergeableCommitted) /
                               static_cast<double>(committed)
                         : 1.0;
    }
};

/** Compare @p analysis against the merge profile of one run. */
MergeBoundReport checkMergeUpperBound(const AnalysisResult &analysis,
                                      const Program &prog,
                                      const PcMergeProfile &profile);

/**
 * Convenience: analyze @p w, run it under @p kind with @p num_threads
 * (and optional simulator overrides, e.g. a --static-hints mode), and
 * cross-check. Also fills @p out_result / @p out_analysis when
 * non-null.
 */
MergeBoundReport runMergeBoundCheck(const Workload &w, ConfigKind kind,
                                    int num_threads,
                                    AnalysisResult *out_analysis = nullptr,
                                    RunResult *out_result = nullptr,
                                    const SimOverrides &ov = SimOverrides());

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_DYNAMIC_BOUND_HH
