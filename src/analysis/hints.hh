/**
 * @file
 * FetchHints — the static facts the frontend can consume (paper §2's
 * "software hints system" suggestion, fed by the mmt-analyze passes):
 *
 *   divergentPcs           PCs statically proven to lie on diverged
 *                          control paths: instructions strictly between
 *                          a tid-divergent branch and its re-convergence
 *                          point (the hammock arms), plus Divergent-
 *                          class instructions. Thread groups cannot
 *                          usefully persist at these PCs, so MERGE
 *                          attempts / MERGEHINT waits there are wasted
 *                          work (merge-skip mode), and a CATCHUP chaser
 *                          branching into one is transiently — not
 *                          terminally — off the ahead thread's path.
 *                          Excludes the branches themselves and the
 *                          re-convergence points, where merging is
 *                          still profitable.
 *   tidDivergentBranchPcs  Conditional branches whose direction
 *                          provably differs between thread pairs — the
 *                          points where fetch groups *will* diverge.
 *   reconvergencePcs       Re-convergence targets of those branches:
 *                          the first instruction of the branch block's
 *                          immediate post-dominator. Seeding FHBs with
 *                          these lets DETECT→CATCHUP fire without
 *                          waiting for taken-branch history (fhb-seed
 *                          mode).
 *
 * All three vectors are sorted and deduplicated so consumers can binary
 * search.
 */

#ifndef MMT_ANALYSIS_HINTS_HH
#define MMT_ANALYSIS_HINTS_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/sharing.hh"

namespace mmt
{
namespace analysis
{

/** Static fetch hints for one assembled program (see file comment). */
struct FetchHints
{
    std::vector<Addr> divergentPcs;
    std::vector<Addr> tidDivergentBranchPcs;
    std::vector<Addr> reconvergencePcs;
};

/**
 * Derive fetch hints from a completed sharing pass. Only reachable
 * instructions contribute; a tid-divergent branch whose ipdom is the
 * virtual exit (no code-level re-convergence) yields no reconvergence
 * entry.
 */
FetchHints computeFetchHints(const Cfg &cfg, const SharingResult &sharing);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_HINTS_HH
