/**
 * @file
 * FetchHints — the static facts the frontend can consume (paper §2's
 * "software hints system" suggestion, fed by the mmt-analyze passes):
 *
 *   divergentPcs           PCs statically proven to lie on diverged
 *                          control paths: instructions strictly between
 *                          a tid-divergent branch and its re-convergence
 *                          point (the hammock arms), plus Divergent-
 *                          class instructions. A CATCHUP chaser
 *                          branching into one is transiently — not
 *                          terminally — off the ahead thread's path.
 *                          Excludes the branches themselves and the
 *                          re-convergence points, where merging is
 *                          still profitable.
 *   tidDivergentBranchPcs  Conditional branches whose direction
 *                          provably differs between thread pairs — the
 *                          points where fetch groups *will* diverge.
 *   reconvergencePcs       Re-convergence targets of those branches:
 *                          the first instruction of the branch block's
 *                          immediate post-dominator. Seeding FHBs with
 *                          these lets DETECT→CATCHUP fire without
 *                          waiting for taken-branch history (fhb-seed
 *                          mode).
 *   splitPcs/splitCounts   PCs whose instruction the splitter must
 *                          provably expand into >1 sub-instruction
 *                          (sharing.predictedLanes, from the affine
 *                          domain's pairwise-distinct proofs), with the
 *                          predicted instance count. The frontend
 *                          charges these against the fetch width
 *                          (split-steer mode): one fetch record that
 *                          expands into k instances occupies k decode/
 *                          split slots, steering the leftover slots to
 *                          other streams instead of over-fetching.
 *
 * All Addr vectors are sorted and deduplicated so consumers can binary
 * search; splitCounts is index-parallel with splitPcs.
 */

#ifndef MMT_ANALYSIS_HINTS_HH
#define MMT_ANALYSIS_HINTS_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/sharing.hh"

namespace mmt
{
namespace analysis
{

/** Static fetch hints for one assembled program (see file comment). */
struct FetchHints
{
    std::vector<Addr> divergentPcs;
    std::vector<Addr> tidDivergentBranchPcs;
    std::vector<Addr> reconvergencePcs;
    /** Sorted PCs with predicted sub-instruction count > 1, and the
     *  predicted counts (index-parallel). */
    std::vector<Addr> splitPcs;
    std::vector<std::uint8_t> splitCounts;
};

/**
 * Derive fetch hints from a completed sharing pass. Only reachable
 * instructions contribute; a tid-divergent branch whose ipdom is the
 * virtual exit (no code-level re-convergence) yields no reconvergence
 * entry.
 */
FetchHints computeFetchHints(const Cfg &cfg, const SharingResult &sharing);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_HINTS_HH
