/**
 * @file
 * mmt-analyze entry points: run CFG + dataflow + sharing + lints over a
 * program or a registered workload and render the findings.
 */

#ifndef MMT_ANALYSIS_ANALYZER_HH
#define MMT_ANALYSIS_ANALYZER_HH

#include <memory>
#include <string>

#include "analysis/lint.hh"
#include "workloads/workload.hh"

namespace mmt
{
namespace analysis
{

struct AnalysisOptions
{
    bool multiExecution = false;
    bool forceTidZero = false;
};

/** JSON report schema version; bump on any key/shape change so the CI
 *  lint gate fails loudly instead of parsing stale keys.
 *  v4: race_checked / race_pairs / race_suppressed keys. */
inline constexpr int kAnalyzeSchemaVersion = 4;

/** Everything the passes computed about one program. */
struct AnalysisResult
{
    /** Set when the result owns the analyzed program (analyzeWorkload);
     *  the Cfg references it, so it must outlive cfg. */
    std::shared_ptr<const Program> program;
    std::shared_ptr<const Cfg> cfg; // shared: results are copyable
    DataflowResult dataflow;
    SharingResult sharing;
    RaceResult race;
    std::vector<Diagnostic> diags;

    int count(Severity s) const;
    int errors() const { return count(Severity::Error); }
    int warnings() const { return count(Severity::Warning); }

    /** Sharing class of the instruction at @p pc (Unclassified when
     *  the pc does not address this program). */
    ShareClass classOf(Addr pc) const;

    /** Fraction of reachable static instructions not provably
     *  divergent — the static upper bound on merged execution. */
    double staticMergeableFrac() const;

    /** Fraction of reachable static instructions classified
     *  MergeableProven (uniform inputs derived without the shared-load
     *  heuristic) — the precision metric the affine domain moves. */
    double mergeableProvenFrac() const;
};

AnalysisResult analyzeProgram(const Program &prog,
                              const AnalysisOptions &opt = {});

/** Assemble @p w and analyze it with the workload's thread semantics. */
AnalysisResult analyzeWorkload(const Workload &w);

/**
 * Render a report. Text mode prints a summary plus one line per
 * diagnostic ("line 12 [warning] use-before-def: ..."); JSON mode emits
 * a machine-readable object with the class counts and diagnostics.
 */
std::string renderReport(const AnalysisResult &res,
                         const std::string &name, bool json);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_ANALYZER_HH
