#include "analysis/dataflow.hh"

namespace mmt
{
namespace analysis
{

namespace
{

RegMask
defMask(const Instruction &in)
{
    if (!in.info().writesDest || in.rd == regZero)
        return 0; // r0 writes are dropped
    return regBit(in.rd);
}

RegMask
useMask(const Instruction &in)
{
    RegMask m = 0;
    if (in.info().readsSrc1)
        m |= regBit(in.rs1);
    if (in.info().readsSrc2)
        m |= regBit(in.rs2);
    return m;
}

/** Registers the hardware initializes before the first instruction. */
constexpr RegMask kHwInit =
    regBit(regZero) | regBit(regTid) | regBit(regSp);

constexpr RegMask kAll = ~RegMask(0);

} // namespace

DataflowResult
analyzeDataflow(const Cfg &cfg)
{
    const Program &prog = cfg.program();
    const auto &blocks = cfg.blocks();
    std::size_t n_insts = prog.code.size();

    DataflowResult res;
    res.useBeforeDef.assign(n_insts, 0);
    res.deadDef.assign(n_insts, false);
    if (blocks.empty())
        return res;

    int entry_block =
        prog.validPc(prog.entry)
            ? cfg.blockOf(static_cast<int>((prog.entry - prog.codeBase) /
                                           instBytes))
            : 0;

    // --- Must-defined (forward, intersection). Defs only accumulate
    // along a path, so in[entry] is exactly the hardware-initialized
    // set even in the presence of back edges to the entry block.
    std::vector<RegMask> must_in(blocks.size(), kAll);
    must_in[(std::size_t)entry_block] = kHwInit;
    auto blockDefs = [&](const BasicBlock &b) {
        RegMask m = 0;
        for (int i = b.first; i <= b.last; ++i)
            m |= defMask(prog.code[(std::size_t)i]);
        return m;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            if (!blocks[b].reachable ||
                static_cast<int>(b) == entry_block) {
                continue;
            }
            RegMask in = kAll;
            for (int p : blocks[b].preds) {
                if (!blocks[(std::size_t)p].reachable)
                    continue;
                in &= must_in[(std::size_t)p] |
                      blockDefs(blocks[(std::size_t)p]);
            }
            if (in != must_in[b]) {
                must_in[b] = in;
                changed = true;
            }
        }
    }

    // --- Liveness (backward, union). All registers are live at exit:
    // the golden model compares final architected state.
    std::vector<RegMask> live_out(blocks.size(), 0);
    auto blockLiveIn = [&](std::size_t b, RegMask out) {
        for (int i = blocks[b].last; i >= blocks[b].first; --i) {
            const Instruction &in = prog.code[(std::size_t)i];
            out = (out & ~defMask(in)) | useMask(in);
        }
        return out;
    };
    auto exitAdjacent = [&](const BasicBlock &b) {
        return b.succs.empty() || b.fallsOffEnd ||
               prog.code[(std::size_t)b.last].op == Opcode::HALT;
    };
    changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = blocks.size(); b-- > 0;) {
            if (!blocks[b].reachable)
                continue;
            RegMask out = exitAdjacent(blocks[b]) ? kAll : 0;
            for (int s : blocks[b].succs)
                out |= blockLiveIn((std::size_t)s, live_out[(std::size_t)s]);
            if (out != live_out[b]) {
                live_out[b] = out;
                changed = true;
            }
        }
    }

    // --- Per-instruction findings over reachable blocks.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (!blocks[b].reachable)
            continue;
        RegMask defined = must_in[b];
        for (int i = blocks[b].first; i <= blocks[b].last; ++i) {
            const Instruction &in = prog.code[(std::size_t)i];
            res.useBeforeDef[(std::size_t)i] = useMask(in) & ~defined;
            defined |= defMask(in);
        }
        // live-after per instruction, walking backward.
        RegMask live = live_out[b];
        for (int i = blocks[b].last; i >= blocks[b].first; --i) {
            const Instruction &in = prog.code[(std::size_t)i];
            RegMask def = defMask(in);
            if (def != 0 && (live & def) == 0)
                res.deadDef[(std::size_t)i] = true;
            live = (live & ~def) | useMask(in);
        }
    }
    return res;
}

} // namespace analysis
} // namespace mmt
