/**
 * @file
 * Dynamic happens-before race oracle and the static/dynamic race gate.
 *
 * The oracle replays one run's per-context event streams
 * (sim/race_trace.hh) with vector clocks: BARRIER is a global
 * rendezvous (all arriving contexts join into one clock), SEND/RECV is
 * a point-to-point edge through per-channel FIFO queues — exactly the
 * synchronization the simulated machine has. Two accesses to the same
 * address, at least one a store, unordered by that relation, are a
 * dynamic race. Two value-based filters drop the benign ones the MMT
 * execution model produces by design: silent stores (the value written
 * equals the value overwritten — redundant threads re-storing a
 * result), and equal-value conflicts (both sides move the same value,
 * so every interleaving yields the same state — redundant computation
 * racing itself).
 *
 * The gate (runRaceGate) is the soundness cross-check mirroring
 * dynamic_bound.hh: every dynamically observed race must map to a
 * (pre-suppression) pair the static analyzer reported. A violation
 * means the static may-race set missed a real race — an MHP or
 * disjointness-proof bug, never an acceptable outcome.
 */

#ifndef MMT_ANALYSIS_RACE_ORACLE_HH
#define MMT_ANALYSIS_RACE_ORACLE_HH

#include <vector>

#include "analysis/analyzer.hh"
#include "sim/simulator.hh"

namespace mmt
{
namespace analysis
{

/** One dynamically observed race (deduplicated per pc pair + kind). */
struct DynamicRace
{
    Addr pcA = 0; // lower pc of the pair
    Addr pcB = 0;
    Addr addr = 0;       // first address it was observed at
    bool storeStore = false;
    std::uint64_t count = 0; // observations after dedup key collapse
};

/** Replay @p trace and return the observed races. */
std::vector<DynamicRace> replayRaceTrace(const RaceTrace &trace);

/** One run's dynamic races checked against the static may-race set. */
struct RaceGateReport
{
    /** False when the oracle does not apply (ME private images). */
    bool checked = false;
    std::vector<DynamicRace> races;
    /** Races with no matching static pair — static analysis unsound. */
    std::vector<DynamicRace> unreported;

    bool ok() const { return unreported.empty(); }
};

/** Check @p races against @p analysis for @p prog. */
RaceGateReport checkRaceGate(const AnalysisResult &analysis,
                             const Program &prog,
                             const std::vector<DynamicRace> &races);

/**
 * Convenience: analyze @p w, run it under @p kind with @p num_threads
 * capturing the memory trace, replay, and cross-check. ME workloads
 * return checked == false without running. Golden verification is
 * skipped (deliberately racy workloads diverge from the interpreter's
 * schedule); also fills @p out_analysis / @p out_result when non-null.
 */
RaceGateReport runRaceGate(const Workload &w, ConfigKind kind,
                           int num_threads,
                           AnalysisResult *out_analysis = nullptr,
                           RunResult *out_result = nullptr,
                           const SimOverrides &ov = SimOverrides());

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_RACE_ORACLE_HH
