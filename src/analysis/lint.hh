/**
 * @file
 * Structural lint rules over the CFG, dataflow and sharing results.
 *
 * Rules and severities (suppress per instruction with an inline
 * "; analyze:allow(<rule>)" comment in the assembly source):
 *
 *   invalid-branch-target  Error    branch/jump immediate misses validPc
 *   fall-off-end           Error    reachable control runs past the
 *                                   last instruction
 *   segment-bounds         Error    const-addressable memory access
 *                                   outside the data and stack segments
 *   write-zero             Warning  destination r0 (write is dropped)
 *   use-before-def         Warning  register read before any definition
 *   dead-code              Warning  instruction unreachable from entry
 *   barrier-divergence     Warning  BARRIER control-dependent on a
 *                                   provably tid-divergent branch (some
 *                                   threads may skip it: deadlock)
 *   race-store-store       Error    two stores in the same barrier
 *                                   epoch may touch the same address
 *                                   from different threads
 *   race-store-load        Error    store/load pair, same conditions
 *   unguarded-reduction    Error    a racing pair touches a __mmtc_red
 *                                   reduction scratch region (misused
 *                                   reduction idiom)
 *   unused-suppression     Error    an "analyze:allow(<rule>)" comment
 *                                   whose rule never fires on that
 *                                   instruction (stale suppression)
 *   dead-def               Info     definition overwritten before any
 *                                   use on all paths (skips JAL/JALR
 *                                   link writes and RECV side effects)
 *   tid-divergent-branch   Info     branch direction provably differs
 *                                   across threads (splits the group)
 *   indirect-jump          Info     JR/JALR: CFG successors are
 *                                   conservative
 *
 * Race pairs are anchored at the lower-index access: one diagnostic per
 * (anchor, rule), naming the first partner plus a count, and the
 * suppression comment goes on the anchor line.
 */

#ifndef MMT_ANALYSIS_LINT_HH
#define MMT_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/race.hh"
#include "analysis/sharing.hh"

namespace mmt
{
namespace analysis
{

enum class Severity { Info, Warning, Error };

const char *severityName(Severity s);

/** One finding, anchored to a static instruction. */
struct Diagnostic
{
    std::string rule;
    Severity severity = Severity::Info;
    int inst = -1; // instruction index (-1: whole program)
    int line = 0;  // source line (0 when unknown)
    Addr pc = 0;
    std::string message;
};

/** Run every lint rule; returns diagnostics sorted by instruction. */
std::vector<Diagnostic> runLints(const Cfg &cfg,
                                 const DataflowResult &dataflow,
                                 const SharingResult &sharing,
                                 const RaceResult &race);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_LINT_HH
