#include "analysis/cfg.hh"

#include <algorithm>
#include <map>
#include <set>

namespace mmt
{
namespace analysis
{

namespace
{

/** Instruction index of absolute address @p a, or -1. */
int
indexOf(const Program &prog, Addr a)
{
    return prog.validPc(a)
               ? static_cast<int>((a - prog.codeBase) / instBytes)
               : -1;
}

/** A `ret`: indirect jump through the link register. */
bool
isRecognizedRet(const Instruction &in)
{
    return in.op == Opcode::JR && in.rs1 == regRa;
}

} // namespace

Cfg::Cfg(const Program &prog) : prog_(&prog)
{
    findLeaders();
    buildEdges();
    markReachable();
    computePostDominators();
    buildContextGraph();
    refinePostDominators();
}

std::vector<int>
Cfg::indirectTargets() const
{
    std::set<int> targets;
    for (std::size_t i = 0; i < prog_->code.size(); ++i) {
        const Instruction &in = prog_->code[i];
        // Return points: JR/JALR overwhelmingly return to a call site.
        if (in.op == Opcode::JAL || in.op == Opcode::JALR) {
            if (i + 1 < prog_->code.size())
                targets.insert(static_cast<int>(i) + 1);
        }
        // Address-taken code: a code address materialized into a
        // register (LUI/la, or any immediate operand that lands in the
        // code segment) may be jumped to.
        int t = indexOf(*prog_, static_cast<Addr>(in.imm));
        if (t >= 0 && !in.isControl())
            targets.insert(t);
    }
    // Code addresses stored in the initial data image (jump tables).
    for (const auto &[addr, value] : prog_->dataWords) {
        (void)addr;
        int t = indexOf(*prog_, static_cast<Addr>(value));
        if (t >= 0)
            targets.insert(t);
    }
    return {targets.begin(), targets.end()};
}

std::vector<std::vector<int>>
Cfg::matchReturnSites() const
{
    const auto &code = prog_->code;
    int n = static_cast<int>(code.size());
    std::vector<std::vector<int>> matched((std::size_t)n);
    if (n == 0)
        return matched;

    // Link-register discipline: matching trusts that `ra` holds the
    // return PC pushed by the innermost call (a stack save/restore of
    // ra through a load preserves it). A value placed in ra by any
    // other instruction is a computed target — demote every ret to the
    // address-taken fallback.
    for (const Instruction &in : code) {
        if (in.info().writesDest && in.rd == regRa &&
            in.op != Opcode::JAL && in.op != Opcode::JALR &&
            !in.isLoad()) {
            return matched;
        }
    }

    int entry = indexOf(*prog_, prog_->entry);
    if (entry < 0)
        return matched;

    // Call sites and their abstract return points.
    struct CallSite
    {
        int callee;      // instruction index, or -1 for jalr (unknown)
        int returnIndex; // the pushed return point
    };
    std::vector<CallSite> calls;
    for (int i = 0; i + 1 < n; ++i) {
        if (code[(std::size_t)i].op == Opcode::JAL) {
            calls.push_back(
                {indexOf(*prog_,
                         static_cast<Addr>(code[(std::size_t)i].imm)),
                 i + 1});
        } else if (code[(std::size_t)i].op == Opcode::JALR) {
            calls.push_back({-1, i + 1});
        }
    }

    // Recognized rets reachable from @p start within one frame: nested
    // calls skip to their return point, computed jumps follow the
    // conservative target set (over-approximating the frame).
    std::vector<int> fallback = indirectTargets();
    auto frameRets = [&](int start) {
        std::vector<int> rets;
        std::vector<bool> seen((std::size_t)n, false);
        std::vector<int> stack{start};
        while (!stack.empty()) {
            int i = stack.back();
            stack.pop_back();
            if (i < 0 || i >= n || seen[(std::size_t)i])
                continue;
            seen[(std::size_t)i] = true;
            const Instruction &in = code[(std::size_t)i];
            if (isRecognizedRet(in)) {
                rets.push_back(i);
                continue;
            }
            if (in.op == Opcode::HALT)
                continue;
            if (in.op == Opcode::JAL || in.op == Opcode::JALR) {
                stack.push_back(i + 1); // the callee frame is skipped
                continue;
            }
            if (in.isIndirectJump()) { // jr through a non-ra register
                for (int t : fallback)
                    stack.push_back(t);
                continue;
            }
            if (in.isUncondJump()) { // J
                stack.push_back(
                    indexOf(*prog_, static_cast<Addr>(in.imm)));
                continue;
            }
            if (in.isCondBranch()) {
                stack.push_back(
                    indexOf(*prog_, static_cast<Addr>(in.imm)));
            }
            stack.push_back(i + 1);
        }
        return rets;
    };

    // Rets in the entry frame return to the external caller (the seed
    // ra), not to any call site in this program: keep the fallback.
    std::vector<bool> entry_frame_ret((std::size_t)n, false);
    for (int r : frameRets(entry))
        entry_frame_ret[(std::size_t)r] = true;

    // Match each direct callee's frame rets to its call sites' return
    // points; a jalr calls an unknown callee, so its return point
    // matches every recognized ret.
    std::map<int, std::vector<int>> frame_cache;
    std::vector<std::set<int>> sites((std::size_t)n);
    std::vector<int> jalr_returns;
    for (const CallSite &c : calls) {
        if (c.callee < 0) {
            jalr_returns.push_back(c.returnIndex);
            continue;
        }
        auto [it, fresh] = frame_cache.try_emplace(c.callee);
        if (fresh)
            it->second = frameRets(c.callee);
        for (int r : it->second)
            sites[(std::size_t)r].insert(c.returnIndex);
    }
    for (int r = 0; r < n; ++r) {
        if (!isRecognizedRet(code[(std::size_t)r]) ||
            entry_frame_ret[(std::size_t)r]) {
            continue;
        }
        for (int j : jalr_returns)
            sites[(std::size_t)r].insert(j);
        matched[(std::size_t)r].assign(sites[(std::size_t)r].begin(),
                                       sites[(std::size_t)r].end());
    }
    return matched;
}

void
Cfg::buildDegenerateContextGraph()
{
    // One root context over the flat graph: node ids coincide with
    // block ids, so flow-sensitive clients see exactly the old CFG.
    contexts_.assign(1, CallContext{});
    contextSensitive_ = false;
    ctxNodes_.clear();
    nodesOfBlock_.assign(blocks_.size(), {});
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        CtxNode nd;
        nd.block = static_cast<int>(b);
        nd.ctx = 0;
        nd.succs = blocks_[b].succs;
        ctxNodes_.push_back(std::move(nd));
        nodesOfBlock_[b] = {static_cast<int>(b)};
    }
    int entry = indexOf(*prog_, prog_->entry);
    ctxEntry_ = entry >= 0 ? blockOf_[(std::size_t)entry] : 0;
}

void
Cfg::buildContextGraph()
{
    const auto &code = prog_->code;
    int n = static_cast<int>(code.size());
    funcEntries_.clear();
    funcRecursive_.clear();
    if (blocks_.empty()) {
        contexts_.assign(1, CallContext{});
        contextSensitive_ = false;
        ctxEntry_ = 0;
        return;
    }

    // Preconditions for call-string expansion; anything the frame
    // model cannot bracket precisely degenerates to the flat graph.
    int entry = indexOf(*prog_, prog_->entry);
    bool ok = entry >= 0;
    for (int i = 0; i < n && ok; ++i) {
        const Instruction &in = code[(std::size_t)i];
        if (in.op == Opcode::JALR) {
            ok = false; // unknown callee
        } else if (in.op == Opcode::JAL &&
                   indexOf(*prog_, static_cast<Addr>(in.imm)) < 0) {
            ok = false; // call to nowhere
        } else if (in.isIndirectJump() && !isRecognizedRet(in)) {
            ok = false; // computed jump through a non-ra register
        } else if (in.info().writesDest && in.rd == regRa &&
                   in.op != Opcode::JAL && in.op != Opcode::JALR &&
                   !in.isLoad()) {
            ok = false; // ra discipline broken
        }
    }
    if (!ok) {
        buildDegenerateContextGraph();
        return;
    }

    // One intra-frame scan per function (and the root frame, keyed -1):
    // nested calls skip straight to their return point.
    struct FrameInfo
    {
        std::vector<bool> member; // instruction indices in the frame
        std::vector<int> rets;    // recognized rets
        std::vector<int> calls;   // jal instruction indices
    };
    auto frameScan = [&](int start) {
        FrameInfo fi;
        fi.member.assign((std::size_t)n, false);
        std::vector<int> stack{start};
        while (!stack.empty()) {
            int i = stack.back();
            stack.pop_back();
            if (i < 0 || i >= n || fi.member[(std::size_t)i])
                continue;
            fi.member[(std::size_t)i] = true;
            const Instruction &in = code[(std::size_t)i];
            if (isRecognizedRet(in)) {
                fi.rets.push_back(i);
                continue;
            }
            if (in.op == Opcode::HALT)
                continue;
            if (in.op == Opcode::JAL) {
                fi.calls.push_back(i);
                stack.push_back(i + 1); // the callee frame is skipped
                continue;
            }
            if (in.isUncondJump()) {
                stack.push_back(
                    indexOf(*prog_, static_cast<Addr>(in.imm)));
                continue;
            }
            if (in.isCondBranch()) {
                stack.push_back(
                    indexOf(*prog_, static_cast<Addr>(in.imm)));
            }
            stack.push_back(i + 1);
        }
        return fi;
    };
    auto calleeOf = [&](int call_site) {
        return indexOf(*prog_,
                       static_cast<Addr>(code[(std::size_t)call_site].imm));
    };

    // Discover functions transitively from the root frame.
    std::map<int, FrameInfo> frames;
    std::vector<int> pending{-1};
    while (!pending.empty()) {
        int f = pending.back();
        pending.pop_back();
        if (frames.count(f))
            continue;
        FrameInfo fi = frameScan(f < 0 ? entry : f);
        for (int c : fi.calls) {
            int callee = calleeOf(c);
            if (!frames.count(callee))
                pending.push_back(callee);
        }
        frames.emplace(f, std::move(fi));
    }
    if (!frames[-1].rets.empty()) {
        // A ret in the entry frame returns to the external caller; the
        // flat fallback models it, the frame model cannot.
        buildDegenerateContextGraph();
        return;
    }

    // Call graph over function entries; a function is recursive when it
    // can reach itself through one or more call edges (i.e. it sits in
    // a nontrivial SCC or has a self loop).
    std::map<int, bool> recursive;
    for (const auto &[f, fi] : frames) {
        if (f < 0)
            continue;
        std::set<int> seen;
        std::vector<int> stack;
        for (int c : fi.calls)
            stack.push_back(calleeOf(c));
        bool cyc = false;
        while (!stack.empty() && !cyc) {
            int g = stack.back();
            stack.pop_back();
            if (!seen.insert(g).second)
                continue;
            if (g == f) {
                cyc = true;
                break;
            }
            for (int c : frames[g].calls)
                stack.push_back(calleeOf(c));
        }
        recursive[f] = cyc;
    }
    for (const auto &[f, cyc] : recursive) {
        funcEntries_.push_back(f);
        funcRecursive_.push_back(cyc);
    }

    // Context enumeration (worklist): depth-kCallStringDepth call-string
    // suffixes for non-recursive callees, one shared bottom context per
    // recursive function. retLinks records, per context, every (return
    // point, caller context) pair that created or re-entered it.
    constexpr int kMaxContexts = 96;
    contexts_.clear();
    contexts_.push_back(CallContext{});
    std::map<std::pair<int, std::vector<int>>, int> ctxIds;
    std::map<int, int> bottomIds;
    std::vector<std::vector<std::pair<int, int>>> retLinks(1);
    std::map<std::pair<int, int>, int> childOf; // (ctx, call site) -> ctx
    std::vector<int> ctxWork{0};
    bool overflow = false;
    while (!ctxWork.empty() && !overflow) {
        int x = ctxWork.back();
        ctxWork.pop_back();
        const CallContext cc = contexts_[(std::size_t)x];
        const FrameInfo &fi = frames[cc.func];
        for (int c : fi.calls) {
            int g = calleeOf(c);
            int child = -1;
            if (recursive[g]) {
                auto [it, fresh] =
                    bottomIds.try_emplace(g, (int)contexts_.size());
                child = it->second;
                if (fresh) {
                    CallContext nc;
                    nc.func = g;
                    nc.bottom = true;
                    contexts_.push_back(std::move(nc));
                    retLinks.emplace_back();
                    ctxWork.push_back(child);
                }
            } else {
                std::vector<int> str = cc.callString;
                str.push_back(c);
                while ((int)str.size() > kCallStringDepth)
                    str.erase(str.begin());
                auto [it, fresh] = ctxIds.try_emplace(
                    std::make_pair(g, str), (int)contexts_.size());
                child = it->second;
                if (fresh) {
                    CallContext nc;
                    nc.func = g;
                    nc.callString = str;
                    contexts_.push_back(std::move(nc));
                    retLinks.emplace_back();
                    ctxWork.push_back(child);
                }
            }
            retLinks[(std::size_t)child].push_back({c + 1, x});
            childOf[{x, c}] = child;
            if ((int)contexts_.size() > kMaxContexts) {
                overflow = true;
                break;
            }
        }
    }
    if (overflow) {
        contexts_.clear();
        buildDegenerateContextGraph();
        return;
    }

    // Node construction: one copy of each frame block per context.
    ctxNodes_.clear();
    nodesOfBlock_.assign(blocks_.size(), {});
    std::map<std::pair<int, int>, int> nodeId; // (block, ctx) -> node
    for (std::size_t x = 0; x < contexts_.size(); ++x) {
        const FrameInfo &fi = frames[contexts_[x].func];
        std::set<int> blks;
        for (int i = 0; i < n; ++i)
            if (fi.member[(std::size_t)i])
                blks.insert(blockOf_[(std::size_t)i]);
        for (int b : blks) {
            CtxNode nd;
            nd.block = b;
            nd.ctx = static_cast<int>(x);
            int id = static_cast<int>(ctxNodes_.size());
            nodeId[{b, (int)x}] = id;
            nodesOfBlock_[(std::size_t)b].push_back(id);
            ctxNodes_.push_back(std::move(nd));
        }
    }

    // Edges.
    for (std::size_t v = 0; v < ctxNodes_.size(); ++v) {
        CtxNode &nd = ctxNodes_[v];
        const BasicBlock &blk = blocks_[(std::size_t)nd.block];
        const Instruction &last = code[(std::size_t)blk.last];
        if (last.op == Opcode::HALT)
            continue; // virtual exit only
        if (last.op == Opcode::JAL) {
            int child = childOf.at({nd.ctx, blk.last});
            int eb = blockOf_[(std::size_t)calleeOf(blk.last)];
            nd.succs.push_back(nodeId.at({eb, child}));
            continue;
        }
        if (isRecognizedRet(last)) {
            std::set<int> succs;
            for (const auto &[ret_inst, caller] :
                 retLinks[(std::size_t)nd.ctx]) {
                int rb = blockOf_[(std::size_t)ret_inst];
                succs.insert(nodeId.at({rb, caller}));
            }
            nd.succs.assign(succs.begin(), succs.end());
            continue;
        }
        for (int s : blk.succs)
            nd.succs.push_back(nodeId.at({s, nd.ctx}));
    }

    ctxEntry_ = nodeId.at({blockOf_[(std::size_t)entry], 0});
    contextSensitive_ = true;
}

void
Cfg::refinePostDominators()
{
    if (!contextSensitive_)
        return;
    // Block-labelled post-dominance over the expanded graph: bp[v] is
    // the set of *blocks* appearing on every path from node v to the
    // exit. Projected per block (intersection over all copies), this
    // refines the flat relation: expanded paths are a subset of flat
    // paths, so every flat fact survives and spurious cross-call-site
    // return paths stop suppressing real post-dominators.
    int nb = static_cast<int>(blocks_.size());
    int exit = nb;
    std::size_t nn = ctxNodes_.size();
    std::vector<std::vector<bool>> bp(
        nn, std::vector<bool>((std::size_t)nb + 1, true));
    std::vector<bool> exitSet((std::size_t)nb + 1, false);
    exitSet[(std::size_t)exit] = true;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t v = nn; v-- > 0;) {
            const CtxNode &nd = ctxNodes_[v];
            const BasicBlock &blk = blocks_[(std::size_t)nd.block];
            std::vector<bool> next((std::size_t)nb + 1, true);
            auto meet = [&](const std::vector<bool> &sd) {
                for (int i = 0; i <= nb; ++i)
                    next[(std::size_t)i] =
                        next[(std::size_t)i] && sd[(std::size_t)i];
            };
            for (int s : nd.succs)
                meet(bp[(std::size_t)s]);
            if (nd.succs.empty() || blk.fallsOffEnd ||
                prog_->code[(std::size_t)blk.last].op == Opcode::HALT) {
                meet(exitSet);
            }
            next[(std::size_t)nd.block] = true;
            if (next != bp[v]) {
                bp[v] = std::move(next);
                changed = true;
            }
        }
    }
    for (int b = 0; b < nb; ++b) {
        const auto &nodes = nodesOfBlock_[(std::size_t)b];
        if (nodes.empty())
            continue;
        std::vector<bool> inter((std::size_t)nb + 1, true);
        for (int v : nodes) {
            for (int i = 0; i <= nb; ++i)
                inter[(std::size_t)i] =
                    inter[(std::size_t)i] && bp[(std::size_t)v][(std::size_t)i];
        }
        pdom_[(std::size_t)b] = std::move(inter);
    }
}

void
Cfg::findLeaders()
{
    const auto &code = prog_->code;
    int n = static_cast<int>(code.size());
    std::vector<bool> leader(static_cast<std::size_t>(n), false);
    if (n == 0)
        return;
    leader[0] = true;
    int entry = indexOf(*prog_, prog_->entry);
    if (entry >= 0)
        leader[(std::size_t)entry] = true;
    for (int i = 0; i < n; ++i) {
        const Instruction &in = code[(std::size_t)i];
        // Control transfers and HALT both end a block.
        if (in.isControl() || in.op == Opcode::HALT) {
            if (i + 1 < n)
                leader[(std::size_t)(i + 1)] = true;
        }
        if (in.isControl() && !in.isIndirectJump()) {
            int t = indexOf(*prog_, static_cast<Addr>(in.imm));
            if (t >= 0)
                leader[(std::size_t)t] = true;
        }
    }
    for (int t : indirectTargets())
        leader[(std::size_t)t] = true;

    blockOf_.assign((std::size_t)n, 0);
    for (int i = 0; i < n; ++i) {
        if (leader[(std::size_t)i]) {
            BasicBlock b;
            b.first = b.last = i;
            blocks_.push_back(b);
        } else {
            blocks_.back().last = i;
        }
        blockOf_[(std::size_t)i] = static_cast<int>(blocks_.size()) - 1;
    }
}

void
Cfg::buildEdges()
{
    int n = static_cast<int>(prog_->code.size());
    std::vector<int> indirect = indirectTargets();
    std::vector<std::vector<int>> matched = matchReturnSites();
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        BasicBlock &blk = blocks_[b];
        const Instruction &in = prog_->code[(std::size_t)blk.last];
        std::set<int> succs;
        auto addTarget = [&](Addr a) {
            int t = indexOf(*prog_, a);
            if (t >= 0)
                succs.insert(blockOf_[(std::size_t)t]);
        };
        bool falls = false;
        if (in.op == Opcode::HALT) {
            // to virtual exit only
        } else if (in.isIndirectJump()) {
            blk.hasIndirect = true;
            const std::vector<int> &m = matched[(std::size_t)blk.last];
            if (!m.empty()) {
                blk.indirectMatched = true;
                for (int t : m)
                    succs.insert(blockOf_[(std::size_t)t]);
            } else {
                for (int t : indirect)
                    succs.insert(blockOf_[(std::size_t)t]);
            }
        } else if (in.isUncondJump()) { // J / JAL
            addTarget(static_cast<Addr>(in.imm));
        } else if (in.isCondBranch()) {
            addTarget(static_cast<Addr>(in.imm));
            falls = true;
        } else {
            falls = true;
        }
        if (falls) {
            if (blk.last + 1 < n)
                succs.insert(blockOf_[(std::size_t)(blk.last + 1)]);
            else
                blk.fallsOffEnd = true;
        }
        blk.succs.assign(succs.begin(), succs.end());
    }
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        for (int s : blocks_[b].succs)
            blocks_[(std::size_t)s].preds.push_back(static_cast<int>(b));
    }
}

void
Cfg::markReachable()
{
    if (blocks_.empty())
        return;
    int entry = indexOf(*prog_, prog_->entry);
    std::vector<int> work{entry >= 0 ? blockOf_[(std::size_t)entry] : 0};
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        if (blocks_[(std::size_t)b].reachable)
            continue;
        blocks_[(std::size_t)b].reachable = true;
        for (int s : blocks_[(std::size_t)b].succs)
            work.push_back(s);
    }
}

void
Cfg::computePostDominators()
{
    // Iterative set-based post-dominance over block ids plus the
    // virtual exit; programs are small (hundreds of blocks), so dense
    // bool matrices are plenty fast and obviously correct.
    int n = static_cast<int>(blocks_.size());
    int exit = n;
    // pdom[b] = set of nodes post-dominating b.
    std::vector<std::vector<bool>> pdom(
        (std::size_t)n + 1,
        std::vector<bool>((std::size_t)n + 1, true));
    pdom[(std::size_t)exit].assign((std::size_t)n + 1, false);
    pdom[(std::size_t)exit][(std::size_t)exit] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; --b) {
            const BasicBlock &blk = blocks_[(std::size_t)b];
            std::vector<bool> next((std::size_t)n + 1, true);
            bool any = false;
            auto meet = [&](int s) {
                const auto &sd = pdom[(std::size_t)s];
                for (int i = 0; i <= n; ++i)
                    next[(std::size_t)i] =
                        next[(std::size_t)i] && sd[(std::size_t)i];
                any = true;
            };
            for (int s : blk.succs)
                meet(s);
            if (blk.succs.empty() || blk.fallsOffEnd ||
                prog_->code[(std::size_t)blk.last].op == Opcode::HALT) {
                meet(exit);
            }
            if (!any) // no successors at all: unreachable dead end
                next.assign((std::size_t)n + 1, false);
            next[(std::size_t)b] = true;
            if (next != pdom[(std::size_t)b]) {
                pdom[(std::size_t)b] = std::move(next);
                changed = true;
            }
        }
    }
    pdom_ = std::move(pdom);
}

int
Cfg::immediatePostDominator(int b) const
{
    int n = static_cast<int>(blocks_.size());
    if (b < 0 || b > n)
        return -1;
    // Candidates: every strict post-dominator of b (incl. the exit).
    std::vector<int> cands;
    for (int a = 0; a <= n; ++a)
        if (a != b && postDominates(a, b))
            cands.push_back(a);
    if (cands.empty())
        return -1;
    // The ipdom is the candidate post-dominated by all the others (the
    // "closest" one). The exit post-dominates nothing, so it wins only
    // when it is the sole candidate.
    for (int a : cands) {
        bool closest = true;
        for (int c : cands)
            if (c != a && !postDominates(c, a)) {
                closest = false;
                break;
            }
        if (closest)
            return a;
    }
    return -1;
}

bool
Cfg::postDominates(int a, int b) const
{
    if (a == b)
        return true;
    if (b < 0 || (std::size_t)b >= pdom_.size())
        return false;
    const auto &set = pdom_[(std::size_t)b];
    return a >= 0 && (std::size_t)a < set.size() && set[(std::size_t)a];
}

} // namespace analysis
} // namespace mmt
