#include "analysis/hints.hh"

#include <algorithm>

namespace mmt
{
namespace analysis
{

namespace
{

Addr
pcOfIndex(const Program &prog, int index)
{
    return prog.codeBase + static_cast<Addr>(index) * instBytes;
}

void
sortUnique(std::vector<Addr> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

/** Remove from @p v every element that appears in sorted @p drop. */
void
subtract(std::vector<Addr> &v, const std::vector<Addr> &drop)
{
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&](Addr a) {
                               return std::binary_search(drop.begin(),
                                                         drop.end(), a);
                           }),
            v.end());
}

} // namespace

FetchHints
computeFetchHints(const Cfg &cfg, const SharingResult &sharing)
{
    FetchHints h;
    const Program &prog = cfg.program();
    const auto &blocks = cfg.blocks();
    int n = static_cast<int>(prog.code.size());

    // Blocks strictly inside some divergent hammock: on a path from a
    // tid-divergent branch to its immediate post-dominator, excluding
    // both endpoints.
    std::vector<bool> arm(blocks.size(), false);

    for (int i = 0; i < n; ++i) {
        if (!cfg.reachable(i))
            continue;
        if (sharing.shareClass[(std::size_t)i] == ShareClass::Divergent)
            h.divergentPcs.push_back(pcOfIndex(prog, i));
        if (sharing.predictedLanes[(std::size_t)i] > 1) {
            // Built in index order, so both vectors stay pc-sorted.
            h.splitPcs.push_back(pcOfIndex(prog, i));
            h.splitCounts.push_back(sharing.predictedLanes[(std::size_t)i]);
        }
        if (!sharing.divergentBranch[(std::size_t)i])
            continue;
        h.tidDivergentBranchPcs.push_back(pcOfIndex(prog, i));
        int b = cfg.blockOf(i);
        int ipdom = cfg.immediatePostDominator(b);
        if (ipdom < 0 || ipdom >= static_cast<int>(blocks.size()))
            continue; // no pdom, or re-converges only at the exit
        h.reconvergencePcs.push_back(
            pcOfIndex(prog, blocks[(std::size_t)ipdom].first));
        // Flood the arms: every block reachable from the branch before
        // control must pass the re-convergence point.
        std::vector<int> stack = blocks[(std::size_t)b].succs;
        while (!stack.empty()) {
            int cur = stack.back();
            stack.pop_back();
            if (cur == ipdom || arm[(std::size_t)cur])
                continue;
            arm[(std::size_t)cur] = true;
            for (int s : blocks[(std::size_t)cur].succs)
                stack.push_back(s);
        }
    }

    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        if (!arm[bi] || !blocks[bi].reachable)
            continue;
        for (int i = blocks[bi].first; i <= blocks[bi].last; ++i)
            h.divergentPcs.push_back(pcOfIndex(prog, i));
    }

    sortUnique(h.divergentPcs);
    sortUnique(h.tidDivergentBranchPcs);
    sortUnique(h.reconvergencePcs);
    // Merging right *at* a divergent branch still shares the fetch (the
    // group re-splits after it executes), and re-convergence points are
    // exactly where groups should merge — keep both out of the skip set.
    subtract(h.divergentPcs, h.tidDivergentBranchPcs);
    subtract(h.divergentPcs, h.reconvergencePcs);
    return h;
}

} // namespace analysis
} // namespace mmt
