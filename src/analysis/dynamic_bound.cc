#include "analysis/dynamic_bound.hh"

#include "iasm/assembler.hh"

namespace mmt
{
namespace analysis
{

MergeBoundReport
checkMergeUpperBound(const AnalysisResult &analysis, const Program &prog,
                     const PcMergeProfile &profile)
{
    MergeBoundReport rep;
    for (const auto &[pc, counts] : profile) {
        rep.committed += counts.committed;
        rep.merged += counts.merged;
        ShareClass c = analysis.classOf(pc);
        if (c != ShareClass::Divergent) {
            rep.mergeableCommitted += counts.committed;
        } else if (counts.merged > 0) {
            BoundViolation v;
            v.pc = pc;
            v.line = prog.validPc(pc)
                         ? prog.line(static_cast<int>(
                               (pc - prog.codeBase) / instBytes))
                         : 0;
            v.merged = counts.merged;
            rep.violations.push_back(v);
        }
    }
    return rep;
}

MergeBoundReport
runMergeBoundCheck(const Workload &w, ConfigKind kind, int num_threads,
                   AnalysisResult *out_analysis, RunResult *out_result,
                   const SimOverrides &ov)
{
    // The static thread model must match the configuration under test:
    // the Limit config forces tid to 0 in every thread, which erases
    // the divergence the MT seeds would otherwise prove.
    auto owned = std::make_shared<Program>(
        assemble(w.source, defaultCodeBase, defaultDataBase, w.name));
    AnalysisOptions opt;
    opt.multiExecution = w.multiExecution;
    opt.forceTidZero = kind == ConfigKind::Limit;
    AnalysisResult analysis = analyzeProgram(*owned, opt);
    analysis.program = std::move(owned);
    PcMergeProfile profile;
    RunResult r = runWorkload(w, kind, num_threads, ov,
                              /*check_golden=*/false, &profile);
    MergeBoundReport rep =
        checkMergeUpperBound(analysis, *analysis.program, profile);
    if (out_analysis)
        *out_analysis = std::move(analysis);
    if (out_result)
        *out_result = std::move(r);
    return rep;
}

} // namespace analysis
} // namespace mmt
