#include "analysis/analyzer.hh"

#include <sstream>

#include "iasm/assembler.hh"

namespace mmt
{
namespace analysis
{

int
AnalysisResult::count(Severity s) const
{
    int n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == s ? 1 : 0;
    return n;
}

ShareClass
AnalysisResult::classOf(Addr pc) const
{
    const Program &prog = cfg->program();
    if (!prog.validPc(pc))
        return ShareClass::Unclassified;
    auto i = static_cast<std::size_t>((pc - prog.codeBase) / instBytes);
    return sharing.shareClass[i];
}

namespace
{

int
totalInsts(const std::array<int, numShareClasses> &c)
{
    int total = 0;
    for (int n : c)
        total += n;
    return total;
}

} // namespace

double
AnalysisResult::staticMergeableFrac() const
{
    const auto &c = sharing.classCounts;
    int total = totalInsts(c);
    if (total == 0)
        return 1.0;
    return static_cast<double>(total -
                               c[(std::size_t)ShareClass::Divergent]) /
           static_cast<double>(total);
}

double
AnalysisResult::mergeableProvenFrac() const
{
    const auto &c = sharing.classCounts;
    int total = totalInsts(c);
    if (total == 0)
        return 1.0;
    return static_cast<double>(
               c[(std::size_t)ShareClass::MergeableProven]) /
           static_cast<double>(total);
}

AnalysisResult
analyzeProgram(const Program &prog, const AnalysisOptions &opt)
{
    AnalysisResult res;
    res.cfg = std::make_shared<Cfg>(prog);
    res.dataflow = analyzeDataflow(*res.cfg);
    SharingOptions sh;
    sh.multiExecution = opt.multiExecution;
    sh.forceTidZero = opt.forceTidZero;
    res.sharing = analyzeSharing(*res.cfg, sh);
    res.race = analyzeRaces(*res.cfg, res.sharing, sh);
    res.diags = runLints(*res.cfg, res.dataflow, res.sharing, res.race);
    return res;
}

AnalysisResult
analyzeWorkload(const Workload &w)
{
    auto owned = std::make_shared<Program>(
        assemble(w.source, defaultCodeBase, defaultDataBase, w.name));
    AnalysisOptions opt;
    opt.multiExecution = w.multiExecution;
    AnalysisResult res = analyzeProgram(*owned, opt);
    res.program = std::move(owned);
    return res;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
renderReport(const AnalysisResult &res, const std::string &name,
             bool json)
{
    const auto &counts = res.sharing.classCounts;
    int total = totalInsts(counts);
    auto countOf = [&counts](ShareClass c) {
        return counts[(std::size_t)c];
    };
    std::ostringstream os;
    if (json) {
        os << "{\"schema_version\": " << kAnalyzeSchemaVersion << ", ";
        os << "\"workload\": \"" << jsonEscape(name) << "\", ";
        os << "\"instructions\": " << total << ", ";
        os << "\"mergeable_proven\": "
           << countOf(ShareClass::MergeableProven) << ", ";
        os << "\"mergeable_heuristic\": "
           << countOf(ShareClass::MergeableHeuristic) << ", ";
        os << "\"unknown\": " << countOf(ShareClass::Unclassified)
           << ", ";
        os << "\"divergent\": " << countOf(ShareClass::Divergent)
           << ", ";
        os << "\"mergeable_proven_frac\": " << res.mergeableProvenFrac()
           << ", ";
        os << "\"static_mergeable_frac\": " << res.staticMergeableFrac()
           << ", ";
        int suppressed = 0;
        for (const RacePair &p : res.race.pairs)
            suppressed += p.suppressed ? 1 : 0;
        os << "\"race_checked\": "
           << (res.race.checked ? "true" : "false") << ", ";
        os << "\"race_pairs\": " << res.race.pairs.size() << ", ";
        os << "\"race_suppressed\": " << suppressed << ", ";
        os << "\"errors\": " << res.errors() << ", ";
        os << "\"warnings\": " << res.warnings() << ", ";
        os << "\"diagnostics\": [";
        bool first = true;
        for (const Diagnostic &d : res.diags) {
            if (!first)
                os << ", ";
            first = false;
            os << "{\"rule\": \"" << jsonEscape(d.rule) << "\", "
               << "\"severity\": \"" << severityName(d.severity) << "\", "
               << "\"line\": " << d.line << ", "
               << "\"pc\": " << d.pc << ", "
               << "\"message\": \"" << jsonEscape(d.message) << "\"}";
        }
        os << "]}\n";
        return os.str();
    }

    os << name << ": " << total << " reachable insts, "
       << countOf(ShareClass::MergeableProven) << " proven + "
       << countOf(ShareClass::MergeableHeuristic)
       << " heuristic mergeable / "
       << countOf(ShareClass::Unclassified) << " unknown / "
       << countOf(ShareClass::Divergent)
       << " divergent (static upper bound "
       << static_cast<int>(res.staticMergeableFrac() * 100.0 + 0.5)
       << "% mergeable)\n";
    if (res.race.checked) {
        int suppressed = 0;
        for (const RacePair &p : res.race.pairs)
            suppressed += p.suppressed ? 1 : 0;
        os << "  races: " << res.race.pairs.size() << " may-race pair(s), "
           << suppressed << " allow-listed\n";
    }
    for (const Diagnostic &d : res.diags) {
        os << "  line " << d.line << " [" << severityName(d.severity)
           << "] " << d.rule << ": " << d.message << "\n";
    }
    if (res.errors() || res.warnings()) {
        os << "  " << res.errors() << " error(s), " << res.warnings()
           << " warning(s)\n";
    }
    return os.str();
}

} // namespace analysis
} // namespace mmt
