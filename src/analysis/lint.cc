#include "analysis/lint.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace mmt
{
namespace analysis
{

namespace
{

class Linter
{
  public:
    Linter(const Cfg &cfg, const DataflowResult &df,
           const SharingResult &sh, const RaceResult &race)
        : cfg_(cfg), prog_(cfg.program()), df_(df), sh_(sh), race_(race)
    {
    }

    std::vector<Diagnostic>
    run()
    {
        for (int i = 0; i < size(); ++i)
            lintInst(i);
        lintBarrierDivergence();
        lintRaces();
        lintUnusedSuppressions(); // must run after every other rule
        std::stable_sort(diags_.begin(), diags_.end(),
                         [](const Diagnostic &a, const Diagnostic &b) {
                             return a.inst < b.inst;
                         });
        return std::move(diags_);
    }

  private:
    int size() const { return static_cast<int>(prog_.code.size()); }

    Addr
    pcOf(int i) const
    {
        return prog_.codeBase + static_cast<Addr>(i) * instBytes;
    }

    void
    report(const std::string &rule, Severity sev, int i,
           const std::string &msg)
    {
        if (prog_.allowed(i, rule)) {
            used_.emplace(i, rule);
            return;
        }
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.inst = i;
        d.line = prog_.line(i);
        d.pc = pcOf(i);
        d.message = msg;
        diags_.push_back(std::move(d));
    }

    void
    lintInst(int i)
    {
        const Instruction &in = prog_.code[(std::size_t)i];
        bool reachable = cfg_.reachable(i);

        if (!reachable) {
            report("dead-code", Severity::Warning, i,
                   "unreachable from the program entry");
            return; // findings below assume the instruction executes
        }

        // Direct control transfers must land on an instruction.
        if (in.isControl() && !in.isIndirectJump() &&
            !prog_.validPc(static_cast<Addr>(in.imm))) {
            std::ostringstream os;
            os << "target 0x" << std::hex << static_cast<Addr>(in.imm)
               << std::dec << " is not a valid instruction address";
            report("invalid-branch-target", Severity::Error, i, os.str());
        }

        const BasicBlock &blk = cfg_.blocks()[(std::size_t)cfg_.blockOf(i)];
        if (i == blk.last && blk.fallsOffEnd) {
            report("fall-off-end", Severity::Error, i,
                   "control can run past the last instruction "
                   "(missing halt or jump?)");
        }

        if (in.info().writesDest && in.rd == regZero) {
            report("write-zero", Severity::Warning, i,
                   "write to r0 is architecturally dropped");
        }

        RegMask ubd = df_.useBeforeDef[(std::size_t)i];
        for (int r = 0; r < numArchRegs; ++r) {
            if (ubd & regBit(r)) {
                report("use-before-def", Severity::Warning, i,
                       "register " + regName(r) +
                           " may be read before any definition");
            }
        }

        if (df_.deadDef[(std::size_t)i] && !in.isUncondJump() &&
            in.op != Opcode::RECV) {
            report("dead-def", Severity::Info, i,
                   "definition of " + regName(in.rd) +
                       " is overwritten before any use");
        }

        lintSegmentBounds(i, in);

        if (sh_.divergentBranch[(std::size_t)i]) {
            report("tid-divergent-branch", Severity::Info, i,
                   "branch direction provably differs across threads");
        }

        if (in.isIndirectJump()) {
            // Matched rets (call-site-aware return matching) have
            // precise successors and are not worth a diagnostic; only
            // residual address-taken fallbacks stay conservative.
            const BasicBlock &blk =
                cfg_.blocks()[(std::size_t)cfg_.blockOf(i)];
            if (!blk.indirectMatched) {
                report("indirect-jump", Severity::Info, i,
                       "indirect jump: " +
                           std::to_string(blk.succs.size()) +
                           " conservative successors (address-taken "
                           "fallback)");
            }
        }
    }

    void
    lintSegmentBounds(int i, const Instruction &in)
    {
        if (!in.isMem())
            return;
        const AbsVal &base = sh_.memBase[(std::size_t)i];
        if (base.kind != AbsVal::Kind::Known)
            return; // address not statically known
        Addr data_lo = prog_.dataBase;
        Addr data_hi = prog_.dataLimit;
        Addr stack_hi = defaultStackTop;
        Addr stack_lo = defaultStackTop -
                        static_cast<Addr>(maxThreads) * defaultStackBytes;
        for (int t = 0; t < maxThreads; ++t) {
            Addr a = static_cast<Addr>(base.v[(std::size_t)t]) +
                     static_cast<Addr>(in.imm);
            bool in_data = a >= data_lo && a + 8 <= data_hi;
            bool in_stack = a > stack_lo && a + 8 <= stack_hi + 8;
            if (!in_data && !in_stack) {
                std::ostringstream os;
                os << "constant-addressable access at 0x" << std::hex << a
                   << std::dec
                   << " lies outside the data and stack segments";
                report("segment-bounds", Severity::Error, i, os.str());
                return; // one report per instruction
            }
        }
    }

    /**
     * A barrier that is control-dependent on a tid-divergent branch can
     * be skipped by a subset of threads, deadlocking the rest. Classic
     * control dependence: barrier block n depends on branch block b
     * when n post-dominates one successor of b but not b itself.
     */
    void
    lintBarrierDivergence()
    {
        std::vector<int> barriers;
        std::vector<int> div_branches;
        for (int i = 0; i < size(); ++i) {
            if (!cfg_.reachable(i))
                continue;
            if (prog_.code[(std::size_t)i].op == Opcode::BARRIER)
                barriers.push_back(i);
            if (sh_.divergentBranch[(std::size_t)i])
                div_branches.push_back(i);
        }
        for (int bar : barriers) {
            int n = cfg_.blockOf(bar);
            for (int br : div_branches) {
                int b = cfg_.blockOf(br);
                if (cfg_.postDominates(n, b))
                    continue; // all threads reach it anyway
                bool on_some_path = false;
                for (int s : cfg_.blocks()[(std::size_t)b].succs) {
                    if (cfg_.postDominates(n, s)) {
                        on_some_path = true;
                        break;
                    }
                }
                if (on_some_path) {
                    report("barrier-divergence", Severity::Warning, bar,
                           "barrier is control-dependent on the "
                           "tid-divergent branch at line " +
                               std::to_string(prog_.line(br)) +
                               "; threads may not all reach it");
                    break; // one report per barrier
                }
            }
        }
    }

    /**
     * One Error diagnostic per (anchor, rule) over the may-race pairs:
     * names the first partner's line plus how many more there are. The
     * suppression comment goes on the anchor (lower-index) access.
     */
    void
    lintRaces()
    {
        if (!race_.checked)
            return;
        struct Group
        {
            int firstPartner = -1;
            int count = 0;
        };
        std::map<std::pair<int, std::string>, Group> groups;
        for (const RacePair &p : race_.pairs) {
            Group &g = groups[{p.anchor, p.rule}];
            if (g.count == 0)
                g.firstPartner = p.anchor == p.instA ? p.instB : p.instA;
            ++g.count;
        }
        for (const auto &[key, g] : groups) {
            const auto &[anchor, rule] = key;
            const Instruction &in = prog_.code[(std::size_t)anchor];
            std::ostringstream os;
            os << (in.isStore() ? "store" : "load");
            if (g.firstPartner == anchor) {
                os << " may race with itself across threads";
            } else {
                os << " may race with the access at line "
                   << prog_.line(g.firstPartner);
            }
            if (g.count > 1)
                os << " (+" << (g.count - 1) << " more)";
            if (rule == kRuleUnguardedReduction)
                os << "; touches a __mmtc_red reduction scratch region";
            report(rule, Severity::Error, anchor, os.str());
        }
    }

    /**
     * Every "analyze:allow(<rule>)" must suppress something: a rule
     * that never fired on its instruction is a stale suppression and an
     * error (runs last, after every rule has had its chance to fire).
     */
    void
    lintUnusedSuppressions()
    {
        for (const auto &[i, rules] : prog_.allowRules) {
            for (const std::string &rule : rules) {
                if (used_.count({i, rule}))
                    continue;
                // Race rules only fire under MT analysis; the same
                // program analyzed with multi-execution semantics (its
                // checker skipped) cannot judge those suppressions.
                if (!race_.checked &&
                    (rule == kRuleRaceStoreStore ||
                     rule == kRuleRaceStoreLoad ||
                     rule == kRuleUnguardedReduction))
                    continue;
                report("unused-suppression", Severity::Error, i,
                       "suppression for '" + rule +
                           "' never fires here; remove it");
            }
        }
    }

    const Cfg &cfg_;
    const Program &prog_;
    const DataflowResult &df_;
    const SharingResult &sh_;
    const RaceResult &race_;
    std::set<std::pair<int, std::string>> used_;
    std::vector<Diagnostic> diags_;
};

} // namespace

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::vector<Diagnostic>
runLints(const Cfg &cfg, const DataflowResult &dataflow,
         const SharingResult &sharing, const RaceResult &race)
{
    return Linter(cfg, dataflow, sharing, race).run();
}

} // namespace analysis
} // namespace mmt
