/**
 * @file
 * Sharing-potential pass: a static upper bound on MMT instruction
 * merging (the Fig. 1 "how much redundancy is there" question, answered
 * without running the pipeline).
 *
 * Abstract domain. Each architected register is tracked as one of
 *
 *   Bottom   — no value yet (unreached)
 *   Known    — the exact value every thread holds at this point, as a
 *              per-tid vector {v[0..maxThreads)}; transfer functions
 *              reuse exec::evalAlu lane-wise, so the abstract semantics
 *              is the concrete semantics applied per thread
 *   Uniform  — equal across threads on every individual path, but the
 *              joined value is path-dependent (heuristic: threads that
 *              branch differently may disagree)
 *   Unknown  — anything (loads, RECV, joins of differing values)
 *
 * Known is *sound*: the fixpoint only keeps a vector when every path
 * agrees on it, so "thread t holds v[t] here" is invariant; values that
 * vary per loop iteration degrade to Uniform/Unknown at the join.
 *
 * Classification per static instruction (ShareClass):
 *
 *   Mergeable — all register sources are Uniform or Known-equal: every
 *               thread presents identical inputs, so the splitter may
 *               keep the instances merged (upper bound; Uniform inputs
 *               make this heuristic rather than a guarantee)
 *   Divergent — for every thread pair some source is Known with
 *               differing lanes (or the op is RECV, which the splitter
 *               never merges): the instruction can *never* be
 *               execute-merged. This direction is sound and is enforced
 *               against the pipeline by the dynamic upper-bound test.
 *   Unclassified — everything else
 *
 * Seeds follow the simulator's thread setup: MT runs give regTid the
 * vector {0,1,2,3} and regSp the per-thread stack tops; ME runs (and
 * forceTidZero) make both uniform.
 */

#ifndef MMT_ANALYSIS_SHARING_HH
#define MMT_ANALYSIS_SHARING_HH

#include <array>
#include <vector>

#include "analysis/cfg.hh"

namespace mmt
{
namespace analysis
{

/** Abstract value of one register (see file comment). */
struct AbsVal
{
    enum class Kind { Bottom, Known, Uniform, Unknown };
    Kind kind = Kind::Bottom;
    std::array<RegVal, maxThreads> v{}; // valid when kind == Known

    static AbsVal
    known(const std::array<RegVal, maxThreads> &vals)
    {
        return {Kind::Known, vals};
    }

    static AbsVal
    constant(RegVal c)
    {
        AbsVal a;
        a.kind = Kind::Known;
        a.v.fill(c);
        return a;
    }

    static AbsVal uniform() { return {Kind::Uniform, {}}; }
    static AbsVal unknown() { return {Kind::Unknown, {}}; }

    bool
    lanesAllEqual() const
    {
        for (int t = 1; t < maxThreads; ++t)
            if (v[(std::size_t)t] != v[0])
                return false;
        return true;
    }

    /** Equal across threads (possibly path-dependently). */
    bool
    uniformish() const
    {
        return kind == Kind::Uniform ||
               (kind == Kind::Known && lanesAllEqual());
    }

    bool operator==(const AbsVal &o) const = default;
};

/** Join (least upper bound) of two abstract values. */
AbsVal join(const AbsVal &a, const AbsVal &b);

/** Static sharing class of one instruction. */
enum class ShareClass
{
    Mergeable,    // provably identical inputs (upper bound)
    Unclassified, // cannot tell
    Divergent,    // provably never execute-merged (sound)
};

const char *shareClassName(ShareClass c);

/** Thread-setup options mirroring the simulator (see CoreParams). */
struct SharingOptions
{
    bool multiExecution = false;
    bool forceTidZero = false;
};

/** Result of the sharing pass. */
struct SharingResult
{
    /** Per-instruction class (index-aligned with Program::code). */
    std::vector<ShareClass> shareClass;
    /** Abstract base-register value at each memory instruction (the
     *  AbsVal of rs1 flowing into it); used by the segment-bounds and
     *  divergence lints. Kind::Bottom for non-memory instructions. */
    std::vector<AbsVal> memBase;
    /** Conditional branches whose direction provably differs between
     *  at least one thread pair (Known condition lanes disagree). */
    std::vector<bool> divergentBranch;
    /** Static instruction counts per class, reachable code only. */
    std::array<int, 3> classCounts{};
};

/** Run the sharing fixpoint over @p cfg. */
SharingResult analyzeSharing(const Cfg &cfg, const SharingOptions &opt);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_SHARING_HH
