/**
 * @file
 * Sharing-potential pass: a static upper bound on MMT instruction
 * merging (the Fig. 1 "how much redundancy is there" question, answered
 * without running the pipeline).
 *
 * Abstract domain (lattice Bottom ⊑ Known ⊑ Affine ⊑ Unknown). Each
 * architected register is tracked as one of
 *
 *   Bottom   — no value yet (unreached)
 *   Known    — the exact value every thread holds at this point, as a
 *              per-tid vector {v[0..maxThreads)}; transfer functions
 *              reuse exec::evalAlu lane-wise, so the abstract semantics
 *              is the concrete semantics applied per thread
 *   Affine   — thread t holds B + t*stride, where the stride is
 *              path-invariant and B is the (path-dependent) base. The
 *              base is *partially* tracked (see below). stride == 0 is
 *              the uniform case and subsumes the retired heuristic
 *              `Uniform` kind; the `heuristic` flag records whether a
 *              shared-load assumption entered the derivation
 *   Unknown  — anything (ME loads, RECV, joins of different strides)
 *
 * Affine base tracking (the affine-with-base refinement). Each Affine
 * value carries two base facts, both describing the set of bases B that
 * any control path (or loop iteration) may supply:
 *
 *   - an exact base set: up to kMaxBases candidate bases (nBases > 0
 *     means B is one of bases[0..nBases)). Joins union the sets; when
 *     the union exceeds kMaxBases the set widens away (nBases = 0).
 *   - a power-of-2 alignment lattice (baseAlign k, baseRes r): every
 *     possible base satisfies B ≡ r (mod 2^k). k == 64 pins the base
 *     exactly; k == 0 is the old base-untracked Affine. This survives
 *     the exact set's widening: a loop that bumps a tid-strided address
 *     by a constant keeps k = v2(increment) forever, so loop-carried
 *     address streams retain provable cross-path separation.
 *
 * Both facts are per-path sound: abstract interpretation joins over all
 * paths/iterations, so the set (or residue class) covers every base a
 * thread can arrive with. Heuristic values (shared-load guesses) carry
 * no base facts — the loaded value itself is unknown.
 *
 * Known is *sound*: the fixpoint only keeps a vector when every path
 * agrees on it, so "thread t holds v[t] here" is invariant. Affine
 * strides are derived inductively — entry seeds are exact (tid has
 * stride 1, sp has stride -stackBytes), and only transfer functions
 * that are linear in the base propagate a stride (add/sub, addi, slli,
 * and mul/sll by an exactly-known uniform constant), each verified by
 * running exec::evalAlu lane-wise on two synthetic base vectors. Base
 * facts ride the same linear ops analytically: the residue moves by
 * evalAlu on representatives and the alignment gains v2(coefficient);
 * exact sets cross-product through evalAlu with a kMaxBases cap.
 *
 * Classification per static instruction (ShareClass):
 *
 *   MergeableProven    — every register source is Known-lanes-equal or
 *                        Affine{stride 0} with no heuristic step: the
 *                        uniformity claim is derived soundly from the
 *                        entry state. (Still an upper bound on dynamic
 *                        merging — threads arriving via different paths
 *                        or loop iterations may hold different bases.)
 *   MergeableHeuristic — uniform only modulo the shared-load heuristic
 *                        (a load from a uniform address in a shared
 *                        address space is assumed to read one value).
 *   Divergent          — some source provably differs for every thread
 *                        pair, so no pair can ever present identical
 *                        inputs: the instruction can *never* be
 *                        execute-merged. Sound and enforced against the
 *                        pipeline by the dynamic upper-bound test. Two
 *                        proofs qualify: Known lanes that pairwise
 *                        differ, and a non-heuristic Affine whose base
 *                        facts exclude cross-path collisions — for all
 *                        lane distances d, no two admissible bases
 *                        differ by exactly d*stride (checked against
 *                        the exact set, or via (d*stride) mod 2^k != 0
 *                        on the alignment lattice).
 *   Unclassified       — everything else
 *
 * Seeds follow the simulator's thread setup: MT runs give regTid the
 * vector {0,1,2,3} and regSp the per-thread stack tops; ME runs (and
 * forceTidZero) make both uniform.
 */

#ifndef MMT_ANALYSIS_SHARING_HH
#define MMT_ANALYSIS_SHARING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace mmt
{
namespace analysis
{

/** 2-adic valuation of @p x, capped at 64 (v2(0) == 64). */
inline int
twoAdicVal(RegVal x)
{
    if (x == 0)
        return 64;
    int k = 0;
    while (!(x & 1)) {
        x >>= 1;
        ++k;
    }
    return k;
}

/** Bit mask of the low @p k bits (k in [0, 64]). */
inline RegVal
alignMask(int k)
{
    return k >= 64 ? ~RegVal(0) : ((RegVal(1) << k) - 1);
}

/** Abstract value of one register (see file comment). */
struct AbsVal
{
    enum class Kind { Bottom, Known, Affine, Unknown };

    /** Exact-base-set capacity; joins past this widen to lattice-only. */
    static constexpr int kMaxBases = 4;

    Kind kind = Kind::Bottom;
    std::array<RegVal, maxThreads> v{}; // valid when kind == Known
    /** Affine only: thread t holds base + t*stride. */
    RegVal stride = 0;
    /** Affine only: a shared-load assumption entered the derivation. */
    bool heuristic = false;
    /** Affine only: every admissible base ≡ baseRes (mod 2^baseAlign). */
    std::uint8_t baseAlign = 0;
    /** Affine only: number of exact base candidates (0 = widened). */
    std::uint8_t nBases = 0;
    RegVal baseRes = 0;
    /** Affine only: sorted, deduplicated candidate bases. */
    std::array<RegVal, kMaxBases> bases{};

    static AbsVal
    known(const std::array<RegVal, maxThreads> &vals)
    {
        AbsVal a;
        a.kind = Kind::Known;
        a.v = vals;
        return a;
    }

    static AbsVal
    constant(RegVal c)
    {
        AbsVal a;
        a.kind = Kind::Known;
        a.v.fill(c);
        return a;
    }

    /** Base-untracked Affine (k = 0, empty set) — the old domain. */
    static AbsVal
    affine(RegVal stride, bool heuristic)
    {
        AbsVal a;
        a.kind = Kind::Affine;
        a.stride = stride;
        a.heuristic = heuristic;
        return a;
    }

    /**
     * Affine with an exact base candidate set (canonicalized: sorted,
     * deduplicated, lattice recomputed from the set). @p n == 0 or
     * @p heuristic produce the base-untracked value.
     */
    static AbsVal affineBases(RegVal stride, bool heuristic,
                              const RegVal *cand, int n);

    /** Affine with lattice-only base facts (set widened away). */
    static AbsVal
    affineAligned(RegVal stride, bool heuristic, int k, RegVal r)
    {
        AbsVal a;
        a.kind = Kind::Affine;
        a.stride = stride;
        a.heuristic = heuristic;
        if (!heuristic && k > 0) {
            a.baseAlign = static_cast<std::uint8_t>(k > 64 ? 64 : k);
            a.baseRes = r & alignMask(a.baseAlign);
        }
        return a;
    }

    static AbsVal
    unknown()
    {
        AbsVal a;
        a.kind = Kind::Unknown;
        return a;
    }

    bool
    lanesAllEqual() const
    {
        for (int t = 1; t < maxThreads; ++t)
            if (v[(std::size_t)t] != v[0])
                return false;
        return true;
    }

    /**
     * True when this value has a provable per-thread stride: Known
     * vectors of the shape v[t] = v[0] + t*s (mod 2^64) or any Affine
     * value. Writes the stride to @p out.
     */
    bool
    affineStride(RegVal *out) const
    {
        if (kind == Kind::Affine) {
            *out = stride;
            return true;
        }
        if (kind != Kind::Known)
            return false;
        RegVal s = v[1] - v[0];
        for (int t = 0; t < maxThreads; ++t) {
            if (v[(std::size_t)t] !=
                v[0] + static_cast<RegVal>(t) * s) {
                return false;
            }
        }
        *out = s;
        return true;
    }

    /** Equal across same-path threads (proven or heuristic). */
    bool
    uniformish() const
    {
        return (kind == Kind::Affine && stride == 0) ||
               (kind == Kind::Known && lanesAllEqual());
    }

    /** uniformish() with no heuristic step in the derivation. */
    bool
    provenUniform() const
    {
        return uniformish() && !(kind == Kind::Affine && heuristic);
    }

    /** Affine with a surviving exact base set. */
    bool
    hasBases() const
    {
        return kind == Kind::Affine && nBases > 0;
    }

    /**
     * Sound "no two threads can ever hold equal values" proof from the
     * affine base facts: for every lane distance d in [1, maxThreads),
     * no two admissible bases differ by exactly d*stride. Known lanes
     * are handled by the caller (classify) — this covers only Affine.
     */
    bool provablyPairwiseDistinct() const;

    bool operator==(const AbsVal &o) const = default;
};

/** Join (least upper bound, with Known→Affine stride widening). */
AbsVal join(const AbsVal &a, const AbsVal &b);

/** Static sharing class of one instruction. */
enum class ShareClass
{
    MergeableProven,    // identical inputs, soundly derived (upper bound)
    MergeableHeuristic, // identical inputs modulo the shared-load guess
    Unclassified,       // cannot tell
    Divergent,          // provably never execute-merged (sound, enforced)
};

/** Number of ShareClass values (classCounts array size). */
inline constexpr int numShareClasses = 4;

const char *shareClassName(ShareClass c);

/** Mergeable under either flavor of uniformity claim. */
inline bool
isMergeable(ShareClass c)
{
    return c == ShareClass::MergeableProven ||
           c == ShareClass::MergeableHeuristic;
}

/** Thread-setup options mirroring the simulator (see CoreParams). */
struct SharingOptions
{
    bool multiExecution = false;
    bool forceTidZero = false;
};

/** Result of the sharing pass. */
struct SharingResult
{
    /** Per-instruction class (index-aligned with Program::code). */
    std::vector<ShareClass> shareClass;
    /** Abstract base-register value at each memory instruction (the
     *  AbsVal of rs1 flowing into it); used by the segment-bounds and
     *  divergence lints. Kind::Bottom for non-memory instructions. */
    std::vector<AbsVal> memBase;
    /** Conditional branches whose direction provably differs between
     *  at least one thread pair (some thread is always-taken while
     *  another is always-not-taken over its candidate value sets). */
    std::vector<bool> divergentBranch;
    /** Statically predicted sub-instruction (lane-split) count per
     *  instruction: 1 for anything mergeable or unclassified, and for
     *  Divergent instructions the proven number of distinct input
     *  groups (distinct Known lanes, or maxThreads when the proof is
     *  affine/RECV). Feeds the split-steer fetch hint. */
    std::vector<std::uint8_t> predictedLanes;
    /** Static instruction counts per class, reachable code only. */
    std::array<int, numShareClasses> classCounts{};
    /** Per-instruction branch-direction feasibility bitmasks (bit t:
     *  thread t may take / may fall through, over its candidate value
     *  sets). Threads with unbounded candidates get both bits; both
     *  masks are zero for non-conditional-branch instructions. The MHP
     *  race analysis derives tid-guarded may-execute sets from these;
     *  divergentBranch[i] == (canTake & ~canFall) && (canFall & ~canTake)
     *  being both nonzero. */
    std::vector<std::uint8_t> branchCanTake;
    std::vector<std::uint8_t> branchCanFall;
};

/** Run the sharing fixpoint over @p cfg. */
SharingResult analyzeSharing(const Cfg &cfg, const SharingOptions &opt);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_SHARING_HH
