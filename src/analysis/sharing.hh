/**
 * @file
 * Sharing-potential pass: a static upper bound on MMT instruction
 * merging (the Fig. 1 "how much redundancy is there" question, answered
 * without running the pipeline).
 *
 * Abstract domain (lattice Bottom ⊑ Known ⊑ Affine ⊑ Unknown). Each
 * architected register is tracked as one of
 *
 *   Bottom   — no value yet (unreached)
 *   Known    — the exact value every thread holds at this point, as a
 *              per-tid vector {v[0..maxThreads)}; transfer functions
 *              reuse exec::evalAlu lane-wise, so the abstract semantics
 *              is the concrete semantics applied per thread
 *   Affine   — thread t holds base + t*stride, where the stride is
 *              path-invariant but the base is not tracked (it may
 *              differ per control path / loop iteration). stride == 0
 *              is the uniform case and subsumes the retired heuristic
 *              `Uniform` kind; the `heuristic` flag records whether a
 *              shared-load assumption entered the derivation
 *   Unknown  — anything (ME loads, RECV, joins of different strides)
 *
 * Known is *sound*: the fixpoint only keeps a vector when every path
 * agrees on it, so "thread t holds v[t] here" is invariant. Affine is a
 * per-path relational claim: threads that reached this point along the
 * same control path (and the same loop iteration) hold values exactly
 * (t-u)*stride apart. It is derived inductively — entry seeds are exact
 * (tid has stride 1, sp has stride -stackBytes), and only transfer
 * functions that are linear in the untracked base propagate a stride
 * (add/sub, addi, slli, and mul/sll by an exactly-Known uniform
 * constant), each verified by running exec::evalAlu lane-wise on two
 * synthetic base vectors. The join widens differing Known vectors with
 * a common stride to Affine instead of collapsing them to Unknown, so
 * loop-carried induction variables (counters, strided address streams)
 * stabilize as Affine.
 *
 * Classification per static instruction (ShareClass):
 *
 *   MergeableProven    — every register source is Known-lanes-equal or
 *                        Affine{stride 0} with no heuristic step: the
 *                        uniformity claim is derived soundly from the
 *                        entry state. (Still an upper bound on dynamic
 *                        merging — threads arriving via different paths
 *                        or loop iterations may hold different bases.)
 *   MergeableHeuristic — uniform only modulo the shared-load heuristic
 *                        (a load from a uniform address in a shared
 *                        address space is assumed to read one value).
 *   Divergent          — for every thread pair some source is Known
 *                        with differing lanes (or the op is RECV, which
 *                        the splitter never merges): the instruction
 *                        can *never* be execute-merged. This direction
 *                        is sound and is enforced against the pipeline
 *                        by the dynamic upper-bound test. Affine facts
 *                        are never used here: a nonzero stride proves
 *                        pairwise inequality only along a single path,
 *                        which dynamic merging does not guarantee.
 *   Unclassified       — everything else
 *
 * Seeds follow the simulator's thread setup: MT runs give regTid the
 * vector {0,1,2,3} and regSp the per-thread stack tops; ME runs (and
 * forceTidZero) make both uniform.
 */

#ifndef MMT_ANALYSIS_SHARING_HH
#define MMT_ANALYSIS_SHARING_HH

#include <array>
#include <vector>

#include "analysis/cfg.hh"

namespace mmt
{
namespace analysis
{

/** Abstract value of one register (see file comment). */
struct AbsVal
{
    enum class Kind { Bottom, Known, Affine, Unknown };
    Kind kind = Kind::Bottom;
    std::array<RegVal, maxThreads> v{}; // valid when kind == Known
    /** Affine only: thread t holds base + t*stride (base untracked). */
    RegVal stride = 0;
    /** Affine only: a shared-load assumption entered the derivation. */
    bool heuristic = false;

    static AbsVal
    known(const std::array<RegVal, maxThreads> &vals)
    {
        AbsVal a;
        a.kind = Kind::Known;
        a.v = vals;
        return a;
    }

    static AbsVal
    constant(RegVal c)
    {
        AbsVal a;
        a.kind = Kind::Known;
        a.v.fill(c);
        return a;
    }

    static AbsVal
    affine(RegVal stride, bool heuristic)
    {
        AbsVal a;
        a.kind = Kind::Affine;
        a.stride = stride;
        a.heuristic = heuristic;
        return a;
    }

    static AbsVal
    unknown()
    {
        AbsVal a;
        a.kind = Kind::Unknown;
        return a;
    }

    bool
    lanesAllEqual() const
    {
        for (int t = 1; t < maxThreads; ++t)
            if (v[(std::size_t)t] != v[0])
                return false;
        return true;
    }

    /**
     * True when this value has a provable per-thread stride: Known
     * vectors of the shape v[t] = v[0] + t*s (mod 2^64) or any Affine
     * value. Writes the stride to @p out.
     */
    bool
    affineStride(RegVal *out) const
    {
        if (kind == Kind::Affine) {
            *out = stride;
            return true;
        }
        if (kind != Kind::Known)
            return false;
        RegVal s = v[1] - v[0];
        for (int t = 0; t < maxThreads; ++t) {
            if (v[(std::size_t)t] !=
                v[0] + static_cast<RegVal>(t) * s) {
                return false;
            }
        }
        *out = s;
        return true;
    }

    /** Equal across same-path threads (proven or heuristic). */
    bool
    uniformish() const
    {
        return (kind == Kind::Affine && stride == 0) ||
               (kind == Kind::Known && lanesAllEqual());
    }

    /** uniformish() with no heuristic step in the derivation. */
    bool
    provenUniform() const
    {
        return uniformish() && !(kind == Kind::Affine && heuristic);
    }

    bool operator==(const AbsVal &o) const = default;
};

/** Join (least upper bound, with Known→Affine stride widening). */
AbsVal join(const AbsVal &a, const AbsVal &b);

/** Static sharing class of one instruction. */
enum class ShareClass
{
    MergeableProven,    // identical inputs, soundly derived (upper bound)
    MergeableHeuristic, // identical inputs modulo the shared-load guess
    Unclassified,       // cannot tell
    Divergent,          // provably never execute-merged (sound, enforced)
};

/** Number of ShareClass values (classCounts array size). */
inline constexpr int numShareClasses = 4;

const char *shareClassName(ShareClass c);

/** Mergeable under either flavor of uniformity claim. */
inline bool
isMergeable(ShareClass c)
{
    return c == ShareClass::MergeableProven ||
           c == ShareClass::MergeableHeuristic;
}

/** Thread-setup options mirroring the simulator (see CoreParams). */
struct SharingOptions
{
    bool multiExecution = false;
    bool forceTidZero = false;
};

/** Result of the sharing pass. */
struct SharingResult
{
    /** Per-instruction class (index-aligned with Program::code). */
    std::vector<ShareClass> shareClass;
    /** Abstract base-register value at each memory instruction (the
     *  AbsVal of rs1 flowing into it); used by the segment-bounds and
     *  divergence lints. Kind::Bottom for non-memory instructions. */
    std::vector<AbsVal> memBase;
    /** Conditional branches whose direction provably differs between
     *  at least one thread pair (Known condition lanes disagree). */
    std::vector<bool> divergentBranch;
    /** Static instruction counts per class, reachable code only. */
    std::array<int, numShareClasses> classCounts{};
};

/** Run the sharing fixpoint over @p cfg. */
SharingResult analyzeSharing(const Cfg &cfg, const SharingOptions &opt);

} // namespace analysis
} // namespace mmt

#endif // MMT_ANALYSIS_SHARING_HH
