/**
 * @file
 * Experiment helpers shared by the benches: geometric means, fixed-width
 * table rendering, and the standard app x config sweeps behind the
 * paper's figures.
 */

#ifndef MMT_SIM_EXPERIMENT_HH
#define MMT_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace mmt
{

/** Geometric mean of positive values (1.0 for an empty set). */
double geomean(const std::vector<double> &values);

/** Render a fixed-width text table: first column left-aligned labels. */
std::string formatTable(const std::vector<std::string> &headers,
                        const std::vector<std::vector<std::string>> &rows);

/** Format a double with @p decimals places. */
std::string fmt(double value, int decimals = 3);

/** Names of all 16 workloads in Table 1 order. */
std::vector<std::string> workloadNames();

// The figure sweeps themselves (speedup rows, the fig5/fig7 batches)
// live in runner/figures.hh on top of the parallel sweep runner.

} // namespace mmt

#endif // MMT_SIM_EXPERIMENT_HH
