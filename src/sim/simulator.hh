/**
 * @file
 * Simulator facade: assemble a workload, build its address spaces, run
 * the SMT/MMT core to completion, verify against the golden functional
 * model, and return the measurements the benches need.
 */

#ifndef MMT_SIM_SIMULATOR_HH
#define MMT_SIM_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "sim/configs.hh"
#include "sim/race_trace.hh"
#include "workloads/workload.hh"

namespace mmt
{

/** Commit counts of one static instruction (thread-instructions). */
struct PcCounts
{
    std::uint64_t committed = 0;
    std::uint64_t merged = 0; // committed via an execute-merged instance
};

/**
 * Per-PC merge profile of one run, filled through the core's commit
 * hook when requested; consumed by analysis::checkMergeUpperBound to
 * enforce the static upper bound on merging.
 */
using PcMergeProfile = std::map<Addr, PcCounts>;

/**
 * Host-throughput measurement of one simulation (the ROADMAP's "as fast
 * as the hardware allows" is tracked through this): wall-clock seconds
 * spent inside SmtCore::run() and the resulting simulation rates.
 *
 * Unlike every other RunResult field, these values are *measurements of
 * the host*, not of the simulated machine: they vary run to run and are
 * deliberately excluded from the canonical serialization that the
 * determinism tests byte-compare (see serializeResult()).
 */
struct SimSpeedStats
{
    double hostSeconds = 0.0;
    double simCyclesPerSec = 0.0;
    double threadInstsPerSec = 0.0; // committed thread-insts per second
};

/** Per-core slice of a CMP run (one entry even on a single core). */
struct CoreBreakdown
{
    /** Global context ids hosted by this core, in thread order. */
    std::vector<int> contexts;
    /** This core's own clock (freezes when the core finishes). */
    Cycles cycles = 0;
    std::uint64_t committedThreadInsts = 0;
    /** Exec-merged fraction of this core's committed thread-insts. */
    double mergedFrac = 0.0;
    double energyPj = 0.0;
    std::uint64_t sharedICacheHits = 0;
};

/** Measurements from one simulation run. */
struct RunResult
{
    std::string workload;
    ConfigKind kind = ConfigKind::Base;
    int numThreads = 0;

    // System topology the run used (cmp figure).
    int numCores = 1;
    Placement placement = Placement::Packed;
    bool sharedICache = false;

    Cycles cycles = 0;
    std::uint64_t committedThreadInsts = 0;
    std::uint64_t fetchRecords = 0;
    std::uint64_t fetchedThreadInsts = 0;

    /** Fraction of fetched thread-instructions per mode
     *  (index = FetchMode: Merge, Detect, Catchup). */
    std::array<double, 3> fetchModeFrac{};
    /** Fraction of committed thread-instructions per identification class
     *  (index = IdentClass). */
    std::array<double, 4> identFrac{};

    EnergyBreakdown energy;
    std::uint64_t lvipRollbacks = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t divergences = 0;
    std::uint64_t remerges = 0;
    /** Fraction of remerges found within 512 fetched branches (§6.3). */
    double remergeWithin512 = 0.0;
    /** False-positive CATCHUP aborts (CATCHUP→DETECT reversions). */
    std::uint64_t catchupAborted = 0;
    /** Summed divergence→remerge latency in cycles, and sample count
     *  (per re-merged thread); mean = syncLatencyCycles/Samples. */
    std::uint64_t syncLatencyCycles = 0;
    std::uint64_t syncLatencySamples = 0;
    /** Analyzer prediction: fraction of reachable static instructions
     *  not provably Divergent (predicted-vs-measured reporting). */
    double staticMergeableFrac = 0.0;

    /** Extra fetch slots the split-steer hint charged (predicted
     *  sub-instruction count − 1 per record fetched at a predicted-split
     *  PC); zero unless the hints mode enables split-steer. */
    std::uint64_t splitSteerCharges = 0;

    // Shared-structure traffic, summed across cores (zero when nothing
    // is shared — the single-core case).
    std::uint64_t sharedL2Accesses = 0;
    std::uint64_t sharedL2Misses = 0;
    std::uint64_t sharedICacheAccesses = 0;
    std::uint64_t sharedICacheHits = 0;

    /** One entry per populated core (exactly one on a single core). */
    std::vector<CoreBreakdown> perCore;

    bool goldenOk = false;

    SimSpeedStats simSpeed;

    double ipc() const
    {
        return cycles ? static_cast<double>(committedThreadInsts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Mean cycles from divergence to re-merge (0 when none re-merged). */
    double meanSyncLatency() const
    {
        return syncLatencySamples
                   ? static_cast<double>(syncLatencyCycles) /
                         static_cast<double>(syncLatencySamples)
                   : 0.0;
    }

    /** Measured exec-merged fraction of committed thread-instructions
     *  (the dynamic counterpart of staticMergeableFrac). */
    double mergedFrac() const { return identFrac[2] + identFrac[3]; }
};

/**
 * Run @p workload under configuration @p kind with @p num_threads
 * hardware threads.
 *
 * @param check_golden also run the functional interpreter and compare
 *        final architected state, memory, and OUT logs
 * @param pc_profile when non-null, filled with per-PC committed/merged
 *        thread-instruction counts (static-analysis cross-check)
 * @param race_trace when non-null, memory-trace capture is enabled and
 *        the per-context event streams are recorded here (input of the
 *        happens-before race oracle); meaningful for MT workloads only
 */
RunResult runWorkload(const Workload &workload, ConfigKind kind,
                      int num_threads,
                      const SimOverrides &ov = SimOverrides(),
                      bool check_golden = true,
                      PcMergeProfile *pc_profile = nullptr,
                      RaceTrace *race_trace = nullptr);

/**
 * Run @p workload to completion and return the full counter dump —
 * every StatGroup-registered counter plus the cycle count.
 *
 * Shared by `mmt_cli --stats/--stats-json` and the golden-equivalence
 * test, so the dump the test pins down is exactly what the CLI prints.
 *
 * @param json render as a JSON object instead of "name value" lines
 */
std::string runStatsDump(const Workload &workload, ConfigKind kind,
                         int num_threads,
                         const SimOverrides &ov = SimOverrides(),
                         bool json = false);

} // namespace mmt

#endif // MMT_SIM_SIMULATOR_HH
