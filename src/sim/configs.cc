#include "sim/configs.hh"

#include <sstream>

#include "common/logging.hh"
#include "workloads/workload.hh"

namespace mmt
{

const char *
configName(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::Base: return "Base";
      case ConfigKind::MMT_F: return "MMT-F";
      case ConfigKind::MMT_FX: return "MMT-FX";
      case ConfigKind::MMT_FXR: return "MMT-FXR";
      case ConfigKind::Limit: return "Limit";
    }
    return "?";
}

const char *
staticHintsModeName(StaticHintsMode mode)
{
    switch (mode) {
      case StaticHintsMode::Off: return "off";
      case StaticHintsMode::FhbSeed: return "fhb-seed";
      case StaticHintsMode::SplitSteer: return "split-steer";
      case StaticHintsMode::Both: return "both";
    }
    return "?";
}

StaticHintsMode
parseStaticHintsMode(const std::string &name)
{
    if (name == "off")
        return StaticHintsMode::Off;
    if (name == "fhb-seed")
        return StaticHintsMode::FhbSeed;
    if (name == "split-steer")
        return StaticHintsMode::SplitSteer;
    if (name == "merge-skip") {
        // Retired: the statically-Divergent merge veto never fired where
        // it mattered (ablation showed merge-skip ≡ off bit-identically),
        // so its slot in the mode axis now carries the split-steer hint.
        warn("--static-hints merge-skip is retired; using split-steer");
        return StaticHintsMode::SplitSteer;
    }
    if (name == "both")
        return StaticHintsMode::Both;
    fatal("unknown static-hints mode '%s' (off|fhb-seed|split-steer|both)",
          name.c_str());
}

const char *
placementName(Placement placement)
{
    switch (placement) {
      case Placement::Packed: return "packed";
      case Placement::Spread: return "spread";
    }
    return "?";
}

Placement
parsePlacement(const std::string &name)
{
    if (name == "packed")
        return Placement::Packed;
    if (name == "spread")
        return Placement::Spread;
    fatal("unknown placement '%s' (packed|spread)", name.c_str());
}

std::vector<std::vector<int>>
placeContexts(int num_contexts, int num_cores, Placement placement)
{
    mmt_assert(num_contexts >= 1 && num_contexts <= maxThreads,
               "bad context count %d", num_contexts);
    mmt_assert(num_cores >= 1 && num_cores <= maxCores,
               "bad core count %d", num_cores);
    std::vector<std::vector<int>> cores(
        static_cast<std::size_t>(num_cores));
    for (int ctx = 0; ctx < num_contexts; ++ctx) {
        // Packed fills core 0 to its SMT capacity before spilling over
        // (with <= maxThreads contexts: everything on core 0, today's
        // single-core layout); Spread deals round-robin.
        int c = placement == Placement::Packed ? ctx / maxThreads
                                               : ctx % num_cores;
        cores[static_cast<std::size_t>(c)].push_back(ctx);
    }
    // Idle cores are not instantiated: a SmtCore needs >= 1 thread.
    std::vector<std::vector<int>> populated;
    for (auto &c : cores) {
        if (!c.empty())
            populated.push_back(std::move(c));
    }
    return populated;
}

CoreParams
makeCoreParams(ConfigKind kind, const Workload &workload, int num_threads,
               const SimOverrides &ov)
{
    CoreParams p;
    p.numThreads = num_threads;

    switch (kind) {
      case ConfigKind::Base:
        break;
      case ConfigKind::MMT_F:
        p.sharedFetch = true;
        break;
      case ConfigKind::MMT_FX:
        p.sharedFetch = true;
        p.sharedExec = true;
        break;
      case ConfigKind::MMT_FXR:
      case ConfigKind::Limit:
        p.sharedFetch = true;
        p.sharedExec = true;
        p.regMerge = true;
        break;
    }

    // The Limit configuration runs exactly identical contexts: ME
    // instances get identical inputs, MT threads all run as thread 0
    // (paper §5: "we execute two identical threads").
    p.multiExecution = workload.multiExecution;
    p.forceTidZero = kind == ConfigKind::Limit;

    if (ov.fhbEntries > 0)
        p.fhbEntries = ov.fhbEntries;
    if (ov.lsPorts > 0)
        p.lsPorts = ov.lsPorts;
    if (ov.mshrs > 0)
        p.mem.numMshrs = ov.mshrs;
    else if (ov.lsPorts > 0)
        p.mem.numMshrs = 4 * ov.lsPorts; // paper scales MSHRs with ports
    if (ov.fetchWidth > 0)
        p.fetchWidth = ov.fetchWidth;
    if (ov.disableTraceCache)
        p.traceCache.enabled = false;
    if (ov.mergeReadPorts >= 0)
        p.mergeReadPorts = ov.mergeReadPorts;
    if (ov.catchupPriority >= 0)
        p.catchupPriority = ov.catchupPriority != 0;
    p.checkInvariants = ov.checkInvariants;
    // The hint *tables* are per-program; runWorkload fills them from the
    // analyzer when the mode asks for them.
    p.staticHints = ov.staticHints;
    return p;
}

SystemParams
makeSystemParams(ConfigKind kind, const Workload &workload,
                 int num_threads, const SimOverrides &ov)
{
    SystemParams sys;
    mmt_assert(ov.numCores >= 1 && ov.numCores <= maxCores,
               "bad core count %d", ov.numCores);
    sys.numCores = ov.numCores;
    sys.placement = ov.placement;
    sys.sharedICache = ov.sharedICache;
    sys.core = makeCoreParams(kind, workload, num_threads, ov);
    return sys;
}

std::string
describeTable4()
{
    CoreParams p;
    std::ostringstream os;
    os << "Simulator configuration (paper Table 4):\n"
       << "  Threads              up to 4\n"
       << "  Issue/Commit width   " << p.issueWidth << "/" << p.commitWidth
       << "\n"
       << "  LVIP/FHB             " << p.lvipEntries << " entries / "
       << p.fhbEntries << " entries\n"
       << "  LSQ/ROB              " << p.lsqSize << "/" << p.robSize << "\n"
       << "  ALU/FPU              " << p.numAlu << "/" << p.numFpu << "\n"
       << "  Branch predictor     2-level, "
       << p.bpred.phtEntries << " entries, history "
       << p.bpred.historyBits << "\n"
       << "  BTB/RAS              " << p.bpred.btbEntries << "/"
       << p.bpred.rasEntries << "\n"
       << "  Trace cache          "
       << p.traceCache.sizeBytes / (1024 * 1024) << "MB, perfect trace "
       << "prediction\n"
       << "  L1I/L1D              " << p.mem.l1i.sizeBytes / 1024 << "KB+"
       << p.mem.l1d.sizeBytes / 1024 << "KB, " << p.mem.l1d.assoc
       << "-way, " << p.mem.l1d.lineBytes << "B lines, "
       << p.mem.l1Latency << "-cycle\n"
       << "  L2                   " << p.mem.l2.sizeBytes / (1024 * 1024)
       << "MB, " << p.mem.l2.assoc << "-way, " << p.mem.l2Latency
       << "-cycle\n"
       << "  DRAM latency         " << p.mem.dramLatency << " cycles\n";
    return os.str();
}

} // namespace mmt
