#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace mmt
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        mmt_assert(v > 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatTable(const std::vector<std::string> &headers,
            const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            if (c == 0) {
                os << cell << std::string(width[c] - cell.size(), ' ');
            } else {
                os << "  " << std::string(width[c] - cell.size(), ' ')
                   << cell;
            }
        }
        os << "\n";
    };
    emit(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

} // namespace mmt
