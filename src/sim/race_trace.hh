/**
 * @file
 * Dynamic memory/synchronization trace of one simulation run, the input
 * of the happens-before race oracle (analysis/race_oracle.hh).
 *
 * The simulator fills one event stream per *global context* from the
 * cores' commit hooks: commit order is per-context program order, and
 * cross-context ordering is reconstructed offline from the Barrier and
 * Send/Recv events, so no global timestamps are needed (and the capture
 * perturbs nothing the goldens pin — it is pure observation).
 *
 * Only MT (shared-memory) runs produce a meaningful trace: ME contexts
 * write private images, so identical addresses in different streams are
 * different locations and the oracle must not be pointed at them.
 */

#ifndef MMT_SIM_RACE_TRACE_HH
#define MMT_SIM_RACE_TRACE_HH

#include <vector>

#include "common/types.hh"

namespace mmt
{

/** One committed event of one context, in program order. */
struct RaceEvent
{
    enum class Kind
    {
        Load,    // addr/val = location, value read
        Store,   // addr/val/old = location, value written, overwritten
        Barrier, // global rendezvous
        Send,    // partner = destination rank, val = value sent
        Recv,    // partner = source rank, val = value received
    };

    Kind kind = Kind::Load;
    Addr pc = 0;
    Addr addr = 0;
    RegVal val = 0;
    RegVal old = 0;
    int partner = -1; // Send/Recv only: the other context's rank
};

/** Index = global context id; each stream is in commit order. */
using RaceTrace = std::vector<std::vector<RaceEvent>>;

} // namespace mmt

#endif // MMT_SIM_RACE_TRACE_HH
