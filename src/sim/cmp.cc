#include "sim/cmp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmt
{

Cmp::Cmp(const SystemParams &sys, const Program *program,
         const std::vector<MemoryImage *> &images)
    : sys_(sys)
{
    int num_contexts = sys_.core.numThreads;
    mmt_assert(static_cast<int>(images.size()) == num_contexts,
               "need one memory image per context");

    if (sys_.numCores == 1) {
        // The standalone core, constructed exactly as before the CMP
        // layer existed (identity placement, no shared structures, no
        // contextIds): the bit-identity path the goldens pin.
        contexts_.emplace_back();
        for (int ctx = 0; ctx < num_contexts; ++ctx) {
            contexts_[0].push_back(ctx);
            ctxLoc_.push_back({0, static_cast<ThreadId>(ctx)});
        }
        cores_.push_back(
            std::make_unique<SmtCore>(sys_.core, program, images));
        return;
    }

    contexts_ =
        placeContexts(num_contexts, sys_.numCores, sys_.placement);

    // Shared outer memory: one L2 for the chip (the Table 4 L2 geometry
    // from the per-core template), plus the optional shared I-cache.
    sharedL2_ = std::make_unique<Cache>(sys_.core.mem.l2);
    if (sys_.sharedICache)
        sharedICache_ = std::make_unique<Cache>(sys_.sharedICacheGeom);

    ctxLoc_.resize(static_cast<std::size_t>(num_contexts));
    for (std::size_t c = 0; c < contexts_.size(); ++c) {
        const std::vector<int> &ctxs = contexts_[c];
        CoreParams params = sys_.core;
        params.numThreads = static_cast<int>(ctxs.size());
        params.contextIds = ctxs;
        std::vector<MemoryImage *> core_images;
        for (std::size_t t = 0; t < ctxs.size(); ++t) {
            core_images.push_back(
                images[static_cast<std::size_t>(ctxs[t])]);
            ctxLoc_[static_cast<std::size_t>(ctxs[t])] = {
                static_cast<int>(c), static_cast<ThreadId>(t)};
        }
        auto core =
            std::make_unique<SmtCore>(params, program, core_images);
        core->memSys().setSharedL2(sharedL2_.get());
        if (sharedICache_)
            core->memSys().setSharedICache(sharedICache_.get());
        // BARRIER spans the whole thread group; the system releases it.
        core->setExternalBarrier(true);
        cores_.push_back(std::move(core));
    }
}

bool
Cmp::done() const
{
    for (const auto &core : cores_) {
        if (!core->done())
            return false;
    }
    return true;
}

Cycles
Cmp::now() const
{
    return cores_.size() == 1 ? cores_[0]->now() : now_;
}

const ThreadState &
Cmp::contextState(int ctx) const
{
    const CtxLoc &loc = ctxLoc_[static_cast<std::size_t>(ctx)];
    return cores_[static_cast<std::size_t>(loc.core)]->thread(loc.thread);
}

void
Cmp::setMessageNetwork(MessageNetwork *net)
{
    for (auto &core : cores_)
        core->setMessageNetwork(net);
}

void
Cmp::setCommitHook(SmtCore::CommitHook hook)
{
    for (auto &core : cores_)
        core->setCommitHook(hook);
}

void
Cmp::releaseGlobalBarrierIfReady()
{
    int live = 0;
    int waiting = 0;
    for (const auto &core : cores_) {
        live += core->liveThreadCount();
        waiting += core->threadsAtBarrier();
    }
    if (live == 0 || waiting != live)
        return; // someone, somewhere, is still on the way
    for (auto &core : cores_)
        core->releaseBarrier();
}

void
Cmp::tickSystem()
{
    ++now_;
    // Lockstep: every non-done core steps each system cycle, so the
    // per-core clocks and the shared caches' timestamps stay coherent.
    // A finished core's clock freezes at its completion cycle.
    for (auto &core : cores_) {
        if (!core->done())
            core->tick();
    }
    releaseGlobalBarrierIfReady();
}

void
Cmp::run()
{
    if (cores_.size() == 1 && !sharedL2_) {
        cores_[0]->run();
        return;
    }
    const CoreParams &p = sys_.core;
    while (!done()) {
        tickSystem();
        if (now_ > p.maxCycles)
            fatal("simulation exceeded %llu cycles",
                  static_cast<unsigned long long>(p.maxCycles));
        if (p.deadlockCycles != 0) {
            Cycles last_commit = 0;
            for (const auto &core : cores_)
                last_commit =
                    std::max(last_commit, core->lastCommitCycle());
            if (now_ - last_commit > p.deadlockCycles) {
                std::string diag;
                for (std::size_t c = 0; c < cores_.size(); ++c) {
                    diag += "\n  core" + std::to_string(c) + ":" +
                            cores_[c]->stallDiagnostics();
                }
                panic("system deadlock at cycle %llu%s",
                      static_cast<unsigned long long>(now_),
                      diag.c_str());
            }
        }
    }
}

void
Cmp::registerAllStats(StatGroup &group)
{
    for (std::size_t c = 0; c < cores_.size(); ++c)
        cores_[c]->registerStats(group,
                                 "core" + std::to_string(c) + ".");
    if (sharedL2_) {
        group.addCounter("sys.l2.accesses", &sharedL2_->accesses);
        group.addCounter("sys.l2.misses", &sharedL2_->misses);
    }
    if (sharedICache_) {
        group.addCounter("sys.sl1i.accesses", &sharedICache_->accesses);
        group.addCounter("sys.sl1i.misses", &sharedICache_->misses);
    }
}

std::string
Cmp::dumpStats()
{
    if (cores_.size() == 1 && !sharedL2_)
        return cores_[0]->dumpStats();
    StatGroup group;
    registerAllStats(group);
    std::string out = "cycles " + std::to_string(now()) + "\n";
    return out + group.dump();
}

std::string
Cmp::dumpStatsJson()
{
    if (cores_.size() == 1 && !sharedL2_)
        return cores_[0]->dumpStatsJson();
    StatGroup group;
    registerAllStats(group);
    std::string body = group.dumpJson();
    return "{\n  \"cycles\": " + std::to_string(now()) + ",\n" +
           body.substr(2);
}

} // namespace mmt
