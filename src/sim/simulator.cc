#include "sim/simulator.hh"

#include <chrono>
#include <memory>
#include <vector>

#include "analysis/hints.hh"
#include "common/logging.hh"
#include "core/msg_net.hh"
#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"
#include "sim/cmp.hh"

namespace mmt
{

namespace
{

/** Build the per-thread address spaces of a run. */
std::vector<std::unique_ptr<MemoryImage>>
buildImages(const Workload &workload, const Program &prog, int num_threads,
            bool multi_execution, bool identical)
{
    std::vector<std::unique_ptr<MemoryImage>> images;
    if (multi_execution) {
        for (int i = 0; i < num_threads; ++i) {
            auto img = std::make_unique<MemoryImage>();
            img->loadData(prog);
            // The instance index is always passed through: identity
            // data (e.g. message-passing ranks) must survive the Limit
            // configuration; workloads suppress only input perturbation.
            workload.initData(*img, prog, i, num_threads, identical);
            images.push_back(std::move(img));
        }
    } else {
        auto img = std::make_unique<MemoryImage>();
        img->loadData(prog);
        workload.initData(*img, prog, 0, num_threads, identical);
        images.push_back(std::move(img));
    }
    return images;
}

std::vector<MemoryImage *>
imagePointers(std::vector<std::unique_ptr<MemoryImage>> &images,
              int num_threads)
{
    std::vector<MemoryImage *> ptrs;
    for (int t = 0; t < num_threads; ++t) {
        ptrs.push_back(images.size() == 1
                           ? images[0].get()
                           : images[static_cast<std::size_t>(t)].get());
    }
    return ptrs;
}

/**
 * Run the sharing pass for @p params' thread semantics, record the
 * static-mergeable prediction, and fill the hint tables when the hints
 * mode consumes them. Microseconds per program — cheap enough to run on
 * every simulation.
 */
double
computeStaticHints(CoreParams &params, const Program &prog)
{
    analysis::Cfg cfg(prog);
    analysis::SharingOptions shopt;
    shopt.multiExecution = params.multiExecution;
    shopt.forceTidZero = params.forceTidZero;
    analysis::SharingResult sharing = analysis::analyzeSharing(cfg, shopt);
    if (params.staticHints != StaticHintsMode::Off) {
        analysis::FetchHints hints = computeFetchHints(cfg, sharing);
        params.hintTable.divergentPcs = std::move(hints.divergentPcs);
        params.hintTable.reconvergencePcs =
            std::move(hints.reconvergencePcs);
        params.hintTable.splitPcs = std::move(hints.splitPcs);
        params.hintTable.splitCounts = std::move(hints.splitCounts);
    }
    const auto &c = sharing.classCounts;
    int total = 0;
    for (int n : c)
        total += n;
    int divergent =
        c[(std::size_t)analysis::ShareClass::Divergent];
    return total ? static_cast<double>(total - divergent) /
                       static_cast<double>(total)
                 : 1.0;
}

} // namespace

RunResult
runWorkload(const Workload &workload, ConfigKind kind, int num_threads,
            const SimOverrides &ov, bool check_golden,
            PcMergeProfile *pc_profile, RaceTrace *race_trace)
{
    Program prog = assemble(workload.source, defaultCodeBase,
                            defaultDataBase, workload.name);
    SystemParams sys = makeSystemParams(kind, workload, num_threads, ov);
    double static_mergeable = computeStaticHints(sys.core, prog);
    bool identical = kind == ConfigKind::Limit;

    auto images = buildImages(workload, prog, num_threads,
                              sys.core.multiExecution, identical);
    auto ptrs = imagePointers(images, num_threads);

    MessageNetwork net;
    Cmp cmp(sys, &prog, ptrs);
    if (workload.messagePassing)
        cmp.setMessageNetwork(&net);
    if (race_trace)
        race_trace->assign(static_cast<std::size_t>(num_threads), {});
    if (pc_profile || race_trace) {
        // The hooks are per core: the trace hook needs this core's
        // local-thread -> global-context mapping to route events.
        for (int c = 0; c < cmp.numCores(); ++c) {
            std::vector<int> ctxs = cmp.coreContexts(c);
            if (race_trace)
                cmp.core(c).setCaptureMemTrace(true);
            cmp.core(c).setCommitHook(
                [pc_profile, race_trace, ctxs](const DynInst &di, Cycles) {
                    if (pc_profile) {
                        PcCounts &pcs = (*pc_profile)[di.pc];
                        auto n =
                            static_cast<std::uint64_t>(di.itid.count());
                        pcs.committed += n;
                        if (di.isMergedExec())
                            pcs.merged += n;
                    }
                    if (!race_trace)
                        return;
                    RaceEvent::Kind kind;
                    if (di.inst.isLoad())
                        kind = RaceEvent::Kind::Load;
                    else if (di.inst.isStore())
                        kind = RaceEvent::Kind::Store;
                    else if (di.inst.op == Opcode::BARRIER)
                        kind = RaceEvent::Kind::Barrier;
                    else if (di.inst.op == Opcode::SEND)
                        kind = RaceEvent::Kind::Send;
                    else if (di.inst.op == Opcode::RECV)
                        kind = RaceEvent::Kind::Recv;
                    else
                        return;
                    di.itid.forEach([&](ThreadId t) {
                        RaceEvent ev;
                        ev.kind = kind;
                        ev.pc = di.pc;
                        ev.addr = di.effAddr[t];
                        ev.val = di.memVal[t];
                        ev.old = di.memOld[t];
                        if (kind == RaceEvent::Kind::Send ||
                            kind == RaceEvent::Kind::Recv)
                            ev.partner = static_cast<int>(di.memOld[t]);
                        (*race_trace)[(std::size_t)
                                          ctxs[(std::size_t)t]]
                            .push_back(ev);
                    });
                });
        }
    }
    auto wall_start = std::chrono::steady_clock::now();
    cmp.run();
    double host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    RunResult r;
    r.workload = workload.name;
    r.kind = kind;
    r.numThreads = num_threads;
    r.numCores = sys.numCores;
    r.placement = sys.placement;
    r.sharedICache = sys.sharedICache;
    r.cycles = cmp.now();

    // Aggregate the per-core counters (the single-core path reduces to
    // reading the one core's counters, as before the CMP layer).
    std::array<std::uint64_t, 3> in_mode{};
    std::array<std::uint64_t, 4> ident{};
    double remerge_frac_weighted = 0.0;
    std::uint64_t remerge_total = 0;
    for (int c = 0; c < cmp.numCores(); ++c) {
        SmtCore &core = cmp.core(c);
        r.committedThreadInsts += core.stats.committedThreadInsts.value();
        r.fetchRecords += core.stats.fetchRecords.value();
        r.fetchedThreadInsts += core.stats.fetchedThreadInsts.value();
        for (std::size_t m = 0; m < in_mode.size(); ++m)
            in_mode[m] += core.stats.fetchedInMode[m].value();
        for (std::size_t i = 0; i < ident.size(); ++i)
            ident[i] += core.stats.identClass[i].value();
        r.lvipRollbacks += core.stats.lvipRollbacks.value();
        r.branchMispredicts += core.stats.branchMispredicts.value();
        FetchSync &sync = core.fetchSync();
        r.divergences += sync.divergences.value();
        r.remerges += sync.remerges.value();
        r.catchupAborted += sync.catchupAborted.value();
        r.syncLatencyCycles += sync.syncLatencyCycles.value();
        r.syncLatencySamples += sync.syncLatencySamples.value();
        r.splitSteerCharges += sync.splitSteerCharges.value();
        const Distribution &rd = sync.remergeDistance;
        if (rd.total() > 0) {
            remerge_frac_weighted +=
                rd.cumulativeFraction(rd.limits().size() - 1) *
                static_cast<double>(rd.total());
            remerge_total += rd.total();
        }
        MemorySystem &mem = core.memSys();
        r.sharedL2Accesses += mem.sharedL2Accesses.value();
        r.sharedL2Misses += mem.sharedL2Misses.value();
        r.sharedICacheAccesses += mem.sharedIAccesses.value();
        r.sharedICacheHits += mem.sharedIHits.value();

        EnergyBreakdown core_energy = computeEnergy(core);
        r.energy.cache += core_energy.cache;
        r.energy.overhead += core_energy.overhead;
        r.energy.other += core_energy.other;

        CoreBreakdown cb;
        cb.contexts = cmp.coreContexts(c);
        cb.cycles = core.now();
        cb.committedThreadInsts =
            core.stats.committedThreadInsts.value();
        double core_committed =
            static_cast<double>(cb.committedThreadInsts);
        cb.mergedFrac =
            core_committed > 0
                ? (static_cast<double>(core.stats.identClass[2].value()) +
                   static_cast<double>(core.stats.identClass[3].value())) /
                      core_committed
                : 0.0;
        cb.energyPj = core_energy.total();
        cb.sharedICacheHits = mem.sharedIHits.value();
        r.perCore.push_back(std::move(cb));
    }

    double fetched = static_cast<double>(r.fetchedThreadInsts);
    for (std::size_t m = 0; m < in_mode.size(); ++m) {
        r.fetchModeFrac[m] =
            fetched > 0 ? static_cast<double>(in_mode[m]) / fetched : 0.0;
    }
    double committed = static_cast<double>(r.committedThreadInsts);
    for (std::size_t i = 0; i < ident.size(); ++i) {
        r.identFrac[i] = committed > 0
                             ? static_cast<double>(ident[i]) / committed
                             : 0.0;
    }
    r.remergeWithin512 =
        remerge_total > 0 ? remerge_frac_weighted /
                                static_cast<double>(remerge_total)
                          : 1.0;

    r.simSpeed.hostSeconds = host_seconds;
    if (host_seconds > 0.0) {
        r.simSpeed.simCyclesPerSec =
            static_cast<double>(r.cycles) / host_seconds;
        r.simSpeed.threadInstsPerSec =
            static_cast<double>(r.committedThreadInsts) / host_seconds;
    }

    r.staticMergeableFrac = static_mergeable;

    r.goldenOk = true;
    // The Limit configuration on shared-memory workloads makes every
    // thread execute identical work over the *same* memory; the result
    // then depends on instruction interleaving (benign for timing, but
    // not comparable against an interpreter with a different schedule).
    if (kind == ConfigKind::Limit && !workload.multiExecution)
        check_golden = false;
    if (check_golden) {
        auto golden_images = buildImages(workload, prog, num_threads,
                                         sys.core.multiExecution,
                                         identical);
        auto golden_ptrs = imagePointers(golden_images, num_threads);
        MessageNetwork golden_net;
        FunctionalCpu golden(&prog, golden_ptrs, sys.core.multiExecution,
                             sys.core.forceTidZero);
        if (workload.messagePassing)
            golden.setMessageNetwork(&golden_net);
        golden.run();
        for (ThreadId ctx = 0; ctx < num_threads; ++ctx) {
            const ThreadState &ts = cmp.contextState(ctx);
            const FuncThread &ft = golden.thread(ctx);
            if (ts.regs != ft.regs || ts.output != ft.output)
                r.goldenOk = false;
        }
        for (std::size_t i = 0; i < images.size(); ++i) {
            if (!images[i]->contentEquals(*golden_images[i]))
                r.goldenOk = false;
        }
        if (!r.goldenOk) {
            warn("golden-model mismatch: %s %s %dT", workload.name.c_str(),
                 configName(kind), num_threads);
        }
    }
    return r;
}

std::string
runStatsDump(const Workload &workload, ConfigKind kind, int num_threads,
             const SimOverrides &ov, bool json)
{
    Program prog = assemble(workload.source, defaultCodeBase,
                            defaultDataBase, workload.name);
    SystemParams sys = makeSystemParams(kind, workload, num_threads, ov);
    if (sys.core.staticHints != StaticHintsMode::Off)
        computeStaticHints(sys.core, prog);
    bool identical = kind == ConfigKind::Limit;

    auto images = buildImages(workload, prog, num_threads,
                              sys.core.multiExecution, identical);
    auto ptrs = imagePointers(images, num_threads);

    MessageNetwork net;
    Cmp cmp(sys, &prog, ptrs);
    if (workload.messagePassing)
        cmp.setMessageNetwork(&net);
    cmp.run();
    return json ? cmp.dumpStatsJson() : cmp.dumpStats();
}

} // namespace mmt
