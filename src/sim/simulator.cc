#include "sim/simulator.hh"

#include <chrono>
#include <memory>
#include <vector>

#include "analysis/hints.hh"
#include "common/logging.hh"
#include "core/msg_net.hh"
#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"

namespace mmt
{

namespace
{

/** Build the per-thread address spaces of a run. */
std::vector<std::unique_ptr<MemoryImage>>
buildImages(const Workload &workload, const Program &prog, int num_threads,
            bool multi_execution, bool identical)
{
    std::vector<std::unique_ptr<MemoryImage>> images;
    if (multi_execution) {
        for (int i = 0; i < num_threads; ++i) {
            auto img = std::make_unique<MemoryImage>();
            img->loadData(prog);
            // The instance index is always passed through: identity
            // data (e.g. message-passing ranks) must survive the Limit
            // configuration; workloads suppress only input perturbation.
            workload.initData(*img, prog, i, num_threads, identical);
            images.push_back(std::move(img));
        }
    } else {
        auto img = std::make_unique<MemoryImage>();
        img->loadData(prog);
        workload.initData(*img, prog, 0, num_threads, identical);
        images.push_back(std::move(img));
    }
    return images;
}

std::vector<MemoryImage *>
imagePointers(std::vector<std::unique_ptr<MemoryImage>> &images,
              int num_threads)
{
    std::vector<MemoryImage *> ptrs;
    for (int t = 0; t < num_threads; ++t) {
        ptrs.push_back(images.size() == 1
                           ? images[0].get()
                           : images[static_cast<std::size_t>(t)].get());
    }
    return ptrs;
}

/**
 * Run the sharing pass for @p params' thread semantics, record the
 * static-mergeable prediction, and fill the hint tables when the hints
 * mode consumes them. Microseconds per program — cheap enough to run on
 * every simulation.
 */
double
computeStaticHints(CoreParams &params, const Program &prog)
{
    analysis::Cfg cfg(prog);
    analysis::SharingOptions shopt;
    shopt.multiExecution = params.multiExecution;
    shopt.forceTidZero = params.forceTidZero;
    analysis::SharingResult sharing = analysis::analyzeSharing(cfg, shopt);
    if (params.staticHints != StaticHintsMode::Off) {
        analysis::FetchHints hints = computeFetchHints(cfg, sharing);
        params.hintTable.divergentPcs = std::move(hints.divergentPcs);
        params.hintTable.reconvergencePcs =
            std::move(hints.reconvergencePcs);
    }
    const auto &c = sharing.classCounts;
    int total = 0;
    for (int n : c)
        total += n;
    int divergent =
        c[(std::size_t)analysis::ShareClass::Divergent];
    return total ? static_cast<double>(total - divergent) /
                       static_cast<double>(total)
                 : 1.0;
}

} // namespace

RunResult
runWorkload(const Workload &workload, ConfigKind kind, int num_threads,
            const SimOverrides &ov, bool check_golden,
            PcMergeProfile *pc_profile)
{
    Program prog = assemble(workload.source, defaultCodeBase,
                            defaultDataBase, workload.name);
    CoreParams params = makeCoreParams(kind, workload, num_threads, ov);
    double static_mergeable = computeStaticHints(params, prog);
    bool identical = kind == ConfigKind::Limit;

    auto images = buildImages(workload, prog, num_threads,
                              params.multiExecution, identical);
    auto ptrs = imagePointers(images, num_threads);

    MessageNetwork net;
    SmtCore core(params, &prog, ptrs);
    if (workload.messagePassing)
        core.setMessageNetwork(&net);
    if (pc_profile) {
        core.setCommitHook([pc_profile](const DynInst &di, Cycles) {
            PcCounts &c = (*pc_profile)[di.pc];
            auto n = static_cast<std::uint64_t>(di.itid.count());
            c.committed += n;
            if (di.isMergedExec())
                c.merged += n;
        });
    }
    auto wall_start = std::chrono::steady_clock::now();
    core.run();
    double host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    RunResult r;
    r.workload = workload.name;
    r.kind = kind;
    r.numThreads = num_threads;
    r.cycles = core.now();
    r.committedThreadInsts = core.stats.committedThreadInsts.value();
    r.fetchRecords = core.stats.fetchRecords.value();
    r.fetchedThreadInsts = core.stats.fetchedThreadInsts.value();

    double fetched = static_cast<double>(r.fetchedThreadInsts);
    for (int m = 0; m < 3; ++m) {
        r.fetchModeFrac[static_cast<std::size_t>(m)] =
            fetched > 0
                ? static_cast<double>(
                      core.stats.fetchedInMode[static_cast<std::size_t>(m)]
                          .value()) / fetched
                : 0.0;
    }
    double committed = static_cast<double>(r.committedThreadInsts);
    for (int c = 0; c < 4; ++c) {
        r.identFrac[static_cast<std::size_t>(c)] =
            committed > 0
                ? static_cast<double>(
                      core.stats.identClass[static_cast<std::size_t>(c)]
                          .value()) / committed
                : 0.0;
    }

    r.simSpeed.hostSeconds = host_seconds;
    if (host_seconds > 0.0) {
        r.simSpeed.simCyclesPerSec =
            static_cast<double>(r.cycles) / host_seconds;
        r.simSpeed.threadInstsPerSec =
            static_cast<double>(r.committedThreadInsts) / host_seconds;
    }

    r.energy = computeEnergy(core);
    r.lvipRollbacks = core.stats.lvipRollbacks.value();
    r.branchMispredicts = core.stats.branchMispredicts.value();
    r.divergences = core.fetchSync().divergences.value();
    r.remerges = core.fetchSync().remerges.value();
    const Distribution &rd = core.fetchSync().remergeDistance;
    r.remergeWithin512 =
        rd.total() > 0 ? rd.cumulativeFraction(rd.limits().size() - 1)
                       : 1.0;
    r.catchupAborted = core.fetchSync().catchupAborted.value();
    r.syncLatencyCycles = core.fetchSync().syncLatencyCycles.value();
    r.syncLatencySamples = core.fetchSync().syncLatencySamples.value();
    r.staticMergeableFrac = static_mergeable;

    r.goldenOk = true;
    // The Limit configuration on shared-memory workloads makes every
    // thread execute identical work over the *same* memory; the result
    // then depends on instruction interleaving (benign for timing, but
    // not comparable against an interpreter with a different schedule).
    if (kind == ConfigKind::Limit && !workload.multiExecution)
        check_golden = false;
    if (check_golden) {
        auto golden_images = buildImages(workload, prog, num_threads,
                                         params.multiExecution, identical);
        auto golden_ptrs = imagePointers(golden_images, num_threads);
        MessageNetwork golden_net;
        FunctionalCpu golden(&prog, golden_ptrs, params.multiExecution,
                             params.forceTidZero);
        if (workload.messagePassing)
            golden.setMessageNetwork(&golden_net);
        golden.run();
        for (ThreadId t = 0; t < num_threads; ++t) {
            const ThreadState &ts = core.thread(t);
            const FuncThread &ft = golden.thread(t);
            if (ts.regs != ft.regs || ts.output != ft.output)
                r.goldenOk = false;
        }
        for (std::size_t i = 0; i < images.size(); ++i) {
            if (!images[i]->contentEquals(*golden_images[i]))
                r.goldenOk = false;
        }
        if (!r.goldenOk) {
            warn("golden-model mismatch: %s %s %dT", workload.name.c_str(),
                 configName(kind), num_threads);
        }
    }
    return r;
}

std::string
runStatsDump(const Workload &workload, ConfigKind kind, int num_threads,
             const SimOverrides &ov, bool json)
{
    Program prog = assemble(workload.source, defaultCodeBase,
                            defaultDataBase, workload.name);
    CoreParams params = makeCoreParams(kind, workload, num_threads, ov);
    if (params.staticHints != StaticHintsMode::Off)
        computeStaticHints(params, prog);
    bool identical = kind == ConfigKind::Limit;

    auto images = buildImages(workload, prog, num_threads,
                              params.multiExecution, identical);
    auto ptrs = imagePointers(images, num_threads);

    MessageNetwork net;
    SmtCore core(params, &prog, ptrs);
    if (workload.messagePassing)
        core.setMessageNetwork(&net);
    core.run();
    return json ? core.dumpStatsJson() : core.dumpStats();
}

} // namespace mmt
