/**
 * @file
 * Cmp — a chip multiprocessor of SMT/MMT cores under one cycle
 * scheduler. Each populated core runs a slice of the workload's thread
 * group (per the placement policy); L1 misses route through one shared
 * L2, optionally with a Sphynx-style shared I-cache between the private
 * L1Is and the L2. With numCores == 1 the Cmp degenerates to exactly
 * today's standalone SmtCore: same construction, same run loop, same
 * stats dump — the bit-identity guarantee the goldens pin.
 */

#ifndef MMT_SIM_CMP_HH
#define MMT_SIM_CMP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/smt_core.hh"
#include "sim/configs.hh"

namespace mmt
{

/** A CMP of SmtCores stepped in lockstep with shared outer memory. */
class Cmp
{
  public:
    /**
     * @param sys topology plus the shared per-core configuration
     * @param program the binary every context executes
     * @param images one functional memory pointer per *global context*
     *        (MT workloads pass the same pointer for every context)
     */
    Cmp(const SystemParams &sys, const Program *program,
        const std::vector<MemoryImage *> &images);

    /** Run all cores to completion (global barriers released here). */
    void run();

    bool done() const;

    /** System cycle count: the lockstep clock (== the single core's
     *  clock when numCores == 1). */
    Cycles now() const;

    int numCores() const { return static_cast<int>(cores_.size()); }
    SmtCore &core(int i) { return *cores_[static_cast<std::size_t>(i)]; }

    /** Global context ids hosted by core @p i, in thread order. */
    const std::vector<int> &coreContexts(int i) const
    {
        return contexts_[static_cast<std::size_t>(i)];
    }

    /** Architectural state of global context @p ctx (golden compare). */
    const ThreadState &contextState(int ctx) const;

    /** Attach a message network, forwarded to every core (SEND/RECV
     *  ranks are global context ids, so one network spans the chip). */
    void setMessageNetwork(MessageNetwork *net);

    /** Install a commit hook on every core. */
    void setCommitHook(SmtCore::CommitHook hook);

    const SystemParams &params() const { return sys_; }

    Cache *sharedL2() { return sharedL2_.get(); }
    Cache *sharedICache() { return sharedICache_.get(); }

    /**
     * Full counter dump. numCores == 1 delegates to the core (the exact
     * bytes the goldens pin); a CMP prefixes each core's counters with
     * "coreN." and appends the shared structures under "sys.".
     */
    std::string dumpStats();
    std::string dumpStatsJson();

  private:
    void tickSystem();
    void releaseGlobalBarrierIfReady();
    void registerAllStats(StatGroup &group);

    SystemParams sys_;
    /** Per populated core: the global context ids it hosts. */
    std::vector<std::vector<int>> contexts_;
    std::vector<std::unique_ptr<SmtCore>> cores_;
    std::unique_ptr<Cache> sharedL2_;
    std::unique_ptr<Cache> sharedICache_;
    /** Location of each global context: (core index, local thread). */
    struct CtxLoc
    {
        int core;
        ThreadId thread;
    };
    std::vector<CtxLoc> ctxLoc_;
    Cycles now_ = 0;
};

} // namespace mmt

#endif // MMT_SIM_CMP_HH
