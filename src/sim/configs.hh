/**
 * @file
 * The paper's evaluated configurations (Table 5) and the Table 4 core
 * configuration they share.
 *
 *   Base    — traditional SMT (trace cache, no MMT hardware)
 *   MMT-F   — shared fetch only (always split at decode)
 *   MMT-FX  — shared fetch and execution
 *   MMT-FXR — MMT-FX plus commit-time register merging
 *   Limit   — MMT-FXR running identical instances (upper bound)
 */

#ifndef MMT_SIM_CONFIGS_HH
#define MMT_SIM_CONFIGS_HH

#include <string>

#include "core/params.hh"

namespace mmt
{

struct Workload;

/** Table 5 configuration names. */
enum class ConfigKind
{
    Base,
    MMT_F,
    MMT_FX,
    MMT_FXR,
    Limit,
};

/** Printable name ("Base", "MMT-F", ...). */
const char *configName(ConfigKind kind);

/** Printable name of a static-hints mode ("off", "fhb-seed", ...). */
const char *staticHintsModeName(StaticHintsMode mode);

/** Parse "off" / "fhb-seed" / "merge-skip" / "both"; fatal if unknown. */
StaticHintsMode parseStaticHintsMode(const std::string &name);

/** Optional per-experiment parameter overrides (sensitivity sweeps). */
struct SimOverrides
{
    int fhbEntries = -1;   // Figure 7(a)/(c)
    int lsPorts = -1;      // Figure 7(b)
    int mshrs = -1;        // scaled with lsPorts in the paper
    int fetchWidth = -1;   // Figure 7(d)
    bool disableTraceCache = false;
    bool checkInvariants = true;
    int mergeReadPorts = -1;     // register-merging ablation
    int catchupPriority = -1;    // 0/1 override; CATCHUP ablation
    /** Analyzer-driven frontend hints (ablation_hints figure). */
    StaticHintsMode staticHints = StaticHintsMode::Off;
};

/**
 * Build the CoreParams for running @p workload under @p kind with
 * @p num_threads hardware threads (Table 4 defaults plus overrides).
 */
CoreParams makeCoreParams(ConfigKind kind, const Workload &workload,
                          int num_threads,
                          const SimOverrides &ov = SimOverrides());

/** Render the Table 4 configuration as text (bench headers). */
std::string describeTable4();

} // namespace mmt

#endif // MMT_SIM_CONFIGS_HH
