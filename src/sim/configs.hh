/**
 * @file
 * The paper's evaluated configurations (Table 5) and the Table 4 core
 * configuration they share.
 *
 *   Base    — traditional SMT (trace cache, no MMT hardware)
 *   MMT-F   — shared fetch only (always split at decode)
 *   MMT-FX  — shared fetch and execution
 *   MMT-FXR — MMT-FX plus commit-time register merging
 *   Limit   — MMT-FXR running identical instances (upper bound)
 */

#ifndef MMT_SIM_CONFIGS_HH
#define MMT_SIM_CONFIGS_HH

#include <string>
#include <vector>

#include "core/params.hh"

namespace mmt
{

struct Workload;

/** Table 5 configuration names. */
enum class ConfigKind
{
    Base,
    MMT_F,
    MMT_FX,
    MMT_FXR,
    Limit,
};

/** Printable name ("Base", "MMT-F", ...). */
const char *configName(ConfigKind kind);

/** Printable name of a static-hints mode ("off", "fhb-seed", ...). */
const char *staticHintsModeName(StaticHintsMode mode);

/** Parse "off" / "fhb-seed" / "split-steer" / "both"; fatal if
 *  unknown. "merge-skip" is accepted as a deprecated alias. */
StaticHintsMode parseStaticHintsMode(const std::string &name);

/** Optional per-experiment parameter overrides (sensitivity sweeps). */
struct SimOverrides
{
    int fhbEntries = -1;   // Figure 7(a)/(c)
    int lsPorts = -1;      // Figure 7(b)
    int mshrs = -1;        // scaled with lsPorts in the paper
    int fetchWidth = -1;   // Figure 7(d)
    bool disableTraceCache = false;
    bool checkInvariants = true;
    int mergeReadPorts = -1;     // register-merging ablation
    int catchupPriority = -1;    // 0/1 override; CATCHUP ablation
    /** Analyzer-driven frontend hints (ablation_hints figure). */
    StaticHintsMode staticHints = StaticHintsMode::Off;
    // CMP topology (cmp figure).
    int numCores = 1;
    Placement placement = Placement::Packed;
    bool sharedICache = false;
};

/**
 * System-level configuration of a CMP of SMT cores: the topology plus
 * the per-core parameters every core shares (threads-per-core and
 * context placement are filled in per core by the Cmp).
 */
struct SystemParams
{
    int numCores = 1;
    Placement placement = Placement::Packed;
    /** Probe a shared I-cache between each core's L1I and the L2. */
    bool sharedICache = false;
    CacheParams sharedICacheGeom{"sl1i", 64 * 1024, 8, 64};
    /** Template for every core (numThreads = system-wide contexts). */
    CoreParams core;
};

/** Printable name of a placement policy ("packed" / "spread"). */
const char *placementName(Placement placement);

/** Parse "packed" / "spread"; fatal if unknown. */
Placement parsePlacement(const std::string &name);

/**
 * Assign @p num_contexts global contexts to @p num_cores cores.
 * @return one context-id list per *populated* core, in core order:
 *         empty cores are not instantiated (Packed with few contexts
 *         uses fewer cores than configured).
 */
std::vector<std::vector<int>> placeContexts(int num_contexts,
                                            int num_cores,
                                            Placement placement);

/**
 * Build the CoreParams for running @p workload under @p kind with
 * @p num_threads hardware threads (Table 4 defaults plus overrides).
 */
CoreParams makeCoreParams(ConfigKind kind, const Workload &workload,
                          int num_threads,
                          const SimOverrides &ov = SimOverrides());

/**
 * Build the full system configuration: makeCoreParams plus the CMP
 * topology from the overrides.
 */
SystemParams makeSystemParams(ConfigKind kind, const Workload &workload,
                              int num_threads,
                              const SimOverrides &ov = SimOverrides());

/** Render the Table 4 configuration as text (bench headers). */
std::string describeTable4();

} // namespace mmt

#endif // MMT_SIM_CONFIGS_HH
