/**
 * @file
 * TraceCache — the aggressive fetch front-end assumed by the paper (§5):
 * a 1 MB trace cache with perfect trace prediction. On a hit, a fetch
 * group may continue past taken branches; on a miss, fetch stops at the
 * first taken branch that cycle and the trace is installed.
 *
 * The paper reports the trace cache "had a negligible effect on the
 * results"; we model it so the baseline is as strong as theirs.
 */

#ifndef MMT_MEM_TRACE_CACHE_HH
#define MMT_MEM_TRACE_CACHE_HH

#include "common/stats.hh"
#include "mem/cache.hh"

namespace mmt
{

/** Trace cache configuration. */
struct TraceCacheParams
{
    bool enabled = true;
    std::uint64_t sizeBytes = 1024 * 1024;
    int assoc = 4;
    /** Max instructions per trace line (determines the indexed geometry). */
    int traceInsts = 16;
    /** Max embedded taken branches a hit allows a fetch group to cross. */
    int maxBranchesPerTrace = 3;
};

/** Set-associative trace storage indexed by trace start PC. */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheParams &params);

    /**
     * Look up a trace starting at @p pc.
     * @return true on hit (fetch may cross taken branches this cycle);
     *         a miss installs the trace for next time.
     */
    bool access(AddressSpaceId asid, Addr pc);

    const TraceCacheParams &params() const { return params_; }

    Counter accesses;
    Counter misses;

  private:
    TraceCacheParams params_;
    Cache storage_;
};

} // namespace mmt

#endif // MMT_MEM_TRACE_CACHE_HH
