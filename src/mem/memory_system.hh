/**
 * @file
 * MemorySystem — the timing model of the cache hierarchy in Table 4:
 * split 64 KB L1I / L1D (1-cycle), shared 4 MB L2 (6-cycle), 200-cycle
 * DRAM, with a finite pool of MSHRs limiting outstanding L1D misses
 * (scaled with load/store ports for Figure 7(b)).
 */

#ifndef MMT_MEM_MEMORY_SYSTEM_HH
#define MMT_MEM_MEMORY_SYSTEM_HH

#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"

namespace mmt
{

/** Hierarchy configuration (Table 4 defaults). */
struct MemoryParams
{
    CacheParams l1i{"l1i", 64 * 1024, 4, 64};
    CacheParams l1d{"l1d", 64 * 1024, 4, 64};
    CacheParams l2{"l2", 4 * 1024 * 1024, 8, 64};
    Cycles l1Latency = 1;
    Cycles l2Latency = 6;
    Cycles dramLatency = 200;
    /** Interconnect hop to the CMP's shared I-cache (when present). */
    Cycles sharedILatency = 2;
    int numMshrs = 16;
};

/**
 * Timing model of one core's cache hierarchy. Standalone it owns a
 * private L2 (the single-core Table 4 hierarchy); under a CMP the
 * system injects a shared L2 (and optionally a shared I-cache probed
 * between the private L1I and the L2) that replaces / augments it.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryParams &params);

    /**
     * Perform a data access at @p now.
     * @return the cycle at which the value is available.
     */
    Cycles dataAccess(AddressSpaceId asid, Addr addr, bool is_write,
                      Cycles now);

    /**
     * Perform an instruction fetch access at @p now.
     * @return the cycle at which the line is available.
     */
    Cycles instAccess(AddressSpaceId asid, Addr addr, Cycles now);

    const MemoryParams &params() const { return params_; }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    /** Route L1 misses to @p l2 (the CMP's shared L2) instead of the
     *  private one. Pass nullptr to restore the private L2. */
    void setSharedL2(Cache *l2) { sharedL2_ = l2; }

    /** Probe @p cache (the CMP's Sphynx-style shared I-cache) between
     *  the private L1I and the L2 on instruction-fetch misses. */
    void setSharedICache(Cache *cache) { sharedICache_ = cache; }

    Counter mshrStalls; // accesses delayed because all MSHRs were busy
    // Per-core traffic into the CMP's shared structures (all zero when
    // nothing is shared — the single-core case).
    Counter sharedL2Accesses;
    Counter sharedL2Misses;
    Counter sharedIAccesses;
    Counter sharedIHits;

  private:
    /**
     * Reserve an MSHR for a miss issued at @p now.
     * @return the cycle at which the miss may begin.
     */
    Cycles allocMshr(Cycles now, Cycles service_latency);

    /** L2 access through the private or shared L2, counting shared
     *  traffic. @return service latency beyond the L1 fill. */
    Cycles l2Service(AddressSpaceId asid, Addr addr, Cycles now);

    MemoryParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache *sharedL2_ = nullptr;
    Cache *sharedICache_ = nullptr;
    std::vector<Cycles> mshrFreeAt_;
};

} // namespace mmt

#endif // MMT_MEM_MEMORY_SYSTEM_HH
