/**
 * @file
 * MemorySystem — the timing model of the cache hierarchy in Table 4:
 * split 64 KB L1I / L1D (1-cycle), shared 4 MB L2 (6-cycle), 200-cycle
 * DRAM, with a finite pool of MSHRs limiting outstanding L1D misses
 * (scaled with load/store ports for Figure 7(b)).
 */

#ifndef MMT_MEM_MEMORY_SYSTEM_HH
#define MMT_MEM_MEMORY_SYSTEM_HH

#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"

namespace mmt
{

/** Hierarchy configuration (Table 4 defaults). */
struct MemoryParams
{
    CacheParams l1i{"l1i", 64 * 1024, 4, 64};
    CacheParams l1d{"l1d", 64 * 1024, 4, 64};
    CacheParams l2{"l2", 4 * 1024 * 1024, 8, 64};
    Cycles l1Latency = 1;
    Cycles l2Latency = 6;
    Cycles dramLatency = 200;
    int numMshrs = 16;
};

/** Timing model of the shared cache hierarchy. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryParams &params);

    /**
     * Perform a data access at @p now.
     * @return the cycle at which the value is available.
     */
    Cycles dataAccess(AddressSpaceId asid, Addr addr, bool is_write,
                      Cycles now);

    /**
     * Perform an instruction fetch access at @p now.
     * @return the cycle at which the line is available.
     */
    Cycles instAccess(AddressSpaceId asid, Addr addr, Cycles now);

    const MemoryParams &params() const { return params_; }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    Counter mshrStalls; // accesses delayed because all MSHRs were busy

  private:
    /**
     * Reserve an MSHR for a miss issued at @p now.
     * @return the cycle at which the miss may begin.
     */
    Cycles allocMshr(Cycles now, Cycles service_latency);

    MemoryParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    std::vector<Cycles> mshrFreeAt_;
};

} // namespace mmt

#endif // MMT_MEM_MEMORY_SYSTEM_HH
