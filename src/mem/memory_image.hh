/**
 * @file
 * MemoryImage — sparse functional memory for one address space.
 *
 * MT workloads share a single image among all threads; ME workloads give
 * each program instance its own image (paper §3.1: "No memory is shared,
 * so a load from the same virtual address in different threads may or may
 * not return the same data").
 *
 * Only 8-byte aligned 64-bit accesses are supported; the ISA is
 * word-oriented (see isa.hh).
 */

#ifndef MMT_MEM_MEMORY_IMAGE_HH
#define MMT_MEM_MEMORY_IMAGE_HH

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mmt
{

class Program;

/** Sparse, page-granular functional memory. */
class MemoryImage
{
  public:
    /** Read the 64-bit word at @p addr (must be 8-byte aligned). */
    RegVal read64(Addr addr) const;

    /** Write the 64-bit word at @p addr (must be 8-byte aligned). */
    void write64(Addr addr, RegVal value);

    /** Copy a program's initial data words into this image. */
    void loadData(const Program &prog);

    /** Number of resident pages (for tests). */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Compare the resident, nonzero content of two images.
     * Untouched (implicitly zero) locations compare equal.
     */
    bool contentEquals(const MemoryImage &other) const;

  private:
    static constexpr Addr pageBytes = 4096;
    using Page = std::vector<RegVal>; // pageBytes / 8 words

    Page &page(Addr addr);
    const Page *pageIfPresent(Addr addr) const;

    std::unordered_map<Addr, Page> pages_;
};

} // namespace mmt

#endif // MMT_MEM_MEMORY_IMAGE_HH
