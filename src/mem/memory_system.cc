#include "mem/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmt
{

MemorySystem::MemorySystem(const MemoryParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2),
      mshrFreeAt_(static_cast<std::size_t>(params.numMshrs), 0)
{
    mmt_assert(params_.numMshrs > 0, "need at least one MSHR");
}

Cycles
MemorySystem::allocMshr(Cycles now, Cycles service_latency)
{
    auto it = std::min_element(mshrFreeAt_.begin(), mshrFreeAt_.end());
    Cycles start = now;
    if (*it > now) {
        ++mshrStalls;
        start = *it;
    }
    *it = start + service_latency;
    return start;
}

Cycles
MemorySystem::l2Service(AddressSpaceId asid, Addr addr, Cycles now)
{
    Cache &l2c = sharedL2_ ? *sharedL2_ : l2_;
    auto l2 = l2c.access(asid, addr, now, params_.dramLatency);
    if (sharedL2_) {
        ++sharedL2Accesses;
        if (!l2.hit)
            ++sharedL2Misses;
    }
    Cycles service = params_.l2Latency;
    if (!l2.hit || l2.readyAt > now)
        service += std::max(l2.readyAt, now) - now;
    return service;
}

Cycles
MemorySystem::dataAccess(AddressSpaceId asid, Addr addr, bool is_write,
                         Cycles now)
{
    (void)is_write; // allocate-on-write policy: timing is symmetric

    // Probe L1D. On an L1 miss, an MSHR carries the request to L2 (and
    // possibly DRAM); a hit on an in-flight line waits for its fill.
    auto l1 = l1d_.access(asid, addr, now, 0);
    if (l1.hit)
        return std::max(l1.readyAt, now) + params_.l1Latency;

    Cycles service = l2Service(asid, addr, now);

    Cycles start = allocMshr(now, service);
    Cycles ready = start + params_.l1Latency + service;

    // Record the fill time in L1D so later hits under this fill wait.
    // (The line was installed by the probe above; re-access updates it.)
    l1d_.setFillTime(asid, addr, ready);
    return ready;
}

Cycles
MemorySystem::instAccess(AddressSpaceId asid, Addr addr, Cycles now)
{
    auto l1 = l1i_.access(asid, addr, now, 0);
    if (l1.hit)
        return std::max(l1.readyAt, now) + params_.l1Latency;

    // Shared fetch path (Sphynx-style): an L1I miss first probes the
    // CMP's shared I-cache; a hit fills the private L1I at the hop
    // latency without touching the L2.
    if (sharedICache_) {
        ++sharedIAccesses;
        auto sl = sharedICache_->access(asid, addr, now, 0);
        if (sl.hit) {
            ++sharedIHits;
            Cycles ready = std::max(sl.readyAt, now) + params_.l1Latency +
                           params_.sharedILatency;
            l1i_.setFillTime(asid, addr, ready);
            return ready;
        }
    }

    Cycles service = l2Service(asid, addr, now);

    // Instruction misses bypass the data MSHR pool (separate fill path).
    Cycles ready = now + params_.l1Latency + service;
    if (sharedICache_) {
        // The shared I-cache also fills on the L2 path (it missed above,
        // installing the line; stamp when that fill lands).
        sharedICache_->setFillTime(asid, addr,
                                   ready + params_.sharedILatency);
    }
    l1i_.setFillTime(asid, addr, ready);
    return ready;
}

} // namespace mmt
