#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace mmt
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    std::uint64_t lines = params_.sizeBytes /
                          static_cast<std::uint64_t>(params_.lineBytes);
    mmt_assert(lines % params_.assoc == 0, "cache geometry mismatch");
    numSets_ = lines / params_.assoc;
    mmt_assert(std::has_single_bit(numSets_),
               "number of sets must be a power of two (%s)",
               params_.name.c_str());
    lines_.resize(lines);
}

std::uint64_t
Cache::setIndex(std::uint64_t line_addr) const
{
    return line_addr & (numSets_ - 1);
}

Cache::AccessResult
Cache::access(AddressSpaceId asid, Addr addr, Cycles now,
              Cycles fill_latency)
{
    ++accesses;
    std::uint64_t la = lineAddr(asid, addr, params_.lineBytes);
    std::uint64_t set = setIndex(la);
    Line *base = &lines_[set * params_.assoc];
    Line *victim = base;
    for (int w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == la) {
            l.lastUse = ++useClock_;
            // Hit-under-fill: the data may still be in flight.
            return {true, std::max(now, l.fillReadyAt)};
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lastUse < victim->lastUse) {
            victim = &l;
        }
    }
    ++misses;
    victim->valid = true;
    victim->tag = la;
    victim->lastUse = ++useClock_;
    victim->fillReadyAt = now + fill_latency;
    return {false, victim->fillReadyAt};
}

bool
Cache::probe(AddressSpaceId asid, Addr addr) const
{
    std::uint64_t la = lineAddr(asid, addr, params_.lineBytes);
    std::uint64_t set = setIndex(la);
    const Line *base = &lines_[set * params_.assoc];
    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == la)
            return true;
    }
    return false;
}

void
Cache::setFillTime(AddressSpaceId asid, Addr addr, Cycles ready_at)
{
    std::uint64_t la = lineAddr(asid, addr, params_.lineBytes);
    std::uint64_t set = setIndex(la);
    Line *base = &lines_[set * params_.assoc];
    for (int w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == la) {
            l.fillReadyAt = ready_at;
            return;
        }
    }
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l.valid = false;
    useClock_ = 0;
    accesses.reset();
    misses.reset();
}

} // namespace mmt
