/**
 * @file
 * Timing-only set-associative cache model with LRU replacement.
 *
 * Data values live in the functional MemoryImage; caches track only tags,
 * so an access returns hit/miss and the simulator charges latency. ME
 * address spaces are disambiguated by an AddressSpaceId mixed into the tag.
 */

#ifndef MMT_MEM_CACHE_HH
#define MMT_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mmt
{

/** Identifier of a simulated address space (ME instance or shared MT). */
using AddressSpaceId = int;

/** Geometry and behaviour of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    int assoc = 4;
    int lineBytes = 64;
};

/** Tag-only set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Result of a cache access. */
    struct AccessResult
    {
        bool hit = false;
        /** Cycle at which the line's data is available (fill-aware: a
         *  hit on a line whose miss is still in flight waits for the
         *  fill; pre-existing lines return the access time). */
        Cycles readyAt = 0;
    };

    /**
     * Probe and update the cache for an access at time @p now.
     *
     * @param asid address space of the access
     * @param addr byte address
     * @param now current cycle
     * @param fill_latency cycles until a missing line's data arrives
     *        (the caller computes it from the next level)
     * @return hit flag plus the line's data-ready time; on miss the line
     *         is installed with readyAt = now + fill_latency
     */
    AccessResult access(AddressSpaceId asid, Addr addr, Cycles now,
                        Cycles fill_latency);

    /** Probe without updating state (for tests). */
    bool probe(AddressSpaceId asid, Addr addr) const;

    /** Update the fill-ready time of a resident line (MSHR modeling). */
    void setFillTime(AddressSpaceId asid, Addr addr, Cycles ready_at);

    /** Invalidate everything. */
    void reset();

    const CacheParams &params() const { return params_; }
    std::uint64_t numSets() const { return numSets_; }

    Counter accesses;
    Counter misses;

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; // LRU stamp
        Cycles fillReadyAt = 0;    // when the line's data arrives
    };

    std::uint64_t setIndex(std::uint64_t line_addr) const;
    static std::uint64_t
    lineAddr(AddressSpaceId asid, Addr addr, int line_bytes)
    {
        // Mix the address space into high bits so distinct ME instances
        // never alias (simulating distinct physical pages).
        return (addr / static_cast<Addr>(line_bytes)) ^
               (static_cast<std::uint64_t>(asid) << 48);
    }

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; // numSets_ * assoc
    std::uint64_t useClock_ = 0;
};

} // namespace mmt

#endif // MMT_MEM_CACHE_HH
