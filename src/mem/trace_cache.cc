#include "mem/trace_cache.hh"

#include "isa/isa.hh"

namespace mmt
{

namespace
{
CacheParams
storageGeometry(const TraceCacheParams &p)
{
    CacheParams cp;
    cp.name = "tracecache";
    cp.sizeBytes = p.sizeBytes;
    cp.assoc = p.assoc;
    // One "line" holds one trace of traceInsts instructions.
    cp.lineBytes = p.traceInsts * static_cast<int>(instBytes);
    return cp;
}
} // namespace

TraceCache::TraceCache(const TraceCacheParams &params)
    : params_(params), storage_(storageGeometry(params))
{
}

bool
TraceCache::access(AddressSpaceId asid, Addr pc)
{
    ++accesses;
    bool hit = storage_.access(asid, pc, 0, 0).hit;
    if (!hit)
        ++misses;
    return hit;
}

} // namespace mmt
