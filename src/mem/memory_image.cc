#include "mem/memory_image.hh"

#include "common/logging.hh"
#include "iasm/program.hh"

namespace mmt
{

MemoryImage::Page &
MemoryImage::page(Addr addr)
{
    Addr key = addr / pageBytes;
    auto it = pages_.find(key);
    if (it == pages_.end())
        it = pages_.emplace(key, Page(pageBytes / 8, 0)).first;
    return it->second;
}

const MemoryImage::Page *
MemoryImage::pageIfPresent(Addr addr) const
{
    auto it = pages_.find(addr / pageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

RegVal
MemoryImage::read64(Addr addr) const
{
    mmt_assert((addr & 7) == 0, "unaligned read at %#lx",
               static_cast<unsigned long>(addr));
    const Page *p = pageIfPresent(addr);
    if (!p)
        return 0;
    return (*p)[(addr % pageBytes) / 8];
}

void
MemoryImage::write64(Addr addr, RegVal value)
{
    mmt_assert((addr & 7) == 0, "unaligned write at %#lx",
               static_cast<unsigned long>(addr));
    page(addr)[(addr % pageBytes) / 8] = value;
}

void
MemoryImage::loadData(const Program &prog)
{
    for (const auto &[addr, value] : prog.dataWords)
        write64(addr, value);
}

bool
MemoryImage::contentEquals(const MemoryImage &other) const
{
    // Every nonzero word in either image must match the other's view.
    auto covered_by = [](const MemoryImage &a, const MemoryImage &b) {
        for (const auto &[key, pg] : a.pages_) {
            for (std::size_t i = 0; i < pg.size(); ++i) {
                if (pg[i] == 0)
                    continue;
                Addr addr = key * pageBytes + i * 8;
                if (b.read64(addr) != pg[i])
                    return false;
            }
        }
        return true;
    };
    return covered_by(*this, other) && covered_by(other, *this);
}

} // namespace mmt
