/**
 * @file
 * Program — an assembled MMT-RISC binary image: code, initial data words,
 * and the symbol table.
 */

#ifndef MMT_IASM_PROGRAM_HH
#define MMT_IASM_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Default base address of the code segment. */
constexpr Addr defaultCodeBase = 0x1000;
/** Default base address of the data segment. */
constexpr Addr defaultDataBase = 0x100000;
/** Top-of-stack for thread 0; thread t gets stackTop - t*stackBytes. */
constexpr Addr defaultStackTop = 0x7ff0000;
/** Stack bytes reserved per thread. */
constexpr Addr defaultStackBytes = 0x10000;

/** An assembled program. */
class Program
{
  public:
    /** Instruction stream; instruction i lives at codeBase + 4*i. */
    std::vector<Instruction> code;
    /** Initial 8-byte data words keyed by absolute address. */
    std::map<Addr, RegVal> dataWords;
    /** Label name -> absolute address (code or data). */
    std::map<std::string, Addr> symbols;

    Addr codeBase = defaultCodeBase;
    /** Entry PC (address of label "main" if present, else codeBase). */
    Addr entry = defaultCodeBase;

    /** Address just past the last instruction. */
    Addr
    codeLimit() const
    {
        return codeBase + code.size() * instBytes;
    }

    /** True if @p pc addresses an instruction of this program. */
    bool
    validPc(Addr pc) const
    {
        return pc >= codeBase && pc < codeLimit() &&
               (pc - codeBase) % instBytes == 0;
    }

    /** The instruction at @p pc; panics if out of range. */
    const Instruction &fetch(Addr pc) const;

    /** Address of @p label; fatal if undefined. */
    Addr symbol(const std::string &label) const;

    /** Full disassembly listing (for debugging and tests). */
    std::string disassemble() const;
};

} // namespace mmt

#endif // MMT_IASM_PROGRAM_HH
