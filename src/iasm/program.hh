/**
 * @file
 * Program — an assembled MMT-RISC binary image: code, initial data words,
 * and the symbol table.
 */

#ifndef MMT_IASM_PROGRAM_HH
#define MMT_IASM_PROGRAM_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Default base address of the code segment. */
constexpr Addr defaultCodeBase = 0x1000;
/** Default base address of the data segment. */
constexpr Addr defaultDataBase = 0x100000;
/** Top-of-stack for thread 0; thread t gets stackTop - t*stackBytes. */
constexpr Addr defaultStackTop = 0x7ff0000;
/** Stack bytes reserved per thread. */
constexpr Addr defaultStackBytes = 0x10000;

/** An assembled program. */
class Program
{
  public:
    /** Instruction stream; instruction i lives at codeBase + 4*i. */
    std::vector<Instruction> code;
    /** Initial 8-byte data words keyed by absolute address. */
    std::map<Addr, RegVal> dataWords;
    /** Label name -> absolute address (code or data). */
    std::map<std::string, Addr> symbols;

    Addr codeBase = defaultCodeBase;
    /** Entry PC (address of label "main" if present, else codeBase). */
    Addr entry = defaultCodeBase;

    /** Base of the data segment (as assembled). */
    Addr dataBase = defaultDataBase;
    /** Address just past the last assembled data word / .space region. */
    Addr dataLimit = defaultDataBase;

    /**
     * Source line of instruction i (1-based; empty when the program was
     * constructed without the assembler). Used by mmt-analyze diagnostics.
     */
    std::vector<int> srcLines;
    /**
     * Static-analysis suppressions: instruction index -> lint rules
     * disabled by an inline "; analyze:allow(<rule>)" comment.
     */
    std::map<int, std::set<std::string>> allowRules;

    /** Source line of instruction @p index (0 when unknown). */
    int
    line(int index) const
    {
        return index >= 0 && index < static_cast<int>(srcLines.size())
                   ? srcLines[static_cast<std::size_t>(index)]
                   : 0;
    }

    /** True if lint rule @p rule is suppressed on instruction @p index. */
    bool
    allowed(int index, const std::string &rule) const
    {
        auto it = allowRules.find(index);
        return it != allowRules.end() && it->second.count(rule) > 0;
    }

    /** Address just past the last instruction. */
    Addr
    codeLimit() const
    {
        return codeBase + code.size() * instBytes;
    }

    /** True if @p pc addresses an instruction of this program. */
    bool
    validPc(Addr pc) const
    {
        return pc >= codeBase && pc < codeLimit() &&
               (pc - codeBase) % instBytes == 0;
    }

    /** The instruction at @p pc; panics if out of range. */
    const Instruction &fetch(Addr pc) const;

    /** Address of @p label; fatal if undefined. */
    Addr symbol(const std::string &label) const;

    /** Full disassembly listing (for debugging and tests). */
    std::string disassemble() const;
};

} // namespace mmt

#endif // MMT_IASM_PROGRAM_HH
