#include "iasm/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace mmt
{

const Instruction &
Program::fetch(Addr pc) const
{
    mmt_assert(validPc(pc), "fetch of invalid PC %#lx",
               static_cast<unsigned long>(pc));
    return code[(pc - codeBase) / instBytes];
}

Addr
Program::symbol(const std::string &label) const
{
    auto it = symbols.find(label);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", label.c_str());
    return it->second;
}

std::string
Program::disassemble() const
{
    // Build a reverse map from address to label for annotation.
    std::map<Addr, std::string> by_addr;
    for (const auto &[name, addr] : symbols)
        by_addr[addr] = name;

    std::ostringstream os;
    for (std::size_t i = 0; i < code.size(); ++i) {
        Addr pc = codeBase + i * instBytes;
        auto it = by_addr.find(pc);
        if (it != by_addr.end())
            os << it->second << ":\n";
        os << "  " << std::hex << pc << std::dec << ":  "
           << code[i].toString() << "\n";
    }
    return os.str();
}

} // namespace mmt
