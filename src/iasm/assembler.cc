#include "iasm/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/exec.hh"

namespace mmt
{

namespace
{

/** Operand shape of a mnemonic. */
enum class Format
{
    R3,     // op rd, rs1, rs2
    R2,     // op rd, rs1
    I2,     // op rd, rs1, imm
    LI,     // op rd, imm-or-label
    MEM,    // op reg, imm(rs1)
    BR,     // op rs1, rs2, label
    BRZ,    // pseudo: op rs1, label  (compares against r0)
    JLBL,   // op label
    JREG,   // op rs1
    S0,     // op            (no operands)
    S1,     // op rs1        (out)
    S2,     // op rs1, rs2   (send)
};

/** Register class an operand must belong to. */
enum class RegClass { Int, Fp };

struct MnemonicInfo
{
    Opcode op;
    Format fmt;
    // Register classes; meaning depends on fmt.
    RegClass dst = RegClass::Int;
    RegClass src = RegClass::Int;
    // For BRZ pseudo: the real branch opcode.
};

const std::map<std::string, MnemonicInfo> &
mnemonics()
{
    static const std::map<std::string, MnemonicInfo> table = {
        {"nop",   {Opcode::NOP, Format::S0}},
        {"add",   {Opcode::ADD, Format::R3}},
        {"sub",   {Opcode::SUB, Format::R3}},
        {"mul",   {Opcode::MUL, Format::R3}},
        {"div",   {Opcode::DIV, Format::R3}},
        {"rem",   {Opcode::REM, Format::R3}},
        {"and",   {Opcode::AND, Format::R3}},
        {"or",    {Opcode::OR,  Format::R3}},
        {"xor",   {Opcode::XOR, Format::R3}},
        {"sll",   {Opcode::SLL, Format::R3}},
        {"srl",   {Opcode::SRL, Format::R3}},
        {"sra",   {Opcode::SRA, Format::R3}},
        {"slt",   {Opcode::SLT, Format::R3}},
        {"sltu",  {Opcode::SLTU, Format::R3}},
        {"addi",  {Opcode::ADDI, Format::I2}},
        {"andi",  {Opcode::ANDI, Format::I2}},
        {"ori",   {Opcode::ORI,  Format::I2}},
        {"xori",  {Opcode::XORI, Format::I2}},
        {"slli",  {Opcode::SLLI, Format::I2}},
        {"srli",  {Opcode::SRLI, Format::I2}},
        {"srai",  {Opcode::SRAI, Format::I2}},
        {"slti",  {Opcode::SLTI, Format::I2}},
        {"lui",   {Opcode::LUI, Format::LI}},
        {"li",    {Opcode::LUI, Format::LI}},
        {"la",    {Opcode::LUI, Format::LI}},
        {"mv",    {Opcode::ADD, Format::R2}},
        {"fadd",  {Opcode::FADD, Format::R3, RegClass::Fp, RegClass::Fp}},
        {"fsub",  {Opcode::FSUB, Format::R3, RegClass::Fp, RegClass::Fp}},
        {"fmul",  {Opcode::FMUL, Format::R3, RegClass::Fp, RegClass::Fp}},
        {"fdiv",  {Opcode::FDIV, Format::R3, RegClass::Fp, RegClass::Fp}},
        {"fmin",  {Opcode::FMIN, Format::R3, RegClass::Fp, RegClass::Fp}},
        {"fmax",  {Opcode::FMAX, Format::R3, RegClass::Fp, RegClass::Fp}},
        {"fsqrt", {Opcode::FSQRT, Format::R2, RegClass::Fp, RegClass::Fp}},
        {"fneg",  {Opcode::FNEG, Format::R2, RegClass::Fp, RegClass::Fp}},
        {"fabs",  {Opcode::FABS, Format::R2, RegClass::Fp, RegClass::Fp}},
        {"fexp",  {Opcode::FEXP, Format::R2, RegClass::Fp, RegClass::Fp}},
        {"flog",  {Opcode::FLOG, Format::R2, RegClass::Fp, RegClass::Fp}},
        {"fmv",   {Opcode::FMV,  Format::R2, RegClass::Fp, RegClass::Fp}},
        {"fli",   {Opcode::FLI,  Format::LI, RegClass::Fp}},
        {"fcvt",  {Opcode::FCVT, Format::R2, RegClass::Fp, RegClass::Int}},
        {"fcvti", {Opcode::FCVTI, Format::R2, RegClass::Int, RegClass::Fp}},
        {"fclt",  {Opcode::FCLT, Format::R3, RegClass::Int, RegClass::Fp}},
        {"fcle",  {Opcode::FCLE, Format::R3, RegClass::Int, RegClass::Fp}},
        {"fceq",  {Opcode::FCEQ, Format::R3, RegClass::Int, RegClass::Fp}},
        {"ld",    {Opcode::LD,  Format::MEM, RegClass::Int}},
        {"st",    {Opcode::ST,  Format::MEM, RegClass::Int}},
        {"fld",   {Opcode::FLD, Format::MEM, RegClass::Fp}},
        {"fst",   {Opcode::FST, Format::MEM, RegClass::Fp}},
        {"beq",   {Opcode::BEQ, Format::BR}},
        {"bne",   {Opcode::BNE, Format::BR}},
        {"blt",   {Opcode::BLT, Format::BR}},
        {"bge",   {Opcode::BGE, Format::BR}},
        {"bltu",  {Opcode::BLTU, Format::BR}},
        {"bgeu",  {Opcode::BGEU, Format::BR}},
        {"bgt",   {Opcode::BLT, Format::BR}},  // swapped in encoder
        {"ble",   {Opcode::BGE, Format::BR}},  // swapped in encoder
        {"beqz",  {Opcode::BEQ, Format::BRZ}},
        {"bnez",  {Opcode::BNE, Format::BRZ}},
        {"bltz",  {Opcode::BLT, Format::BRZ}},
        {"bgez",  {Opcode::BGE, Format::BRZ}},
        {"j",     {Opcode::J,    Format::JLBL}},
        {"jal",   {Opcode::JAL,  Format::JLBL}},
        {"call",  {Opcode::JAL,  Format::JLBL}},
        {"jr",    {Opcode::JR,   Format::JREG}},
        {"jalr",  {Opcode::JALR, Format::JREG}},
        {"ret",   {Opcode::JR,   Format::S0}},
        {"halt",  {Opcode::HALT, Format::S0}},
        {"barrier", {Opcode::BARRIER, Format::S0}},
        {"out",   {Opcode::OUT, Format::S1}},
        {"send",  {Opcode::SEND, Format::S2}},
        {"recv",  {Opcode::RECV, Format::R2}},
        {"mergehint", {Opcode::MERGEHINT, Format::S0}},
    };
    return table;
}

/** One tokenized source statement. */
struct Stmt
{
    int line;
    std::string mnemonic;           // empty for pure-label/directive lines
    std::vector<std::string> operands;
};

/**
 * Extract lint-suppression rules from a comment: every
 * "analyze:allow(rule-a, rule-b)" occurrence contributes its rule names.
 */
std::vector<std::string>
parseAllowRules(const std::string &comment)
{
    static const std::string kMarker = "analyze:allow(";
    std::vector<std::string> rules;
    std::size_t pos = 0;
    while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
        pos += kMarker.size();
        std::size_t close = comment.find(')', pos);
        if (close == std::string::npos)
            break;
        std::string inner = comment.substr(pos, close - pos);
        std::string rule;
        auto flush = [&]() {
            if (!rule.empty())
                rules.push_back(rule);
            rule.clear();
        };
        for (char c : inner) {
            if (c == ',') {
                flush();
            } else if (!std::isspace(static_cast<unsigned char>(c))) {
                rule.push_back(c);
            }
        }
        flush();
        pos = close + 1;
    }
    return rules;
}

class Assembler
{
  public:
    Assembler(const std::string &source, Addr code_base, Addr data_base,
              std::string name)
        : src_(source), name_(std::move(name))
    {
        prog_.codeBase = code_base;
        prog_.entry = code_base;
        prog_.dataBase = data_base;
        dataCursor_ = data_base;
    }

    Program
    run()
    {
        parseLines();
        encodeAll();
        prog_.dataLimit = dataCursor_;
        auto it = prog_.symbols.find("main");
        if (it != prog_.symbols.end())
            prog_.entry = it->second;
        return std::move(prog_);
    }

  private:
    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        if (name_.empty())
            fatal("asm line %d: %s", line, msg.c_str());
        fatal("%s: asm line %d: %s", name_.c_str(), line, msg.c_str());
    }

    static std::string
    trim(const std::string &s)
    {
        std::size_t b = s.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            return "";
        std::size_t e = s.find_last_not_of(" \t\r");
        return s.substr(b, e - b + 1);
    }

    /** Split a comma-separated operand list, honoring "imm(reg)" forms. */
    static std::vector<std::string>
    splitOperands(const std::string &s)
    {
        std::vector<std::string> out;
        std::string cur;
        for (char c : s) {
            if (c == ',') {
                out.push_back(trim(cur));
                cur.clear();
            } else {
                cur.push_back(c);
            }
        }
        cur = trim(cur);
        if (!cur.empty())
            out.push_back(cur);
        return out;
    }

    /**
     * First pass: strip comments, record labels and directives, assign
     * addresses, and stash instruction statements for the second pass.
     */
    void
    parseLines()
    {
        std::istringstream is(src_);
        std::string raw;
        int line = 0;
        bool in_text = true;
        Addr code_pc = prog_.codeBase;

        while (std::getline(is, raw)) {
            ++line;
            std::size_t hash = raw.find_first_of("#;");
            std::vector<std::string> allow_rules;
            if (hash != std::string::npos) {
                allow_rules = parseAllowRules(raw.substr(hash));
                raw = raw.substr(0, hash);
            }
            std::string s = trim(raw);
            // Peel any leading labels.
            for (;;) {
                std::size_t colon = s.find(':');
                if (colon == std::string::npos)
                    break;
                std::string head = trim(s.substr(0, colon));
                if (head.empty() || head.find_first_of(" \t(") !=
                                        std::string::npos) {
                    break; // ':' belongs to something else (not a label)
                }
                Addr here = in_text ? code_pc : dataCursor_;
                if (!prog_.symbols.emplace(head, here).second) {
                    err(line, "duplicate label '" + head +
                        "' (first defined at line " +
                        std::to_string(labelLine_.at(head)) + ")");
                }
                labelLine_.emplace(head, line);
                s = trim(s.substr(colon + 1));
            }
            if (s.empty())
                continue;

            if (s[0] == '.') {
                std::istringstream ls(s);
                std::string dir;
                ls >> dir;
                std::string rest = trim(s.substr(dir.size()));
                if (dir == ".text") {
                    in_text = true;
                } else if (dir == ".data") {
                    in_text = false;
                } else if (dir == ".word") {
                    if (in_text)
                        err(line, ".word in .text segment");
                    for (const std::string &tok : splitOperands(rest)) {
                        prog_.dataWords[dataCursor_] = parseIntImm(tok, line);
                        dataCursor_ += 8;
                    }
                } else if (dir == ".double") {
                    if (in_text)
                        err(line, ".double in .text segment");
                    for (const std::string &tok : splitOperands(rest)) {
                        prog_.dataWords[dataCursor_] =
                            exec::fromF(std::strtod(tok.c_str(), nullptr));
                        dataCursor_ += 8;
                    }
                } else if (dir == ".space") {
                    if (in_text)
                        err(line, ".space in .text segment");
                    std::int64_t n = parseIntImm(rest, line);
                    if (n < 0)
                        err(line, "negative .space");
                    dataCursor_ += static_cast<Addr>((n + 7) / 8) * 8;
                } else {
                    err(line, "unknown directive '" + dir + "'");
                }
                continue;
            }

            if (!in_text)
                err(line, "instruction in .data segment");

            std::istringstream ls(s);
            Stmt st;
            st.line = line;
            ls >> st.mnemonic;
            std::string rest = trim(s.substr(st.mnemonic.size()));
            st.operands = splitOperands(rest);
            if (!allow_rules.empty()) {
                auto &set =
                    prog_.allowRules[static_cast<int>(stmts_.size())];
                set.insert(allow_rules.begin(), allow_rules.end());
            }
            stmts_.push_back(std::move(st));
            code_pc += instBytes;
        }
    }

    /** Parse a register token; returns unified index. */
    RegIndex
    parseReg(const std::string &tok, RegClass rc, int line) const
    {
        std::string t = tok;
        RegIndex idx = -1;
        if (t == "zero") {
            idx = regZero;
        } else if (t == "ra") {
            idx = regRa;
        } else if (t == "sp") {
            idx = regSp;
        } else if (t == "tid") {
            idx = regTid;
        } else if (t.size() >= 2 && (t[0] == 'r' || t[0] == 'f') &&
                   std::isdigit(static_cast<unsigned char>(t[1]))) {
            int n = std::atoi(t.c_str() + 1);
            if (t[0] == 'r') {
                if (n < 0 || n >= numIntRegs)
                    err(line, "bad integer register '" + tok + "'");
                idx = n;
            } else {
                if (n < 0 || n >= numFpRegs)
                    err(line, "bad fp register '" + tok + "'");
                idx = fpReg(n);
            }
        } else {
            err(line, "expected register, got '" + tok + "'");
        }
        bool is_fp = idx >= numIntRegs;
        if (rc == RegClass::Fp && !is_fp)
            err(line, "expected fp register, got '" + tok + "'");
        if (rc == RegClass::Int && is_fp)
            err(line, "expected integer register, got '" + tok + "'");
        return idx;
    }

    /** Parse a pure integer immediate (dec or 0x hex, optional sign). */
    std::int64_t
    parseIntImm(const std::string &tok, int line) const
    {
        if (tok.empty())
            err(line, "missing immediate");
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 0);
        if (end == tok.c_str() || *end != '\0')
            err(line, "bad immediate '" + tok + "'");
        return v;
    }

    /** Parse an immediate that may be a label (resolved to its address). */
    std::int64_t
    parseImmOrLabel(const std::string &tok, int line) const
    {
        if (!tok.empty() &&
            (std::isdigit(static_cast<unsigned char>(tok[0])) ||
             tok[0] == '-' || tok[0] == '+')) {
            return parseIntImm(tok, line);
        }
        auto it = prog_.symbols.find(tok);
        if (it == prog_.symbols.end())
            err(line, "undefined label '" + tok + "'");
        return static_cast<std::int64_t>(it->second);
    }

    /** Parse "imm(reg)" or "label(reg)" memory operands. */
    void
    parseMemOperand(const std::string &tok, int line, std::int64_t &imm,
                    RegIndex &base) const
    {
        std::size_t lp = tok.find('(');
        std::size_t rp = tok.rfind(')');
        if (lp == std::string::npos || rp == std::string::npos || rp < lp)
            err(line, "bad memory operand '" + tok + "'");
        std::string off = trim(tok.substr(0, lp));
        std::string reg = trim(tok.substr(lp + 1, rp - lp - 1));
        imm = off.empty() ? 0 : parseImmOrLabel(off, line);
        base = parseReg(reg, RegClass::Int, line);
    }

    void
    need(const Stmt &st, std::size_t n) const
    {
        if (st.operands.size() != n)
            err(st.line, "expected " + std::to_string(n) + " operands for '"
                + st.mnemonic + "', got "
                + std::to_string(st.operands.size()));
    }

    void
    encodeAll()
    {
        prog_.code.reserve(stmts_.size());
        prog_.srcLines.reserve(stmts_.size());
        for (const Stmt &st : stmts_) {
            prog_.code.push_back(encode(st));
            prog_.srcLines.push_back(st.line);
        }
    }

    Instruction
    encode(const Stmt &st)
    {
        auto it = mnemonics().find(st.mnemonic);
        if (it == mnemonics().end())
            err(st.line, "unknown mnemonic '" + st.mnemonic + "'");
        const MnemonicInfo &mi = it->second;
        Instruction in;
        in.op = mi.op;

        switch (mi.fmt) {
          case Format::R3:
            need(st, 3);
            in.rd = parseReg(st.operands[0], mi.dst, st.line);
            in.rs1 = parseReg(st.operands[1], mi.src, st.line);
            in.rs2 = parseReg(st.operands[2], mi.src, st.line);
            break;
          case Format::R2:
            need(st, 2);
            in.rd = parseReg(st.operands[0], mi.dst, st.line);
            in.rs1 = parseReg(st.operands[1], mi.src, st.line);
            if (st.mnemonic == "mv")
                in.rs2 = regZero;
            break;
          case Format::I2:
            need(st, 3);
            in.rd = parseReg(st.operands[0], RegClass::Int, st.line);
            in.rs1 = parseReg(st.operands[1], RegClass::Int, st.line);
            in.imm = parseImmOrLabel(st.operands[2], st.line);
            break;
          case Format::LI:
            need(st, 2);
            in.rd = parseReg(st.operands[0], mi.dst, st.line);
            if (in.op == Opcode::FLI) {
                in.imm = static_cast<std::int64_t>(
                    exec::fromF(std::strtod(st.operands[1].c_str(),
                                            nullptr)));
            } else {
                in.imm = parseImmOrLabel(st.operands[1], st.line);
            }
            break;
          case Format::MEM: {
            need(st, 2);
            bool is_store = in.op == Opcode::ST || in.op == Opcode::FST;
            RegIndex data_reg = parseReg(st.operands[0], mi.dst, st.line);
            parseMemOperand(st.operands[1], st.line, in.imm, in.rs1);
            if (is_store)
                in.rs2 = data_reg;
            else
                in.rd = data_reg;
            break;
          }
          case Format::BR: {
            need(st, 3);
            RegIndex a = parseReg(st.operands[0], RegClass::Int, st.line);
            RegIndex b = parseReg(st.operands[1], RegClass::Int, st.line);
            // bgt/ble are encoded by swapping the comparison operands.
            bool swapped = st.mnemonic == "bgt" || st.mnemonic == "ble";
            in.rs1 = swapped ? b : a;
            in.rs2 = swapped ? a : b;
            in.imm = parseImmOrLabel(st.operands[2], st.line);
            break;
          }
          case Format::BRZ:
            need(st, 2);
            in.rs1 = parseReg(st.operands[0], RegClass::Int, st.line);
            in.rs2 = regZero;
            in.imm = parseImmOrLabel(st.operands[1], st.line);
            break;
          case Format::JLBL:
            need(st, 1);
            in.imm = parseImmOrLabel(st.operands[0], st.line);
            if (in.op == Opcode::JAL)
                in.rd = regRa;
            break;
          case Format::JREG:
            need(st, 1);
            in.rs1 = parseReg(st.operands[0], RegClass::Int, st.line);
            if (in.op == Opcode::JALR)
                in.rd = regRa;
            break;
          case Format::S0:
            need(st, 0);
            if (st.mnemonic == "ret")
                in.rs1 = regRa;
            break;
          case Format::S1:
            need(st, 1);
            in.rs1 = parseReg(st.operands[0], RegClass::Int, st.line);
            break;
          case Format::S2:
            need(st, 2);
            in.rs1 = parseReg(st.operands[0], RegClass::Int, st.line);
            in.rs2 = parseReg(st.operands[1], RegClass::Int, st.line);
            break;
        }
        return in;
    }

    const std::string &src_;
    /** Program name prefixed to diagnostics (may be empty). */
    std::string name_;
    Program prog_;
    Addr dataCursor_;
    std::vector<Stmt> stmts_;
    /** Label -> line of its definition (duplicate-label diagnostics). */
    std::map<std::string, int> labelLine_;
};

} // namespace

Program
assemble(const std::string &source, Addr code_base, Addr data_base,
         const std::string &name)
{
    return Assembler(source, code_base, data_base, name).run();
}

} // namespace mmt
