/**
 * @file
 * Two-pass textual assembler for MMT-RISC.
 *
 * Syntax overview:
 * @code
 *   # comment            ; also a comment
 *   .text                # switch to code segment (default)
 *   main:
 *       li   r1, 100     # full 64-bit immediate
 *       la   r2, table   # load a label's address
 *       ld   r3, 8(r2)
 *       fadd f1, f2, f3
 *       fli  f4, 3.25    # floating-point immediate
 *       beqz r1, done
 *       call helper      # jal ra, helper
 *   done:
 *       halt
 *   .data
 *   table: .word 1, 2, 3
 *   buf:   .space 64
 *   pi:    .double 3.14159
 * @endcode
 *
 * All data directives operate on 8-byte words. Undefined labels, duplicate
 * labels (with the line of the first definition), malformed operands and
 * wrong register classes are reported with fatal() including the source
 * line number.
 *
 * A comment of the form "; analyze:allow(rule-a, rule-b)" on an
 * instruction line suppresses those mmt-analyze lint rules for that
 * instruction (see docs/ANALYSIS.md); the assembler records the rules in
 * Program::allowRules.
 */

#ifndef MMT_IASM_ASSEMBLER_HH
#define MMT_IASM_ASSEMBLER_HH

#include <string>

#include "iasm/program.hh"

namespace mmt
{

/**
 * Assemble @p source into a Program.
 *
 * @param source full assembly text
 * @param code_base base address of the code segment
 * @param data_base base address of the data segment
 * @param name program or file name prefixed to every diagnostic, so
 *        "saxpy: asm line 3: ..." identifies which of several sources
 *        failed; empty keeps the bare "asm line N" form.
 * @return the assembled program; entry is the "main" label if defined,
 *         otherwise the first instruction.
 */
Program assemble(const std::string &source,
                 Addr code_base = defaultCodeBase,
                 Addr data_base = defaultDataBase,
                 const std::string &name = "");

} // namespace mmt

#endif // MMT_IASM_ASSEMBLER_HH
