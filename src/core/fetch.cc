/**
 * @file
 * The fetch stage of SmtCore: fetch-group selection (ICOUNT with the
 * paper's CATCHUP priority override), trace-cache/I-cache timing, shared
 * fetch of merged groups, per-thread functional execution, divergence
 * handling, the split stage (Filter/Chooser + LVIP), and renaming.
 */

#include <algorithm>

#include "common/logging.hh"
#include "core/smt_core.hh"

namespace mmt
{

bool
SmtCore::groupCanFetch(int gid) const
{
    const FetchGroup &g = sync_.group(gid);
    if (!g.alive)
        return false;
    bool ok = true;
    g.members.forEach([&](ThreadId t) {
        const ThreadState &ts = threads_[t];
        if (ts.halted || ts.atBarrier || ts.resolveToken != -1 ||
            ts.fetchStallUntil > now_ || ts.hintWaitUntil > now_) {
            ok = false;
        }
    });
    return ok;
}

void
SmtCore::fetchStage()
{
    sync_.setCycle(now_);
    sync_.tryMerge();

    // Release MERGEHINT waits: a successful merge (the group *grew*
    // beyond its size when the wait began) or the timeout ends the
    // pause. Comparing against the recorded size matters: a subgroup
    // that was already partial-but-plural when it hit the hint must
    // actually gain members, not be released instantly.
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        ThreadState &ts = threads_[t];
        if (ts.hintWaitUntil == 0)
            continue;
        int gid = sync_.threadGroup(t);
        if (gid != -1 &&
            sync_.group(gid).members.count() > ts.hintWaitMembers) {
            clearHintWait(ts);
            ++stats.hintMerges;
        } else if (now_ >= ts.hintWaitUntil) {
            clearHintWait(ts);
        }
    }

    icountScratch_.assign(static_cast<std::size_t>(sync_.numGroups()), 0);
    for (int gid = 0; gid < sync_.numGroups(); ++gid) {
        if (!sync_.group(gid).alive)
            continue;
        sync_.group(gid).members.forEach([&](ThreadId t) {
            icountScratch_[gid] += rob_.threadCount(t);
        });
    }
    sync_.fetchOrder(icountScratch_, fetchOrderScratch_);

    int budget = params_.fetchWidth;
    int streams = 0;
    for (int gid : fetchOrderScratch_) {
        if (budget <= 0 || streams >= params_.maxFetchStreams)
            break;
        if (!groupCanFetch(gid))
            continue;
        int fetched = fetchFromGroup(gid, budget);
        if (fetched > 0) {
            // A group that yields nothing this cycle (I-cache fill in
            // flight, blocked receive) does not occupy the stream slot.
            ++streams;
            ++stats.fetchStreamCycles;
            budget -= fetched;
        }
    }
}

int
SmtCore::fetchFromGroup(int gid, int budget)
{
    // One trace-cache probe per stream-cycle; a hit lets the fetch group
    // cross taken branches (perfect trace prediction, paper §5).
    bool tc_hit = false;
    if (params_.traceCache.enabled)
        tc_hit = traceCache_.access(0, sync_.group(gid).pc);

    int fetched = 0;
    int branches_crossed = 0;
    while (fetched < budget) {
        if (static_cast<int>(fetchQueue_.size()) >=
            params_.fetchQueueSize) {
            break;
        }
        // Split-steer: a record the splitter will provably expand into k
        // sub-instructions occupies k decode/split slots, not 1. Charge
        // them up front (the first record of a stream always fits) so
        // the frontend stops over-fetching past its expansion bandwidth.
        int charge = fetchSlotCharge(sync_.group(gid).pc,
                                     sync_.group(gid).members.count());
        if (fetched > 0 && fetched + charge > budget)
            break;
        int r = fetchRecord(gid, tc_hit, branches_crossed);
        if (r >= 0) {
            fetched += charge;
            if (charge > 1)
                sync_.splitSteerCharges += static_cast<std::uint64_t>(
                    charge - 1);
        }
        if (r <= 0)
            break;
    }
    return fetched;
}

int
SmtCore::fetchSlotCharge(Addr pc, int members)
{
    if (!hintsSplitSteer(params_.staticHints) || members <= 1)
        return 1;
    const std::vector<Addr> &pcs = params_.hintTable.splitPcs;
    auto it = std::lower_bound(pcs.begin(), pcs.end(), pc);
    if (it == pcs.end() || *it != pc)
        return 1;
    int pred = params_.hintTable
                   .splitCounts[static_cast<std::size_t>(it - pcs.begin())];
    return std::max(1, std::min(pred, members));
}

int
SmtCore::fetchRecord(int gid, bool tc_hit, int &branches_crossed)
{
    Addr pc = sync_.group(gid).pc;
    ThreadMask itid = sync_.group(gid).members;
    ThreadId leader = itid.leader();

    if (!program_->validPc(pc)) {
        panic("thread group fetched invalid PC %#lx (runaway control "
              "flow?)", static_cast<unsigned long>(pc));
    }

    // I-cache timing: one access per line transition; code pages are
    // physically shared across ME instances (same binary), so address
    // space 0 is used for instruction fetch.
    Addr line = pc / static_cast<Addr>(params_.mem.l1i.lineBytes);
    if (line != threads_[leader].lastFetchLine) {
        Cycles avail = memSys_.instAccess(0, pc, now_);
        itid.forEach(
            [&](ThreadId t) { threads_[t].lastFetchLine = line; });
        if (avail > now_ + params_.mem.l1Latency) {
            itid.forEach([&](ThreadId t) {
                threads_[t].fetchStallUntil = avail;
            });
            return -1;
        }
    }

    const Instruction &inst = program_->fetch(pc);
    const InstInfo &info = inst.info();
    FetchMode mode = sync_.classify(gid);

    // A RECV can only be fetched once every member thread's message has
    // arrived (the receive queue stalls the thread, not the pipeline).
    if (inst.op == Opcode::RECV) {
        mmt_assert(msgNet_ != nullptr, "RECV without a message network");
        bool all_ready = true;
        itid.forEach([&](ThreadId t) {
            ThreadId from = static_cast<ThreadId>(
                threads_[t].regs[inst.rs1] & 3);
            if (!msgNet_->canRecv(from, contextId(t)))
                all_ready = false;
        });
        if (!all_ready) {
            itid.forEach([&](ThreadId t) {
                threads_[t].fetchStallUntil = now_ + 1;
            });
            return -1;
        }
    }

    ++stats.fetchRecords;
    stats.fetchedThreadInsts += static_cast<std::uint64_t>(itid.count());
    stats.fetchedInMode[static_cast<std::size_t>(mode)] +=
        static_cast<std::uint64_t>(itid.count());

    // ---- Functional execution, per member thread, in order. ----
    std::array<RegVal, maxThreads> dest_vals{};
    std::array<RegVal, maxThreads> src_a{};
    std::array<RegVal, maxThreads> src_b{};
    std::array<Addr, maxThreads> eff_addrs{};
    std::array<RegVal, maxThreads> mem_vals{};
    std::array<RegVal, maxThreads> mem_olds{};
    std::array<BranchOut, maxThreads> bouts{};

    itid.forEach([&](ThreadId t) {
        ThreadState &ts = threads_[t];
        ++ts.fetchedInsts;
        RegVal a = info.readsSrc1 ? ts.regs[inst.rs1] : 0;
        RegVal b = info.readsSrc2 ? ts.regs[inst.rs2] : 0;
        src_a[t] = a;
        src_b[t] = b;
        if (inst.isLoad()) {
            Addr addr = exec::effectiveAddr(inst, a);
            eff_addrs[t] = addr;
            dest_vals[t] = ts.image->read64(addr);
            mem_vals[t] = dest_vals[t];
        } else if (inst.isStore()) {
            Addr addr = exec::effectiveAddr(inst, a);
            eff_addrs[t] = addr;
            if (captureMemTrace_) {
                mem_olds[t] = ts.image->read64(addr);
                mem_vals[t] = b;
            }
            ts.image->write64(addr, b);
        } else if (inst.isControl()) {
            bouts[t] = exec::evalBranch(inst, a, b, pc);
            if (info.writesDest)
                dest_vals[t] = exec::evalAlu(inst, a, b, pc);
        } else if (inst.isSyscall()) {
            if (inst.op == Opcode::OUT) {
                ts.output.push_back(a);
            } else if (inst.op == Opcode::SEND) {
                // SEND/RECV ranks are global context ids, so a ring
                // workload spans CMP cores unchanged.
                msgNet_->send(contextId(t), static_cast<ThreadId>(a & 3),
                              b);
                mem_vals[t] = b;
                mem_olds[t] = a & 3;
            } else if (inst.op == Opcode::RECV) {
                dest_vals[t] = msgNet_->recv(static_cast<ThreadId>(a & 3),
                                             contextId(t));
                mem_vals[t] = dest_vals[t];
                mem_olds[t] = a & 3;
            }
        } else if (info.writesDest) {
            dest_vals[t] = exec::evalAlu(inst, a, b, pc);
        }
        if (info.writesDest && inst.rd != regZero)
            ts.regs[inst.rd] = dest_vals[t];
    });

    // ---- Control flow, divergence, and fetch-mode transitions. ----
    bool stop_stream = false;
    int resolve_token = -1;

    auto alloc_token = [&](ThreadMask stalled) {
        // Counts are set after instances are made; fully-resolved ids
        // are recycled so the table stops growing with the run length.
        if (!freeTokens_.empty()) {
            resolve_token = freeTokens_.back();
            freeTokens_.pop_back();
            resolveRemaining_[resolve_token] = 0;
        } else {
            resolve_token = static_cast<int>(resolveRemaining_.size());
            resolveRemaining_.push_back(0);
        }
        stalled.forEach([&](ThreadId t) {
            threads_[t].resolveToken = resolve_token;
        });
        stop_stream = true;
    };

    if (inst.isControl()) {
        if (inst.op == Opcode::JAL || inst.op == Opcode::JALR) {
            itid.forEach([&](ThreadId t) {
                bpred_.pushReturn(t, pc + instBytes);
            });
        }
        BranchPrediction pred = bpred_.predict(leader, pc, inst);
        if (inst.op == Opcode::JR && inst.rs1 == regRa) {
            itid.forEach([&](ThreadId t) {
                if (t != leader)
                    bpred_.popReturn(t);
            });
        }
        // Partition members by actual (taken, target) outcome, kept in
        // ascending next-pc order — the iteration order the divergence
        // split logic saw from the std::map this insertion-sorted array
        // replaces (at most one outcome per member thread).
        std::array<std::pair<Addr, ThreadMask>, maxThreads> outcomes;
        std::size_t n_outcomes = 0;
        itid.forEach([&](ThreadId t) {
            Addr next = bouts[t].taken ? bouts[t].target : pc + instBytes;
            std::size_t i = 0;
            while (i < n_outcomes && outcomes[i].first < next)
                ++i;
            if (i < n_outcomes && outcomes[i].first == next) {
                outcomes[i].second.set(t);
                return;
            }
            for (std::size_t j = n_outcomes; j > i; --j)
                outcomes[j] = outcomes[j - 1];
            outcomes[i] = {next, ThreadMask::single(t)};
            ++n_outcomes;
        });

        bpred_.update(leader, pc, inst, bouts[leader].taken,
                      bouts[leader].target);
        if (inst.isCondBranch()) {
            itid.forEach([&](ThreadId t) {
                bpred_.noteOutcome(t, bouts[t].taken);
            });
        }

        if (n_outcomes == 1) {
            bool taken = bouts[leader].taken;
            Addr target = bouts[leader].target;
            if (taken) {
                itid.forEach([&](ThreadId t) { sync_.countBranch(t); });
                sync_.onTakenBranch(gid, target);
                sync_.group(gid).pc = target;
            } else {
                sync_.group(gid).pc = pc + instBytes;
            }
            bool mispred =
                pred.taken != taken ||
                (taken && (!pred.targetValid || pred.target != target));
            if (mispred) {
                ++stats.branchMispredicts;
                alloc_token(itid);
            } else if (taken) {
                ++branches_crossed;
                if (!tc_hit || branches_crossed >
                                   params_.traceCache.maxBranchesPerTrace) {
                    stop_stream = true;
                }
            }
        } else {
            // Divergence: the group's member threads took different
            // paths. Split the group. The subgroup whose path matches
            // the prediction keeps fetching; the other subgroups have
            // mispredicted and wait for the branch to resolve.
            std::vector<std::pair<ThreadMask, Addr>> splits;
            for (std::size_t i = 0; i < n_outcomes; ++i)
                splits.emplace_back(outcomes[i].second, outcomes[i].first);
            Addr predicted_next =
                pred.taken && pred.targetValid ? pred.target
                                               : pc + instBytes;
            ThreadMask mispredicted;
            for (const auto &[mask, next] : splits) {
                if (next != predicted_next)
                    mispredicted = mispredicted | mask;
            }
            std::vector<int> new_gids = sync_.onDivergence(gid, splits);
            for (std::size_t i = 0; i < splits.size(); ++i) {
                ThreadMask mask = splits[i].first;
                ThreadId st = mask.leader();
                if (bouts[st].taken) {
                    mask.forEach(
                        [&](ThreadId t) { sync_.countBranch(t); });
                    sync_.onTakenBranch(new_gids[i], bouts[st].target);
                }
            }
            ++stats.branchMispredicts;
            alloc_token(mispredicted);
        }
    } else if (inst.op == Opcode::HALT) {
        itid.forEach([&](ThreadId t) { haltThread(t); });
        stop_stream = true;
    } else if (inst.op == Opcode::BARRIER) {
        sync_.group(gid).pc = pc + instBytes;
        itid.forEach([&](ThreadId t) { threads_[t].atBarrier = true; });
        stop_stream = true;
    } else if (inst.op == Opcode::MERGEHINT) {
        sync_.group(gid).pc = pc + instBytes;
        // A diverged group pauses briefly so the others can reach the
        // same point and the PC-coincidence merge can fire; a fully
        // merged group treats the hint as a no-op.
        if (params_.mergeHintWait > 0 &&
            itid.count() < sync_.liveThreads()) {
            itid.forEach([&](ThreadId t) {
                threads_[t].hintWaitUntil = now_ + params_.mergeHintWait;
                threads_[t].hintPc = pc + instBytes;
                threads_[t].hintWaitMembers = itid.count();
            });
            ++stats.hintWaits;
            stop_stream = true;
        }
    } else {
        sync_.group(gid).pc = pc + instBytes;
    }

    // ---- Split stage + renaming. ----
    int made = makeInstances(inst, pc, itid, mode, dest_vals, src_a, src_b,
                             eff_addrs, mem_vals, mem_olds, bouts,
                             resolve_token);
    if (resolve_token >= 0)
        resolveRemaining_[resolve_token] = made;

    return stop_stream ? 0 : 1;
}

int
SmtCore::makeInstances(const Instruction &inst, Addr pc, ThreadMask itid,
                       FetchMode mode,
                       const std::array<RegVal, maxThreads> &dest_vals,
                       const std::array<RegVal, maxThreads> &src_a,
                       const std::array<RegVal, maxThreads> &src_b,
                       const std::array<Addr, maxThreads> &eff_addrs,
                       const std::array<RegVal, maxThreads> &mem_vals,
                       const std::array<RegVal, maxThreads> &mem_olds,
                       const std::array<BranchOut, maxThreads> &bouts,
                       int resolve_token)
{
    const InstInfo &info = inst.info();

    // Split stage (paper Table 2): MMT-FX+ uses the RST-driven splitter;
    // MMT-F "always splits into different instructions in the decode
    // stage"; singleton fetches pass through. RECV values come from
    // independent channels and may differ even with identical inputs, so
    // they always split (cf. Table 2's ME loads, without a predictor).
    // At most one instance per member thread, so fixed arrays suffice.
    std::array<SplitInstance, maxThreads> parts;
    int n_parts = 0;
    if (params_.sharedExec && inst.op != Opcode::RECV) {
        n_parts = splitter_.split(inst, itid, parts);
    } else {
        itid.forEach([&](ThreadId t) {
            parts[n_parts++] = {ThreadMask::single(t), false};
        });
    }

    // LVIP (paper §4.2.5): merged ME loads with identical addresses may
    // still load different values — predict, verify, roll back. The
    // lvip_penalty flags mark instances that carry a rollback penalty.
    std::array<bool, maxThreads> lvip_penalty{};
    if (params_.multiExecution && inst.isLoad()) {
        std::array<SplitInstance, maxThreads> adjusted;
        std::array<bool, maxThreads> flags{};
        int n_adj = 0;
        for (int pi = 0; pi < n_parts; ++pi) {
            const SplitInstance &part = parts[pi];
            if (part.itid.count() <= 1) {
                adjusted[n_adj++] = part;
                continue;
            }
            bool predicted_identical = lvip_.predictIdentical(pc);
            RegVal first = dest_vals[part.itid.leader()];
            bool actually_identical = true;
            part.itid.forEach([&](ThreadId t) {
                if (dest_vals[t] != first)
                    actually_identical = false;
            });
            if (predicted_identical && actually_identical) {
                adjusted[n_adj++] = part;
                continue;
            }
            // Split the load per instance. A wrong "identical" prediction
            // is discovered when the loads return: the first instance
            // carries the flush-and-refill penalty.
            if (predicted_identical)
                lvip_.recordMispredict(pc);
            bool first_inst = true;
            part.itid.forEach([&](ThreadId t) {
                flags[n_adj] = first_inst && predicted_identical;
                adjusted[n_adj++] = {ThreadMask::single(t), false};
                first_inst = false;
            });
        }
        parts = adjusted;
        n_parts = n_adj;
        lvip_penalty = flags;
    }

    // RST destination update (paper §4.2.3) — the RST only exists with
    // shared execution.
    bool writes = info.writesDest && inst.rd != regZero;
    if (params_.sharedExec && writes) {
        auto same_part = [&](ThreadId a, ThreadId b) {
            for (int i = 0; i < n_parts; ++i) {
                if (parts[i].itid.contains(a))
                    return parts[i].itid.contains(b);
            }
            return false;
        };
        rst_.updateDest(inst.rd, itid, same_part);
    }

    int made = 0;
    for (int part_idx = 0; part_idx < n_parts; ++part_idx) {
        const SplitInstance &part = parts[part_idx];
        DynInst *di = instArena_.create();
        window_.push_back(di);

        di->seq = nextSeq_++;
        di->pc = pc;
        di->inst = inst;
        di->fetchItid = itid;
        di->itid = part.itid;
        di->viaRegMerge = part.viaRegMerge;
        di->fetchMode = mode;
        di->fetchedAt = now_;
        di->state = InstState::InFetchQueue;
        di->resolveToken = resolve_token;
        di->lvipChecked = params_.multiExecution && inst.isLoad() &&
                          part.itid.count() > 1;
        di->lvipMispredict = lvip_penalty[part_idx];

        ThreadId pl = part.itid.leader();
        di->destVal = dest_vals[pl];
        di->branchTaken = bouts[pl].taken;
        di->branchTarget = bouts[pl].target;
        di->effAddr = eff_addrs;
        if (captureMemTrace_) {
            di->memVal = mem_vals;
            di->memOld = mem_olds;
        }
        if (inst.isMem()) {
            di->memAccesses =
                params_.multiExecution ? part.itid.count() : 1;
        }

        // Renaming: operands read once regardless of sharing (§4.2.4).
        if (info.readsSrc1) {
            di->src1 = rename_.lookup(pl, inst.rs1);
            ++rename_.prf().reads;
        }
        if (info.readsSrc2) {
            di->src2 = rename_.lookup(pl, inst.rs2);
            ++rename_.prf().reads;
        }
        if (writes) {
            di->destArch = inst.rd;
            di->dest = rename_.prf().alloc(di->destVal, false);
            part.itid.forEach([&](ThreadId t) {
                rename_.setMapping(t, inst.rd, di->dest);
            });
            regMerge_.onDispatchWrite(part.itid, inst.rd);
        }
        ++rename_.renameOps;

        if (params_.checkInvariants) {
            checkMergedValues(*di, dest_vals);
            // RAT/functional consistency: the leader's mapped physical
            // source values must match the architected values read.
            if (info.readsSrc1) {
                mmt_assert(rename_.prf().value(di->src1) == src_a[pl],
                           "RAT out of sync with architected state "
                           "(pc=%#lx rs1)", static_cast<unsigned long>(pc));
            }
            if (info.readsSrc2) {
                mmt_assert(rename_.prf().value(di->src2) == src_b[pl],
                           "RAT out of sync with architected state "
                           "(pc=%#lx rs2)", static_cast<unsigned long>(pc));
            }
        }

        fetchQueue_.push_back(di);
        ++made;
    }
    return made;
}

} // namespace mmt
