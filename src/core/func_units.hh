/**
 * @file
 * Functional-unit pool: 6 ALUs and 3 FPUs (Table 4), fully pipelined,
 * with per-class result latencies. Load/store port accounting lives in
 * the LSQ.
 */

#ifndef MMT_CORE_FUNC_UNITS_HH
#define MMT_CORE_FUNC_UNITS_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Cycle-by-cycle FU availability tracker. */
class FuncUnitPool
{
  public:
    FuncUnitPool(int num_alu, int num_fpu);

    /** Start a new cycle: all units become available. */
    void beginCycle();

    /** True if a unit for @p cls can start this cycle. */
    bool available(OpClass cls) const;

    /** Claim a unit for @p cls; call only after available(). */
    void claim(OpClass cls);

    /** Result latency of @p cls in cycles (memory classes excluded). */
    static Cycles latency(OpClass cls);

    /** True if @p cls executes on the FPU pool. */
    static bool isFpClass(OpClass cls);

    Counter intOps;
    Counter fpOps;

  private:
    int numAlu_;
    int numFpu_;
    int aluUsed_ = 0;
    int fpuUsed_ = 0;
};

} // namespace mmt

#endif // MMT_CORE_FUNC_UNITS_HH
