#include "core/lsq.hh"

#include "common/logging.hh"

namespace mmt
{

LoadStoreQueue::LoadStoreQueue(int capacity, int ports)
    : cap_(capacity), ports_(ports)
{
    mmt_assert(ports > 0, "LSQ needs at least one port");
}

void
LoadStoreQueue::allocate()
{
    mmt_assert(!full(), "LSQ overflow");
    ++occupied_;
}

void
LoadStoreQueue::release()
{
    mmt_assert(occupied_ > 0, "LSQ underflow");
    --occupied_;
}

void
LoadStoreQueue::beginCycle()
{
    portsLeft_ = ports_;
}

void
LoadStoreQueue::claimPorts(int n)
{
    mmt_assert(portsLeft_ >= n, "LSQ ports overclaimed");
    portsLeft_ -= n;
    accesses += static_cast<std::uint64_t>(n);
}

} // namespace mmt
