#include "core/issue_queue.hh"

#include "common/logging.hh"

namespace mmt
{

IssueQueue::IssueQueue(int capacity, const PhysRegFile *prf)
    : cap_(capacity), prf_(prf)
{
}

void
IssueQueue::insert(DynInst *inst)
{
    mmt_assert(!full(), "issue queue overflow");
    entries_.push_back(inst);
}

bool
IssueQueue::sourcesReady(const DynInst *inst) const
{
    if (inst->src1 != invalidPhysReg && !prf_->ready(inst->src1))
        return false;
    if (inst->src2 != invalidPhysReg && !prf_->ready(inst->src2))
        return false;
    return true;
}

} // namespace mmt
