/**
 * @file
 * DynInst — one in-flight instruction *instance* in the pipeline.
 *
 * A fetched instruction carries a fetch ITID naming all threads it was
 * fetched for. The splitting stage turns it into one or more instances,
 * each with its own (sub-)ITID; an instance with more than one member is
 * execute-identical and flows through rename/issue/execute/commit once
 * for all its threads (the paper's central optimization).
 */

#ifndef MMT_CORE_DYN_INST_HH
#define MMT_CORE_DYN_INST_HH

#include <array>

#include "common/thread_mask.hh"
#include "common/types.hh"
#include "core/mmt/fetch_sync.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Pipeline residency state of an instance. */
enum class InstState
{
    InFetchQueue,
    Dispatched, // in ROB; waiting in IQ (or LSQ)
    Issued,     // executing on a functional unit
    Completed,  // result ready; waiting to commit
    Committed,
};

/** One pipeline instance. */
struct DynInst
{
    std::uint64_t seq = 0; // global fetch-order sequence number
    Addr pc = 0;
    Instruction inst;

    ThreadMask fetchItid; // threads the original fetch covered
    ThreadMask itid;      // threads THIS instance covers (subset)
    bool viaRegMerge = false; // merged thanks to register merging
    FetchMode fetchMode = FetchMode::Merge; // group mode at fetch

    // Renaming.
    PhysReg src1 = invalidPhysReg;
    PhysReg src2 = invalidPhysReg;
    PhysReg dest = invalidPhysReg;
    RegIndex destArch = -1; // architected dest (-1: none / r0)

    // Functional results, recorded at fetch (identical across members for
    // non-memory values by the RST invariant).
    RegVal destVal = 0;
    bool branchTaken = false;
    Addr branchTarget = 0;

    // Memory bookkeeping (per member thread; indexed by ThreadId).
    std::array<Addr, maxThreads> effAddr{};
    /** Number of distinct cache accesses this instance performs. */
    int memAccesses = 0;

    // Per-member memory-trace capture (race oracle; filled only when
    // SmtCore::setCaptureMemTrace is on). Loads: value read. Stores:
    // value written / value overwritten. SEND/RECV: value moved /
    // partner rank.
    std::array<RegVal, maxThreads> memVal{};
    std::array<RegVal, maxThreads> memOld{};

    // LVIP (ME merged loads).
    bool lvipChecked = false;
    bool lvipMispredict = false;

    /** Branch-resolution token stalling fetch until completion (-1: none). */
    int resolveToken = -1;

    // Timing.
    InstState state = InstState::InFetchQueue;
    Cycles fetchedAt = 0;
    Cycles dispatchedAt = 0;
    Cycles issuedAt = 0;
    Cycles completeAt = 0;
    bool branchMispredicted = false;

    bool
    writesDest() const
    {
        return destArch >= 0;
    }

    /** Execute-identical: one execution applied to several threads. */
    bool
    isMergedExec() const
    {
        return itid.count() > 1;
    }
};

} // namespace mmt

#endif // MMT_CORE_DYN_INST_HH
