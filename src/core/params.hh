/**
 * @file
 * CoreParams — every knob of the simulated SMT/MMT core. Defaults follow
 * Table 4 of the paper; the MMT feature switches correspond to the
 * configurations of Table 5 (see sim/configs.hh for the presets).
 */

#ifndef MMT_CORE_PARAMS_HH
#define MMT_CORE_PARAMS_HH

#include <cstdint>
#include <vector>

#include "branch/branch_predictor.hh"
#include "common/types.hh"
#include "mem/memory_system.hh"
#include "mem/trace_cache.hh"

namespace mmt
{

/**
 * How the frontend consumes analyzer-derived static fetch hints.
 * Off must leave the pipeline bit-identical to a build without hints
 * (the golden-equivalence guarantee, see docs/INTERNALS.md).
 */
enum class StaticHintsMode
{
    Off,        // hints ignored entirely
    FhbSeed,    // pre-populate FHBs with re-convergence targets
    SplitSteer, // charge fetch slots by predicted sub-instruction count
    Both,
};

constexpr bool
hintsFhbSeed(StaticHintsMode m)
{
    return m == StaticHintsMode::FhbSeed || m == StaticHintsMode::Both;
}

constexpr bool
hintsSplitSteer(StaticHintsMode m)
{
    return m == StaticHintsMode::SplitSteer || m == StaticHintsMode::Both;
}

/**
 * Per-program hint tables consumed when staticHints != Off. Filled by
 * the sim layer from analysis::FetchHints; the Addr vectors are sorted
 * so the core can binary search (splitCounts is index-parallel with
 * splitPcs).
 */
struct StaticHintTable
{
    std::vector<Addr> divergentPcs;     // statically never-mergeable PCs
    std::vector<Addr> reconvergencePcs; // FHB seed targets
    /** PCs the analyzer predicts the splitter must expand (>1
     *  sub-instruction), with the predicted instance counts. */
    std::vector<Addr> splitPcs;
    std::vector<std::uint8_t> splitCounts;
};

/** Full configuration of one simulated core. */
struct CoreParams
{
    int numThreads = 4;

    // Machine widths (Table 4: issue/commit 8/8; fetch matches).
    int fetchWidth = 8;
    int dispatchWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    /** Max distinct fetch streams per cycle. The front-end is a trace
     *  cache (Table 4), which delivers one trace -- one thread's stream
     *  -- per cycle; shared fetch lets that one stream feed a whole
     *  merged group. */
    int maxFetchStreams = 1;

    // Structure sizes (Table 4).
    int robSize = 256;
    int iqSize = 64;
    int lsqSize = 64;
    int fetchQueueSize = 64;

    // Execution resources (Table 4: ALU/FPU 6/3).
    int numAlu = 6;
    int numFpu = 3;
    /** Load/store ports per cycle (Figure 7(b) sweeps 2..12). */
    int lsPorts = 4;

    // MMT structures (Tables 3 and 4).
    int fhbEntries = 32;
    int lvipEntries = 4096;
    /** Spare register-file read ports usable by register merging/cycle. */
    int mergeReadPorts = 2;
    /** Boost the behind thread / starve the ahead thread in CATCHUP
     *  (paper §4.1). Off = plain ICOUNT ordering; an ablation knob. */
    bool catchupPriority = true;
    /** Max cycles a diverged group waits at a MERGEHINT for the other
     *  groups to arrive (0 disables hint waiting entirely). */
    Cycles mergeHintWait = 24;

    // Penalties.
    Cycles mispredictRedirect = 2;  // cycles after branch resolution
    Cycles lvipRollbackPenalty = 8; // flush + refill after LVIP mispredict
    /** Front-end depth: decode + split stages between fetch and
     *  dispatch. */
    Cycles frontendDelay = 2;

    // MMT feature switches (Table 5 configurations).
    bool sharedFetch = false; // MMT-F
    bool sharedExec = false;  // MMT-FX
    bool regMerge = false;    // MMT-FXR

    /** Multi-execution semantics: separate address spaces, LVIP active. */
    bool multiExecution = false;

    /** Limit configuration: every thread runs with tid = 0, making MT
     *  threads exactly identical (paper Table 5: "running two instances
     *  with identical inputs"). */
    bool forceTidZero = false;

    /**
     * Global context id of each hardware thread (CMP placement): thread
     * t of this core runs context contextIds[t] of the workload's thread
     * group, which determines its tid register, stack slot, ME address
     * space/image and SEND/RECV rank. Empty = identity (thread t is
     * context t), the single-core layout.
     */
    std::vector<int> contextIds;

    BranchPredictorParams bpred;
    MemoryParams mem;
    TraceCacheParams traceCache;

    /** Simulation safety net. */
    Cycles maxCycles = 200'000'000;
    /** Commit-starvation watchdog: panic after this many cycles without
     *  a commit (0 disables the watchdog). */
    Cycles deadlockCycles = 500'000;
    /** Enable expensive soundness assertions (merged values identical). */
    bool checkInvariants = true;

    /** Analyzer-driven frontend hints (Off = bit-identical to no-hints). */
    StaticHintsMode staticHints = StaticHintsMode::Off;
    /** Hint tables for the running program (empty when staticHints=Off). */
    StaticHintTable hintTable;
};

} // namespace mmt

#endif // MMT_CORE_PARAMS_HH
