/**
 * @file
 * Issue queue with oldest-first wakeup/select over the shared physical
 * register file's ready bits.
 */

#ifndef MMT_CORE_ISSUE_QUEUE_HH
#define MMT_CORE_ISSUE_QUEUE_HH

#include <vector>

#include "common/stats.hh"
#include "core/dyn_inst.hh"
#include "core/rename.hh"

namespace mmt
{

/** Out-of-order scheduling window. */
class IssueQueue
{
  public:
    IssueQueue(int capacity, const PhysRegFile *prf);

    bool full() const { return static_cast<int>(entries_.size()) >= cap_; }
    int size() const { return static_cast<int>(entries_.size()); }

    /** Insert a dispatched instance. */
    void insert(DynInst *inst);

    /**
     * Collect up to @p max ready instances, oldest first, removing them
     * from the queue. FU/port constraints are applied by the caller
     * (which re-inserts what it cannot start? No — the caller passes a
     * predicate so rejected instances simply stay queued).
     *
     * @param max issue width remaining
     * @param can_start predicate deciding FU/port availability; called
     *        in seq order on ready instances only
     */
    std::vector<DynInst *> selectReady(int max, auto &&can_start)
    {
        std::vector<DynInst *> picked;
        selectReady(max, can_start, picked);
        return picked;
    }

    /** As above, filling @p picked (cleared first) — lets the caller
     *  reuse one buffer every cycle instead of allocating. */
    void selectReady(int max, auto &&can_start,
                     std::vector<DynInst *> &picked)
    {
        picked.clear();
        for (std::size_t i = 0;
             i < entries_.size() && static_cast<int>(picked.size()) < max;
             ++i) {
            DynInst *di = entries_[i];
            if (!sourcesReady(di))
                continue;
            ++wakeups;
            if (!can_start(di))
                continue;
            picked.push_back(di);
            entries_[i] = nullptr;
        }
        if (!picked.empty()) {
            std::erase(entries_, nullptr);
        }
    }

    Counter wakeups; // ready checks that fired (energy)

  private:
    bool sourcesReady(const DynInst *inst) const;

    int cap_;
    const PhysRegFile *prf_;
    std::vector<DynInst *> entries_; // kept in seq order
};

} // namespace mmt

#endif // MMT_CORE_ISSUE_QUEUE_HH
