/**
 * @file
 * Register renaming: per-thread Register Alias Tables over a shared
 * physical register file (paper §4.2.4).
 *
 * The MMT twist: an execute-identical instance allocates a *single*
 * physical register whose id is recorded in the RAT of every member
 * thread — so the RST's "identical mapping" bits literally mirror RAT
 * equality.
 *
 * The physical register pool is modeled as an append-only value store
 * (see DESIGN.md §3): the paper does not size the PRF, and timing
 * backpressure comes from the ROB/IQ/LSQ. Values persist, which lets the
 * commit-time register-merging hardware read any mapped register safely.
 */

#ifndef MMT_CORE_RENAME_HH
#define MMT_CORE_RENAME_HH

#include <array>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/thread_mask.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** Append-only physical register file. */
class PhysRegFile
{
  public:
    /** Allocate a new physical register holding @p value.
     *  @param ready true if the value is available immediately. */
    PhysReg alloc(RegVal value, bool ready);

    RegVal
    value(PhysReg p) const
    {
        return regs_[static_cast<std::size_t>(p)].value;
    }

    bool
    ready(PhysReg p) const
    {
        return regs_[static_cast<std::size_t>(p)].ready;
    }

    /** Producer wrote back: wake consumers. */
    void
    setReady(PhysReg p)
    {
        regs_[static_cast<std::size_t>(p)].ready = true;
    }

    std::size_t size() const { return regs_.size(); }

    Counter reads;  // register-file read accesses (energy)
    Counter writes; // register-file write accesses (energy)

  private:
    struct PReg
    {
        RegVal value;
        bool ready;
    };
    std::vector<PReg> regs_;
};

/** Per-thread RATs plus the shared physical file. */
class RenameUnit
{
  public:
    /**
     * Initialize program-start mappings (paper §4.2.6): all architected
     * registers map to the same physical registers across threads, except
     * the stack pointer and thread-id registers of multi-threaded
     * workloads, which get private mappings.
     *
     * @param num_threads live threads
     * @param init_regs architected register values of thread 0
     * @param private_sp private stack-pointer mappings (MT workloads)
     * @param private_tid private thread-id mappings (MT, unless the
     *        Limit configuration forces every tid to 0)
     * @param sp_tid_values per-thread (sp, tid) register values
     */
    void init(int num_threads,
              const std::array<RegVal, numArchRegs> &init_regs,
              bool private_sp, bool private_tid,
              const std::vector<std::pair<RegVal, RegVal>> &sp_tid_values);

    /** Current mapping of (@p tid, @p reg). */
    PhysReg
    lookup(ThreadId tid, RegIndex reg) const
    {
        return rat_[tid][reg];
    }

    /** Point (@p tid, @p reg) at @p preg. */
    void
    setMapping(ThreadId tid, RegIndex reg, PhysReg preg)
    {
        rat_[tid][reg] = preg;
    }

    /** True if every member of @p group maps @p reg identically. */
    bool mappingsEqual(RegIndex reg, ThreadMask group) const;

    PhysRegFile &prf() { return prf_; }
    const PhysRegFile &prf() const { return prf_; }

    Counter renameOps; // instances renamed (energy)

  private:
    std::array<std::array<PhysReg, numArchRegs>, maxThreads> rat_{};
    PhysRegFile prf_;
};

} // namespace mmt

#endif // MMT_CORE_RENAME_HH
