#include "core/func_units.hh"

#include "common/logging.hh"

namespace mmt
{

FuncUnitPool::FuncUnitPool(int num_alu, int num_fpu)
    : numAlu_(num_alu), numFpu_(num_fpu)
{
}

void
FuncUnitPool::beginCycle()
{
    aluUsed_ = 0;
    fpuUsed_ = 0;
}

bool
FuncUnitPool::isFpClass(OpClass cls)
{
    switch (cls) {
      case OpClass::FpAlu:
      case OpClass::FpMult:
      case OpClass::FpDiv:
      case OpClass::FpLong:
        return true;
      default:
        return false;
    }
}

bool
FuncUnitPool::available(OpClass cls) const
{
    return isFpClass(cls) ? fpuUsed_ < numFpu_ : aluUsed_ < numAlu_;
}

void
FuncUnitPool::claim(OpClass cls)
{
    if (isFpClass(cls)) {
        mmt_assert(fpuUsed_ < numFpu_, "FPU overclaimed");
        ++fpuUsed_;
        ++fpOps;
    } else {
        mmt_assert(aluUsed_ < numAlu_, "ALU overclaimed");
        ++aluUsed_;
        ++intOps;
    }
}

Cycles
FuncUnitPool::latency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 2;
      case OpClass::IntDiv: return 8;
      case OpClass::FpAlu: return 2;
      case OpClass::FpMult: return 3;
      case OpClass::FpDiv: return 10;
      case OpClass::FpLong: return 12;
      case OpClass::Branch: return 1;
      case OpClass::Jump: return 1;
      case OpClass::Syscall: return 1;
      default:
        panic("latency() on memory class");
    }
}

} // namespace mmt
