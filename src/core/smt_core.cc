#include "core/smt_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmt
{

SmtCore::SmtCore(const CoreParams &params, const Program *program,
                 const std::vector<MemoryImage *> &images)
    : params_(params), program_(program),
      memSys_(params.mem), traceCache_(params.traceCache),
      bpred_(params.bpred, params.numThreads),
      sync_(params.numThreads, params.fhbEntries, params.sharedFetch,
            params.catchupPriority),
      splitter_(&rst_),
      lvip_(params.lvipEntries),
      regMerge_(&rename_, &rst_, params.mergeReadPorts, params.numThreads),
      rob_(params.robSize, params.numThreads),
      iq_(params.iqSize, &rename_.prf()),
      lsqUnit_(params.lsqSize, params.lsPorts),
      fus_(params.numAlu, params.numFpu),
      fetchQueue_(static_cast<std::size_t>(params.fetchQueueSize) + 8),
      completion_(1024),
      window_(static_cast<std::size_t>(params.fetchQueueSize +
                                       params.robSize) + 64)
{
    mmt_assert(params.numThreads >= 1 && params.numThreads <= maxThreads,
               "bad thread count");
    mmt_assert(static_cast<int>(images.size()) == params.numThreads,
               "need one memory image per thread");
    mmt_assert(params_.contextIds.empty() ||
                   static_cast<int>(params_.contextIds.size()) ==
                       params_.numThreads,
               "need one context id per thread");

    // Context identity: tid register, stack slot, ME address space and
    // message-passing rank all follow the *global* context id, so a
    // thread behaves identically wherever its core sits in the CMP.
    const bool mt = !params_.multiExecution;
    std::array<RegVal, numArchRegs> init_regs{};
    init_regs[regSp] = defaultStackTop;

    std::vector<std::pair<RegVal, RegVal>> sp_tid;
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        ThreadState &ts = threads_[t];
        ThreadId ctx = contextId(t);
        ts.image = images[t];
        ts.asid = params_.multiExecution ? ctx : 0;
        ts.regs = init_regs;
        if (mt) {
            ts.regs[regSp] = defaultStackTop -
                             static_cast<Addr>(ctx) * defaultStackBytes;
            ts.regs[regTid] =
                params_.forceTidZero ? 0 : static_cast<RegVal>(ctx);
        }
        sp_tid.emplace_back(ts.regs[regSp], ts.regs[regTid]);
    }

    // Program-start mappings and RST state (paper §4.2.6): everything
    // shared, except sp/tid of MT workloads. The shared mappings are
    // seeded from thread 0's architected state (identical to init_regs
    // on a single core; on a CMP core whose leader hosts a non-zero
    // context, the leader's sp/tid land in the shared map so the RAT
    // matches the architected state even without private mappings).
    bool private_regs = mt && params_.numThreads > 1;
    bool private_tid = private_regs && !params_.forceTidZero;
    rename_.init(params_.numThreads, threads_[0].regs, private_regs,
                 private_tid, sp_tid);
    rst_.setAllShared();
    for (ThreadId t = 0; private_regs && t < params_.numThreads; ++t) {
        rst_.clearThread(regSp, t);
        if (private_tid)
            rst_.clearThread(regTid, t);
    }

    // Analyzer-driven frontend hints (no-op when staticHints == Off:
    // empty seed/split tables leave the pipeline bit-identical).
    sync_.setStaticHints(hintsFhbSeed(params_.staticHints),
                         params_.hintTable.reconvergencePcs,
                         params_.hintTable.divergentPcs);

    sync_.reset(program_->entry);
    lastCommitCycle_ = 0;
}

SmtCore::~SmtCore()
{
    // Tests may tear a core down mid-flight; return everything to the
    // arena so its leak accounting stays exact.
    while (!window_.empty()) {
        instArena_.recycle(window_.front());
        window_.pop_front();
    }
}

bool
SmtCore::done() const
{
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        if (!threads_[t].halted)
            return false;
    }
    return window_.empty();
}

ThreadMask
SmtCore::liveMask() const
{
    ThreadMask m;
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        if (!threads_[t].halted)
            m.set(t);
    }
    return m;
}

void
SmtCore::run()
{
    while (!done()) {
        tick();
        if (now_ > params_.maxCycles)
            fatal("simulation exceeded %llu cycles",
                  static_cast<unsigned long long>(params_.maxCycles));
        if (params_.deadlockCycles != 0 &&
            now_ - lastCommitCycle_ > params_.deadlockCycles) {
            panic("pipeline deadlock at cycle %llu%s",
                  static_cast<unsigned long long>(now_),
                  stallDiagnostics().c_str());
        }
    }
}

std::string
SmtCore::stallDiagnostics() const
{
    // Per-thread fetch-stall state is the usual culprit in a
    // commit-starvation hang; render it for the deadlock panic (also
    // per core from the CMP scheduler's system-level watchdog).
    std::string tstate = " (rob=" + std::to_string(rob_.occupancy()) +
                         " iq=" + std::to_string(iq_.size()) +
                         " lsq=" + std::to_string(lsqUnit_.occupancy()) +
                         " fq=" + std::to_string(fetchQueue_.size()) + ")";
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        const ThreadState &ts = threads_[t];
        tstate += " t" + std::to_string(t) + ":";
        if (ts.halted) {
            tstate += "halted";
            continue;
        }
        tstate += "stallUntil=" + std::to_string(ts.fetchStallUntil) +
                  ",token=" + std::to_string(ts.resolveToken);
        if (ts.atBarrier)
            tstate += ",barrier";
        if (ts.hintWaitUntil)
            tstate += ",hintUntil=" + std::to_string(ts.hintWaitUntil);
    }
    return tstate;
}

void
SmtCore::tick()
{
    ++now_;
    fus_.beginCycle();
    lsqUnit_.beginCycle();
    regMerge_.beginCycle();

    commitStage();
    completeStage();
    issueStage();
    dispatchStage();
    fetchStage();
    releaseBarrierIfReady();

    // Reclaim committed instances from the front of the window, back
    // into the arena for the next fetch to reuse.
    while (!window_.empty() &&
           window_.front()->state == InstState::Committed) {
        instArena_.recycle(window_.front());
        window_.pop_front();
    }
}

void
SmtCore::commitStage()
{
    int slots = params_.commitWidth;
    bool progress = true;
    while (slots > 0 && progress) {
        progress = false;
        for (ThreadId t = 0; t < params_.numThreads && slots > 0; ++t) {
            DynInst *h = rob_.head(t);
            if (!h || h->state != InstState::Completed)
                continue;
            if (!rob_.committable(h))
                continue;
            commitOne(h);
            --slots;
            progress = true;
        }
    }
}

void
SmtCore::commitOne(DynInst *inst)
{
    rob_.commit(inst);
    inst->state = InstState::Committed;
    lastCommitCycle_ = now_;

    stats.waitDispatch += inst->dispatchedAt - inst->fetchedAt;
    stats.waitIssue += inst->issuedAt - inst->dispatchedAt;
    stats.waitExec += inst->completeAt - inst->issuedAt;
    stats.waitCommit += now_ - inst->completeAt;

    int members = inst->itid.count();
    ++stats.committedInstances;
    stats.committedThreadInsts += static_cast<std::uint64_t>(members);
    inst->itid.forEach(
        [&](ThreadId t) { ++threads_[t].committedInsts; });

    IdentClass cls = IdentClass::NotIdentical;
    if (inst->isMergedExec()) {
        cls = inst->viaRegMerge ? IdentClass::ExecIdenticalRegMerge
                                : IdentClass::ExecIdentical;
    } else if (inst->fetchItid.count() > 1) {
        cls = IdentClass::FetchIdentical;
    }
    stats.identClass[static_cast<std::size_t>(cls)] +=
        static_cast<std::uint64_t>(members);

    if (inst->inst.isMem())
        lsqUnit_.release();

    if (inst->writesDest())
        regMerge_.onCommitWrite(inst->itid, inst->destArch);

    // Commit-time register merging (MMT-FXR only).
    if (params_.regMerge)
        regMerge_.tryMerge(*inst, liveMask());

    if (commitHook_)
        commitHook_(*inst, now_);
}

void
SmtCore::completeStage()
{
    // Instances issued in the same cycle complete in issue order (they
    // were scheduled in that order), which the seed's linear scan also
    // guaranteed — stat attribution stays reproducible.
    completion_.popDue(now_,
                       [this](DynInst *di) { onInstanceComplete(di); });
}

void
SmtCore::onInstanceComplete(DynInst *inst)
{
    inst->state = InstState::Completed;
    if (inst->dest != invalidPhysReg) {
        rename_.prf().setReady(inst->dest);
        ++rename_.prf().writes;
    }

    if (inst->resolveToken >= 0) {
        int token = inst->resolveToken;
        mmt_assert(resolveRemaining_[token] > 0, "resolve token underflow");
        if (--resolveRemaining_[token] == 0) {
            for (ThreadId t = 0; t < params_.numThreads; ++t) {
                ThreadState &ts = threads_[t];
                if (ts.resolveToken == token) {
                    ts.resolveToken = -1;
                    ts.fetchStallUntil =
                        std::max(ts.fetchStallUntil,
                                 now_ + params_.mispredictRedirect);
                    clearHintWait(ts);
                }
            }
            // Fully resolved: the id can be reused by a later branch
            // (no instance or thread references it anymore).
            freeTokens_.push_back(token);
        }
    }

    if (inst->lvipMispredict) {
        ++stats.lvipRollbacks;
        inst->fetchItid.forEach([&](ThreadId t) {
            threads_[t].fetchStallUntil =
                std::max(threads_[t].fetchStallUntil,
                         now_ + params_.lvipRollbackPenalty);
            // The rollback squashes the group's path; a member parked at
            // a MERGEHINT must restart with the rollback penalty, not
            // serve out the (possibly much longer) hint timeout.
            clearHintWait(threads_[t]);
        });
    }
}

void
SmtCore::issueStage()
{
    // The predicate claims the resource so later candidates see the
    // updated availability within this cycle.
    iq_.selectReady(
        params_.issueWidth,
        [&](DynInst *di) {
            if (di->inst.isMem()) {
                if (!lsqUnit_.portsAvailable(1))
                    return false;
                lsqUnit_.claimPorts(1);
                return true;
            }
            OpClass cls = di->inst.info().opClass;
            if (!fus_.available(cls))
                return false;
            fus_.claim(cls);
            return true;
        },
        issueScratch_);

    for (DynInst *di : issueScratch_) {
        di->state = InstState::Issued;
        di->issuedAt = now_;
        if (di->inst.isMem()) {
            // Perform the (possibly multiple, serialized) cache accesses;
            // one port was claimed at select, the rest (ME split
            // accesses) claim whatever remains this cycle. Accesses that
            // could not get a port are not dropped: each one slips an
            // extra cycle behind the serial schedule, modelling the port
            // conflict it would hit.
            int accesses = di->memAccesses;
            int granted = std::min(accesses - 1, lsqUnit_.portsLeft());
            if (granted > 0)
                lsqUnit_.claimPorts(granted);
            bool is_store = di->inst.isStore();
            Cycles worst = now_ + 1;
            int i = 0;
            Cycles slip = 0;
            auto do_access = [&](ThreadId t) {
                if (i > granted)
                    ++slip;
                Cycles avail = memSys_.dataAccess(
                    threads_[t].asid, di->effAddr[t], is_store,
                    now_ + static_cast<Cycles>(i) + slip);
                worst = std::max(worst, avail);
                ++i;
            };
            if (params_.multiExecution) {
                di->itid.forEach(do_access);
            } else {
                do_access(di->itid.leader());
            }
            if (is_store) {
                // Stores complete for dependence purposes immediately;
                // the write drains via the (unmodeled) store buffer.
                di->completeAt = now_ + 1;
                ++stats.stores;
            } else {
                di->completeAt = worst;
                ++stats.loads;
            }
        } else {
            OpClass cls = di->inst.info().opClass;
            di->completeAt = now_ + FuncUnitPool::latency(cls);
        }
        completion_.schedule(di->completeAt, di);
    }
}

void
SmtCore::dispatchStage()
{
    int slots = params_.dispatchWidth;
    while (slots > 0 && !fetchQueue_.empty()) {
        DynInst *di = fetchQueue_.front();
        if (di->fetchedAt + params_.frontendDelay > now_)
            break;
        if (rob_.full() || iq_.full())
            break;
        if (di->inst.isMem() && lsqUnit_.full())
            break;
        fetchQueue_.pop_front();
        rob_.insert(di);
        iq_.insert(di);
        if (di->inst.isMem())
            lsqUnit_.allocate();
        di->state = InstState::Dispatched;
        di->dispatchedAt = now_;
        --slots;
    }
}

void
SmtCore::registerStats(StatGroup &group, const std::string &prefix)
{
    auto add = [&](const char *name, Counter *c) {
        group.addCounter(prefix + name, c);
    };
    add("fetch.records", &stats.fetchRecords);
    add("fetch.threadInsts", &stats.fetchedThreadInsts);
    add("fetch.streamCycles", &stats.fetchStreamCycles);
    add("fetch.mode.merge", &stats.fetchedInMode[0]);
    add("fetch.mode.detect", &stats.fetchedInMode[1]);
    add("fetch.mode.catchup", &stats.fetchedInMode[2]);
    add("commit.instances", &stats.committedInstances);
    add("commit.threadInsts", &stats.committedThreadInsts);
    add("commit.notIdentical", &stats.identClass[0]);
    add("commit.fetchIdentical", &stats.identClass[1]);
    add("commit.execIdentical", &stats.identClass[2]);
    add("commit.execIdenticalRegMerge", &stats.identClass[3]);
    add("branch.mispredicts", &stats.branchMispredicts);
    add("branch.lookups", &bpred_.lookups);
    add("mem.loads", &stats.loads);
    add("mem.stores", &stats.stores);
    add("mem.l1i.accesses", &memSys_.l1i().accesses);
    add("mem.l1i.misses", &memSys_.l1i().misses);
    add("mem.l1d.accesses", &memSys_.l1d().accesses);
    add("mem.l1d.misses", &memSys_.l1d().misses);
    add("mem.l2.accesses", &memSys_.l2().accesses);
    add("mem.l2.misses", &memSys_.l2().misses);
    add("mem.mshrStalls", &memSys_.mshrStalls);
    add("mem.traceCache.accesses", &traceCache_.accesses);
    add("mem.traceCache.misses", &traceCache_.misses);
    add("rename.ops", &rename_.renameOps);
    add("rename.prfReads", &rename_.prf().reads);
    add("rename.prfWrites", &rename_.prf().writes);
    add("iq.wakeups", &iq_.wakeups);
    add("rob.writes", &rob_.writes);
    add("lsq.accesses", &lsqUnit_.accesses);
    add("fu.intOps", &fus_.intOps);
    add("fu.fpOps", &fus_.fpOps);
    add("mmt.rst.lookups", &rst_.lookups);
    add("mmt.rst.updates", &rst_.updates);
    add("mmt.rst.mergeSets", &rst_.mergeSets);
    add("mmt.splitter.invocations", &splitter_.invocations);
    add("mmt.splitter.splits", &splitter_.splitsProduced);
    add("mmt.lvip.accesses", &lvip_.accesses);
    add("mmt.lvip.mispredicts", &lvip_.mispredicts);
    add("mmt.lvip.rollbacks", &stats.lvipRollbacks);
    add("mmt.regMerge.compares", &regMerge_.compares);
    add("mmt.regMerge.merges", &regMerge_.merges);
    add("mmt.regMerge.portStarved", &regMerge_.portStarved);
    add("mmt.sync.divergences", &sync_.divergences);
    add("mmt.sync.remerges", &sync_.remerges);
    add("mmt.sync.catchupEntered", &sync_.catchupEntered);
    add("mmt.sync.catchupAborted", &sync_.catchupAborted);
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        std::string fhb = prefix + "mmt.fhb" + std::to_string(t);
        group.addCounter(fhb + ".searches", &sync_.fhb(t).searches);
        group.addCounter(fhb + ".hits", &sync_.fhb(t).hits);
        group.addCounter(fhb + ".records", &sync_.fhb(t).records);
    }
    if (msgNet_ != nullptr) {
        add("msg.sends", &msgNet_->sends);
        add("msg.recvs", &msgNet_->recvs);
    }
}

std::string
SmtCore::dumpStats()
{
    StatGroup group;
    registerStats(group);
    std::string out = "cycles " + std::to_string(now_) + "\n";
    return out + group.dump();
}

std::string
SmtCore::dumpStatsJson()
{
    StatGroup group;
    registerStats(group);
    std::string body = group.dumpJson();
    // Splice the cycle count in as the first member, mirroring the text
    // dump's leading "cycles" line.
    return "{\n  \"cycles\": " + std::to_string(now_) + ",\n" +
           body.substr(2);
}

void
SmtCore::clearHintWait(ThreadState &ts)
{
    ts.hintWaitUntil = 0;
    ts.hintPc = 0;
    ts.hintWaitMembers = 0;
}

void
SmtCore::haltThread(ThreadId tid)
{
    threads_[tid].halted = true;
    clearHintWait(threads_[tid]);
    sync_.removeThread(tid);
}

int
SmtCore::liveThreadCount() const
{
    int n = 0;
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        if (!threads_[t].halted)
            ++n;
    }
    return n;
}

int
SmtCore::threadsAtBarrier() const
{
    int n = 0;
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        if (!threads_[t].halted && threads_[t].atBarrier)
            ++n;
    }
    return n;
}

void
SmtCore::releaseBarrier()
{
    for (ThreadId t = 0; t < params_.numThreads; ++t) {
        threads_[t].atBarrier = false;
        // A barrier is a stronger sync point than any pending hint wait;
        // crossing it makes leftover hint state stale.
        clearHintWait(threads_[t]);
    }
}

void
SmtCore::releaseBarrierIfReady()
{
    // Under a CMP the barrier spans every core's threads; the system
    // scheduler decides when all have arrived and calls releaseBarrier().
    if (externalBarrier_)
        return;
    int live = liveThreadCount();
    if (live == 0 || threadsAtBarrier() != live)
        return; // someone is still on the way
    releaseBarrier();
}

void
SmtCore::checkMergedValues(
    const DynInst &inst,
    const std::array<RegVal, maxThreads> &dest_vals) const
{
    if (!params_.checkInvariants || inst.itid.count() <= 1)
        return;
    if (!inst.writesDest())
        return;
    RegVal first = dest_vals[inst.itid.leader()];
    inst.itid.forEach([&](ThreadId t) {
        mmt_assert(dest_vals[t] == first,
                   "merged instance with divergent values at pc=%#lx (%s)",
                   static_cast<unsigned long>(inst.pc),
                   inst.inst.toString().c_str());
    });
}

} // namespace mmt
