/**
 * @file
 * Reorder buffer bookkeeping: a shared capacity of 256 entries (Table 4)
 * where an execute-identical instance occupies a *single* entry for all
 * its threads, plus per-thread in-order commit queues. A multi-thread
 * instance commits once, when it is the oldest uncommitted instruction of
 * every member thread.
 */

#ifndef MMT_CORE_ROB_HH
#define MMT_CORE_ROB_HH

#include <deque>

#include "common/stats.hh"
#include "core/dyn_inst.hh"

namespace mmt
{

/** Shared-capacity ROB with per-thread commit order. */
class ReorderBuffer
{
  public:
    ReorderBuffer(int capacity, int num_threads);

    bool full() const { return occupied_ >= cap_; }
    bool empty() const { return occupied_ == 0; }
    int occupancy() const { return occupied_; }

    /** Dispatch an instance: one shared entry, queued per member. */
    void insert(DynInst *inst);

    /**
     * Oldest uncommitted instance of @p tid, or nullptr.
     * The instance is committable when committable() also holds.
     */
    DynInst *head(ThreadId tid) const;

    /** True if @p inst is at the head of all its member threads. */
    bool committable(const DynInst *inst) const;

    /** Retire @p inst (must be committable and Completed). */
    void commit(DynInst *inst);

    /** In-flight instances of @p tid (for ICOUNT fetch policy). */
    int
    threadCount(ThreadId tid) const
    {
        return static_cast<int>(queues_[tid].size());
    }

    Counter writes; // entries allocated (energy)

  private:
    int cap_;
    int numThreads_;
    int occupied_ = 0;
    std::deque<DynInst *> queues_[maxThreads];
};

} // namespace mmt

#endif // MMT_CORE_ROB_HH
