/**
 * @file
 * Instruction splitter (paper §4.2.2): the pipeline stage between decode
 * and register renaming that turns one fetch-identical instruction into
 * the minimal set of 1-4 instances.
 *
 * Hardware algorithm reproduced here:
 *  - read the RST pair bits of every source register;
 *  - AND them to get the sharing relation for this instruction;
 *  - the Filter masks out combinations impossible under the fetched ITID;
 *  - the Chooser repeatedly outputs the valid combination with the most
 *    threads, removing chosen threads, until all ITID threads are covered.
 *
 * Because RST sharing is an equivalence (it mirrors mapping equality),
 * the greedy choice yields the minimal partition.
 */

#ifndef MMT_CORE_MMT_SPLITTER_HH
#define MMT_CORE_MMT_SPLITTER_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "common/thread_mask.hh"
#include "common/types.hh"
#include "core/mmt/rst.hh"
#include "isa/isa.hh"

namespace mmt
{

/** One split output: the instance's ITID plus bookkeeping for stats. */
struct SplitInstance
{
    ThreadMask itid;
    /** True when this instance is merged only thanks to a sharing bit that
     *  the register-merging hardware restored (Figure 5(b) category). */
    bool viaRegMerge = false;
};

/** The decode-to-rename splitting stage. */
class InstructionSplitter
{
  public:
    explicit InstructionSplitter(RegisterSharingTable *rst)
        : rst_(rst)
    {}

    /**
     * Compute the minimal instance set for @p inst fetched with
     * @p fetch_itid. Source registers with index -1 are ignored.
     * Instructions with no register sources never split.
     */
    std::vector<SplitInstance> split(const Instruction &inst,
                                     ThreadMask fetch_itid);

    /**
     * As above, writing the instances into @p out and returning the
     * count (at most one per member thread) — the pipeline's
     * allocation-free path.
     */
    int split(const Instruction &inst, ThreadMask fetch_itid,
              std::array<SplitInstance, maxThreads> &out);

    Counter invocations;
    Counter splitsProduced; // instances beyond the first

  private:
    RegisterSharingTable *rst_;
};

} // namespace mmt

#endif // MMT_CORE_MMT_SPLITTER_HH
