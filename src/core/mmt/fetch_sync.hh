/**
 * @file
 * Fetch synchronization (paper §4.1, Figure 3(a)): the MERGE / DETECT /
 * CATCHUP state machine that re-joins divergent execution paths.
 *
 * Threads are partitioned into *fetch groups*; a group fetches a single
 * instruction stream with one PC and stamps fetched instructions with an
 * ITID covering its members (a group of one is an ordinary SMT thread).
 * The paper presents the two-thread mechanism and notes it "can be easily
 * translated to four threads"; our translation:
 *
 *  - A group whose member threads resolve a conditional branch
 *    differently *diverges* into subgroups (per outcome).
 *  - Every group that is not fully merged records the target PC of each
 *    taken branch in its members' Fetch History Buffers and searches the
 *    other groups' FHBs. A hit puts the searching group into CATCHUP mode
 *    behind the owning group: the behind group gets maximum fetch
 *    priority, the ahead group minimum.
 *  - In CATCHUP mode, a taken-branch target that is *not* in the ahead
 *    group's history is a false positive: revert to DETECT.
 *  - When two groups' next PCs coincide, they merge (-> MERGE mode);
 *    their FHBs are cleared.
 */

#ifndef MMT_CORE_MMT_FETCH_SYNC_HH
#define MMT_CORE_MMT_FETCH_SYNC_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/thread_mask.hh"
#include "common/types.hh"
#include "core/mmt/fhb.hh"

namespace mmt
{

/** Instruction fetch mode (paper Figure 3(a)). */
enum class FetchMode
{
    Merge,
    Detect,
    Catchup,
};

/** Printable name of @p mode. */
const char *fetchModeName(FetchMode mode);

/** One fetch group: a set of threads fetching a single stream. */
struct FetchGroup
{
    ThreadMask members;
    Addr pc = 0;
    bool alive = false;
    /** Group id this group is catching up to, or -1. */
    int catchupAhead = -1;
    /** Number of behind-groups currently chasing this group. */
    int chasedBy = 0;
};

/** The fetch-group partition and its mode transitions. */
class FetchSync
{
  public:
    /**
     * @param num_threads live hardware threads
     * @param fhb_entries FHB CAM size (Table 3: 32; §6.4 sweeps 8..128)
     * @param shared_fetch false disables all merging (traditional SMT):
     *        threads start and stay in singleton groups
     */
    FetchSync(int num_threads, int fhb_entries, bool shared_fetch,
              bool catchup_priority = true);

    /** Begin execution: all threads at @p entry_pc in one merged group. */
    void reset(Addr entry_pc);

    /** Number of group slots (some may be dead); iterate with group(). */
    int numGroups() const { return static_cast<int>(groups_.size()); }
    FetchGroup &group(int id) { return groups_[id]; }
    const FetchGroup &group(int id) const { return groups_[id]; }

    /** Ids of live groups, highest fetch priority first.
     *  @param icount per-group in-flight counts for the ICOUNT policy */
    std::vector<int> fetchOrder(const std::vector<int> &icount) const;

    /** As above, filling @p ids (cleared first) so the fetch stage can
     *  reuse one buffer per cycle. */
    void fetchOrder(const std::vector<int> &icount,
                    std::vector<int> &ids) const;

    /** Group currently containing @p tid (-1 if halted). */
    int threadGroup(ThreadId tid) const;

    /** Fetch-mode classification of @p gid for statistics. */
    FetchMode classify(int gid) const;

    /**
     * The group resolved a conditional branch with differing outcomes.
     * @param splits one (members, next_pc) per outcome, all non-empty,
     *        partitioning the group's members
     * @return ids of the resulting groups (first reuses @p gid)
     */
    std::vector<int> onDivergence(int gid,
        const std::vector<std::pair<ThreadMask, Addr>> &splits);

    /**
     * The group fetched a taken branch to @p target. Records history and
     * performs the DETECT/CATCHUP transitions. Fully merged groups skip
     * the FHB entirely (they are in MERGE mode).
     */
    void onTakenBranch(int gid, Addr target);

    /**
     * Merge any live groups whose PCs coincide. Call once per cycle
     * before fetching.
     * @return true if any merge happened
     */
    bool tryMerge();

    /** Remove a halted thread from its group (dissolving empty groups). */
    void removeThread(ThreadId tid);

    /** Count of live (non-halted) threads. */
    int liveThreads() const;

    FetchHistoryBuffer &fhb(ThreadId tid) { return *fhbs_[tid]; }

    /**
     * Install analyzer-derived static hints (both vectors sorted).
     * @param fhb_seed seed every thread's FHB with @p reconvergence and
     *        enable the seeded DETECT→CATCHUP transition: a group taking
     *        a branch into a static re-convergence point is presumed
     *        first there, and every free group is boosted to chase it
     * @param divergent PCs statically inside diverged control paths
     *        (hammock arms). With @p fhb_seed, a CATCHUP chaser branching
     *        into one is treated as transiently — not terminally — off
     *        the ahead group's path (no catchup abort).
     * Seeds survive reset(); call once after construction.
     */
    void setStaticHints(bool fhb_seed,
                        const std::vector<Addr> &reconvergence,
                        const std::vector<Addr> &divergent);

    /** Current cycle, for the divergence→remerge latency statistic.
     *  Called by the fetch stage once per cycle. */
    void setCycle(Cycles now) { now_ = now; }

    Counter divergences;
    Counter remerges;
    Counter catchupEntered;
    Counter catchupAborted; // false positives (CATCHUP -> DETECT)
    /** Extra fetch slots charged by the split-steer hint: the fetch
     *  stage adds predicted-sub-instruction-count − 1 per record fetched
     *  at a statically predicted-split PC (unregistered: summed here,
     *  surfaced via RunResult, never in the golden stats dump). Zero
     *  unless the hints mode enables split-steer — the counter the
     *  retired merge-skip veto never managed to move. */
    Counter splitSteerCharges;
    /** Divergence→remerge latency in cycles (unregistered: summed here,
     *  surfaced via RunResult, never in the golden stats dump). */
    Counter syncLatencyCycles;
    Counter syncLatencySamples;
    /** Branches fetched between divergence and remerge (§6.3). */
    Distribution remergeDistance{{16, 32, 64, 128, 256, 512}};

    /** Advance the per-thread fetched-branch counters (for the remerge
     *  distance statistic). Called by the fetch stage per taken branch. */
    void countBranch(ThreadId tid) { ++branchesFetched_[tid]; }

  private:
    int allocGroup(ThreadMask members, Addr pc);
    void leaveCatchup(int gid, bool aborted);
    bool fullyMerged(int gid) const;

    bool seedPcMatch(Addr pc) const;
    bool divergentPcMatch(Addr pc) const;

    int numThreads_;
    bool sharedFetch_;
    bool catchupPriority_;
    bool seedEnabled_ = false;
    Cycles now_ = 0;
    std::vector<Addr> seedPcs_;      // sorted re-convergence targets
    std::vector<Addr> divergentPcs_; // sorted statically-divergent PCs
    std::vector<FetchGroup> groups_;
    std::vector<std::unique_ptr<FetchHistoryBuffer>> fhbs_;
    std::vector<std::uint64_t> branchesFetched_;
    std::vector<std::uint64_t> divergeStamp_;
    std::vector<Cycles> divergeCycle_;
    std::vector<bool> divergePending_;
};

} // namespace mmt

#endif // MMT_CORE_MMT_FETCH_SYNC_HH
