/**
 * @file
 * Load Values Identical Predictor (paper §4.2.5).
 *
 * For multi-execution workloads, a merged load with identical inputs has
 * an identical *address* in every instance, but no shared memory — so the
 * loaded values may differ. The LVIP predicts whether they will be
 * identical. The paper's scheme: "We maintain a table of PC's whose loads
 * have been previously mispredicted. We begin by predicting the value
 * will be identical." — i.e. predict identical unless the PC is found in
 * the mispredict table. Table 4 sizes it at 4K entries.
 */

#ifndef MMT_CORE_MMT_LVIP_HH
#define MMT_CORE_MMT_LVIP_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mmt
{

/** Table of load PCs that previously returned divergent values. */
class LoadValuesIdenticalPredictor
{
  public:
    explicit LoadValuesIdenticalPredictor(int entries);

    /** Predict whether the merged load at @p pc returns identical values
     *  in all instances. Counts an access for the energy model. */
    bool predictIdentical(Addr pc);

    /** Record a misprediction: the load at @p pc loaded divergent values. */
    void recordMispredict(Addr pc);

    /** Verification outcome bookkeeping. */
    Counter accesses;
    Counter mispredicts;

  private:
    std::size_t index(Addr pc) const;

    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
    };
    std::vector<Entry> table_;
};

} // namespace mmt

#endif // MMT_CORE_MMT_LVIP_HH
