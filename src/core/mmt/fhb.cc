#include "core/mmt/fhb.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmt
{

FetchHistoryBuffer::FetchHistoryBuffer(int entries)
    : capacity_(entries), ring_(static_cast<std::size_t>(entries), 0)
{
    mmt_assert(entries > 0, "FHB needs at least one entry");
}

void
FetchHistoryBuffer::record(Addr target_pc)
{
    ++records;
    ring_[next_] = target_pc;
    next_ = (next_ + 1) % ring_.size();
    if (valid_ < ring_.size())
        ++valid_;
}

bool
FetchHistoryBuffer::contains(Addr pc)
{
    // A real CAM compares all entries in parallel in one cycle.
    ++searches;
    for (std::size_t i = 0; i < valid_; ++i) {
        if (ring_[i] == pc) {
            ++hits;
            return true;
        }
    }
    if (seedMatch(pc)) {
        ++hits;
        return true;
    }
    return false;
}

bool
FetchHistoryBuffer::containsHistory(Addr pc)
{
    ++searches;
    for (std::size_t i = 0; i < valid_; ++i) {
        if (ring_[i] == pc) {
            ++hits;
            return true;
        }
    }
    return false;
}

bool
FetchHistoryBuffer::seedMatch(Addr pc) const
{
    return std::binary_search(seeds_.begin(), seeds_.end(), pc);
}

void
FetchHistoryBuffer::seed(const std::vector<Addr> &targets)
{
    seeds_ = targets;
    mmt_assert(std::is_sorted(seeds_.begin(), seeds_.end()),
               "FHB seeds must be sorted");
}

void
FetchHistoryBuffer::clear()
{
    valid_ = 0;
    next_ = 0;
}

} // namespace mmt
