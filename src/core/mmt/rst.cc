#include "core/mmt/rst.hh"

namespace mmt
{

RegisterSharingTable::RegisterSharingTable()
{
    setAllShared();
}

void
RegisterSharingTable::setAllShared()
{
    for (auto &e : entries_) {
        e.bits = (1u << maxThreadPairs) - 1u;
        e.mergeProv = 0;
    }
}

bool
RegisterSharingTable::shared(RegIndex reg, ThreadId a, ThreadId b) const
{
    if (reg < 0 || a == b)
        return true;
    int p = ThreadMask::pairIndex(a, b);
    return (entries_[reg].bits >> p) & 1u;
}

bool
RegisterSharingTable::setByMerge(RegIndex reg, ThreadId a, ThreadId b) const
{
    if (reg < 0 || a == b)
        return false;
    int p = ThreadMask::pairIndex(a, b);
    return ((entries_[reg].bits >> p) & 1u) &&
           ((entries_[reg].mergeProv >> p) & 1u);
}

ThreadMask
RegisterSharingTable::sharedGroup(RegIndex reg, ThreadMask candidates) const
{
    if (reg < 0 || candidates.count() <= 1)
        return candidates;
    ThreadId lead = candidates.leader();
    ThreadMask out = ThreadMask::single(lead);
    candidates.forEach([&](ThreadId t) {
        if (t != lead && shared(reg, lead, t))
            out.set(t);
    });
    return out;
}

bool
RegisterSharingTable::groupShares(RegIndex reg, ThreadMask group) const
{
    if (reg < 0 || group.count() <= 1)
        return true;
    bool ok = true;
    group.forEach([&](ThreadId a) {
        group.forEach([&](ThreadId b) {
            if (a < b && !shared(reg, a, b))
                ok = false;
        });
    });
    return ok;
}

void
RegisterSharingTable::clearThread(RegIndex reg, ThreadId tid)
{
    if (reg < 0)
        return;
    for (ThreadId other = 0; other < maxThreads; ++other) {
        if (other == tid)
            continue;
        setBit(reg, ThreadMask::pairIndex(tid, other), false, false);
    }
}

void
RegisterSharingTable::mergeSet(RegIndex reg, ThreadId a, ThreadId b)
{
    ++mergeSets;
    setBit(reg, ThreadMask::pairIndex(a, b), true, /*by_merge=*/true);
}

void
RegisterSharingTable::setBit(RegIndex reg, int pair, bool value,
                             bool by_merge)
{
    Entry &e = entries_[reg];
    std::uint8_t mask = static_cast<std::uint8_t>(1u << pair);
    if (value)
        e.bits |= mask;
    else
        e.bits &= static_cast<std::uint8_t>(~mask);
    if (value && by_merge)
        e.mergeProv |= mask;
    else
        e.mergeProv &= static_cast<std::uint8_t>(~mask);
}

} // namespace mmt
