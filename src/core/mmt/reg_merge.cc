#include "core/mmt/reg_merge.hh"

#include "common/logging.hh"
#include "core/dyn_inst.hh"

namespace mmt
{

RegMergeUnit::RegMergeUnit(RenameUnit *rename, RegisterSharingTable *rst,
                           int read_ports, int num_threads)
    : rename_(rename), rst_(rst), readPorts_(read_ports),
      numThreads_(num_threads)
{
}

void
RegMergeUnit::onDispatchWrite(ThreadMask itid, RegIndex reg)
{
    if (reg < 0)
        return;
    itid.forEach([&](ThreadId t) { ++writers_[t][reg]; });
}

void
RegMergeUnit::onCommitWrite(ThreadMask itid, RegIndex reg)
{
    if (reg < 0)
        return;
    itid.forEach([&](ThreadId t) {
        mmt_assert(writers_[t][reg] > 0, "writer count underflow");
        --writers_[t][reg];
    });
}

bool
RegMergeUnit::noActiveWriter(ThreadId tid, RegIndex reg) const
{
    return writers_[tid][reg] == 0;
}

void
RegMergeUnit::beginCycle()
{
    portsLeft_ = readPorts_;
}

int
RegMergeUnit::tryMerge(const DynInst &inst, ThreadMask live_threads)
{
    // Only instructions fetched while diverged can re-discover sharing
    // (paper: "we only check the destination registers of instructions
    // fetched in DETECT or CATCHUP mode").
    if (inst.fetchMode == FetchMode::Merge || !inst.writesDest())
        return 0;

    RegIndex reg = inst.destArch;

    // Mapping-valid check: the committing instruction's destination must
    // still be what every member thread's RAT maps for this register;
    // otherwise a younger writer is in flight and it is too late.
    bool valid = true;
    inst.itid.forEach([&](ThreadId t) {
        if (rename_->lookup(t, reg) != inst.dest)
            valid = false;
    });
    if (!valid)
        return 0;

    int set = 0;
    ThreadId self = inst.itid.leader();
    for (ThreadId other = 0; other < numThreads_; ++other) {
        if (inst.itid.contains(other) || !live_threads.contains(other))
            continue;
        if (!noActiveWriter(other, reg))
            continue;
        if (portsLeft_ <= 0) {
            ++portStarved;
            break;
        }
        --portsLeft_;
        ++compares;
        ++rename_->prf().reads;
        PhysReg theirs = rename_->lookup(other, reg);
        if (theirs == inst.dest ||
            rename_->prf().value(theirs) == inst.destVal) {
            inst.itid.forEach([&](ThreadId mine) {
                rst_->mergeSet(reg, mine, other);
            });
            (void)self;
            ++merges;
            ++set;
        }
    }
    return set;
}

} // namespace mmt
