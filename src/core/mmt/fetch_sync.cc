#include "core/mmt/fetch_sync.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmt
{

const char *
fetchModeName(FetchMode mode)
{
    switch (mode) {
      case FetchMode::Merge: return "MERGE";
      case FetchMode::Detect: return "DETECT";
      case FetchMode::Catchup: return "CATCHUP";
    }
    return "?";
}

FetchSync::FetchSync(int num_threads, int fhb_entries, bool shared_fetch,
                     bool catchup_priority)
    : numThreads_(num_threads), sharedFetch_(shared_fetch),
      catchupPriority_(catchup_priority),
      branchesFetched_(static_cast<std::size_t>(num_threads), 0),
      divergeStamp_(static_cast<std::size_t>(num_threads), 0),
      divergeCycle_(static_cast<std::size_t>(num_threads), 0),
      divergePending_(static_cast<std::size_t>(num_threads), false)
{
    mmt_assert(num_threads >= 1 && num_threads <= maxThreads,
               "unsupported thread count %d", num_threads);
    for (ThreadId t = 0; t < num_threads; ++t)
        fhbs_.push_back(std::make_unique<FetchHistoryBuffer>(fhb_entries));
}

void
FetchSync::reset(Addr entry_pc)
{
    groups_.clear();
    if (sharedFetch_) {
        allocGroup(ThreadMask::firstN(numThreads_), entry_pc);
    } else {
        for (ThreadId t = 0; t < numThreads_; ++t)
            allocGroup(ThreadMask::single(t), entry_pc);
    }
    for (ThreadId t = 0; t < numThreads_; ++t) {
        fhbs_[t]->clear();
        branchesFetched_[t] = 0;
        divergeCycle_[t] = 0;
        divergePending_[t] = false;
    }
}

void
FetchSync::setStaticHints(bool fhb_seed,
                          const std::vector<Addr> &reconvergence,
                          const std::vector<Addr> &divergent)
{
    seedEnabled_ = fhb_seed;
    seedPcs_ = fhb_seed ? reconvergence : std::vector<Addr>{};
    divergentPcs_ = fhb_seed ? divergent : std::vector<Addr>{};
    for (ThreadId t = 0; t < numThreads_; ++t)
        fhbs_[t]->seed(seedPcs_);
}

bool
FetchSync::seedPcMatch(Addr pc) const
{
    return std::binary_search(seedPcs_.begin(), seedPcs_.end(), pc);
}

bool
FetchSync::divergentPcMatch(Addr pc) const
{
    return std::binary_search(divergentPcs_.begin(), divergentPcs_.end(),
                              pc);
}

int
FetchSync::allocGroup(ThreadMask members, Addr pc)
{
    for (int id = 0; id < numGroups(); ++id) {
        if (!groups_[id].alive) {
            groups_[id] = FetchGroup{members, pc, true, -1, 0};
            return id;
        }
    }
    groups_.push_back(FetchGroup{members, pc, true, -1, 0});
    return numGroups() - 1;
}

std::vector<int>
FetchSync::fetchOrder(const std::vector<int> &icount) const
{
    std::vector<int> ids;
    fetchOrder(icount, ids);
    return ids;
}

void
FetchSync::fetchOrder(const std::vector<int> &icount,
                      std::vector<int> &ids) const
{
    ids.clear();
    for (int id = 0; id < numGroups(); ++id) {
        if (groups_[id].alive)
            ids.push_back(id);
    }
    auto rank = [&](int id) {
        if (!catchupPriority_)
            return 1; // ablation: plain ICOUNT ordering
        const FetchGroup &g = groups_[id];
        if (g.catchupAhead != -1)
            return 0; // behind thread: top priority (paper §4.1)
        if (g.chasedBy > 0)
            return 2; // ahead thread: lowest priority
        return 1;
    };
    auto before = [&](int a, int b) {
        int ra = rank(a), rb = rank(b);
        if (ra != rb)
            return ra < rb;
        // ICOUNT within a rank: fewest in-flight instructions first.
        return icount[a] < icount[b];
    };
    // Stable insertion sort: at most maxThreads groups, and this runs
    // every cycle — std::stable_sort's temp buffer would allocate.
    for (std::size_t i = 1; i < ids.size(); ++i) {
        int v = ids[i];
        std::size_t j = i;
        while (j > 0 && before(v, ids[j - 1])) {
            ids[j] = ids[j - 1];
            --j;
        }
        ids[j] = v;
    }
}

int
FetchSync::threadGroup(ThreadId tid) const
{
    for (int id = 0; id < numGroups(); ++id) {
        if (groups_[id].alive && groups_[id].members.contains(tid))
            return id;
    }
    return -1;
}

FetchMode
FetchSync::classify(int gid) const
{
    const FetchGroup &g = groups_[gid];
    if (g.members.count() > 1)
        return FetchMode::Merge;
    if (g.catchupAhead != -1 || g.chasedBy > 0)
        return FetchMode::Catchup;
    return FetchMode::Detect;
}

bool
FetchSync::fullyMerged(int gid) const
{
    return groups_[gid].members.count() == liveThreads();
}

int
FetchSync::liveThreads() const
{
    int n = 0;
    for (const FetchGroup &g : groups_) {
        if (g.alive)
            n += g.members.count();
    }
    return n;
}

void
FetchSync::leaveCatchup(int gid, bool aborted)
{
    FetchGroup &g = groups_[gid];
    if (g.catchupAhead == -1)
        return;
    FetchGroup &ahead = groups_[g.catchupAhead];
    mmt_assert(ahead.chasedBy > 0, "catchup bookkeeping broken");
    --ahead.chasedBy;
    g.catchupAhead = -1;
    if (aborted)
        ++catchupAborted;
}

std::vector<int>
FetchSync::onDivergence(int gid,
    const std::vector<std::pair<ThreadMask, Addr>> &splits)
{
    mmt_assert(splits.size() >= 2, "divergence needs >= 2 outcomes");
    FetchGroup &g = groups_[gid];
    ++divergences;

    // Stamp divergence start for the remerge-distance statistic.
    g.members.forEach([&](ThreadId t) {
        if (!divergePending_[t]) {
            divergePending_[t] = true;
            divergeStamp_[t] = branchesFetched_[t];
            divergeCycle_[t] = now_;
        }
    });

    leaveCatchup(gid, false);
    std::vector<int> out;
    for (std::size_t i = 0; i < splits.size(); ++i) {
        mmt_assert(!splits[i].first.empty(), "empty divergence split");
        if (i == 0) {
            g.members = splits[i].first;
            g.pc = splits[i].second;
            out.push_back(gid);
        } else {
            out.push_back(allocGroup(splits[i].first, splits[i].second));
        }
    }
    return out;
}

void
FetchSync::onTakenBranch(int gid, Addr target)
{
    if (!sharedFetch_)
        return;
    FetchGroup &g = groups_[gid];
    if (fullyMerged(gid))
        return; // MERGE mode: the FHB is not accessed (paper §6.2)

    // Record the target into every member thread's history.
    g.members.forEach([&](ThreadId t) { fhbs_[t]->record(target); });

    if (g.catchupAhead != -1) {
        // CATCHUP: verify we are still on the ahead group's path. A
        // branch into a statically-divergent arm is the chaser walking
        // its own side of a hammock the ahead group also crossed —
        // transiently off-path, not a false positive.
        bool on_path = seedEnabled_ && divergentPcMatch(target);
        groups_[g.catchupAhead].members.forEach([&](ThreadId t) {
            if (fhbs_[t]->contains(target))
                on_path = true;
        });
        if (!on_path)
            leaveCatchup(gid, true);
        return;
    }

    // DETECT: search all other live groups' *recorded* histories (a
    // real-history hit means that group already passed the target, so
    // we are behind it).
    for (int other = 0; other < numGroups(); ++other) {
        if (other == gid || !groups_[other].alive)
            continue;
        bool hit = false;
        groups_[other].members.forEach([&](ThreadId t) {
            if (fhbs_[t]->containsHistory(target))
                hit = true;
        });
        if (hit) {
            g.catchupAhead = other;
            ++groups_[other].chasedBy;
            ++catchupEntered;
            return;
        }
    }

    // Seeded transition: a branch into an analyzer re-convergence point
    // with no history hit means this group is the first known arrival at
    // the static meeting point. Instead of waiting for the others to
    // build matching taken-branch history, boost every free group to
    // catch up to this one (the arriver is starved, the others race;
    // tryMerge() completes the re-merge on PC coincidence).
    if (seedEnabled_ && seedPcMatch(target)) {
        for (int other = 0; other < numGroups(); ++other) {
            if (other == gid || !groups_[other].alive)
                continue;
            FetchGroup &h = groups_[other];
            if (h.catchupAhead != -1)
                continue; // already chasing someone
            h.catchupAhead = gid;
            ++g.chasedBy;
            ++catchupEntered;
        }
    }
}

bool
FetchSync::tryMerge()
{
    if (!sharedFetch_)
        return false;
    bool any = false;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int a = 0; a < numGroups() && !changed; ++a) {
            if (!groups_[a].alive)
                continue;
            for (int b = a + 1; b < numGroups() && !changed; ++b) {
                if (!groups_[b].alive || groups_[a].pc != groups_[b].pc)
                    continue;
                // Merge b into a.
                leaveCatchup(a, false);
                leaveCatchup(b, false);
                // Redirect anyone chasing b to chase a.
                for (int c = 0; c < numGroups(); ++c) {
                    if (groups_[c].alive && groups_[c].catchupAhead == b) {
                        groups_[c].catchupAhead = a;
                        --groups_[b].chasedBy;
                        ++groups_[a].chasedBy;
                    }
                }
                ThreadMask joined = groups_[a].members | groups_[b].members;
                groups_[a].members = joined;
                groups_[b].alive = false;
                mmt_assert(groups_[b].chasedBy == 0,
                           "dead group still chased");
                ++remerges;
                joined.forEach([&](ThreadId t) {
                    fhbs_[t]->clear();
                    if (divergePending_[t]) {
                        remergeDistance.sample(branchesFetched_[t] -
                                               divergeStamp_[t]);
                        syncLatencyCycles += now_ - divergeCycle_[t];
                        ++syncLatencySamples;
                        divergePending_[t] = false;
                    }
                });
                changed = true;
                any = true;
            }
        }
    }
    return any;
}

void
FetchSync::removeThread(ThreadId tid)
{
    int gid = threadGroup(tid);
    if (gid == -1)
        return;
    FetchGroup &g = groups_[gid];
    g.members.clear(tid);
    if (g.members.empty()) {
        leaveCatchup(gid, false);
        // Anyone chasing this group falls back to DETECT.
        for (int c = 0; c < numGroups(); ++c) {
            if (groups_[c].alive && groups_[c].catchupAhead == gid)
                leaveCatchup(c, true);
        }
        g.alive = false;
        mmt_assert(g.chasedBy == 0, "dead group still chased");
    }
}

} // namespace mmt
