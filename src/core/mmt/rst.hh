/**
 * @file
 * Register Sharing Table (paper §4.2.1).
 *
 * One entry per architected register; each entry holds one bit per
 * unordered thread pair (6 bits for 4 threads). Bit (a,b) of entry R is 1
 * when threads a and b have identical architecture-to-physical mappings
 * for R — which, by construction of the renaming scheme, implies the
 * register values are identical.
 *
 * We additionally record *provenance*: whether a bit was last set by the
 * commit-time register-merging hardware (§4.2.7) rather than by renaming.
 * This distinguishes the paper's "Exe-Identical+RegMerge" instruction
 * category in Figure 5(b).
 */

#ifndef MMT_CORE_MMT_RST_HH
#define MMT_CORE_MMT_RST_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/thread_mask.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace mmt
{

/** The Register Sharing Table. */
class RegisterSharingTable
{
  public:
    RegisterSharingTable();

    /** Mark all registers shared among all threads (ME program start). */
    void setAllShared();

    /** Is register @p reg shared between threads @p a and @p b? */
    bool shared(RegIndex reg, ThreadId a, ThreadId b) const;

    /** Was the sharing bit for (@p a, @p b) last set by register merging? */
    bool setByMerge(RegIndex reg, ThreadId a, ThreadId b) const;

    /**
     * The maximal subset of @p candidates all of whose members share
     * register @p reg pairwise (sharing is an equivalence; the subset
     * containing @p candidates.leader() is returned).
     */
    ThreadMask sharedGroup(RegIndex reg, ThreadMask candidates) const;

    /**
     * True if every pair of threads within @p group shares @p reg.
     * Registers index -1 (unused operand) vacuously share.
     */
    bool groupShares(RegIndex reg, ThreadMask group) const;

    /**
     * Destination-register update (paper §4.2.3): for every thread pair
     * with at least one member in @p fetch_itid, set the bit to 1 when
     * both members ended up in the same split instance, else 0.
     *
     * @param reg the destination architected register
     * @param fetch_itid ITID of the original fetched instruction
     * @param same_instance callable (ThreadId, ThreadId) -> bool telling
     *        whether both threads landed in one resulting instance
     */
    template <typename SameInstanceFn>
    void
    updateDest(RegIndex reg, ThreadMask fetch_itid,
               SameInstanceFn &&same_instance)
    {
        ++updates;
        for (int p = 0; p < maxThreadPairs; ++p) {
            auto [a, b] = ThreadMask::pairThreads(p);
            if (!fetch_itid.contains(a) && !fetch_itid.contains(b))
                continue;
            bool sh = fetch_itid.contains(a) && fetch_itid.contains(b) &&
                      same_instance(a, b);
            setBit(reg, p, sh, /*by_merge=*/false);
        }
    }

    /** Clear all sharing bits involving thread @p tid for register @p reg
     *  (divergent-path write, §4.2.6 case 1). */
    void clearThread(RegIndex reg, ThreadId tid);

    /** Register-merging hardware found equal values: set bit (a,b). */
    void mergeSet(RegIndex reg, ThreadId a, ThreadId b);

    /** Lookup counting for the energy model (one per decoded source). */
    Counter lookups;
    Counter updates;
    Counter mergeSets;

  private:
    void setBit(RegIndex reg, int pair, bool value, bool by_merge);

    struct Entry
    {
        std::uint8_t bits = 0;      // 6 pair bits
        std::uint8_t mergeProv = 0; // provenance: set-by-merge flags
    };
    std::array<Entry, numArchRegs> entries_;
};

} // namespace mmt

#endif // MMT_CORE_MMT_RST_HH
