#include "core/mmt/lvip.hh"

#include "common/logging.hh"
#include "isa/isa.hh"

namespace mmt
{

LoadValuesIdenticalPredictor::LoadValuesIdenticalPredictor(int entries)
    : table_(static_cast<std::size_t>(entries))
{
    mmt_assert(entries > 0, "LVIP needs at least one entry");
}

std::size_t
LoadValuesIdenticalPredictor::index(Addr pc) const
{
    return static_cast<std::size_t>(pc / instBytes) % table_.size();
}

bool
LoadValuesIdenticalPredictor::predictIdentical(Addr pc)
{
    ++accesses;
    const Entry &e = table_[index(pc)];
    // Predict identical unless this PC is a known mispredictor.
    return !(e.valid && e.pc == pc);
}

void
LoadValuesIdenticalPredictor::recordMispredict(Addr pc)
{
    ++mispredicts;
    Entry &e = table_[index(pc)];
    e.valid = true;
    e.pc = pc;
}

} // namespace mmt
