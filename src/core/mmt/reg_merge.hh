/**
 * @file
 * Commit-time register merging (paper §4.2.7).
 *
 * Two instructions on divergent paths may write the *same value* to the
 * *same architected register* in *different physical registers*; the RST
 * would then (correctly, structurally) say "not shared" forever, starving
 * the execute-merging logic. The fix: when an instruction fetched in
 * DETECT or CATCHUP mode commits and its architected mapping is still
 * valid, compare its result — spare register-file read ports permitting —
 * against the value the *other* threads' RATs map for the same
 * architected register (but only threads with no in-flight writer of that
 * register). On a match, set the RST bit back to shared.
 */

#ifndef MMT_CORE_MMT_REG_MERGE_HH
#define MMT_CORE_MMT_REG_MERGE_HH

#include <array>

#include "common/stats.hh"
#include "common/thread_mask.hh"
#include "core/mmt/rst.hh"
#include "core/rename.hh"

namespace mmt
{

struct DynInst;

/** The register-merging hardware. */
class RegMergeUnit
{
  public:
    /**
     * @param rename the core's rename unit (read-only RAT/PRF access;
     *        models the paper's shadow copy of the mapping table)
     * @param rst the Register Sharing Table to update
     * @param read_ports spare register-file read ports per cycle
     */
    RegMergeUnit(RenameUnit *rename, RegisterSharingTable *rst,
                 int read_ports, int num_threads);

    /** An instance writing @p reg for threads @p itid entered the
     *  pipeline: bump the in-flight writer counts. */
    void onDispatchWrite(ThreadMask itid, RegIndex reg);

    /** Matching decrement at commit (or squash). */
    void onCommitWrite(ThreadMask itid, RegIndex reg);

    /** True if thread @p tid has no in-flight writer of @p reg (the
     *  paper's per-register "register state" bit vector). */
    bool noActiveWriter(ThreadId tid, RegIndex reg) const;

    /** Start a new cycle: replenish the read-port budget. */
    void beginCycle();

    /**
     * Attempt the merge comparison for a committing instance.
     * Preconditions checked inside: instance was fetched in DETECT or
     * CATCHUP mode, writes a register, and its mapping is still valid.
     *
     * @param inst the committing instance
     * @param live_threads threads still running
     * @return number of RST bits set
     */
    int tryMerge(const DynInst &inst, ThreadMask live_threads);

    Counter compares;     // register-file reads spent on merging
    Counter merges;       // successful RST bit sets
    Counter portStarved;  // comparisons skipped for lack of ports

  private:
    RenameUnit *rename_;
    RegisterSharingTable *rst_;
    int readPorts_;
    int numThreads_;
    int portsLeft_ = 0;
    /** In-flight writer counts per (thread, architected register). */
    std::array<std::array<int, numArchRegs>, maxThreads> writers_{};
};

} // namespace mmt

#endif // MMT_CORE_MMT_REG_MERGE_HH
