#include "core/mmt/splitter.hh"

namespace mmt
{

std::vector<SplitInstance>
InstructionSplitter::split(const Instruction &inst, ThreadMask fetch_itid)
{
    std::array<SplitInstance, maxThreads> parts;
    int n = split(inst, fetch_itid, parts);
    return std::vector<SplitInstance>(parts.begin(), parts.begin() + n);
}

int
InstructionSplitter::split(const Instruction &inst, ThreadMask fetch_itid,
                           std::array<SplitInstance, maxThreads> &out)
{
    ++invocations;
    ++rst_->lookups;
    int n = 0;
    if (fetch_itid.count() <= 1) {
        out[n++] = {fetch_itid, false};
        return n;
    }

    const InstInfo &info = inst.info();
    RegIndex srcs[2] = {info.readsSrc1 ? inst.rs1 : -1,
                        info.readsSrc2 ? inst.rs2 : -1};

    ThreadMask remaining = fetch_itid;
    while (!remaining.empty()) {
        // Chooser: the largest subset of `remaining` containing its leader
        // whose members pairwise share every source register. Sharing is
        // an equivalence, so intersecting the per-source shared groups of
        // the leader yields exactly that subset.
        ThreadMask group = remaining;
        for (RegIndex s : srcs) {
            if (s >= 0)
                group = group & rst_->sharedGroup(s, remaining);
        }
        if (group.empty())
            group = ThreadMask::single(remaining.leader());

        // Stats provenance: merged only because register-merging hardware
        // restored at least one governing pair bit?
        bool via_merge = false;
        if (group.count() > 1) {
            for (RegIndex s : srcs) {
                if (s < 0)
                    continue;
                group.forEach([&](ThreadId a) {
                    group.forEach([&](ThreadId b) {
                        if (a < b && rst_->setByMerge(s, a, b))
                            via_merge = true;
                    });
                });
            }
        }

        out[n++] = {group, via_merge};
        remaining = remaining.minus(group);
    }

    splitsProduced += static_cast<std::uint64_t>(n - 1);
    return n;
}

} // namespace mmt
