/**
 * @file
 * Fetch History Buffer (paper §4.1, Figure 3(b)).
 *
 * One FHB per hardware thread: a small circular CAM recording the target
 * PCs of recently fetched taken branches. While a thread is in DETECT or
 * CATCHUP mode, every taken branch records its target here and searches
 * the other threads' FHBs; a hit means the threads' paths may have
 * remerged and triggers CATCHUP mode. Table 3 sizes it at 32 entries
 * (Section 6.4 sweeps 8..128).
 */

#ifndef MMT_CORE_MMT_FHB_HH
#define MMT_CORE_MMT_FHB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mmt
{

/** Circular CAM of taken-branch target PCs. */
class FetchHistoryBuffer
{
  public:
    explicit FetchHistoryBuffer(int entries);

    /** Record a taken-branch target (evicting the oldest when full). */
    void record(Addr target_pc);

    /** CAM search over history *and* seeds: is @p pc among the recorded
     *  or seeded targets? Counts stats. */
    bool contains(Addr pc);

    /** CAM search over recorded taken-branch history only (ignores
     *  seeds). Counts stats like contains(). */
    bool containsHistory(Addr pc);

    /** Discard recorded history (on remerge). Seeds persist: they are
     *  static program facts, not dynamic state. */
    void clear();

    /**
     * Install analyzer-provided re-convergence targets (sorted). Seeds
     * behave like permanent CAM entries for contains() but are never
     * evicted and survive clear(); they occupy no ring capacity (the
     * modeled hardware holds them in a separate read-only table).
     */
    void seed(const std::vector<Addr> &targets);

    int capacity() const { return capacity_; }
    int size() const { return static_cast<int>(valid_); }
    int seedCount() const { return static_cast<int>(seeds_.size()); }

    Counter searches;
    Counter hits;
    Counter records;

  private:
    bool seedMatch(Addr pc) const;

    int capacity_;
    std::vector<Addr> ring_;
    std::vector<Addr> seeds_; // sorted analyzer re-convergence targets
    std::size_t next_ = 0;
    std::size_t valid_ = 0;
};

} // namespace mmt

#endif // MMT_CORE_MMT_FHB_HH
