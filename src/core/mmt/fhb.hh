/**
 * @file
 * Fetch History Buffer (paper §4.1, Figure 3(b)).
 *
 * One FHB per hardware thread: a small circular CAM recording the target
 * PCs of recently fetched taken branches. While a thread is in DETECT or
 * CATCHUP mode, every taken branch records its target here and searches
 * the other threads' FHBs; a hit means the threads' paths may have
 * remerged and triggers CATCHUP mode. Table 3 sizes it at 32 entries
 * (Section 6.4 sweeps 8..128).
 */

#ifndef MMT_CORE_MMT_FHB_HH
#define MMT_CORE_MMT_FHB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mmt
{

/** Circular CAM of taken-branch target PCs. */
class FetchHistoryBuffer
{
  public:
    explicit FetchHistoryBuffer(int entries);

    /** Record a taken-branch target (evicting the oldest when full). */
    void record(Addr target_pc);

    /** CAM search: is @p pc among the recorded targets? Counts stats. */
    bool contains(Addr pc);

    /** Discard all history (on remerge). */
    void clear();

    int capacity() const { return capacity_; }
    int size() const { return static_cast<int>(valid_); }

    Counter searches;
    Counter hits;
    Counter records;

  private:
    int capacity_;
    std::vector<Addr> ring_;
    std::size_t next_ = 0;
    std::size_t valid_ = 0;
};

} // namespace mmt

#endif // MMT_CORE_MMT_FHB_HH
