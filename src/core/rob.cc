#include "core/rob.hh"

#include "common/logging.hh"

namespace mmt
{

ReorderBuffer::ReorderBuffer(int capacity, int num_threads)
    : cap_(capacity), numThreads_(num_threads)
{
}

void
ReorderBuffer::insert(DynInst *inst)
{
    mmt_assert(!full(), "ROB overflow");
    ++occupied_;
    ++writes;
    inst->itid.forEach([&](ThreadId t) {
        mmt_assert(t < numThreads_, "bad thread in ITID");
        queues_[t].push_back(inst);
    });
}

DynInst *
ReorderBuffer::head(ThreadId tid) const
{
    return queues_[tid].empty() ? nullptr : queues_[tid].front();
}

bool
ReorderBuffer::committable(const DynInst *inst) const
{
    bool ok = true;
    inst->itid.forEach([&](ThreadId t) {
        if (queues_[t].empty() || queues_[t].front() != inst)
            ok = false;
    });
    return ok;
}

void
ReorderBuffer::commit(DynInst *inst)
{
    mmt_assert(committable(inst), "commit of non-head instance");
    inst->itid.forEach([&](ThreadId t) { queues_[t].pop_front(); });
    --occupied_;
}

} // namespace mmt
