/**
 * @file
 * Load/store queue model (paper §4.2.5): shared 64-entry capacity
 * (Table 4) and a per-cycle load/store port budget (Figure 7(b) sweeps
 * 2..12 ports).
 *
 * MMT behaviour implemented by the core around this tracker:
 *  - MT workloads share memory, so an execute-identical load or store is
 *    a single access ("No Change" in Table 2);
 *  - ME workloads split every merged load and store into per-instance
 *    serial accesses; merged loads additionally verify the LVIP
 *    prediction against the loaded values.
 */

#ifndef MMT_CORE_LSQ_HH
#define MMT_CORE_LSQ_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace mmt
{

/** Capacity and port accounting for the LSQ. */
class LoadStoreQueue
{
  public:
    LoadStoreQueue(int capacity, int ports);

    bool full() const { return occupied_ >= cap_; }
    int occupancy() const { return occupied_; }

    /** Dispatch-time allocation of one entry per instance. */
    void allocate();
    /** Commit-time (or post-writeback) release. */
    void release();

    /** Start a new cycle: replenish ports. */
    void beginCycle();

    /** True if @p n cache-access ports remain this cycle. */
    bool portsAvailable(int n) const { return portsLeft_ >= n; }

    /** Cache-access ports remaining this cycle. */
    int portsLeft() const { return portsLeft_; }

    /** Consume @p n ports. */
    void claimPorts(int n);

    Counter accesses; // cache accesses performed (energy)

  private:
    int cap_;
    int ports_;
    int occupied_ = 0;
    int portsLeft_ = 0;
};

} // namespace mmt

#endif // MMT_CORE_LSQ_HH
