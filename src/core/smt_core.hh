/**
 * @file
 * SmtCore — the cycle-stepped out-of-order SMT pipeline with the MMT
 * extensions (shared fetch, instruction splitting/merging, LVIP, register
 * merging).
 *
 * Methodology (DESIGN.md §3): instructions execute *functionally* at
 * fetch, in per-thread program order — the sim-outorder style used by
 * the toolset the paper built on. The timing model tracks structure
 * occupancy, dependences through physical-register ready bits, FU and
 * cache-port contention and cache latencies. Mispredicted branches and
 * divergences stall the affected threads' fetch until the branch
 * resolves; LVIP mispredictions charge a rollback penalty. No wrong-path
 * instructions are simulated.
 *
 * Per-cycle stage order (reverse pipeline order so results propagate with
 * one-cycle latency): commit, complete, issue, dispatch, fetch.
 */

#ifndef MMT_CORE_SMT_CORE_HH
#define MMT_CORE_SMT_CORE_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "branch/branch_predictor.hh"
#include "common/arena.hh"
#include "common/event_wheel.hh"
#include "common/stats.hh"
#include "core/dyn_inst.hh"
#include "core/func_units.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/mmt/fetch_sync.hh"
#include "core/msg_net.hh"
#include "core/mmt/lvip.hh"
#include "core/mmt/reg_merge.hh"
#include "core/mmt/rst.hh"
#include "core/mmt/splitter.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "iasm/program.hh"
#include "isa/exec.hh"
#include "mem/memory_image.hh"
#include "mem/memory_system.hh"
#include "mem/trace_cache.hh"

namespace mmt
{

/** Per-thread architectural state, advanced functionally at fetch. */
struct ThreadState
{
    std::array<RegVal, numArchRegs> regs{};
    MemoryImage *image = nullptr;
    AddressSpaceId asid = 0;

    bool halted = false;
    bool atBarrier = false;

    /** Values emitted by the OUT instruction (test observable). */
    std::vector<RegVal> output;

    /** Fetch-stall machinery (branch resolution / LVIP rollback). */
    Cycles fetchStallUntil = 0;
    int resolveToken = -1;
    /** Waiting at a software re-merge hint until this cycle (0: none). */
    Cycles hintWaitUntil = 0;
    /** PC the hint wait resumes at (diagnostics; cleared with the wait). */
    Addr hintPc = 0;
    /** Fetch-group size when the hint wait began: the wait ends early
     *  only when membership *grows* past this (a merge arrived). */
    int hintWaitMembers = 0;
    Addr lastFetchLine = ~Addr(0);

    std::uint64_t fetchedInsts = 0;
    std::uint64_t committedInsts = 0;
};

/** Instruction classification for the paper's Figure 5(b). */
enum class IdentClass
{
    NotIdentical,
    FetchIdentical,
    ExecIdentical,
    ExecIdenticalRegMerge,
    NumClasses,
};

/** The simulated core. */
class SmtCore
{
  public:
    /**
     * @param params configuration (Table 4/5)
     * @param program the shared binary all threads execute
     * @param images per-thread functional memory; MT workloads pass the
     *        same pointer for every thread, ME workloads distinct ones
     */
    SmtCore(const CoreParams &params, const Program *program,
            const std::vector<MemoryImage *> &images);
    ~SmtCore();

    /** Run to completion (all threads halted, pipeline drained). */
    void run();

    /** Advance one cycle. */
    void tick();

    bool done() const;
    Cycles now() const { return now_; }

    const CoreParams &params() const { return params_; }
    const ThreadState &thread(ThreadId tid) const { return threads_[tid]; }

    /** Global context id of hardware thread @p tid (CMP placement;
     *  identity on a single core). */
    ThreadId contextId(ThreadId tid) const
    {
        return params_.contextIds.empty()
                   ? tid
                   : params_.contextIds[static_cast<std::size_t>(tid)];
    }

    /** Cycle of the most recent commit (system deadlock watchdog). */
    Cycles lastCommitCycle() const { return lastCommitCycle_; }

    /** Per-thread fetch-stall state rendered for a deadlock panic. */
    std::string stallDiagnostics() const;

    /**
     * Barrier coordination hand-off: when set, the core never releases
     * its own BARRIER waits — the system scheduler (sim/cmp.hh) releases
     * them once every live thread of *every* core has arrived, matching
     * the functional model's global barrier.
     */
    void setExternalBarrier(bool external) { externalBarrier_ = external; }

    /** Live (non-halted) threads of this core. */
    int liveThreadCount() const;

    /** Live threads currently waiting at a BARRIER. */
    int threadsAtBarrier() const;

    /** Release every thread waiting at a BARRIER (external mode). */
    void releaseBarrier();

    /** Attach a message network (required to execute SEND/RECV). */
    void setMessageNetwork(MessageNetwork *net) { msgNet_ = net; }
    MessageNetwork *messageNetwork() { return msgNet_; }

    /** Per-retirement observer: called with every committed instance and
     *  the commit cycle (pipetrace-style debugging; see
     *  examples/pipeline_trace.cc). */
    using CommitHook = std::function<void(const DynInst &, Cycles)>;
    void setCommitHook(CommitHook hook) { commitHook_ = std::move(hook); }

    /** Record per-member memory values (DynInst::memVal/memOld) during
     *  functional execution — the raw material of the dynamic race
     *  oracle's trace. Off by default: the extra pre-store read is not
     *  free and the values are unused otherwise. */
    void setCaptureMemTrace(bool on) { captureMemTrace_ = on; }

    // Component access for the energy model and tests.
    MemorySystem &memSys() { return memSys_; }
    TraceCache &traceCache() { return traceCache_; }
    BranchPredictor &bpred() { return bpred_; }
    FetchSync &fetchSync() { return sync_; }
    RegisterSharingTable &rst() { return rst_; }
    InstructionSplitter &splitter() { return splitter_; }
    LoadValuesIdenticalPredictor &lvip() { return lvip_; }
    RegMergeUnit &regMergeUnit() { return regMerge_; }
    RenameUnit &renameUnit() { return rename_; }
    IssueQueue &issueQueue() { return iq_; }
    ReorderBuffer &rob() { return rob_; }
    LoadStoreQueue &lsq() { return lsqUnit_; }
    FuncUnitPool &funcUnits() { return fus_; }

    /**
     * Register every counter of the core and its components with
     * @p group under dotted names ("fetch.records", "mmt.rst.lookups",
     * ...), each prefixed with @p prefix ("" for the single-core dump
     * the goldens pin, "core0." under a CMP). The group holds pointers;
     * it must not outlive the core.
     */
    void registerStats(StatGroup &group, const std::string &prefix = "");

    /** Render all registered statistics as text (gem5-style dump). */
    std::string dumpStats();

    /** Render all registered statistics as a JSON object. */
    std::string dumpStatsJson();

    /** Aggregate statistics. */
    struct Stats
    {
        Counter fetchRecords;      // fetch-slot consuming fetches
        Counter fetchedThreadInsts;
        /** Thread-instructions fetched per mode, indexed by FetchMode. */
        std::array<Counter, 3> fetchedInMode;
        Counter fetchStreamCycles; // stream-cycles (L1I access count)
        Counter committedInstances;
        Counter committedThreadInsts;
        /** Committed thread-instructions by Figure 5(b) category. */
        std::array<Counter, static_cast<std::size_t>(
                                IdentClass::NumClasses)> identClass;
        Counter branchMispredicts;
        Counter lvipRollbacks;
        Counter hintWaits;      // groups that paused at a MERGEHINT
        Counter hintMerges;     // hint waits that ended in a merge
        Counter loads;
        Counter stores;
        /** Aggregate per-stage residency of committed instances
         *  (cycles; divide by committedInstances for averages). */
        Counter waitDispatch;
        Counter waitIssue;
        Counter waitExec;
        Counter waitCommit;
    } stats;

  private:
    // Stage functions (fetch-related ones live in fetch.cc).
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    int fetchFromGroup(int gid, int budget);

    /**
     * Fetch, functionally execute, split and rename one instruction for
     * group @p gid.
     * @param tc_hit trace-cache hit: may cross taken branches
     * @param branches_crossed in/out taken branches crossed this cycle
     * @return -1 stream stops without a fetch, 0 fetched and stream
     *         stops, 1 fetched and stream may continue
     */
    int fetchRecord(int gid, bool tc_hit, int &branches_crossed);

    /**
     * Fetch-width slots one record at @p pc occupies for a group of
     * @p members threads: 1, or the statically predicted sub-instruction
     * count (capped at the member count) under the split-steer hint.
     */
    int fetchSlotCharge(Addr pc, int members);

    /** Create, rename and enqueue the split instances of one record.
     *  @return the number of instances created */
    int makeInstances(const Instruction &inst, Addr pc, ThreadMask itid,
                      FetchMode mode,
                      const std::array<RegVal, maxThreads> &dest_vals,
                      const std::array<RegVal, maxThreads> &src_a,
                      const std::array<RegVal, maxThreads> &src_b,
                      const std::array<Addr, maxThreads> &eff_addrs,
                      const std::array<RegVal, maxThreads> &mem_vals,
                      const std::array<RegVal, maxThreads> &mem_olds,
                      const std::array<BranchOut, maxThreads> &bouts,
                      int resolve_token);

    void onInstanceComplete(DynInst *inst);
    void commitOne(DynInst *inst);

    bool groupCanFetch(int gid) const;
    void haltThread(ThreadId tid);
    /** Drop any pending MERGEHINT wait (squash/redirect/barrier paths:
     *  the wait must not outlive the control flow that started it). */
    static void clearHintWait(ThreadState &ts);
    void releaseBarrierIfReady();
    ThreadMask liveMask() const;

    /** Soundness checks (params.checkInvariants). */
    void checkMergedValues(const DynInst &inst,
        const std::array<RegVal, maxThreads> &dest_vals) const;

    CoreParams params_;
    const Program *program_;
    MessageNetwork *msgNet_ = nullptr;

    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 1;

    std::array<ThreadState, maxThreads> threads_;

    MemorySystem memSys_;
    TraceCache traceCache_;
    BranchPredictor bpred_;

    FetchSync sync_;
    RegisterSharingTable rst_;
    InstructionSplitter splitter_;
    LoadValuesIdenticalPredictor lvip_;
    RenameUnit rename_;
    RegMergeUnit regMerge_;

    ReorderBuffer rob_;
    IssueQueue iq_;
    LoadStoreQueue lsqUnit_;
    FuncUnitPool fus_;

    /**
     * Pool owning every in-flight DynInst. Instances are created at
     * fetch, recycled when they leave the window after commit (or by the
     * destructor mid-flight); steady-state simulation touches no heap.
     */
    Arena<DynInst> instArena_;
    /** Fetched-but-not-dispatched instances, in fetch order. */
    BoundedRing<DynInst *> fetchQueue_;
    /**
     * Issued instances keyed by completion cycle. The completion stage
     * pops exactly the instances due at `now` (in issue order) instead
     * of scanning everything in flight.
     */
    EventWheel<DynInst *> completion_;
    /** All in-flight instances, in seq order (handles into the arena). */
    BoundedRing<DynInst *> window_;

    /** Branch-resolution tokens: remaining instance count per token. */
    std::vector<int> resolveRemaining_;
    /** Token ids whose count hit zero, ready for reuse. */
    std::vector<int> freeTokens_;

    // Per-cycle scratch buffers, members so their capacity persists
    // across cycles (no steady-state allocation in the stages).
    std::vector<DynInst *> issueScratch_;
    std::vector<int> icountScratch_;
    std::vector<int> fetchOrderScratch_;

    CommitHook commitHook_;

    Cycles lastCommitCycle_ = 0;
    bool externalBarrier_ = false;
    bool captureMemTrace_ = false;
};

} // namespace mmt

#endif // MMT_CORE_SMT_CORE_HH
