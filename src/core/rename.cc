#include "core/rename.hh"

#include "common/logging.hh"

namespace mmt
{

PhysReg
PhysRegFile::alloc(RegVal value, bool ready)
{
    regs_.push_back({value, ready});
    return static_cast<PhysReg>(regs_.size() - 1);
}

void
RenameUnit::init(int num_threads,
                 const std::array<RegVal, numArchRegs> &init_regs,
                 bool private_sp, bool private_tid,
                 const std::vector<std::pair<RegVal, RegVal>> &sp_tid_values)
{
    mmt_assert(static_cast<int>(sp_tid_values.size()) >= num_threads,
               "missing per-thread sp/tid values");
    // Shared initial mappings: one physical register per architected
    // register, recorded in every thread's RAT.
    std::array<PhysReg, numArchRegs> shared;
    for (RegIndex r = 0; r < numArchRegs; ++r)
        shared[r] = prf_.alloc(init_regs[r], true);
    for (ThreadId t = 0; t < num_threads; ++t) {
        for (RegIndex r = 0; r < numArchRegs; ++r)
            rat_[t][r] = shared[r];
        if (private_sp)
            rat_[t][regSp] = prf_.alloc(sp_tid_values[t].first, true);
        if (private_tid)
            rat_[t][regTid] = prf_.alloc(sp_tid_values[t].second, true);
    }
}

bool
RenameUnit::mappingsEqual(RegIndex reg, ThreadMask group) const
{
    if (reg < 0 || group.count() <= 1)
        return true;
    PhysReg first = rat_[group.leader()][reg];
    bool equal = true;
    group.forEach([&](ThreadId t) {
        if (rat_[t][reg] != first)
            equal = false;
    });
    return equal;
}

} // namespace mmt
