/**
 * @file
 * MessageNetwork — per-pair FIFO channels backing the SEND/RECV
 * extension (message-passing SPMD workloads, the application class the
 * paper names as future work in §7).
 *
 * Channels are unbounded; sends never block, receives block until a
 * message is available. Values are deterministic regardless of timing:
 * each (sender, receiver) channel preserves the sender's program order,
 * and each receiver drains its channels in its own program order.
 */

#ifndef MMT_CORE_MSG_NET_HH
#define MMT_CORE_MSG_NET_HH

#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace mmt
{

/** FIFO channels between every ordered pair of contexts. */
class MessageNetwork
{
  public:
    /** Enqueue @p value on the (from, to) channel. */
    void
    send(ThreadId from, ThreadId to, RegVal value)
    {
        channel(from, to).push_back(value);
        ++sends;
    }

    /** True if a RECV from @p from by @p to would not block. */
    bool
    canRecv(ThreadId from, ThreadId to) const
    {
        return !channels_[index(from, to)].empty();
    }

    /** Dequeue the next message on the (from, to) channel. */
    RegVal
    recv(ThreadId from, ThreadId to)
    {
        auto &q = channel(from, to);
        RegVal v = q.front();
        q.pop_front();
        ++recvs;
        return v;
    }

    /** Messages currently in flight (for drained-at-exit checks). */
    std::size_t
    pending() const
    {
        std::size_t n = 0;
        for (const auto &q : channels_)
            n += q.size();
        return n;
    }

    Counter sends;
    Counter recvs;

  private:
    static std::size_t
    index(ThreadId from, ThreadId to)
    {
        return static_cast<std::size_t>(from) * maxThreads +
               static_cast<std::size_t>(to);
    }

    std::deque<RegVal> &
    channel(ThreadId from, ThreadId to)
    {
        return channels_[index(from, to)];
    }

    std::deque<RegVal> channels_[maxThreads * maxThreads];
};

} // namespace mmt

#endif // MMT_CORE_MSG_NET_HH
