#include "energy/energy_model.hh"

#include <sstream>

#include "core/smt_core.hh"

namespace mmt
{

double
EnergyBreakdown::overheadFraction() const
{
    double t = total();
    return t > 0.0 ? overhead / t : 0.0;
}

std::string
EnergyBreakdown::toString() const
{
    std::ostringstream os;
    os << "cache=" << cache << "pJ overhead=" << overhead
       << "pJ other=" << other << "pJ total=" << total() << "pJ";
    return os.str();
}

EnergyBreakdown
computeEnergy(SmtCore &core, const EnergyParams &p)
{
    EnergyBreakdown e;
    auto n = [](const Counter &c) { return static_cast<double>(c.value()); };

    MemorySystem &mem = core.memSys();
    e.cache += n(mem.l1i().accesses) * p.l1iAccess;
    e.cache += n(mem.l1d().accesses) * p.l1dAccess;
    e.cache += n(mem.l2().accesses) * p.l2Access;
    e.cache += n(mem.l2().misses) * p.dramAccess;
    // CMP shared structures, charged to the cores that drive them (the
    // private-L2 counters above stay zero when a shared L2 is routed;
    // all of these are zero on a standalone core).
    e.cache += n(mem.sharedL2Accesses) * p.l2Access;
    e.cache += n(mem.sharedL2Misses) * p.dramAccess;
    e.cache += n(mem.sharedIAccesses) * p.l1iAccess;
    e.cache += n(core.traceCache().accesses) * p.traceCacheAccess;

    e.other += n(core.bpred().lookups) * p.bpredLookup;
    e.other += n(core.renameUnit().prf().reads) * p.regfileRead;
    e.other += n(core.renameUnit().prf().writes) * p.regfileWrite;
    e.other += n(core.renameUnit().renameOps) * p.renameOp;
    e.other += n(core.issueQueue().wakeups) * p.iqWakeup;
    e.other += n(core.rob().writes) * p.robWrite;
    e.other += n(core.lsq().accesses) * p.lsqAccess;
    e.other += n(core.funcUnits().intOps) * p.intOp;
    e.other += n(core.funcUnits().fpOps) * p.fpOp;
    e.other += n(core.stats.committedInstances) * p.commitOp;
    e.other += static_cast<double>(core.now()) * p.staticPerCycle;

    // MMT overhead structures. The FHB and register-merge hardware are
    // only touched outside MERGE mode, the LVIP only for merged ME loads,
    // the RST every decoded instruction + update — exactly the access
    // counters maintained by those components.
    FetchSync &sync = core.fetchSync();
    double fhb_searches = 0.0;
    double fhb_records = 0.0;
    for (ThreadId t = 0; t < core.params().numThreads; ++t) {
        fhb_searches += n(sync.fhb(t).searches);
        fhb_records += n(sync.fhb(t).records);
    }
    e.overhead += fhb_searches * p.fhbSearch;
    e.overhead += fhb_records * p.fhbRecord;
    e.overhead += n(core.rst().lookups) * p.rstLookup;
    e.overhead += n(core.rst().updates) * p.rstUpdate;
    e.overhead += n(core.splitter().invocations) * p.splitterOp;
    e.overhead += n(core.lvip().accesses) * p.lvipAccess;
    e.overhead += n(core.regMergeUnit().compares) * p.mergeCompare;

    return e;
}

} // namespace mmt
