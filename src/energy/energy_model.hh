/**
 * @file
 * Activity-based energy model in the spirit of Wattch (paper §6.2),
 * scaled to 32 nm. Each micro-architectural event carries a per-access
 * energy; totals are events x energy plus a per-cycle static component.
 *
 * The MMT overhead structures (Table 3: FHB CAM, RST, instruction
 * splitter, LVIP, register-merge tracking) are accounted separately so
 * Figure 6's breakdown — cache energy / MMT overhead / everything else —
 * can be reproduced, along with the paper's claim that the overhead is
 * below 2% of total power even without power gating.
 */

#ifndef MMT_ENERGY_ENERGY_MODEL_HH
#define MMT_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>

namespace mmt
{

class SmtCore;

/** Per-event energies in picojoules (32 nm class values). */
struct EnergyParams
{
    // Caches.
    double l1iAccess = 55.0;
    double l1dAccess = 60.0;
    double l2Access = 480.0;
    double dramAccess = 3500.0;
    double traceCacheAccess = 150.0;

    // Conventional core structures.
    double bpredLookup = 14.0;
    double regfileRead = 9.0;
    double regfileWrite = 13.0;
    double renameOp = 11.0;
    double iqWakeup = 22.0;
    double robWrite = 18.0;
    double lsqAccess = 26.0;
    double intOp = 24.0;
    double fpOp = 80.0;
    double commitOp = 9.0;

    // MMT overhead structures (conservative Table 3 style estimates;
    // the RST is 11x50 bits and the FHB a 32-entry CAM -- tiny next to
    // the caches and register file).
    double fhbSearch = 5.0;
    double fhbRecord = 2.5;
    double rstLookup = 1.0;
    double rstUpdate = 1.0;
    double splitterOp = 1.5;
    double lvipAccess = 6.0;
    double mergeCompare = 8.0;

    /** Static (leakage + clock) energy per cycle for the whole core
     *  (leakage dominates at 32 nm). */
    double staticPerCycle = 200.0;
};

/** Energy totals in picojoules. */
struct EnergyBreakdown
{
    double cache = 0.0;    // L1I + L1D + L2 + DRAM + trace cache
    double overhead = 0.0; // MMT structures
    double other = 0.0;    // everything else incl. static

    double total() const { return cache + overhead + other; }
    /** Fraction of total energy spent in the MMT overhead structures. */
    double overheadFraction() const;

    std::string toString() const;
};

/**
 * Compute the energy breakdown of a finished simulation by reading the
 * activity counters of @p core.
 */
EnergyBreakdown computeEnergy(SmtCore &core,
                              const EnergyParams &params = EnergyParams());

} // namespace mmt

#endif // MMT_ENERGY_ENERGY_MODEL_HH
