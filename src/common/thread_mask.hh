/**
 * @file
 * ThreadMask — the Instruction Thread ID (ITID) bit vector of the paper.
 *
 * An ITID names the set of hardware threads an in-flight instruction was
 * fetched for (paper §4.1: "The instruction window is enlarged by 4 bits,
 * and a bit is set for each thread with the corresponding PC").
 *
 * The class also provides the pair-index encoding used by the Register
 * Sharing Table (§4.2.1): for a 4-thread MMT there are 6 unordered thread
 * pairs, indexed 0..5.
 */

#ifndef MMT_COMMON_THREAD_MASK_HH
#define MMT_COMMON_THREAD_MASK_HH

#include <bit>
#include <cstdint>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"

namespace mmt
{

/** Compact set of hardware thread ids (max 4), a.k.a. an ITID. */
class ThreadMask
{
  public:
    /** Empty mask. */
    constexpr ThreadMask() : bits_(0) {}

    /** Mask from a raw bit pattern (bit t set => thread t is a member). */
    explicit constexpr ThreadMask(std::uint8_t bits) : bits_(bits) {}

    /** Mask containing the single thread @p tid. */
    static constexpr ThreadMask
    single(ThreadId tid)
    {
        return ThreadMask(static_cast<std::uint8_t>(1u << tid));
    }

    /** Mask containing threads [0, n). */
    static constexpr ThreadMask
    firstN(int n)
    {
        return ThreadMask(static_cast<std::uint8_t>((1u << n) - 1u));
    }

    constexpr std::uint8_t raw() const { return bits_; }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr int count() const { return std::popcount(bits_); }

    constexpr bool
    contains(ThreadId tid) const
    {
        return (bits_ >> tid) & 1u;
    }

    /** Lowest-numbered member thread; mask must be non-empty. */
    ThreadId
    leader() const
    {
        mmt_assert(bits_ != 0, "leader() on empty ThreadMask");
        return std::countr_zero(bits_);
    }

    constexpr void set(ThreadId tid) { bits_ |= (1u << tid); }
    constexpr void clear(ThreadId tid) { bits_ &= ~(1u << tid); }

    constexpr ThreadMask
    operator&(ThreadMask o) const
    {
        return ThreadMask(static_cast<std::uint8_t>(bits_ & o.bits_));
    }

    constexpr ThreadMask
    operator|(ThreadMask o) const
    {
        return ThreadMask(static_cast<std::uint8_t>(bits_ | o.bits_));
    }

    /** Members of this mask that are not members of @p o. */
    constexpr ThreadMask
    minus(ThreadMask o) const
    {
        return ThreadMask(static_cast<std::uint8_t>(bits_ & ~o.bits_));
    }

    constexpr bool operator==(const ThreadMask &o) const = default;

    /** True if @p o contains every member of this mask. */
    constexpr bool
    subsetOf(ThreadMask o) const
    {
        return (bits_ & o.bits_) == bits_;
    }

    /**
     * Visit each member thread id in ascending order.
     * @param fn callable taking a ThreadId.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::uint8_t b = bits_;
        while (b) {
            ThreadId tid = std::countr_zero(b);
            fn(tid);
            b &= static_cast<std::uint8_t>(b - 1);
        }
    }

    /** Render as a fixed-width bit string, thread 0 leftmost (e.g. 1010). */
    std::string toString(int num_threads = maxThreads) const;

    /**
     * Unordered-pair index for RST bit addressing: threads (a, b) with
     * a < b map to a dense index in [0, 6) for 4 threads.
     */
    static int pairIndex(ThreadId a, ThreadId b);

    /** Inverse of pairIndex: return the two member threads of @p index. */
    static std::pair<ThreadId, ThreadId> pairThreads(int index);

  private:
    std::uint8_t bits_;
};

} // namespace mmt

#endif // MMT_COMMON_THREAD_MASK_HH
