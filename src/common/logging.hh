/**
 * @file
 * Error reporting helpers in the gem5 tradition.
 *
 * panic()  — a simulator bug: a condition that must never occur regardless
 *            of user input. Aborts so a debugger or core dump can inspect.
 * fatal()  — a user error (bad configuration, malformed assembly). Exits
 *            with status 1.
 * warn()   — suspicious but survivable condition.
 * inform() — plain status output.
 *
 * All entry points are safe to call from concurrent simulations (the
 * sweep runner): the sink serializes whole lines under a mutex and the
 * inform() enable flag is atomic.
 */

#ifndef MMT_COMMON_LOGGING_HH
#define MMT_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mmt
{

/** Print a formatted message and abort. Use for internal invariants. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** Backend for mmt_assert(); prints location then the message. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * panic() unless the condition holds; a printf-style message is required.
 * Used for cheap always-on invariants in the pipeline model.
 */
#define mmt_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::mmt::panicAssert(#cond, __FILE__, __LINE__, __VA_ARGS__);     \
    } while (0)

} // namespace mmt

#endif // MMT_COMMON_LOGGING_HH
