/**
 * @file
 * Fundamental scalar types used throughout the MMT simulator.
 */

#ifndef MMT_COMMON_TYPES_HH
#define MMT_COMMON_TYPES_HH

#include <cstdint>

namespace mmt
{

/** Byte address in a simulated address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycles = std::uint64_t;

/** Hardware thread (context) index, 0-based. */
using ThreadId = int;

/** Architected or physical register index. */
using RegIndex = int;

/** 64-bit register value. Floating point values are stored bit-cast. */
using RegVal = std::uint64_t;

/** Identifier of a physical register (renaming tag). */
using PhysReg = int;

/** Sentinel for "no physical register". */
constexpr PhysReg invalidPhysReg = -1;

/** Maximum number of hardware threads supported by the MMT structures. */
constexpr int maxThreads = 4;

/** Number of distinct unordered thread pairs with maxThreads threads. */
constexpr int maxThreadPairs = maxThreads * (maxThreads - 1) / 2;

} // namespace mmt

#endif // MMT_COMMON_TYPES_HH
