/**
 * @file
 * Fundamental scalar types used throughout the MMT simulator.
 */

#ifndef MMT_COMMON_TYPES_HH
#define MMT_COMMON_TYPES_HH

#include <cstdint>

namespace mmt
{

/** Byte address in a simulated address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycles = std::uint64_t;

/** Hardware thread (context) index, 0-based. */
using ThreadId = int;

/** Architected or physical register index. */
using RegIndex = int;

/** 64-bit register value. Floating point values are stored bit-cast. */
using RegVal = std::uint64_t;

/** Identifier of a physical register (renaming tag). */
using PhysReg = int;

/** Sentinel for "no physical register". */
constexpr PhysReg invalidPhysReg = -1;

/** Maximum number of hardware threads supported by the MMT structures.
 *  In a CMP this bounds the *system-wide* context count: thread groups
 *  span cores, but SEND/RECV ranks, ITIDs and per-context tables all
 *  index the same 0..maxThreads-1 space. */
constexpr int maxThreads = 4;

/** Number of distinct unordered thread pairs with maxThreads threads. */
constexpr int maxThreadPairs = maxThreads * (maxThreads - 1) / 2;

/** Maximum number of SMT cores in a CMP system. */
constexpr int maxCores = maxThreads;

/**
 * How a thread group's contexts are assigned to the cores of a CMP.
 * Packed fills core 0 up to its SMT capacity before spilling to core 1
 * (with <= maxThreads contexts this is today's all-on-one-core layout);
 * Spread deals contexts round-robin, one per core first.
 */
enum class Placement
{
    Packed,
    Spread,
};

} // namespace mmt

#endif // MMT_COMMON_TYPES_HH
