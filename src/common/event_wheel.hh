/**
 * @file
 * Calendar-queue event wheel keyed by simulated cycle.
 *
 * The seed's completion stage linearly scanned every in-flight
 * instruction each cycle looking for `completeAt <= now`. The wheel
 * turns that into O(events due this cycle): schedule(when, item) files
 * the item into slot `when mod 2^k`, and popDue(now) visits exactly the
 * items due at `now`, in the order they were scheduled (FIFO per cycle,
 * which the core relies on for reproducible stat attribution).
 *
 * Events farther in the future than the wheel's horizon (cache-miss
 * chains can exceed any fixed slot count) wait in an overflow list and
 * are refiled into their slot each time the wheel wraps — O(1)
 * amortized per event. An item may be scheduled for any cycle strictly
 * greater than the last popDue() cycle.
 */

#ifndef MMT_COMMON_EVENT_WHEEL_HH
#define MMT_COMMON_EVENT_WHEEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mmt
{

/** Cycle-keyed calendar queue of @p T payloads. */
template <typename T>
class EventWheel
{
  public:
    /** @param horizon_hint max expected (when - now); rounded to 2^k. */
    explicit EventWheel(std::size_t horizon_hint = 1024)
    {
        std::size_t slots = 1;
        while (slots < horizon_hint)
            slots <<= 1;
        slots_.resize(slots);
    }

    /** File @p item to fire at cycle @p when (must be > last popDue). */
    void
    schedule(Cycles when, T item)
    {
        mmt_assert(when > lastPopped_ || (when == 0 && lastPopped_ == 0),
                   "event scheduled for cycle %llu, already at %llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(lastPopped_));
        ++pending_;
        if (when - lastPopped_ >= slots_.size()) {
            far_.push_back({when, nextSeq_++, std::move(item)});
            return;
        }
        slots_[slotOf(when)].push_back({when, nextSeq_++, std::move(item)});
    }

    /**
     * Fire every item due at cycle @p now, in scheduling order, by
     * calling @p fn(item). popDue must be called for consecutive cycles
     * (the core ticks one cycle at a time).
     */
    template <typename Fn>
    void
    popDue(Cycles now, Fn &&fn)
    {
        lastPopped_ = now;
        // Refile overflow events once per wheel revolution, just after
        // the slot index wraps: everything now within the horizon moves
        // into its slot before its due cycle can be reached.
        if (slotOf(now) == 0 && !far_.empty())
            refile(now);
        auto &slot = slots_[slotOf(now)];
        if (slot.empty())
            return;
        // Entries for future laps of the wheel stay. Due entries fire in
        // scheduling order: a slot holds sorted runs (direct appends and
        // refiled overflow batches) that can interleave, so the due set
        // — typically a handful of completions — is sorted by the
        // schedule sequence number before firing.
        due_.clear();
        std::size_t keep = 0;
        for (std::size_t i = 0; i < slot.size(); ++i) {
            if (slot[i].when == now)
                due_.push_back(std::move(slot[i]));
            else
                slot[keep++] = std::move(slot[i]);
        }
        slot.resize(keep);
        if (due_.size() > 1) {
            std::sort(due_.begin(), due_.end(),
                      [](const Entry &a, const Entry &b) {
                          return a.seq < b.seq;
                      });
        }
        for (Entry &e : due_) {
            --pending_;
            fn(e.item);
        }
        due_.clear();
    }

    /** Events scheduled and not yet fired. */
    std::size_t pending() const { return pending_; }

    bool empty() const { return pending_ == 0; }

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq; // global scheduling order
        T item;
    };

    std::size_t slotOf(Cycles when) const
    {
        return static_cast<std::size_t>(when) & (slots_.size() - 1);
    }

    void
    refile(Cycles now)
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < far_.size(); ++i) {
            if (far_[i].when - now < slots_.size())
                slots_[slotOf(far_[i].when)].push_back(std::move(far_[i]));
            else
                far_[keep++] = std::move(far_[i]);
        }
        far_.resize(keep);
    }

    std::vector<std::vector<Entry>> slots_;
    std::vector<Entry> far_; // beyond-horizon overflow, refiled on wrap
    std::vector<Entry> due_; // scratch for popDue (kept to avoid allocs)
    std::size_t pending_ = 0;
    std::uint64_t nextSeq_ = 0;
    Cycles lastPopped_ = 0;
};

} // namespace mmt

#endif // MMT_COMMON_EVENT_WHEEL_HH
