/**
 * @file
 * A small statistics package in the spirit of the gem5/SimpleScalar stats
 * facilities: named scalar counters, distributions, and a registry that can
 * render everything as text.
 *
 * Pipeline components own Counter/Distribution members and register them
 * with their core's StatGroup; benches read them by name or directly.
 *
 * Nothing here is global: counters live inside a core instance, so
 * concurrent simulations (one core per sweep-runner job) never share a
 * statistic. Individual counters are not internally synchronized and
 * must not be shared across cores.
 */

#ifndef MMT_COMMON_STATS_HH
#define MMT_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mmt
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A bucketed distribution with geometric or linear buckets, used for the
 * paper's divergence-length and remerge-distance histograms.
 */
class Distribution
{
  public:
    /**
     * @param bucket_limits upper bounds (inclusive) of each bucket; samples
     *        above the last limit land in the overflow bucket.
     */
    explicit Distribution(std::vector<std::uint64_t> bucket_limits = {});

    void sample(std::uint64_t value);

    std::uint64_t total() const { return total_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t overflow() const { return counts_.back(); }
    const std::vector<std::uint64_t> &limits() const { return limits_; }

    /** Fraction of samples <= limits()[i] (cumulative). */
    double cumulativeFraction(std::size_t i) const;

    void reset();

  private:
    std::vector<std::uint64_t> limits_;
    std::vector<std::uint64_t> counts_; // limits_.size() + 1 (overflow)
    std::uint64_t total_ = 0;
};

/**
 * Registry mapping dotted stat names to counters for text dumps.
 * Non-owning: components keep the counters; the group keeps pointers.
 */
class StatGroup
{
  public:
    void addCounter(const std::string &name, const Counter *counter);

    /** Value of a registered counter, or panic if unknown. */
    std::uint64_t get(const std::string &name) const;

    /** True if @p name is registered. */
    bool has(const std::string &name) const;

    /** Render "name value" lines, sorted by name. */
    std::string dump() const;

    /** Render a JSON object {"name": value, ...}, sorted by name. */
    std::string dumpJson() const;

  private:
    std::map<std::string, const Counter *> counters_;
};

} // namespace mmt

#endif // MMT_COMMON_STATS_HH
