#include "common/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace mmt
{

Distribution::Distribution(std::vector<std::uint64_t> bucket_limits)
    : limits_(std::move(bucket_limits)), counts_(limits_.size() + 1, 0)
{
    for (std::size_t i = 1; i < limits_.size(); ++i)
        mmt_assert(limits_[i] > limits_[i - 1],
                   "bucket limits must be increasing");
}

void
Distribution::sample(std::uint64_t value)
{
    ++total_;
    for (std::size_t i = 0; i < limits_.size(); ++i) {
        if (value <= limits_[i]) {
            ++counts_[i];
            return;
        }
    }
    ++counts_.back();
}

double
Distribution::cumulativeFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t j = 0; j <= i && j < counts_.size(); ++j)
        below += counts_[j];
    return static_cast<double>(below) / static_cast<double>(total_);
}

void
Distribution::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
}

void
StatGroup::addCounter(const std::string &name, const Counter *counter)
{
    auto [it, inserted] = counters_.emplace(name, counter);
    (void)it;
    mmt_assert(inserted, "duplicate stat name '%s'", name.c_str());
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        panic("unknown stat '%s'", name.c_str());
    return it->second->value();
}

bool
StatGroup::has(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters_)
        os << name << " " << counter->value() << "\n";
    return os.str();
}

std::string
StatGroup::dumpJson() const
{
    // Stat names are dotted identifiers (no quotes/backslashes), so they
    // can be emitted without escaping.
    std::ostringstream os;
    os << "{\n";
    const char *sep = "";
    for (const auto &[name, counter] : counters_) {
        os << sep << "  \"" << name << "\": " << counter->value();
        sep = ",\n";
    }
    os << "\n}\n";
    return os.str();
}

} // namespace mmt
