/**
 * @file
 * Deterministic xorshift64* PRNG. All randomness in the simulator and
 * workload generators flows through explicitly seeded instances so every
 * experiment is exactly reproducible.
 *
 * There is deliberately no global generator: each simulation (and each
 * workload initData) seeds its own Rng, so concurrent runWorkload calls
 * under the sweep runner stay bit-identical to serial execution. Keep it
 * that way — a shared Rng would make results depend on thread schedule.
 */

#ifndef MMT_COMMON_RANDOM_HH
#define MMT_COMMON_RANDOM_HH

#include <cstdint>

namespace mmt
{

/** xorshift64* generator (Vigna 2016); small, fast, seedable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace mmt

#endif // MMT_COMMON_RANDOM_HH
