#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mmt
{

namespace
{
// The sweep runner executes simulations on several threads; the flag is
// atomic and every report takes logMutex so concurrent messages cannot
// interleave mid-line on stderr.
std::atomic<bool> informEnabled{true};
std::mutex logMutex;

void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::lock_guard<std::mutex> lock(logMutex);
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
panicAssert(const char *cond, const char *file, int line, const char *fmt,
            ...)
{
    {
        std::lock_guard<std::mutex> lock(logMutex);
        std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ",
                     cond, file, line);
        va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
        std::fprintf(stderr, "\n");
    }
    std::abort();
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

} // namespace mmt
