#include "common/thread_mask.hh"

namespace mmt
{

std::string
ThreadMask::toString(int num_threads) const
{
    std::string s;
    s.reserve(num_threads);
    for (ThreadId t = 0; t < num_threads; ++t)
        s.push_back(contains(t) ? '1' : '0');
    return s;
}

int
ThreadMask::pairIndex(ThreadId a, ThreadId b)
{
    if (a > b)
        std::swap(a, b);
    mmt_assert(a != b && a >= 0 && b < maxThreads,
               "bad thread pair (%d, %d)", a, b);
    // Dense row-major enumeration of pairs (a, b), a < b:
    // (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5
    static const int table[maxThreads][maxThreads] = {
        {-1, 0, 1, 2},
        {0, -1, 3, 4},
        {1, 3, -1, 5},
        {2, 4, 5, -1},
    };
    return table[a][b];
}

std::pair<ThreadId, ThreadId>
ThreadMask::pairThreads(int index)
{
    static const std::pair<ThreadId, ThreadId> table[maxThreadPairs] = {
        {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
    };
    mmt_assert(index >= 0 && index < maxThreadPairs,
               "bad pair index %d", index);
    return table[index];
}

} // namespace mmt
