/**
 * @file
 * Slab/free-list object pool for hot-path simulator objects, plus the
 * companion sequence-ordered ring used to keep handles in FIFO order.
 *
 * The pipeline creates and retires one DynInst per fetched instance —
 * millions per simulated second. Heap-allocating each one (the seed's
 * `std::deque<std::unique_ptr<DynInst>>`) costs an allocator round trip
 * and scatters instances across the heap. The Arena hands out objects
 * from large contiguous slabs and recycles them through a free list, so
 * steady-state simulation performs no heap allocation per instruction
 * and recycled objects stay cache-warm (esesc's pooled DInst is the
 * model for this shape).
 *
 * Ownership rules (see docs/INTERNALS.md "Instruction lifecycle"):
 * objects are created with create() and returned with recycle();
 * destroying the Arena releases the slabs regardless of outstanding
 * handles, so all raw pointers into an arena are invalidated at once.
 * Arenas are instance-scoped (one per core) and not thread-safe; the
 * sweep runner's one-core-per-job isolation makes that sufficient.
 */

#ifndef MMT_COMMON_ARENA_HH
#define MMT_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mmt
{

/**
 * Pool allocator for objects of type @p T backed by fixed-size slabs.
 *
 * create() placement-constructs on a recycled cell when one is
 * available, otherwise carves a fresh cell from the newest slab
 * (allocating a new slab when full). recycle() destroys the object and
 * pushes its cell onto the free list. No memory is returned to the host
 * heap before the arena dies.
 */
template <typename T, std::size_t SlabObjects = 256>
class Arena
{
    static_assert(SlabObjects > 0);

  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        mmt_assert(live_ == 0,
                   "arena destroyed with %zu live objects (leak)", live_);
    }

    /** Construct a pooled object; O(1), allocation-free when recycling. */
    template <typename... Args>
    T *
    create(Args &&...args)
    {
        T *cell;
        if (!freeList_.empty()) {
            cell = freeList_.back();
            freeList_.pop_back();
            ++recycled_;
        } else {
            if (slabUsed_ == SlabObjects || slabs_.empty()) {
                slabs_.push_back(std::make_unique<Slab>());
                slabUsed_ = 0;
            }
            cell = slabs_.back()->cell(slabUsed_++);
        }
        ++created_;
        ++live_;
        return ::new (static_cast<void *>(cell))
            T(std::forward<Args>(args)...);
    }

    /** Destroy @p obj and make its cell reusable by the next create(). */
    void
    recycle(T *obj)
    {
        obj->~T();
        freeList_.push_back(obj);
        mmt_assert(live_ > 0, "arena recycle underflow");
        --live_;
    }

    /** Objects currently created and not yet recycled. */
    std::size_t live() const { return live_; }
    /** Total create() calls over the arena's lifetime. */
    std::size_t created() const { return created_; }
    /** create() calls served from the free list (no new cell). */
    std::size_t recycledHits() const { return recycled_; }
    /** Slabs allocated from the host heap. */
    std::size_t slabCount() const { return slabs_.size(); }
    /** Cells the current slabs can hold in total. */
    std::size_t capacity() const { return slabs_.size() * SlabObjects; }

  private:
    struct Slab
    {
        alignas(T) std::byte storage[sizeof(T) * SlabObjects];

        T *
        cell(std::size_t i)
        {
            return std::launder(
                reinterpret_cast<T *>(storage + i * sizeof(T)));
        }
    };

    std::vector<std::unique_ptr<Slab>> slabs_;
    std::size_t slabUsed_ = 0; // cells carved from the newest slab
    std::vector<T *> freeList_;
    std::size_t live_ = 0;
    std::size_t created_ = 0;
    std::size_t recycled_ = 0;
};

/**
 * FIFO ring buffer of small handles (pointers/ints) with amortized-O(1)
 * growth. Replaces std::deque in pipeline queues whose size is bounded
 * by structure capacities: a power-of-two array with head/size indices
 * keeps push/pop at a couple of instructions with no per-node
 * allocation and no iterator bookkeeping.
 */
template <typename T>
class BoundedRing
{
  public:
    /** @param capacity_hint expected peak size (rounded up to 2^k). */
    explicit BoundedRing(std::size_t capacity_hint = 16)
    {
        std::size_t cap = 1;
        while (cap < capacity_hint)
            cap <<= 1;
        buf_.resize(cap);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    push_back(T v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = v;
        ++size_;
    }

    T &
    front()
    {
        mmt_assert(size_ > 0, "front() on empty ring");
        return buf_[head_];
    }

    void
    pop_front()
    {
        mmt_assert(size_ > 0, "pop_front() on empty ring");
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    /** i-th element from the front (0 = front()). */
    T &
    at(std::size_t i)
    {
        mmt_assert(i < size_, "ring index %zu out of range", i);
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace mmt

#endif // MMT_COMMON_ARENA_HH
