/**
 * @file
 * Trace-alignment tests (paper §3.2/§3.3): fetch-/execute-identical
 * classification, divergence handling and the taken-branch length-
 * difference samples behind Figures 1 and 2.
 */

#include <gtest/gtest.h>

#include "profile/align.hh"

using namespace mmt;

namespace
{

TraceRecord
rec(Addr pc, RegVal a = 0, bool taken = false)
{
    TraceRecord r;
    r.pc = pc;
    r.op = Opcode::ADDI;
    r.readsA = true;
    r.srcA = a;
    r.isTakenBranch = taken;
    return r;
}

std::vector<TraceRecord>
straight(Addr base, int n, RegVal val)
{
    std::vector<TraceRecord> t;
    for (int i = 0; i < n; ++i)
        t.push_back(rec(base + static_cast<Addr>(i) * 4, val));
    return t;
}

} // namespace

TEST(Align, IdenticalTracesAreExecuteIdentical)
{
    auto a = straight(0x1000, 10, 5);
    auto b = straight(0x1000, 10, 5);
    SharingProfile p = alignTraces(a, b);
    EXPECT_EQ(p.total, 20u);
    EXPECT_EQ(p.execIdentical, 20u);
    EXPECT_EQ(p.fetchIdentical, 0u);
    EXPECT_EQ(p.notIdentical, 0u);
    EXPECT_DOUBLE_EQ(p.fracExec(), 1.0);
}

TEST(Align, SamePcDifferentValuesIsFetchIdentical)
{
    auto a = straight(0x1000, 10, 5);
    auto b = straight(0x1000, 10, 6);
    SharingProfile p = alignTraces(a, b);
    EXPECT_EQ(p.fetchIdentical, 20u);
    EXPECT_EQ(p.execIdentical, 0u);
}

TEST(Align, LoadsCompareLoadedValues)
{
    TraceRecord x = rec(0x1000, 5);
    x.isLoad = true;
    x.destVal = 42;
    TraceRecord y = x;
    EXPECT_TRUE(executeIdentical(x, y));
    y.destVal = 43; // same address, different loaded value (ME case)
    EXPECT_FALSE(executeIdentical(x, y));
}

TEST(Align, DivergenceCountedNotIdentical)
{
    // Common prefix, thread-specific middles of different lengths,
    // common suffix.
    auto a = straight(0x1000, 5, 1);
    auto b = straight(0x1000, 5, 1);
    auto mid_a = straight(0x2000, 3, 1);
    auto mid_b = straight(0x3000, 7, 1);
    auto tail = straight(0x4000, 8, 1);
    for (auto &r : mid_a) a.push_back(r);
    for (auto &r : mid_b) b.push_back(r);
    for (auto &r : tail) { a.push_back(r); b.push_back(r); }

    DivergenceStats div;
    SharingProfile p = alignTraces(a, b, &div);
    EXPECT_EQ(p.notIdentical, 10u); // 3 + 7
    EXPECT_EQ(p.execIdentical, 26u); // (5 + 8) * 2
    ASSERT_EQ(div.lengthDiffs.size(), 1u);
}

TEST(Align, DivergenceLengthMeasuredInTakenBranches)
{
    auto a = straight(0x1000, 4, 1);
    auto b = a;
    // Thread a's divergent path has 3 taken branches, b's has 1.
    std::vector<TraceRecord> mid_a = {rec(0x2000, 1, true),
                                      rec(0x2004, 1, true),
                                      rec(0x2008, 1, true)};
    std::vector<TraceRecord> mid_b = {rec(0x3000, 1, true),
                                      rec(0x3004, 1, false)};
    auto tail = straight(0x4000, 8, 1);
    for (auto &r : mid_a) a.push_back(r);
    for (auto &r : mid_b) b.push_back(r);
    for (auto &r : tail) { a.push_back(r); b.push_back(r); }

    DivergenceStats div;
    alignTraces(a, b, &div);
    ASSERT_EQ(div.lengthDiffs.size(), 1u);
    EXPECT_EQ(div.lengthDiffs[0], 2u); // |3 - 1|
    EXPECT_DOUBLE_EQ(div.fractionWithin(16), 1.0);
    EXPECT_DOUBLE_EQ(div.fractionWithin(1), 0.0);
}

TEST(Align, NoResyncConsumesRest)
{
    auto a = straight(0x1000, 3, 1);
    auto b = straight(0x1000, 3, 1);
    auto tail_a = straight(0x2000, 20, 1);
    auto tail_b = straight(0x3000, 25, 1);
    for (auto &r : tail_a) a.push_back(r);
    for (auto &r : tail_b) b.push_back(r);
    SharingProfile p = alignTraces(a, b);
    EXPECT_EQ(p.execIdentical, 6u);
    EXPECT_EQ(p.notIdentical, 45u);
    EXPECT_EQ(p.total, 51u);
}

TEST(Align, ConfirmationAvoidsSpuriousResync)
{
    // Thread b revisits PC 0x1008 inside its divergent path, but only for
    // one record; the aligner must not resync there.
    auto a = straight(0x1000, 6, 1);
    std::vector<TraceRecord> b = {
        rec(0x1000, 1), rec(0x1004, 1),
        rec(0x5000, 1), rec(0x1008, 1), rec(0x5008, 1), rec(0x500c, 1),
        rec(0x1008, 1), rec(0x100c, 1), rec(0x1010, 1), rec(0x1014, 1),
    };
    AlignParams params;
    params.confirm = 3;
    SharingProfile p = alignTraces(a, b, nullptr, params);
    // Proper resync at b[6] (0x1008..): 2 + 4 matched pairs.
    EXPECT_EQ(p.execIdentical + p.fetchIdentical, 12u);
}

TEST(Align, EmptyTraces)
{
    std::vector<TraceRecord> a, b;
    SharingProfile p = alignTraces(a, b);
    EXPECT_EQ(p.total, 0u);
    EXPECT_DOUBLE_EQ(p.fracExec(), 0.0);
    DivergenceStats d;
    EXPECT_DOUBLE_EQ(d.fractionWithin(16), 0.0);
}

TEST(Align, AsymmetricLengthTails)
{
    auto a = straight(0x1000, 5, 1);
    auto b = straight(0x1000, 3, 1);
    SharingProfile p = alignTraces(a, b);
    EXPECT_EQ(p.execIdentical, 6u);
    EXPECT_EQ(p.notIdentical, 2u); // a's unmatched tail
}
